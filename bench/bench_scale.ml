(* Scale-sized synthetic benchmarks for the parallel driver.

   The 14 paper workloads are small — tens of routines each — so at
   their size the domain pool mostly measures its own overhead.  These
   programs come from Prog_gen.Scale: 1000+ routines across dozens of
   modules, in three call-graph shapes (wide/flat, deep chains,
   SCC-heavy), deterministic in the seed, big enough that sharding the
   optimizer has real work to balance.

     dune exec bench/bench_scale.exe             # sweep: shapes x jobs
     dune exec bench/bench_scale.exe -- --smoke  # CI gate (make bench-scale)

   --smoke compiles one 1000-routine wide program at jobs 1 and jobs 4,
   asserts that the final IR, the report and the decision journal are
   bit-identical, and — only when the machine has at least 4 cores —
   that jobs 4 is at least as fast as jobs 1 (on fewer cores the jobs 4
   row measures oversubscription overhead, not speedup, so the gate
   would be noise).  Exit status 1 on any violation. *)

let routines = 1000
let seed = 1
let repetitions = 3
let jobs_levels = [ 1; 2; 4; 8 ]

let sources_of shape = Prog_gen.Scale.sources shape ~routines ~seed

let compile_once sources =
  let program, _ = Minic.Compile.compile_program sources in
  Hlo.Driver.run ~profile:Ucode.Profile.empty program

(* Everything the determinism contract covers, as strings: the final
   IR, the report, and the decision journal captured by a private
   collector. *)
let observe ~jobs sources =
  Parallel.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) @@ fun () ->
  let collector = Telemetry.Collector.create () in
  Telemetry.Collector.install collector;
  Fun.protect ~finally:Telemetry.Collector.uninstall @@ fun () ->
  let res = compile_once sources in
  let journal =
    String.concat "\n"
      (List.map
         (fun (d : Telemetry.Event.decision) ->
           Printf.sprintf "%s %s %s %s %s %d %.17g %d"
             (Telemetry.Event.kind_name d.Telemetry.Event.d_kind)
             (Telemetry.Event.verdict_name d.Telemetry.Event.d_verdict)
             (match d.Telemetry.Event.d_verdict with
             | Telemetry.Event.Accepted -> ""
             | Telemetry.Event.Rejected r -> r)
             d.Telemetry.Event.d_subject d.Telemetry.Event.d_context
             d.Telemetry.Event.d_site d.Telemetry.Event.d_score
             d.Telemetry.Event.d_pass)
         (Telemetry.Collector.decisions collector))
  in
  ( Ucode.Pp.program_to_string res.Hlo.Driver.program,
    Fmt.str "%a" Hlo.Report.pp res.Hlo.Driver.report,
    journal )

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let time_median ~jobs sources =
  Parallel.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) @@ fun () ->
  median
    (List.init repetitions (fun _ ->
         let t0 = Unix.gettimeofday () in
         ignore (compile_once sources : Hlo.Driver.result);
         Unix.gettimeofday () -. t0))

(* ------------------------------------------------------------------ *)
(* CI smoke gate.                                                      *)

let smoke () =
  let cores = Domain.recommended_domain_count () in
  let sources = sources_of Prog_gen.Scale.Wide in
  Fmt.pr "bench-scale smoke: wide shape, %d routines, %d core(s)@."
    (Prog_gen.Scale.routine_count ~routines)
    cores;
  let ir1, rep1, j1 = observe ~jobs:1 sources in
  let ir4, rep4, j4 = observe ~jobs:4 sources in
  let fail = ref false in
  let check what a b =
    if String.equal a b then
      Fmt.pr "  %-7s identical at jobs 1 and jobs 4@." what
    else begin
      fail := true;
      Fmt.epr "  %-7s DIFFERS between jobs 1 and jobs 4@." what
    end
  in
  check "IR" ir1 ir4;
  check "report" rep1 rep4;
  check "journal" j1 j4;
  let w1 = time_median ~jobs:1 sources in
  let w4 = time_median ~jobs:4 sources in
  Fmt.pr "  jobs1=%.3fs jobs4=%.3fs speedup@4=%.2fx@." w1 w4 (w1 /. w4);
  if cores >= 4 then begin
    if w1 /. w4 < 1.0 then begin
      fail := true;
      Fmt.epr "  FAIL: speedup_at_4 = %.2f < 1.0 on a %d-core machine@."
        (w1 /. w4) cores
    end
  end
  else
    Fmt.pr
      "  speedup gate skipped: %d core(s) < 4, jobs 4 measures \
       oversubscription@."
      cores;
  if !fail then exit 1;
  Fmt.pr "bench-scale smoke: OK@."

(* ------------------------------------------------------------------ *)
(* Full sweep.                                                         *)

let sweep () =
  let cores = Domain.recommended_domain_count () in
  Fmt.pr
    "bench-scale: %d-routine programs, jobs %s, median of %d, %d core(s)@."
    (Prog_gen.Scale.routine_count ~routines)
    (String.concat "/" (List.map string_of_int jobs_levels))
    repetitions cores;
  List.iter
    (fun shape ->
      let sources = sources_of shape in
      let walls =
        List.map (fun jobs -> (jobs, time_median ~jobs sources)) jobs_levels
      in
      let wall_at j = List.assoc j walls in
      Fmt.pr "%-5s %s speedup@4=%.2fx@."
        (Prog_gen.Scale.shape_name shape)
        (String.concat " "
           (List.map
              (fun (j, w) -> Printf.sprintf "jobs%d=%.3fs" j w)
              walls))
        (wall_at 1 /. wall_at 4))
    Prog_gen.Scale.all_shapes

let () =
  if Array.exists (String.equal "--smoke") Sys.argv then smoke () else sweep ()
