(* The benchmark harness.

   Two halves:

   1. Reproduction: regenerate every table and figure of the paper's
      evaluation (Figure 5, Table 1, Figure 6, Figure 7, Figure 8) and
      print them.  Input size comes from the REPRO_INPUT environment
      variable ("train", the default here, keeps the full harness under
      a minute; "ref" matches EXPERIMENTS.md).

   2. Timing (Bechamel): one Test.make per table/figure measuring the
      cost of regenerating (a slice of) it, plus micro-benchmarks of
      the compiler's own phases — front end, scalar optimizer, HLO,
      back end, and both execution engines.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit

let input =
  match Sys.getenv_opt "REPRO_INPUT" with
  | Some "ref" -> Workloads.Suite.Ref
  | _ -> Workloads.Suite.Train

let input_name =
  match input with Workloads.Suite.Ref -> "ref" | Workloads.Suite.Train -> "train"

(* ------------------------------------------------------------------ *)
(* Half 1: the reproduction.                                           *)

let section title = Fmt.pr "@.== %s ==@.@." title

let reproduce () =
  Fmt.pr "Reproduction of the evaluation of 'Aggressive Inlining' (PLDI'97)@.";
  Fmt.pr "input set: %s (set REPRO_INPUT=ref for the full runs)@." input_name;
  section "Figure 5: static characteristics of call sites";
  print_string
    (Experiments.Fig5_callsites.to_table (Experiments.Fig5_callsites.run ()));
  section "Table 1: inline and clone information at scopes base/c/p/cp";
  print_string
    (Experiments.Table1_transforms.to_table
       (Experiments.Table1_transforms.run ~input ()));
  section "Figure 6: relative speedup with inlining, cloning, or both";
  print_string
    (Experiments.Fig6_speedup.to_table (Experiments.Fig6_speedup.run ~input ()));
  section "Figure 7: simulation results (relative to neither)";
  print_string
    (Experiments.Fig7_simulation.to_table (Experiments.Fig7_simulation.run ()));
  section "Figure 8: incremental benefit of operations (022.li)";
  print_string
    (Experiments.Fig8_budget.to_table
       (Experiments.Fig8_budget.run ~input ~points:8 ()));
  section "Ablations (staging / cold penalty / outlining / positioning)";
  List.iter
    (fun s ->
      print_string (Experiments.Ablations.to_table s);
      print_newline ())
    (Experiments.Ablations.all ~input ());
  section "I-cache sensitivity (abstract claim)";
  print_string (Experiments.Cache_sweep.to_table (Experiments.Cache_sweep.run ~input ()));
  section "Scaling study (paper 3.5): synthetic production-size programs";
  print_string (Experiments.Scaling.to_table (Experiments.Scaling.run ()))

(* ------------------------------------------------------------------ *)
(* Half 2: Bechamel timing.                                            *)

(* Shared fixtures, prepared once so the timed bodies measure the
   phase under test and not setup. *)
let li = Workloads.Suite.find "022.li"
let li_program = Workloads.Suite.compile li ~input:Workloads.Suite.Train
let li_optimized = Opt.Pipeline.optimize_program li_program
let li_profile = (Interp.train li_program).Interp.profile
let li_sources = Workloads.Suite.sources li ~input:Workloads.Suite.Train
let li_image =
  Machine.Layout.build
    (Hlo.Driver.run ~profile:li_profile li_program).Hlo.Driver.program

let quick_config =
  { Hlo.Config.default with Hlo.Config.pass_limit = 2 }

(* One test per table/figure: a representative slice, so the timing
   stays in micro-benchmark territory. *)
let table_figure_tests =
  [ Test.make ~name:"fig5/classify-all-benchmarks"
      (Staged.stage (fun () -> ignore (Experiments.Fig5_callsites.run ())));
    Test.make ~name:"table1/022.li-scope-cp"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Table1_transforms.run_one ~input:Workloads.Suite.Train
                ~base_config:quick_config "022.li" Hlo.Config.CP)));
    Test.make ~name:"fig6/072.sc-speedups"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Fig6_speedup.run_one ~input:Workloads.Suite.Train
                ~base_config:quick_config (Workloads.Suite.find "072.sc"))));
    Test.make ~name:"fig7/147.vortex-simulation"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Fig7_simulation.run_one ~base_config:quick_config
                "147.vortex")));
    Test.make ~name:"fig8/022.li-one-point"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Fig8_budget.run_point ~input:Workloads.Suite.Train
                ~base_config:quick_config li ~budget:100.0 ~cap:10)));
    Test.make ~name:"ablations/positioning-022.li"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Ablations.positioning ~benchmarks:[ "022.li" ] ())));
    Test.make ~name:"scaling/8-modules"
      (Staged.stage (fun () ->
           ignore (Experiments.Scaling.run_one ~modules:8)));
    Test.make ~name:"cache-sweep/130.li"
      (Staged.stage (fun () ->
           ignore (Experiments.Cache_sweep.run_one "130.li"))) ]

(* Telemetry: the disabled path must stay ~free (one branch per
   event), and the enabled counter path cheap. The enabled-span path
   is excluded from Bechamel because recorded spans accumulate. *)
let telemetry_tests =
  let enabled_collector = Telemetry.Collector.create () in
  [ Test.make ~name:"telemetry/disabled-count"
      (Staged.stage (fun () -> Telemetry.Collector.count "bench.count" 1));
    Test.make ~name:"telemetry/disabled-span"
      (Staged.stage (fun () ->
           Telemetry.Collector.with_span "bench.span" (fun () -> ())));
    Test.make ~name:"telemetry/enabled-count"
      (Staged.stage (fun () ->
           Telemetry.Collector.count_in enabled_collector "bench.count" 1.0)) ]

(* The hard guard behind the Bechamel numbers: time a burst of
   disabled events directly and complain if they cost more than a
   handful of nanoseconds each. *)
let telemetry_guard () =
  assert (not (Telemetry.Collector.enabled ()));
  let n = 5_000_000 in
  let t0 = Telemetry.Clock.now_us () in
  for _ = 1 to n do
    Telemetry.Collector.count "guard.event" 1
  done;
  let t1 = Telemetry.Clock.now_us () in
  let ns = (t1 -. t0) *. 1e3 /. float_of_int n in
  Fmt.pr "telemetry guard: disabled event = %.2f ns/event (%s)@." ns
    (if ns < 100.0 then "ok"
     else "SLOW: disabled telemetry must cost one branch per event")

(* Phase micro-benchmarks: where does compile time actually go? *)
let phase_tests =
  [ Test.make ~name:"phase/front-end-022.li"
      (Staged.stage (fun () ->
           ignore (Minic.Compile.compile_program li_sources)));
    Test.make ~name:"phase/scalar-optimizer-022.li"
      (Staged.stage (fun () -> ignore (Opt.Pipeline.optimize_program li_program)));
    Test.make ~name:"phase/hlo-022.li"
      (Staged.stage (fun () ->
           ignore (Hlo.Driver.run ~profile:li_profile li_optimized)));
    Test.make ~name:"phase/backend-lower-layout-022.li"
      (Staged.stage (fun () -> ignore (Machine.Layout.build li_optimized)));
    Test.make ~name:"phase/interp-train-022.li"
      (Staged.stage (fun () -> ignore (Interp.train li_program)));
    Test.make ~name:"phase/simulate-022.li"
      (Staged.stage (fun () -> ignore (Machine.Sim.run li_image))) ]

let benchmark () =
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false
      ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let tests =
    Test.make_grouped ~name:"aggressive-inlining"
      (table_figure_tests @ phase_tests @ telemetry_tests)
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  section "Bechamel timings (per run)";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> nan
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Fmt.pr "%-40s  (no estimate)@." name
      else if ns > 1e9 then Fmt.pr "%-40s %10.3f s@." name (ns /. 1e9)
      else if ns > 1e6 then Fmt.pr "%-40s %10.3f ms@." name (ns /. 1e6)
      else Fmt.pr "%-40s %10.3f us@." name (ns /. 1e3))
    (List.sort compare !rows)

let () =
  reproduce ();
  benchmark ();
  telemetry_guard ();
  Fmt.pr "@.done.@."
