(* Machine-readable perf data points for the parallel driver and the
   isom build: workload x jobs x wall-time, summary-cache hit rates, a
   warm-vs-cold cache comparison, cold/warm/one-dirty incremental
   build timings, and scale-sized synthetic programs (Prog_gen.Scale),
   written to BENCH_pr6.json.

     dune exec bench/bench_json.exe            # writes ./BENCH_pr6.json
     dune exec bench/bench_json.exe -- out.json

   Wall-clock numbers depend on the machine — most importantly on how
   many cores it actually has, so the core count is recorded in the
   output and every run notes whether it oversubscribed the machine
   (jobs > cores: such rows measure pool overhead, not speedup).  The
   determinism suite (test/test_parallel.ml) is what holds the
   *results* identical everywhere. *)

module J = Telemetry.Json

let jobs_levels = [ 1; 2; 4; 8 ]
let repetitions = 3  (* per cell; median to shed scheduler noise *)

let cores = Domain.recommended_domain_count ()

let input = Workloads.Suite.Train

(* One full compile: front end (sharded) + HLO with its input-cleaning
   scalar-optimizer run (sharded).  Profile is precomputed by the
   caller — training is interpreter-bound and identical at any jobs. *)
let compile_once ~profile sources =
  let program, _ = Minic.Compile.compile_program sources in
  ignore (Hlo.Driver.run ~profile program : Hlo.Driver.result)

let time_median f =
  let samples =
    Array.init repetitions (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare samples;
  samples.(repetitions / 2)

let hit_rate (s : Hlo.Summary_cache.stats) =
  let total = s.Hlo.Summary_cache.hits + s.Hlo.Summary_cache.misses in
  if total = 0 then 0.0
  else float_of_int s.Hlo.Summary_cache.hits /. float_of_int total

(* Measure one workload at one jobs level.  The summary cache is
   cleared first so every cell sees the same cold-start work and the
   recorded hit rate reflects sharing *within* one compile (clones and
   repeated per-pass queries), not leftovers from the previous cell. *)
let measure_cell ~profile ~sources jobs =
  Parallel.Pool.set_jobs jobs;
  Hlo.Summary_cache.clear ();
  let wall = time_median (fun () -> compile_once ~profile sources) in
  let stats = Hlo.Summary_cache.stats () in
  Parallel.Pool.set_jobs 1;
  ( wall,
    J.Assoc
      [ ("jobs", J.Int jobs); ("wall_s", J.Float wall);
        ("oversubscribed", J.Bool (jobs > cores));
        ("cache_hits", J.Int stats.Hlo.Summary_cache.hits);
        ("cache_misses", J.Int stats.Hlo.Summary_cache.misses);
        ("cache_hit_rate", J.Float (hit_rate stats)) ] )

let measure_workload (b : Workloads.Suite.benchmark) =
  let name = b.Workloads.Suite.b_name in
  let sources = Workloads.Suite.sources b ~input in
  let program, _ = Minic.Compile.compile_program sources in
  let profile = (Interp.train program).Interp.profile in
  let cells = List.map (measure_cell ~profile ~sources) jobs_levels in
  let wall_at j =
    List.nth (List.map fst cells)
      (Option.get (List.find_index (Int.equal j) jobs_levels))
  in
  let speedup_at_4 = wall_at 1 /. wall_at 4 in
  Fmt.pr "%-14s jobs1=%.3fs jobs4=%.3fs speedup@4=%.2fx@." name (wall_at 1)
    (wall_at 4) speedup_at_4;
  ( wall_at 1,
    wall_at 4,
    J.Assoc
      [ ("name", J.String name);
        ("runs", J.List (List.map snd cells));
        ("speedup_at_4", J.Float speedup_at_4) ] )

(* Warm-vs-cold: recompile 022.li with the cache left warm from an
   identical compile; the second run's hit rate is the cross-run reuse
   the on-disk store (hloc --summary-cache) buys. *)
let measure_warm_cache () =
  let b = Workloads.Suite.find "022.li" in
  let sources = Workloads.Suite.sources b ~input in
  let program, _ = Minic.Compile.compile_program sources in
  let profile = (Interp.train program).Interp.profile in
  Parallel.Pool.set_jobs 1;
  Hlo.Summary_cache.clear ();
  let t0 = Unix.gettimeofday () in
  compile_once ~profile sources;
  let cold = Unix.gettimeofday () -. t0 in
  Hlo.Summary_cache.reset_stats ();
  let t1 = Unix.gettimeofday () in
  compile_once ~profile sources;
  let warm = Unix.gettimeofday () -. t1 in
  let stats = Hlo.Summary_cache.stats () in
  Fmt.pr "warm cache (022.li): cold=%.3fs warm=%.3fs hit-rate=%.2f@." cold warm
    (hit_rate stats);
  J.Assoc
    [ ("workload", J.String "022.li"); ("cold_wall_s", J.Float cold);
      ("warm_wall_s", J.Float warm);
      ("warm_hit_rate", J.Float (hit_rate stats)) ]

(* Incremental rebuild timings through the isom path: cold (empty isom
   directory), warm (nothing dirty), and one-dirty-of-N (the last
   module's source touched).  This times the phases incrementality
   short-circuits — front end + isom I/O + link; training and HLO see
   an identical program either way, so they are excluded. *)
let measure_incremental (b : Workloads.Suite.benchmark) =
  let name = b.Workloads.Suite.b_name in
  let sources = Workloads.Suite.sources b ~input in
  let n_modules = List.length sources in
  let dir = Filename.temp_file "bench_isom" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let build srcs =
    let isoms, _, st = Isom.Build.compile_incremental ~dir srcs in
    ignore (Isom.Build.link isoms);
    st
  in
  let timed srcs =
    let t0 = Unix.gettimeofday () in
    let st = build srcs in
    (Unix.gettimeofday () -. t0, st)
  in
  let cold, _ = timed sources in
  let warm, warm_st = timed sources in
  let dirty_sources =
    match List.rev sources with
    | last :: rest ->
      List.rev
        ({ last with
           Minic.Compile.src_text =
             last.Minic.Compile.src_text ^ "\n// touched by bench\n" }
        :: rest)
    | [] -> sources
  in
  let one_dirty, dirty_st = timed dirty_sources in
  Fmt.pr "%-14s modules=%d cold=%.3fs warm=%.3fs one-dirty=%.3fs@." name
    n_modules cold warm one_dirty;
  J.Assoc
    [ ("name", J.String name);
      ("modules", J.Int n_modules);
      ("cold_wall_s", J.Float cold);
      ("warm_wall_s", J.Float warm);
      ("warm_recompiled", J.Int (List.length warm_st.Isom.Build.s_recompiled));
      ("one_dirty_wall_s", J.Float one_dirty);
      ("one_dirty_recompiled",
       J.Int (List.length dirty_st.Isom.Build.s_recompiled)) ]

(* Scale-sized synthetic programs (Prog_gen.Scale).  No interpreter
   training — the section measures compile scaling, so HLO runs
   profile-free — and the summary cache is cleared per cell like the
   paper workloads above. *)

let scale_routines = 1000
let scale_seed = 1

let measure_scale shape =
  let name = Prog_gen.Scale.shape_name shape in
  let sources =
    Prog_gen.Scale.sources shape ~routines:scale_routines ~seed:scale_seed
  in
  let cells =
    List.map
      (fun jobs ->
        Parallel.Pool.set_jobs jobs;
        Hlo.Summary_cache.clear ();
        let wall =
          time_median (fun () ->
              let program, _ = Minic.Compile.compile_program sources in
              ignore
                (Hlo.Driver.run ~profile:Ucode.Profile.empty program
                  : Hlo.Driver.result))
        in
        Parallel.Pool.set_jobs 1;
        (jobs, wall))
      jobs_levels
  in
  let wall_at j = List.assoc j cells in
  let speedup_at_4 = wall_at 1 /. wall_at 4 in
  Fmt.pr "scale/%-5s jobs1=%.3fs jobs4=%.3fs speedup@4=%.2fx@." name
    (wall_at 1) (wall_at 4) speedup_at_4;
  J.Assoc
    [ ("name", J.String name);
      ("routines", J.Int (Prog_gen.Scale.routine_count ~routines:scale_routines));
      ( "runs",
        J.List
          (List.map
             (fun (j, w) ->
               J.Assoc
                 [ ("jobs", J.Int j); ("wall_s", J.Float w);
                   ("oversubscribed", J.Bool (j > cores)) ])
             cells) );
      ("speedup_at_4", J.Float speedup_at_4) ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pr6.json" in
  Fmt.pr "BENCH_pr6: %d workloads x jobs %s on %d core(s)@."
    (List.length Workloads.Suite.all)
    (String.concat "/" (List.map string_of_int jobs_levels))
    cores;
  let rows = List.map measure_workload Workloads.Suite.all in
  let total1 = List.fold_left (fun a (w1, _, _) -> a +. w1) 0.0 rows in
  let total4 = List.fold_left (fun a (_, w4, _) -> a +. w4) 0.0 rows in
  let warm = measure_warm_cache () in
  Fmt.pr "-- scale-sized synthetic programs --@.";
  let scale = List.map measure_scale Prog_gen.Scale.all_shapes in
  Fmt.pr "-- incremental isom builds --@.";
  let incremental = List.map measure_incremental Workloads.Suite.all in
  let doc =
    J.Assoc
      [ ("bench", J.String "pr6-work-stealing-and-scale");
        ("input", J.String "train");
        ("cores", J.Int cores);
        ("repetitions", J.Int repetitions);
        ("statistic", J.String "median");
        ("jobs_levels", J.List (List.map (fun j -> J.Int j) jobs_levels));
        ("workloads", J.List (List.map (fun (_, _, j) -> j) rows));
        ( "total",
          J.Assoc
            [ ("wall_s_jobs1", J.Float total1);
              ("wall_s_jobs4", J.Float total4);
              ("speedup_at_4", J.Float (total1 /. total4)) ] );
        ("scale", J.List scale);
        ("warm_cache", warm);
        ("incremental", J.List incremental) ]
  in
  Telemetry.Export.write_file ~path:out (J.to_string doc);
  Fmt.pr "total: jobs1=%.3fs jobs4=%.3fs speedup@4=%.2fx@." total1 total4
    (total1 /. total4);
  Fmt.pr "wrote %s@." out
