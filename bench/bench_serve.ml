(* Load generator for the hlod compile daemon: concurrent client
   connections over a real Unix-domain socket against an in-process
   server, measuring end-to-end request latency percentiles,
   throughput, cache behaviour and admission verdicts, written to
   BENCH_pr7.json.

     dune exec bench/bench_serve.exe                 # full run, ./BENCH_pr7.json
     dune exec bench/bench_serve.exe -- --smoke      # quick CI variant
     dune exec bench/bench_serve.exe -- out.json

   Scenarios sweep connection counts (1 → 1000 concurrent clients, up
   to 10k total requests) over a pool of distinct modules, so the mix
   of artifact-store misses, hits and in-flight coalescing is
   realistic.  A separate *saturation* scenario shrinks the server
   budget and queue until admission control must reject — rejections
   belong there and nowhere else.

   Wall-clock numbers depend on the machine (the core count is
   recorded); on a single core the win measured here is serving
   (caching + coalescing + admission), not parallel compilation. *)

module J = Telemetry.Json
module P = Serve.Protocol
module S = Serve.Service
module Server = Serve.Server
module Client = Serve.Client

let cores = Domain.recommended_domain_count ()

let unique_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlod-bench-%d-%d.sock" (Unix.getpid ()) !n)

(* The i-th distinct workload: same shape, different constants, so
   every variant compiles and optimizes but hashes differently. *)
let module_src i =
  Printf.sprintf
    "func main() {\n\
    \  var s = %d;\n\
    \  for (var i = 0; i < 40; i = i + 1) { s = s + work(i) + gate(0, i); }\n\
    \  print_int(s);\n\
    \  return 0;\n\
     }\n\
     func work(x) { return x * x + %d; }\n\
     func gate(mode, x) {\n\
    \  if (mode == 0) { return x + %d; }\n\
    \  return x * 2;\n\
     }\n"
    i i (i + 1)

let options = { P.default_options with P.co_stats = true }

let request_for i distinct =
  let m = i mod distinct in
  P.Compile
    { modules = [ (Printf.sprintf "m%03d" m, module_src m) ]; options }

type scenario = {
  sc_name : string;
  sc_conns : int;
  sc_requests : int;
  sc_distinct : int;
  sc_config : S.config;
}

let default_config =
  { S.default_config with S.jobs = 1 }

(* Σ size² estimate of one generated module, so the saturation
   scenario can set a budget that admits exactly one at a time. *)
let one_request_cost =
  Serve.Admission.cost_of_modules [ ("m000", module_src 0) ]

let saturation_config =
  { default_config with
    S.server_budget = one_request_cost *. 1.5;
    request_budget = one_request_cost *. 1.5;
    queue_limit = 4 }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

type tally = {
  mutable compiled : int;
  mutable cache_hits : int;  (** memory, disk or coalesced *)
  mutable rejected : int;
  mutable failed : int;
}

let run_scenario sc =
  let socket = unique_socket () in
  let server = Server.start ~socket sc.sc_config in
  let next = Atomic.make 0 in
  let latencies = Array.make sc.sc_requests nan in
  let tally = { compiled = 0; cache_hits = 0; rejected = 0; failed = 0 } in
  let tally_lock = Mutex.create () in
  let record f =
    Mutex.lock tally_lock;
    f tally;
    Mutex.unlock tally_lock
  in
  let worker () =
    match Client.connect socket with
    | Error _ ->
      (* Count every request this connection would have served. *)
      let rec burn () =
        let i = Atomic.fetch_and_add next 1 in
        if i < sc.sc_requests then begin
          record (fun t -> t.failed <- t.failed + 1);
          burn ()
        end
      in
      burn ()
    | Ok client ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < sc.sc_requests then begin
          let t0 = Unix.gettimeofday () in
          (match Client.roundtrip client (request_for i sc.sc_distinct) with
          | Ok (P.Compiled { cache; _ }) ->
            latencies.(i) <- Unix.gettimeofday () -. t0;
            record (fun t ->
                t.compiled <- t.compiled + 1;
                if cache <> "miss" then t.cache_hits <- t.cache_hits + 1)
          | Ok (P.Rejected _) ->
            latencies.(i) <- Unix.gettimeofday () -. t0;
            record (fun t -> t.rejected <- t.rejected + 1)
          | Ok _ | Error _ -> record (fun t -> t.failed <- t.failed + 1));
          loop ()
        end
      in
      loop ();
      Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init sc.sc_conns (fun _ -> Thread.create worker ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let stats = S.stats_json (Server.service server) in
  Server.stop server;
  let answered = Array.of_list
      (List.filter (fun l -> not (Float.is_nan l))
         (Array.to_list latencies))
  in
  Array.sort compare answered;
  let ms l = l *. 1e3 in
  let p50 = ms (percentile answered 0.50) in
  let p90 = ms (percentile answered 0.90) in
  let p99 = ms (percentile answered 0.99) in
  let throughput = float_of_int sc.sc_requests /. wall in
  let served = tally.compiled + tally.rejected in
  let hit_rate =
    if tally.compiled = 0 then 0.0
    else float_of_int tally.cache_hits /. float_of_int tally.compiled
  in
  let admission_int field =
    match Option.bind (J.member "admission" stats) (J.member field) with
    | Some (J.Int n) -> n
    | _ -> 0
  in
  Fmt.pr
    "%-12s conns=%-4d requests=%-5d distinct=%-3d wall=%.2fs \
     thr=%.0f req/s p50=%.2fms p90=%.2fms p99=%.2fms hit=%.0f%% \
     rejected=%d failed=%d@."
    sc.sc_name sc.sc_conns sc.sc_requests sc.sc_distinct wall throughput p50
    p90 p99 (hit_rate *. 100.0) tally.rejected tally.failed;
  J.Assoc
    [ ("name", J.String sc.sc_name); ("conns", J.Int sc.sc_conns);
      ("requests", J.Int sc.sc_requests);
      ("distinct_modules", J.Int sc.sc_distinct);
      ("wall_s", J.Float wall);
      ("throughput_rps", J.Float throughput);
      ("latency_ms_p50", J.Float p50); ("latency_ms_p90", J.Float p90);
      ("latency_ms_p99", J.Float p99);
      ("compiled", J.Int tally.compiled);
      ("cache_hits", J.Int tally.cache_hits);
      ("cache_hit_rate", J.Float hit_rate);
      ("rejected", J.Int tally.rejected);
      ("failed", J.Int tally.failed);
      ("answered", J.Int served);
      ("server_admitted", J.Int (admission_int "admitted"));
      ("server_queued", J.Int (admission_int "queued"));
      ("server_rejected_queue_full",
       J.Int (admission_int "rejected_queue_full"));
      ("server_rejected_over_budget",
       J.Int (admission_int "rejected_over_budget"));
      ("server_peak_waiting", J.Int (admission_int "peak_waiting")) ]

let scenarios ~smoke =
  if smoke then
    [ { sc_name = "baseline-1"; sc_conns = 1; sc_requests = 100;
        sc_distinct = 1; sc_config = default_config };
      { sc_name = "c8"; sc_conns = 8; sc_requests = 200; sc_distinct = 8;
        sc_config = default_config };
      { sc_name = "c32"; sc_conns = 32; sc_requests = 400; sc_distinct = 8;
        sc_config = default_config };
      { sc_name = "saturation"; sc_conns = 16; sc_requests = 64;
        sc_distinct = 64; sc_config = saturation_config } ]
  else
    [ { sc_name = "baseline-1"; sc_conns = 1; sc_requests = 500;
        sc_distinct = 1; sc_config = default_config };
      { sc_name = "c8"; sc_conns = 8; sc_requests = 1000; sc_distinct = 16;
        sc_config = default_config };
      { sc_name = "c64"; sc_conns = 64; sc_requests = 2000; sc_distinct = 16;
        sc_config = default_config };
      { sc_name = "c256"; sc_conns = 256; sc_requests = 4000;
        sc_distinct = 64; sc_config = default_config };
      { sc_name = "c1000-10k"; sc_conns = 1000; sc_requests = 10000;
        sc_distinct = 64; sc_config = default_config };
      { sc_name = "saturation"; sc_conns = 32; sc_requests = 128;
        sc_distinct = 128; sc_config = saturation_config } ]

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out =
    match
      List.filter
        (fun a -> a <> "--smoke" && not (String.length a = 0))
        (List.tl (Array.to_list Sys.argv))
    with
    | [ path ] -> path
    | _ -> "BENCH_pr7.json"
  in
  Fmt.pr "bench-serve: %s mode, %d core%s@."
    (if smoke then "smoke" else "full")
    cores
    (if cores = 1 then "" else "s");
  let rows = List.map run_scenario (scenarios ~smoke) in
  let doc =
    J.Assoc
      [ ("bench", J.String "pr7-serve-load");
        ("mode", J.String (if smoke then "smoke" else "full"));
        ("cores", J.Int cores);
        ("one_request_cost", J.Float one_request_cost);
        ("scenarios", J.List rows) ]
  in
  Out_channel.with_open_bin out (fun oc ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Fmt.pr "wrote %s@." out;
  (* The acceptance gates: every non-saturation scenario answered every
     request (zero failures, zero rejections); the saturation scenario
     is the only place admission control fires. *)
  List.iter2
    (fun sc row ->
      let geti field =
        match J.member field row with Some (J.Int n) -> n | _ -> -1
      in
      if geti "failed" <> 0 then (
        Fmt.epr "bench-serve: %s had failed requests@." sc.sc_name;
        exit 1);
      if sc.sc_name <> "saturation" && geti "rejected" <> 0 then (
        Fmt.epr "bench-serve: unexpected rejections in %s@." sc.sc_name;
        exit 1))
    (scenarios ~smoke) rows
