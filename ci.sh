#!/usr/bin/env bash
# Local CI: everything the tree must pass before a merge.
#
#   ./ci.sh            (or: make ci)
#
# Steps: type-check, full build, test suite, then a telemetry smoke
# run of the hloc driver on the example modules — asserting that a
# Chrome trace is actually emitted and the summary prints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest (HLO_JOBS=1) =="
HLO_JOBS=1 dune runtest

# Same suite again with a 4-domain pool.  Every test executable and
# every CLI golden rule picks the degree up from the environment, so a
# scheduling-dependent divergence shows up as an ordinary test failure
# or a golden-output diff.
echo "== dune runtest (HLO_JOBS=4) =="
HLO_JOBS=4 dune runtest --force

echo "== parallel determinism smoke (hloc --jobs) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for j in 1 4; do
  dune exec bin/hloc.exe -- \
    examples/telemetry_util.mc examples/telemetry_main.mc \
    --dump-ir --stats --run interp > "$tmp/ir-jobs$j.txt" "--jobs=$j"
done
diff -u "$tmp/ir-jobs1.txt" "$tmp/ir-jobs4.txt"
echo "jobs 1 and jobs 4 outputs identical"

echo "== summary cache smoke (hloc --summary-cache) =="
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --summary-cache "$tmp/summaries.cache" > "$tmp/cold.txt"
test -s "$tmp/summaries.cache"
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --summary-cache "$tmp/summaries.cache" > "$tmp/warm.txt"
grep -q '\[cache\] loaded' "$tmp/warm.txt"
diff -u "$tmp/cold.txt" <(grep -v '^\[cache\]' "$tmp/warm.txt")
echo "warm-cache output identical to cold"

echo "== isom separate compilation smoke (hloc -c / --link) =="
# Whole-program reference, then per-module isoms, then a link of the
# isoms: IR, stats and run output must be byte-identical.
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --run interp > "$tmp/whole.txt"
dune exec bin/hloc.exe -- -c examples/telemetry_util.mc \
  -o "$tmp/telemetry_util.isom"
dune exec bin/hloc.exe -- -c examples/telemetry_main.mc \
  "$tmp/telemetry_util.isom" -o "$tmp/telemetry_main.isom"
dune exec bin/hloc.exe -- --link \
  "$tmp/telemetry_util.isom" "$tmp/telemetry_main.isom" \
  --dump-ir --stats --run interp > "$tmp/linked.txt"
diff -u "$tmp/whole.txt" "$tmp/linked.txt"
echo "separate compile + link identical to whole-program"

echo "== isom incremental smoke (hloc --incremental) =="
dune exec bin/hloc.exe -- --incremental \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --isom-dir "$tmp/isom" --dump-ir --stats --run interp > "$tmp/inc-cold.txt"
grep -q '\[isom\] reused=0 recompiled=2' "$tmp/inc-cold.txt"
dune exec bin/hloc.exe -- --incremental \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --isom-dir "$tmp/isom" --dump-ir --stats --run interp > "$tmp/inc-warm.txt"
grep -q '\[isom\] reused=2 recompiled=0' "$tmp/inc-warm.txt"
diff -u <(grep -v '^\[isom\]' "$tmp/inc-cold.txt") \
        <(grep -v '^\[isom\]' "$tmp/inc-warm.txt")
diff -u <(grep -v '^\[isom\]' "$tmp/inc-warm.txt") "$tmp/whole.txt"
echo "incremental warm rebuild reused everything, output identical"

echo "== corrupt isom smoke (graceful recompile) =="
truncate -s 40 "$tmp/isom/telemetry_main.isom"
dune exec bin/hloc.exe -- --incremental \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --isom-dir "$tmp/isom" --dump-ir --stats --run interp > "$tmp/inc-corrupt.txt"
grep -q '\[isom\] reused=1 recompiled=1' "$tmp/inc-corrupt.txt"
grep -q 'recompiled telemetry_main: unreadable' "$tmp/inc-corrupt.txt"
diff -u <(grep -v '^\[isom\]' "$tmp/inc-corrupt.txt") "$tmp/whole.txt"
echo "truncated isom recompiled transparently, output identical"

echo "== policy smoke (hloc --policy round trip, make tune-smoke) =="
# The dumped default policy fed back through --policy must change
# nothing; then the tiny fixed-seed tuner run (twice, bit-identical
# JSON) and a load of its winning policy into hloc.
dune exec bin/hloc.exe -- --dump-policy > "$tmp/default.policy"
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --run interp --policy "$tmp/default.policy" \
  > "$tmp/policy-run.txt"
diff -u "$tmp/whole.txt" "$tmp/policy-run.txt"
make tune-smoke
dune exec bin/hloc.exe -- \
  --policy _build/tune_policies/specint92.policy --dump-policy > /dev/null
echo "policy round trip identical; tuner deterministic"

echo "== inline mode smoke (hloc --inline-mode) =="
# Whole spelled explicitly must be byte-identical to the default; the
# three modes must agree on the program's run output even at a budget
# starved enough to force region/demand splitting.
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --run interp --inline-mode whole > "$tmp/mode-whole.txt"
diff -u "$tmp/whole.txt" "$tmp/mode-whole.txt"
for mode in whole region demand; do
  dune exec bin/hloc.exe -- \
    examples/telemetry_util.mc examples/telemetry_main.mc \
    --run interp --inline-mode "$mode" --budget 5 > "$tmp/mode-run-$mode.txt"
done
diff -u "$tmp/mode-run-whole.txt" "$tmp/mode-run-region.txt"
diff -u "$tmp/mode-run-whole.txt" "$tmp/mode-run-demand.txt"
echo "whole mode inert; all three modes agree on run output"

echo "== scale bench smoke (make bench-scale) =="
# One 1000-routine synthetic workload compiled at jobs 1 and jobs 4:
# IR, report and decision journal must be bit-identical, and on a
# machine with >= 4 cores jobs 4 must be at least as fast as jobs 1
# (on fewer cores the gate is skipped — oversubscription measures pool
# overhead, not speedup).
make bench-scale

echo "== differential fuzz smoke (hlo_fuzz, fixed seed) =="
# Corpus + random programs through the semantic oracle for ~30s.
# A nonzero exit means a real finding; the bucketed, reduced repros
# are left under _build/fuzz for inspection.
rm -rf _build/fuzz
dune exec bin/hlo_fuzz.exe -- --seed 1 --iters 400 --time-budget 30 \
  --out _build/fuzz

echo "== chaos validation (hlo_fuzz --chaos must catch each seeded bug) =="
# Arm each deliberate miscompilation in turn: the smoke budget must
# catch it (nonzero exit) and the reducer must shrink the repro.  The
# region-splitting bug only fires on the outline-then-inline path, so
# its campaign is pinned to region mode.
for bug in inline_swap_args inline_lost_retval clone_const_drift \
           prune_address_taken region_lost_cold_path; do
  extra=""
  [ "$bug" = region_lost_cold_path ] && extra="--inline-mode region"
  if dune exec bin/hlo_fuzz.exe -- --seed 1 --iters 120 --time-budget 60 \
       --chaos "$bug" $extra --out "$tmp/chaos-$bug" \
       > "$tmp/chaos-$bug.log" 2>&1; then
    echo "chaos bug $bug was NOT caught"
    cat "$tmp/chaos-$bug.log"
    exit 1
  fi
  grep -q 'reduced to' "$tmp/chaos-$bug.log"
  ls "$tmp/chaos-$bug"/*/reduced/repro.mc > /dev/null
  echo "caught and reduced: $bug"
done

echo "== telemetry smoke run (hloc --trace) =="
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --trace "$tmp/trace.json" --trace-format chrome --telemetry-summary \
  --run interp > "$tmp/out.txt"
grep -q '"traceEvents"' "$tmp/trace.json"
grep -q 'telemetry summary' "$tmp/out.txt"
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --trace "$tmp/trace.jsonl" --trace-format jsonl --run none > /dev/null
grep -q '"type":"decision"' "$tmp/trace.jsonl"
echo "trace ok: $(wc -c < "$tmp/trace.json") bytes (chrome), $(wc -l < "$tmp/trace.jsonl") events (jsonl)"

echo "== daemon smoke (hlod / hlo_client / hloc --daemon) =="
# A fresh daemon serves the same compile twice: the first request is a
# miss, the second an artifact-store hit that never reaches admission,
# both byte-identical to in-process hloc.  Then hloc itself routes via
# --daemon require, and a graceful shutdown drains and removes the
# socket.  The daemon section runs the built binaries directly: a
# backgrounded `dune exec` would keep the build lock alive in the
# daemon and deadlock every later dune invocation.
dune build bin/hloc.exe bin/hlod.exe bin/hlo_client.exe
hloc=_build/default/bin/hloc.exe
hlod=_build/default/bin/hlod.exe
hlo_client=_build/default/bin/hlo_client.exe
sock="$tmp/hlod.sock"
"$hloc" examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --dump-journal --run interp > "$tmp/serve-ref.txt"
"$hlod" --socket "$sock" --artifact-dir "$tmp/artifacts" \
  --verbose 2> "$tmp/hlod.log" &
hlod_pid=$!
for _ in $(seq 1 100); do
  if "$hlo_client" ping --socket "$sock" > /dev/null 2>&1; then break; fi
  sleep 0.1
done
"$hlo_client" compile \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --dump-journal --run interp --verbose \
  --socket "$sock" > "$tmp/serve-1.txt" 2> "$tmp/serve-1.err"
grep -q 'cache=miss' "$tmp/serve-1.err"
"$hlo_client" compile \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --dump-journal --run interp --verbose \
  --socket "$sock" > "$tmp/serve-2.txt" 2> "$tmp/serve-2.err"
grep -q 'cache=hit' "$tmp/serve-2.err"
diff -u "$tmp/serve-ref.txt" "$tmp/serve-1.txt"
diff -u "$tmp/serve-ref.txt" "$tmp/serve-2.txt"
"$hlo_client" stats --socket "$sock" > "$tmp/serve-stats.json"
grep -q '"insertions":1' "$tmp/serve-stats.json"   # compiled exactly once
grep -q '"memory_hits":1' "$tmp/serve-stats.json"
"$hloc" examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --dump-journal --run interp \
  --daemon require --daemon-socket "$sock" > "$tmp/serve-hloc.txt"
diff -u "$tmp/serve-ref.txt" "$tmp/serve-hloc.txt"
"$hlo_client" shutdown --socket "$sock"
wait "$hlod_pid"
grep -q 'shut down' "$tmp/hlod.log"
test ! -e "$sock"
echo "daemon served twice (one compile), output identical, clean shutdown"

echo "== serve load smoke (make bench-serve, --smoke) =="
# Concurrent clients over a real socket; the binary exits nonzero if
# any non-saturation scenario failed or rejected a request.
dune exec bench/bench_serve.exe -- --smoke "$tmp/bench_serve.json"
grep -q '"pr7-serve-load"' "$tmp/bench_serve.json"

echo "CI OK"
