#!/usr/bin/env bash
# Local CI: everything the tree must pass before a merge.
#
#   ./ci.sh            (or: make ci)
#
# Steps: type-check, full build, test suite, then a telemetry smoke
# run of the hloc driver on the example modules — asserting that a
# Chrome trace is actually emitted and the summary prints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest (HLO_JOBS=1) =="
HLO_JOBS=1 dune runtest

# Same suite again with a 4-domain pool.  Every test executable and
# every CLI golden rule picks the degree up from the environment, so a
# scheduling-dependent divergence shows up as an ordinary test failure
# or a golden-output diff.
echo "== dune runtest (HLO_JOBS=4) =="
HLO_JOBS=4 dune runtest --force

echo "== parallel determinism smoke (hloc --jobs) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for j in 1 4; do
  dune exec bin/hloc.exe -- \
    examples/telemetry_util.mc examples/telemetry_main.mc \
    --dump-ir --stats --run interp > "$tmp/ir-jobs$j.txt" "--jobs=$j"
done
diff -u "$tmp/ir-jobs1.txt" "$tmp/ir-jobs4.txt"
echo "jobs 1 and jobs 4 outputs identical"

echo "== summary cache smoke (hloc --summary-cache) =="
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --summary-cache "$tmp/summaries.cache" > "$tmp/cold.txt"
test -s "$tmp/summaries.cache"
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --dump-ir --stats --summary-cache "$tmp/summaries.cache" > "$tmp/warm.txt"
grep -q '\[cache\] loaded' "$tmp/warm.txt"
diff -u "$tmp/cold.txt" <(grep -v '^\[cache\]' "$tmp/warm.txt")
echo "warm-cache output identical to cold"

echo "== telemetry smoke run (hloc --trace) =="
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --trace "$tmp/trace.json" --trace-format chrome --telemetry-summary \
  --run interp > "$tmp/out.txt"
grep -q '"traceEvents"' "$tmp/trace.json"
grep -q 'telemetry summary' "$tmp/out.txt"
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --trace "$tmp/trace.jsonl" --trace-format jsonl --run none > /dev/null
grep -q '"type":"decision"' "$tmp/trace.jsonl"
echo "trace ok: $(wc -c < "$tmp/trace.json") bytes (chrome), $(wc -l < "$tmp/trace.jsonl") events (jsonl)"

echo "CI OK"
