#!/usr/bin/env bash
# Local CI: everything the tree must pass before a merge.
#
#   ./ci.sh            (or: make ci)
#
# Steps: type-check, full build, test suite, then a telemetry smoke
# run of the hloc driver on the example modules — asserting that a
# Chrome trace is actually emitted and the summary prints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== telemetry smoke run (hloc --trace) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --trace "$tmp/trace.json" --trace-format chrome --telemetry-summary \
  --run interp > "$tmp/out.txt"
grep -q '"traceEvents"' "$tmp/trace.json"
grep -q 'telemetry summary' "$tmp/out.txt"
dune exec bin/hloc.exe -- \
  examples/telemetry_util.mc examples/telemetry_main.mc \
  --trace "$tmp/trace.jsonl" --trace-format jsonl --run none > /dev/null
grep -q '"type":"decision"' "$tmp/trace.jsonl"
echo "trace ok: $(wc -c < "$tmp/trace.json") bytes (chrome), $(wc -l < "$tmp/trace.jsonl") events (jsonl)"

echo "CI OK"
