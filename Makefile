.PHONY: all build check test bench ci clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

ci:
	./ci.sh

clean:
	dune clean
