.PHONY: all build check test bench bench-json ci clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable workload x jobs x wall-time matrix + incremental
# isom build timings (BENCH_pr4.json).
bench-json:
	dune exec bench/bench_json.exe

ci:
	./ci.sh

clean:
	dune clean
