.PHONY: all build check test bench bench-json fuzz-smoke ci clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable workload x jobs x wall-time matrix + incremental
# isom build timings (BENCH_pr4.json).
bench-json:
	dune exec bench/bench_json.exe

# Fixed-seed differential fuzz: corpus + random programs through the
# semantic oracle for ~30s.  Nonzero exit on any mismatch or crash;
# repros (bucketed, reduced) land under _build/fuzz/.
fuzz-smoke:
	dune exec bin/hlo_fuzz.exe -- --seed 1 --iters 400 --time-budget 30 \
	  --out _build/fuzz

ci:
	./ci.sh

clean:
	dune clean
