.PHONY: all build check test bench bench-json bench-scale bench-serve fuzz-smoke ci clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable workload x jobs x wall-time matrix + scale-sized
# synthetic programs + incremental isom build timings (BENCH_pr6.json).
bench-json:
	dune exec bench/bench_json.exe

# Scale smoke gate: one 1000-routine synthetic program at jobs 1 vs 4;
# asserts bit-identical IR/report/journal, and speedup_at_4 >= 1.0 when
# the machine has at least 4 cores.
bench-scale:
	dune exec bench/bench_scale.exe -- --smoke

# Daemon load generator: concurrent clients over a Unix socket against
# an in-process hlod, latency percentiles + throughput + cache/admission
# behaviour (BENCH_pr7.json).  Exits nonzero on any failed request or
# on rejections outside the saturation scenario.
bench-serve:
	dune exec bench/bench_serve.exe

# Fixed-seed differential fuzz: corpus + random programs through the
# semantic oracle for ~30s.  Nonzero exit on any mismatch or crash;
# repros (bucketed, reduced) land under _build/fuzz/.
fuzz-smoke:
	dune exec bin/hlo_fuzz.exe -- --seed 1 --iters 400 --time-budget 30 \
	  --out _build/fuzz

ci:
	./ci.sh

clean:
	dune clean
