.PHONY: all build check test bench bench-json bench-scale bench-serve fuzz-smoke tune-smoke ci clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable workload x jobs x wall-time matrix + scale-sized
# synthetic programs + incremental isom build timings (BENCH_pr6.json).
bench-json:
	dune exec bench/bench_json.exe

# Scale smoke gate: one 1000-routine synthetic program at jobs 1 vs 4;
# asserts bit-identical IR/report/journal, and speedup_at_4 >= 1.0 when
# the machine has at least 4 cores.
bench-scale:
	dune exec bench/bench_scale.exe -- --smoke

# Daemon load generator: concurrent clients over a Unix socket against
# an in-process hlod, latency percentiles + throughput + cache/admission
# behaviour (BENCH_pr7.json).  Exits nonzero on any failed request or
# on rejections outside the saturation scenario.
bench-serve:
	dune exec bench/bench_serve.exe

# Fixed-seed differential fuzz: corpus + random programs through the
# semantic oracle for ~30s, then a second campaign pinned to region
# mode (every case exercises the outline-then-inline path).  Nonzero
# exit on any mismatch or crash; repros (bucketed, reduced) land under
# _build/fuzz/.
fuzz-smoke:
	dune exec bin/hlo_fuzz.exe -- --seed 1 --iters 400 --time-budget 30 \
	  --out _build/fuzz
	dune exec bin/hlo_fuzz.exe -- --seed 2 --iters 200 --time-budget 30 \
	  --inline-mode region --out _build/fuzz-region

# Policy tuner smoke gate: tiny fixed-seed search on two benchmarks
# (train input), run twice; the JSON results must be bit-identical
# (the tuner's determinism contract), and every scored candidate is
# oracle-gated by construction.  Winning policies land under
# _build/tune_policies/ for hloc --policy.
tune-smoke:
	dune build bin/hlo_tune.exe
	_build/default/bin/hlo_tune.exe --bench 026.compress --bench 099.go \
	  --samples 4 --rounds 1 --mutations 2 --stale-rounds 1 --input train \
	  --json _build/tune_smoke_a.json --policies _build/tune_policies
	_build/default/bin/hlo_tune.exe --bench 026.compress --bench 099.go \
	  --samples 4 --rounds 1 --mutations 2 --stale-rounds 1 --input train \
	  --json _build/tune_smoke_b.json > /dev/null
	cmp _build/tune_smoke_a.json _build/tune_smoke_b.json

ci:
	./ci.sh

clean:
	dune clean
