(* Tests for the intraprocedural optimizer: each pass on targeted IR
   shapes, plus the IPA purity analysis.  Semantic preservation over
   random programs is covered separately in test_properties. *)

module U = Ucode.Types
module B = Ucode.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let compile src = Minic.Compile.compile_string src

let routine_named p name = U.find_routine_exn p name

(* All instructions of a routine, flattened. *)
let instrs_of (r : U.routine) =
  List.concat_map (fun (b : U.block) -> b.U.b_instrs) r.U.r_blocks

let count_instrs pred r = List.length (List.filter pred (instrs_of r))

let is_load = function U.Load _ -> true | _ -> false

(* Optimize one routine out of a compiled program. *)
let optimize_main src =
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  (p, p', routine_named p' "main")

let run_program p = (Interp.run p).Interp.output

(* ------------------------------------------------------------------ *)
(* Constant propagation.                                               *)

let test_constprop_folds () =
  let _, p', main =
    optimize_main
      "func main() { var a = 6; var b = 7; print_int(a * b); return 0; }"
  in
  (* After constprop + friends, no arithmetic survives: the argument of
     print_int is a constant. *)
  check_int "no binops left" 0
    (count_instrs (function U.Binop _ -> true | _ -> false) main);
  check_string "semantics" "42\n" (run_program p')

let test_constprop_folds_branch () =
  let _, p', main =
    optimize_main
      {| func main() {
           if (2 > 1) { print_int(1); } else { print_int(2); }
           return 0;
         } |}
  in
  check_int "single block remains" 1 (List.length main.U.r_blocks);
  check_string "kept the right arm" "1\n" (run_program p')

let test_constprop_devirtualizes () =
  let src = {|
    func target(x) { return x + 1; }
    func main() {
      var f = &target;
      print_int(f(41));
      return 0;
    }
  |} in
  let _, p', main = optimize_main src in
  let direct =
    count_instrs
      (function U.Call { c_callee = U.Direct "target"; _ } -> true | _ -> false)
      main
  in
  let indirect =
    count_instrs
      (function U.Call { c_callee = U.Indirect _; _ } -> true | _ -> false)
      main
  in
  check_int "devirtualized" 1 direct;
  check_int "no indirect left" 0 indirect;
  check_string "semantics" "42\n" (run_program p')

let test_constprop_keeps_div_by_zero () =
  (* 1/0 must still trap after optimization. *)
  let p = compile "func main() { var z = 0; return 1 / z; }" in
  let p' = Opt.Pipeline.optimize_program p in
  (match Interp.run p' with
  | exception Interp.Trap (Interp.Division_by_zero, _) -> ()
  | _ -> Alcotest.fail "optimizer erased a division trap")

let test_constprop_join_is_sound () =
  (* x is 1 or 2 depending on input-ish control flow: must NOT fold. *)
  let src = {|
    global g = 1;
    func main() {
      var x = 0;
      if (g) { x = 1; } else { x = 2; }
      print_int(x);
      return 0;
    }
  |} in
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  check_string "joined value not folded wrong" "1\n" (run_program p')

let test_algebraic_identities () =
  let src = {|
    func main() {
      var x = alloc(1);
      x[0] = 21;
      var v = x[0];
      print_int(v * 1 + 0 - 0 + v * 1);
      return 0;
    }
  |} in
  let _, p', main = optimize_main src in
  (* v*1 and +0/-0 disappear; only the final add of v+v remains. *)
  check_bool "simplified" true
    (count_instrs (function U.Binop (_, U.Mul, _, _) -> true | _ -> false) main
     = 0);
  check_string "semantics" "42\n" (run_program p')

(* ------------------------------------------------------------------ *)
(* CSE.                                                                *)

let test_cse_dedups () =
  (* Same global loaded twice with no intervening store: one load. *)
  let src = {|
    global g = 21;
    func main() { print_int(g + g); return 0; }
  |} in
  let _, p', main = optimize_main src in
  check_int "one load" 1 (count_instrs is_load main);
  check_string "semantics" "42\n" (run_program p')

let test_cse_store_invalidates () =
  let src = {|
    global g = 1;
    func main() {
      var a = g;
      g = a + 1;
      var b = g;
      print_int(a * 10 + b);
      return 0;
    }
  |} in
  let _, p', main = optimize_main src in
  (* The second read of g must survive the store. *)
  check_int "two loads" 2 (count_instrs is_load main);
  check_string "semantics" "12\n" (run_program p')

let test_cse_call_invalidates () =
  let src = {|
    global g = 1;
    noinline func bump() { g = g + 1; return 0; }
    func main() {
      var a = g;
      bump();
      var b = g;
      print_int(a * 10 + b);
      return 0;
    }
  |} in
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  check_string "call clobbers memory" "12\n" (run_program p')

(* ------------------------------------------------------------------ *)
(* DCE and IPA.                                                        *)

let test_dce_removes_dead_code () =
  let src = {|
    func main() {
      var dead = 1 + 2 + 3;
      var dead2 = dead * 5;
      print_int(7);
      return 0;
    }
  |} in
  let _, _, main = optimize_main src in
  (* Everything except the const 7, the call and the return const. *)
  check_bool "shrunk" true (Ucode.Size.routine_size main <= 4)

let test_dce_keeps_impure_calls () =
  let src = {|
    global g;
    noinline func effect() { g = g + 1; return g; }
    func main() {
      var unused = effect();
      print_int(g);
      return 0;
    }
  |} in
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  check_string "side effect kept" "1\n" (run_program p')

let test_ipa_deletable () =
  (* Stubbed curses-style routines: pure, loop-free, call-free. *)
  let src = {|
    func stub1(x) { return x * 2; }
    func stub2(x) { return stub1(x) + 1; }
    func looper(x) { var s = 0; while (x > 0) { s = s + x; x = x - 1; } return s; }
    func storer(x) { g = x; return x; }
    global g;
    func recur(x) { if (x == 0) { return 0; } return recur(x - 1); }
    func main() { return 0; }
  |} in
  let p = compile src in
  let deletable = Opt.Ipa.deletable_routines p in
  let has n = U.String_set.mem n deletable in
  check_bool "stub1 deletable" true (has "stub1");
  check_bool "stub2 deletable (transitively)" true (has "stub2");
  check_bool "looper not (loop)" false (has "looper");
  check_bool "storer not (store)" false (has "storer");
  check_bool "recur not (recursion)" false (has "recur")

let test_ipa_deletes_stub_calls () =
  (* The 072.sc scenario: calls to do-nothing display routines in the
     hot loop disappear entirely. *)
  let curses = "func move_to(r, c) { return r * 80 + c; }" in
  let app = {|
    func main() {
      var s = 0;
      for (var i = 0; i < 5; i = i + 1) {
        move_to(i, i);
        s = s + i;
      }
      print_int(s);
      return 0;
    }
  |} in
  let p, _ =
    Minic.Compile.compile_program
      [ Minic.Compile.source ~module_name:"curses" curses;
        Minic.Compile.source ~module_name:"app" app ]
  in
  let p' = Opt.Pipeline.optimize_program p in
  let main = routine_named p' "main" in
  let calls_to_move =
    count_instrs
      (function
        | U.Call { c_callee = U.Direct "move_to"; _ } -> true | _ -> false)
      main
  in
  check_int "stub call deleted" 0 calls_to_move;
  check_string "semantics" "10\n" (run_program p')

(* ------------------------------------------------------------------ *)
(* Simplify.                                                           *)

let test_simplify_unreachable () =
  let src = {|
    func main() {
      return 1;
      print_int(99);
    }
  |} in
  let _, _, main = optimize_main src in
  check_int "dead tail removed" 1 (List.length main.U.r_blocks)

let test_simplify_merges_chains () =
  (* Lowering produces jump chains around ifs; after simplification of
     a straight-line body only one block should remain. *)
  let src = {|
    func main() {
      var a = 1;
      var b = a + 1;
      var c = b + 1;
      print_int(c);
      return 0;
    }
  |} in
  let _, _, main = optimize_main src in
  check_int "one block" 1 (List.length main.U.r_blocks)

let test_simplify_branch_same_target () =
  let fresh_site, _ = B.site_counter () in
  let b, _ = B.create ~name:"f" ~module_name:"m" ~nparams:0 ~fresh_site () in
  let l0 = B.fresh_label b in
  let l1 = B.fresh_label b in
  B.start_block b l0;
  let c = B.const b 1L in
  B.seal b (U.Branch (c, l1, l1));
  B.start_block b l1;
  B.seal b (U.Return None);
  let r = B.finish b in
  let r', changed = Opt.Simplify.run r in
  check_bool "changed" true changed;
  check_int "merged" 1 (List.length r'.U.r_blocks)

let test_simplify_idempotent_on_workload () =
  let p = Workloads.Suite.compile (Workloads.Suite.find "022.li")
      ~input:Workloads.Suite.Train in
  List.iter
    (fun r ->
      let r1, _ = Opt.Simplify.run r in
      let r2, changed = Opt.Simplify.run r1 in
      check_bool "idempotent" false changed;
      check_bool "stable" true (r1 = r2))
    p.U.p_routines

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion.                                         *)

let test_licm_hoists_global_address () =
  let src = {|
    global table[64];
    global bias = 5;
    func main() {
      var s = 0;
      for (var i = 0; i < 50; i = i + 1) {
        s = s + table[i & 63] + bias;
      }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  check_string "semantics" (run_program p) (run_program p');
  (* The address computations left inside any loop should be gone:
     count Gaddr instructions in loop blocks of main. *)
  let main = routine_named p' "main" in
  let loops = Opt.Licm.natural_loops main in
  let in_any_loop lbl =
    List.exists (fun (l : Opt.Licm.loop) -> U.Int_set.mem lbl l.body) loops
  in
  let gaddr_in_loops =
    List.fold_left
      (fun acc (b : U.block) ->
        if in_any_loop b.U.b_id then
          acc
          + List.length
              (List.filter (function U.Gaddr _ -> true | _ -> false) b.U.b_instrs)
        else acc)
      0 main.U.r_blocks
  in
  check_int "no gaddr left in loops" 0 gaddr_in_loops;
  (* And it pays in executed instructions. *)
  let before = (Interp.run p).Interp.steps in
  let after = (Interp.run p').Interp.steps in
  check_bool "fewer steps" true (after < before)

let test_licm_keeps_trapping_ops () =
  (* A division that would trap must not be hoisted above the guard:
     this loop never executes, so the program must not trap. *)
  let src = {|
    global zero = 0;
    func main() {
      var s = 0;
      var n = 0;
      for (var i = 0; i < n; i = i + 1) {
        s = s + 7 / zero;
      }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  check_string "no trap introduced" "0\n" (run_program p')

let test_licm_respects_redefinition () =
  (* x is redefined in the loop; x+1 is not invariant and must keep its
     per-iteration value. *)
  let src = {|
    global g = 3;
    func main() {
      var x = g;
      var s = 0;
      for (var i = 0; i < 5; i = i + 1) {
        s = s + x * 2;
        x = x + 1;
      }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let p' = Opt.Pipeline.optimize_program p in
  (* 3+4+5+6+7 = 25, doubled = 50 *)
  check_string "loop-varying value intact" "50\n" (run_program p')

let test_licm_dominators () =
  let src = {|
    func main() {
      var s = 0;
      for (var i = 0; i < 3; i = i + 1) { s = s + i; }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let main = routine_named p "main" in
  let dom = Opt.Licm.dominators main in
  let entry = (U.entry_block main).U.b_id in
  (* The entry dominates every block. *)
  U.Int_map.iter
    (fun _ ds -> check_bool "entry dominates all" true (U.Int_set.mem entry ds))
    dom;
  (* Exactly one natural loop here. *)
  check_int "one loop" 1 (List.length (Opt.Licm.natural_loops main))

(* ------------------------------------------------------------------ *)
(* Strength reduction.                                                 *)

let test_strength_mul_to_shift () =
  let src = {|
    global g = 5;
    func main() {
      var x = g;
      print_int(x * 8);
      print_int(16 * x);
      print_int(x * 7);
      print_int(x * 1);
      print_int(x * (0 - 8));
      return 0;
    }
  |} in
  let _, p', main = optimize_main src in
  (* x*8 and 16*x become shifts; x*7 and x*(-8) keep multiplies
     (x*1 folds away entirely). *)
  check_int "two multiplies remain" 2
    (count_instrs (function U.Binop (_, U.Mul, _, _) -> true | _ -> false) main);
  check_bool "shifts appeared" true
    (count_instrs (function U.Binop (_, U.Shl, _, _) -> true | _ -> false) main
     >= 2);
  check_string "semantics" "40
80
35
5
-40
" (run_program p')

let test_strength_exact_on_negatives () =
  let src = {|
    func main() {
      var x = 0 - 9223372036854775807 - 1;  // min_int
      print_int(x * 4);
      var y = 0 - 3;
      print_int(y * 16);
      return 0;
    }
  |} in
  let p = compile src in
  let before = run_program p in
  let p' = Opt.Pipeline.optimize_program p in
  check_string "wraparound identical" before (run_program p')

let test_strength_pays_off_in_cycles () =
  (* The machine charges multiplier latency; a mul-by-8 loop must be
     faster after the rewrite. *)
  let src = {|
    global sink;
    func main() {
      var s = 1;
      for (var i = 1; i < 2000; i = i + 1) { s = (s + i) * 8; sink = s; }
      print_int(s & 1048575);
      return 0;
    }
  |} in
  let p = compile src in
  let raw = Machine.Sim.run_program p in
  let p' = Opt.Pipeline.optimize_program p in
  let opt = Machine.Sim.run_program p' in
  check_string "same output" raw.Machine.Sim.output opt.Machine.Sim.output;
  check_bool "cycles drop" true
    (opt.Machine.Sim.metrics.Machine.Metrics.cycles
    < raw.Machine.Sim.metrics.Machine.Metrics.cycles)

(* ------------------------------------------------------------------ *)
(* Liveness.                                                           *)

let test_liveness_simple () =
  let fresh_site, _ = B.site_counter () in
  let b, params = B.create ~name:"f" ~module_name:"m" ~nparams:1 ~fresh_site () in
  let p0 = List.hd params in
  let l0 = B.fresh_label b in
  B.start_block b l0;
  let k = B.const b 1L in
  let s = B.binop b U.Add p0 k in
  B.seal b (U.Return (Some s));
  let r = B.finish b in
  let live = Opt.Liveness.compute r in
  check_bool "param live in" true
    (U.Int_set.mem p0 (Opt.Liveness.live_in live 0));
  check_bool "temp not live in" false
    (U.Int_set.mem s (Opt.Liveness.live_in live 0))

let test_liveness_loop () =
  (* Value defined before a loop and used inside must be live around
     the back edge. *)
  let src = {|
    func main() {
      var total = 0;
      var step = 3;
      for (var i = 0; i < 4; i = i + 1) { total = total + step; }
      print_int(total);
      return 0;
    }
  |} in
  let p = compile src in
  let main = routine_named p "main" in
  let live = Opt.Liveness.compute main in
  (* Find the loop body block: it reads at least two registers that are
     live-in; sanity-check liveness is non-trivial there. *)
  let nonempty =
    List.exists
      (fun (b : U.block) ->
        U.Int_set.cardinal (Opt.Liveness.live_in live b.U.b_id) >= 2)
      main.U.r_blocks
  in
  check_bool "loop carries values" true nonempty

let test_live_across_calls () =
  let src = {|
    func g(x) { return x; }
    func main() {
      var keep = 5;
      var r = g(1);
      print_int(keep + r);
      return 0;
    }
  |} in
  let p = compile src in
  let main = routine_named p "main" in
  let across = Opt.Liveness.live_across_calls main in
  (* At the call to g, [keep]'s register is live across. *)
  let any_live =
    U.Int_map.exists (fun _ live -> not (U.Int_set.is_empty live)) across
  in
  check_bool "something lives across the call" true any_live

(* ------------------------------------------------------------------ *)
(* Pipeline-level sanity on all workloads.                             *)

let test_pipeline_preserves_workloads () =
  List.iter
    (fun b ->
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let before = (Interp.run p).Interp.output in
      let p' = Opt.Pipeline.optimize_program p in
      (match Ucode.Validate.check_program p' with
      | [] -> ()
      | errors -> Alcotest.fail (Ucode.Validate.errors_to_string errors));
      let after = (Interp.run p').Interp.output in
      check_string ("preserves " ^ b.Workloads.Suite.b_name) before after;
      check_bool "does not grow" true
        (Ucode.Size.program_size p' <= Ucode.Size.program_size p))
    Workloads.Suite.all

let () =
  Alcotest.run "opt"
    [ ( "constprop",
        [ Alcotest.test_case "folds" `Quick test_constprop_folds;
          Alcotest.test_case "folds branch" `Quick test_constprop_folds_branch;
          Alcotest.test_case "devirtualizes" `Quick test_constprop_devirtualizes;
          Alcotest.test_case "keeps div trap" `Quick
            test_constprop_keeps_div_by_zero;
          Alcotest.test_case "sound join" `Quick test_constprop_join_is_sound;
          Alcotest.test_case "identities" `Quick test_algebraic_identities ] );
      ( "cse",
        [ Alcotest.test_case "dedups loads" `Quick test_cse_dedups;
          Alcotest.test_case "store invalidates" `Quick test_cse_store_invalidates;
          Alcotest.test_case "call invalidates" `Quick test_cse_call_invalidates ] );
      ( "dce-ipa",
        [ Alcotest.test_case "removes dead" `Quick test_dce_removes_dead_code;
          Alcotest.test_case "keeps impure" `Quick test_dce_keeps_impure_calls;
          Alcotest.test_case "deletable set" `Quick test_ipa_deletable;
          Alcotest.test_case "deletes stub calls" `Quick test_ipa_deletes_stub_calls ] );
      ( "simplify",
        [ Alcotest.test_case "unreachable" `Quick test_simplify_unreachable;
          Alcotest.test_case "merges chains" `Quick test_simplify_merges_chains;
          Alcotest.test_case "trivial branch" `Quick
            test_simplify_branch_same_target;
          Alcotest.test_case "idempotent" `Quick
            test_simplify_idempotent_on_workload ] );
      ( "licm",
        [ Alcotest.test_case "hoists global address" `Quick
            test_licm_hoists_global_address;
          Alcotest.test_case "keeps trapping ops" `Quick
            test_licm_keeps_trapping_ops;
          Alcotest.test_case "respects redefinition" `Quick
            test_licm_respects_redefinition;
          Alcotest.test_case "dominators" `Quick test_licm_dominators ] );
      ( "strength",
        [ Alcotest.test_case "mul to shift" `Quick test_strength_mul_to_shift;
          Alcotest.test_case "exact on negatives" `Quick
            test_strength_exact_on_negatives;
          Alcotest.test_case "pays off" `Quick test_strength_pays_off_in_cycles ] );
      ( "liveness",
        [ Alcotest.test_case "simple" `Quick test_liveness_simple;
          Alcotest.test_case "loop" `Quick test_liveness_loop;
          Alcotest.test_case "across calls" `Quick test_live_across_calls ] );
      ( "pipeline",
        [ Alcotest.test_case "preserves workloads" `Slow
            test_pipeline_preserves_workloads ] ) ]
