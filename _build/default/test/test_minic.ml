(* Tests for the MiniC front end: lexer, parser, semantic analysis and
   the observable semantics of lowered programs (via the interpreter). *)

module T = Minic.Token
module Lexer = Minic.Lexer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tokens src =
  List.map (fun l -> l.Lexer.tok) (Lexer.tokenize ~file:"t.mc" src)

(* Compile one module and run it, returning the printed output. *)
let run_src ?(expect_trap = false) src =
  let p = Minic.Compile.compile_string src in
  (match Ucode.Validate.check_program p with
  | [] -> ()
  | errors -> Alcotest.fail (Ucode.Validate.errors_to_string errors));
  if expect_trap then
    match Interp.run p with
    | exception Interp.Trap _ -> "<trap>"
    | r -> Alcotest.fail ("expected a trap, got output: " ^ r.Interp.output)
  else (Interp.run p).Interp.output

(* Errors (not warnings) of a single module program. *)
let errors_of src =
  let u = Minic.Parser.parse ~module_name:"m" ~file:"m.mc" src in
  List.filter Minic.Diag.is_error (Minic.Sema.check u)

let warnings_of src =
  let u = Minic.Parser.parse ~module_name:"m" ~file:"m.mc" src in
  List.filter (fun d -> not (Minic.Diag.is_error d)) (Minic.Sema.check u)

(* ------------------------------------------------------------------ *)
(* Lexer.                                                              *)

let test_lexer_basics () =
  Alcotest.(check bool) "tokens" true
    (tokens "func f(x) { return x + 42; }"
    = [ T.KW_FUNC; T.IDENT "f"; T.LPAREN; T.IDENT "x"; T.RPAREN; T.LBRACE;
        T.KW_RETURN; T.IDENT "x"; T.PLUS; T.INT 42L; T.SEMI; T.RBRACE; T.EOF ])

let test_lexer_numbers () =
  (match tokens "0x10 007 9223372036854775807" with
  | [ T.INT 16L; T.INT 7L; T.INT max; T.EOF ] ->
    check_bool "max int64" true (Int64.equal max Int64.max_int)
  | _ -> Alcotest.fail "number lexing");
  match tokens "'a' '\\n' '\\0'" with
  | [ T.INT 97L; T.INT 10L; T.INT 0L; T.EOF ] -> ()
  | _ -> Alcotest.fail "char literals"

let test_lexer_comments () =
  check_bool "comments skipped" true
    (tokens "1 // line\n /* block \n multi */ 2" = [ T.INT 1L; T.INT 2L; T.EOF ])

let test_lexer_operators () =
  check_bool "two-char ops" true
    (tokens "<< >> <= >= == != && ||"
    = [ T.SHL; T.SHR; T.LE; T.GE; T.EQ; T.NE; T.AMPAMP; T.PIPEPIPE; T.EOF ])

let test_lexer_errors () =
  List.iter
    (fun src ->
      match tokens src with
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail ("lexer accepted: " ^ src))
    [ "@"; "/* unterminated"; "'x" ]

let test_lexer_positions () =
  match Lexer.tokenize ~file:"t.mc" "a\n  b" with
  | [ a; b; _eof ] ->
    check_int "a line" 1 a.Lexer.pos.Minic.Diag.line;
    check_int "b line" 2 b.Lexer.pos.Minic.Diag.line;
    check_int "b col" 3 b.Lexer.pos.Minic.Diag.col
  | _ -> Alcotest.fail "positions"

(* ------------------------------------------------------------------ *)
(* Parser.                                                             *)

let test_parser_precedence () =
  (* 1 + 2 * 3 == 7 must parse as (1 + (2*3)) == 7 -> prints 1 *)
  check_string "mul binds tighter" "1\n"
    (run_src "func main() { print_int(1 + 2 * 3 == 7); return 0; }");
  (* shift binds tighter than compare: 1 << 2 < 3 is (1<<2) < 3 = 0 *)
  check_string "shift vs compare" "0\n"
    (run_src "func main() { print_int(1 << 2 < 3); return 0; }");
  (* bitwise or is lower than xor is lower than and *)
  check_string "bit precedence" "7\n"
    (run_src "func main() { print_int(4 | 2 ^ 1 & 3); return 0; }")

let test_parser_associativity () =
  check_string "sub left assoc" "-4\n"
    (run_src "func main() { print_int(1 - 2 - 3); return 0; }");
  check_string "div left assoc" "2\n"
    (run_src "func main() { print_int(24 / 4 / 3); return 0; }")

let test_parser_else_if () =
  let src = {|
    func classify(x) {
      if (x < 0) { return 0 - 1; }
      else if (x == 0) { return 0; }
      else if (x < 10) { return 1; }
      else { return 2; }
    }
    func main() {
      print_int(classify(0 - 5));
      print_int(classify(0));
      print_int(classify(5));
      print_int(classify(50));
      return 0;
    }
  |} in
  check_string "else-if chain" "-1\n0\n1\n2\n" (run_src src)

let test_parser_errors () =
  List.iter
    (fun src ->
      match Minic.Parser.parse ~module_name:"m" ~file:"m.mc" src with
      | exception Minic.Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("parser accepted: " ^ src))
    [ "func f( { }"; "func f() { return 1 }"; "func f() { 1 + ; }";
      "global a[0];"; "func f() { var = 3; }"; "func f() { (1 = 2); }" ]

let test_parser_global_inits () =
  let src = {|
    global a = 5;
    global arr[3] = {1, -2, 3};
    public global b;
    func main() { print_int(a + arr[1] + b); return 0; }
  |} in
  check_string "global initializers" "3\n" (run_src src)

(* ------------------------------------------------------------------ *)
(* Sema.                                                               *)

let test_sema_undefined () =
  check_bool "undefined var" true (errors_of "func f() { return nope; }" <> []);
  check_bool "undefined call" true (errors_of "func f() { return g(); }" <> []);
  check_bool "undefined assign" true (errors_of "func f() { x = 3; }" <> [])

let test_sema_duplicates () =
  check_bool "dup local" true
    (errors_of "func f() { var x = 1; var x = 2; }" <> []);
  check_bool "dup function" true
    (errors_of "func f() { } func f() { }" <> []);
  check_bool "dup params" true (errors_of "func f(a, a) { }" <> []);
  check_bool "shadow in nested scope ok" true
    (errors_of "func f() { var x = 1; if (x) { var x = 2; print_int(x); } }" = [])

let test_sema_break_continue () =
  check_bool "break outside loop" true (errors_of "func f() { break; }" <> []);
  check_bool "continue outside loop" true
    (errors_of "func f() { continue; }" <> []);
  check_bool "break in loop ok" true
    (errors_of "func f() { while (1) { break; } }" = [])

let test_sema_arity_is_warning () =
  let src = "func g(a, b) { return a; } func f() { return g(1); }" in
  check_bool "no errors" true (errors_of src = []);
  check_bool "one warning" true (List.length (warnings_of src) = 1)

let test_sema_assignment_targets () =
  check_bool "assign to function" true
    (errors_of "func g() { } func f() { g = 1; }" <> []);
  check_bool "assign to array" true
    (errors_of "global a[4]; func f() { a = 1; }" <> []);
  check_bool "assign to global scalar ok" true
    (errors_of "global a; func f() { a = 1; }" = [])

let test_sema_addr_of () =
  check_bool "addr of local" true
    (errors_of "func f() { var x = 1; var p = &x; }" <> []);
  check_bool "addr of global ok" true
    (errors_of "global g; func f() { var p = &g; }" = [])

let test_sema_cross_module () =
  let a = "static func hidden() { return 1; } func shared() { return 2; }" in
  let b = "func main() { return shared() + hidden(); }" in
  let diags =
    Minic.Sema.check_program
      [ Minic.Parser.parse ~module_name:"a" ~file:"a.mc" a;
        Minic.Parser.parse ~module_name:"b" ~file:"b.mc" b ]
  in
  (* [shared] resolves, [hidden] does not. *)
  check_int "one error (hidden)" 1
    (List.length (List.filter Minic.Diag.is_error diags))

(* ------------------------------------------------------------------ *)
(* Lowered semantics (via the interpreter).                            *)

let test_semantics_arith () =
  check_string "arith" "17\n"
    (run_src "func main() { print_int(3 + 4 * 5 - 6 / 2 - 8 % 5); return 0; }");
  check_string "negative division truncates" "-2\n"
    (run_src "func main() { print_int((0 - 5) / 2); return 0; }");
  check_string "unary" "-7\n1\n0\n"
    (run_src
       "func main() { print_int(-7); print_int(!0); print_int(!42); return 0; }")

let test_semantics_short_circuit () =
  (* The right operand must not run when the left decides. *)
  let src = {|
    global trace;
    func effect(v) { trace = trace * 10 + v; return v; }
    func main() {
      trace = 0;
      var a = effect(0) && effect(1);
      var b = effect(1) || effect(2);
      print_int(a);
      print_int(b);
      print_int(trace);
      return 0;
    }
  |} in
  (* effect(0) runs, && short-circuits; effect(1) runs, || short-circuits:
     trace = 01 *)
  check_string "short circuit" "0\n1\n1\n" (run_src src)

let test_semantics_loops () =
  let src = {|
    func main() {
      var s = 0;
      for (var i = 0; i < 10; i = i + 1) {
        if (i == 3) { continue; }
        if (i == 8) { break; }
        s = s + i;
      }
      var j = 0;
      while (1) {
        j = j + 1;
        if (j >= 5) { break; }
      }
      print_int(s);
      print_int(j);
      return 0;
    }
  |} in
  (* 0+1+2+4+5+6+7 = 25 *)
  check_string "loops" "25\n5\n" (run_src src)

let test_semantics_recursion () =
  let src = {|
    func ack(m, n) {
      if (m == 0) { return n + 1; }
      if (n == 0) { return ack(m - 1, 1); }
      return ack(m - 1, ack(m, n - 1));
    }
    func main() { print_int(ack(2, 3)); return 0; }
  |} in
  check_string "ackermann" "9\n" (run_src src)

let test_semantics_function_values () =
  let src = {|
    func inc(x) { return x + 1; }
    func dbl(x) { return x * 2; }
    func compose_apply(f, g, x) { return f(g(x)); }
    global slot;
    func main() {
      print_int(compose_apply(&inc, &dbl, 5));
      slot = inc;
      print_int(slot(9));
      var h = dbl;
      print_int(h(21));
      return 0;
    }
  |} in
  check_string "function values" "11\n10\n42\n" (run_src src)

let test_semantics_arity_mismatch_call () =
  (* Extra args dropped, missing args read as 0 (dusty-deck C). *)
  let src = {|
    func g(a, b) { return a * 100 + b; }
    func main() {
      print_int(g(7));
      print_int(g(1, 2, 3));
      return 0;
    }
  |} in
  check_string "arity mismatch semantics" "700\n102\n" (run_src src)

let test_semantics_pointers_via_alloc () =
  let src = {|
    func main() {
      var p = alloc(4);
      p[0] = 10;
      p[3] = 40;
      var q = alloc(2);
      q[0] = p[0] + p[3];
      print_int(q[0]);
      return 0;
    }
  |} in
  check_string "alloc pointers" "50\n" (run_src src)

let test_semantics_traps () =
  ignore (run_src ~expect_trap:true "func main() { return 1 / 0; }");
  ignore (run_src ~expect_trap:true "func main() { return 1 % 0; }");
  ignore
    (run_src ~expect_trap:true "global a[2]; func main() { return a[5000000]; }");
  ignore (run_src ~expect_trap:true "func main() { abort(); return 0; }");
  ignore
    (run_src ~expect_trap:true
       "func loop() { return loop(); } func main() { return loop(); }")

let test_semantics_fallthrough_returns_zero () =
  check_string "implicit return 0" "0\n"
    (run_src "func f() { } func main() { print_int(f()); return 0; }")

let test_for_loop_variants () =
  let src = {|
    func main() {
      var s = 0;
      var i = 0;
      for (; i < 5; i = i + 1) { s = s + i; }
      for (var j = 0; ; j = j + 1) { if (j >= 3) { break; } s = s + 100; }
      for (var k = 0; k < 3;) { k = k + 1; s = s + 1000; }
      print_int(s);
      return 0;
    }
  |} in
  (* 10 + 300 + 3000 *)
  check_string "for variants" "3310
" (run_src src)

let test_empty_bodies_and_comments () =
  let src = {|
    // leading comment
    func nop() { }
    /* block */ func main() { nop(); /* inline */ print_int(1); return 0; } // eof comment|}
  in
  check_string "empty body + comments" "1
" (run_src src)

let test_hex_and_char_arithmetic () =
  check_string "hex/char" "74\n"
    (run_src "func main() { print_int(0x10 + 'A' - 'a' + 'Z'); return 0; }")

let test_deep_nesting () =
  let src = {|
    func main() {
      var s = 0;
      for (var a = 0; a < 2; a = a + 1) {
        for (var b = 0; b < 2; b = b + 1) {
          if (a == b) {
            while (s < 100) {
              s = s + 1;
              if (s == 5) { break; }
            }
          } else {
            s = s + 10;
          }
        }
      }
      print_int(s);
      return 0;
    }
  |} in
  (* a=0,b=0: s 0->5 (break at 5); a=0,b=1: +10 = 15; a=1,b=0: +10 = 25;
     a=1,b=1: while to 100 *)
  check_string "deep nesting" "100
" (run_src src)

let test_attrs_reach_ir () =
  let src = {|
    noinline varargs func weird(x) { return x; }
    alloca fprelaxed noclone func odd() { return 1; }
    func main() { return weird(1) + odd(); }
  |} in
  let p = Minic.Compile.compile_string src in
  let weird = Ucode.Types.find_routine_exn p "weird" in
  let odd = Ucode.Types.find_routine_exn p "odd" in
  check_bool "noinline" true weird.Ucode.Types.r_attrs.Ucode.Types.a_no_inline;
  check_bool "varargs" true weird.Ucode.Types.r_attrs.Ucode.Types.a_varargs;
  check_bool "alloca" true odd.Ucode.Types.r_attrs.Ucode.Types.a_alloca;
  check_bool "noclone" true odd.Ucode.Types.r_attrs.Ucode.Types.a_no_clone;
  check_bool "fp model" true
    (odd.Ucode.Types.r_attrs.Ucode.Types.a_fp_model = Ucode.Types.Relaxed)

let () =
  Alcotest.run "minic"
    [ ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions ] );
      ( "parser",
        [ Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "associativity" `Quick test_parser_associativity;
          Alcotest.test_case "else-if" `Quick test_parser_else_if;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "global inits" `Quick test_parser_global_inits ] );
      ( "sema",
        [ Alcotest.test_case "undefined" `Quick test_sema_undefined;
          Alcotest.test_case "duplicates" `Quick test_sema_duplicates;
          Alcotest.test_case "break/continue" `Quick test_sema_break_continue;
          Alcotest.test_case "arity warning" `Quick test_sema_arity_is_warning;
          Alcotest.test_case "assignment targets" `Quick
            test_sema_assignment_targets;
          Alcotest.test_case "addr-of" `Quick test_sema_addr_of;
          Alcotest.test_case "cross-module" `Quick test_sema_cross_module ] );
      ( "semantics",
        [ Alcotest.test_case "arithmetic" `Quick test_semantics_arith;
          Alcotest.test_case "short-circuit" `Quick test_semantics_short_circuit;
          Alcotest.test_case "loops" `Quick test_semantics_loops;
          Alcotest.test_case "recursion" `Quick test_semantics_recursion;
          Alcotest.test_case "function values" `Quick
            test_semantics_function_values;
          Alcotest.test_case "arity mismatch" `Quick
            test_semantics_arity_mismatch_call;
          Alcotest.test_case "alloc pointers" `Quick
            test_semantics_pointers_via_alloc;
          Alcotest.test_case "traps" `Quick test_semantics_traps;
          Alcotest.test_case "implicit return" `Quick
            test_semantics_fallthrough_returns_zero;
          Alcotest.test_case "attributes" `Quick test_attrs_reach_ir;
          Alcotest.test_case "for variants" `Quick test_for_loop_variants;
          Alcotest.test_case "empty bodies" `Quick test_empty_bodies_and_comments;
          Alcotest.test_case "hex and chars" `Quick test_hex_and_char_arithmetic;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting ] ) ]
