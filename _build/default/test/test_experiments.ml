(* Tests for the experiment harness: structural invariants of each
   table/figure reproduction, run at train inputs for speed. *)

module U = Ucode.Types

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_tables_render () =
  let s =
    Experiments.Tables.render
      ~aligns:[ Experiments.Tables.Left ]
      ~headers:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "23456" ] ]
  in
  check_bool "header present" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Every line has the same width. *)
  let lines = String.split_on_char '\n' (String.trim s) in
  let widths = List.map String.length lines in
  check_bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_geomean () =
  Alcotest.(check (float 0.0001)) "geomean" 2.0
    (Experiments.Tables.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 0.0001)) "empty" 0.0 (Experiments.Tables.geomean [])

let test_fig5_structure () =
  let rows = Experiments.Fig5_callsites.run () in
  check_int "fourteen rows" 14 (List.length rows);
  List.iter
    (fun (r : Experiments.Fig5_callsites.row) ->
      let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts in
      check_int (r.benchmark ^ " total = sum of classes") r.total sum;
      check_bool "nonempty" true (r.total > 0))
    rows;
  check_bool "renders" true
    (String.length (Experiments.Fig5_callsites.to_table rows) > 100)

let test_table1_structure () =
  let rows =
    Experiments.Table1_transforms.run ~input:Workloads.Suite.Train
      ~benchmarks:[ "022.li" ] ()
  in
  check_int "four scopes" 4 (List.length rows);
  List.iter
    (fun (r : Experiments.Table1_transforms.row) ->
      check_bool "counts nonnegative" true
        (r.inlines >= 0 && r.clones >= 0 && r.clone_replacements >= 0
       && r.deletions >= 0);
      check_bool "cycles positive" true (r.run_cycles > 0);
      check_bool "compile cost positive" true (r.compile_cost > 0.0))
    rows;
  (* The widest scope must not be slower than the narrowest — the
     paper's monotonic-improvement property, allowing 2% noise. *)
  let cycles scope =
    let r =
      List.find (fun (r : Experiments.Table1_transforms.row) -> r.scope = scope)
        rows
    in
    float_of_int r.run_cycles
  in
  check_bool "cp <= base * 1.02" true
    (cycles Hlo.Config.CP <= cycles Hlo.Config.Base *. 1.02);
  check_bool "renders" true
    (String.length (Experiments.Table1_transforms.to_table rows) > 100)

let test_fig6_structure () =
  let bs =
    List.filter
      (fun b ->
        List.mem b.Workloads.Suite.b_name [ "022.li"; "147.vortex"; "072.sc" ])
      Workloads.Suite.all
  in
  let result =
    Experiments.Fig6_speedup.run ~input:Workloads.Suite.Train ~benchmarks:bs ()
  in
  check_int "three rows" 3 (List.length result.Experiments.Fig6_speedup.rows);
  List.iter
    (fun (r : Experiments.Fig6_speedup.row) ->
      check_bool "speedups positive" true
        (r.speedup_inline > 0.5 && r.speedup_clone > 0.5 && r.speedup_both > 0.5);
      (* The paper's headline: inlining helps substantially, cloning
         alone does little. *)
      check_bool (r.benchmark ^ " inlining helps") true (r.speedup_inline > 1.05);
      check_bool (r.benchmark ^ " cloning alone modest") true
        (r.speedup_clone < r.speedup_inline))
    result.Experiments.Fig6_speedup.rows

let test_fig7_structure () =
  let rows =
    Experiments.Fig7_simulation.run ~input:Workloads.Suite.Train
      ~benchmarks:[ "147.vortex" ] ()
  in
  check_int "four configs" 4 (List.length rows);
  let find t =
    List.find (fun (r : Experiments.Fig7_simulation.row) -> r.transforms = t) rows
  in
  let neither = find Experiments.Pipeline.Neither in
  let both = find Experiments.Pipeline.Both in
  Alcotest.(check (float 0.0001)) "baseline relative cycles = 1" 1.0
    neither.Experiments.Fig7_simulation.rel_cycles;
  (* The paper's Figure 7 shape for a call-heavy benchmark. *)
  check_bool "cycles drop" true (both.Experiments.Fig7_simulation.rel_cycles < 1.0);
  check_bool "dcache accesses drop" true
    (both.Experiments.Fig7_simulation.rel_dcache_accesses < 1.0);
  check_bool "branches drop" true
    (both.Experiments.Fig7_simulation.rel_branches < 1.0)

let test_fig8_structure () =
  let curves =
    Experiments.Fig8_budget.run ~input:Workloads.Suite.Train
      ~budgets:[ 25.0; 100.0 ] ~points:4 ()
  in
  check_int "two curves" 2 (List.length curves);
  List.iter
    (fun (c : Experiments.Fig8_budget.curve) ->
      check_bool "has points" true (List.length c.points >= 2);
      (* Operation caps are respected and increase along the curve. *)
      let caps = List.map (fun p -> p.Experiments.Fig8_budget.operations) c.points in
      check_bool "caps increase" true (List.sort compare caps = caps);
      List.iter
        (fun (p : Experiments.Fig8_budget.point) ->
          check_bool "performed <= cap" true (p.performed <= p.operations))
        c.points;
      (* More operations should not make the program slower overall:
         final point at most 2% above the best intermediate one would
         be suspicious of a regression; final must beat the start. *)
      match (List.hd c.points, List.rev c.points) with
      | first, last :: _ ->
        check_bool "end faster than start" true
          (last.Experiments.Fig8_budget.run_cycles
          < first.Experiments.Fig8_budget.run_cycles)
      | _ -> ())
    curves;
  (* The larger budget performs at least as many operations. *)
  match curves with
  | [ c25; c100 ] ->
    let total (c : Experiments.Fig8_budget.curve) =
      (List.hd (List.rev c.points)).Experiments.Fig8_budget.performed
    in
    check_bool "bigger budget, more operations" true (total c100 >= total c25)
  | _ -> ()

let test_ablations_structure () =
  let studies =
    Experiments.Ablations.all ~input:Workloads.Suite.Train
      ~benchmarks:[ "124.m88ksim" ] ()
  in
  check_int "four studies" 4 (List.length studies);
  List.iter
    (fun (s : Experiments.Ablations.study) ->
      check_int "two variants per benchmark" 2
        (List.length s.Experiments.Ablations.st_rows);
      List.iter
        (fun (r : Experiments.Ablations.variant_row) ->
          check_bool "cycles positive" true (r.Experiments.Ablations.a_cycles > 0))
        s.Experiments.Ablations.st_rows;
      check_bool "renders" true
        (String.length (Experiments.Ablations.to_table s) > 50))
    studies;
  (* Positioning must not hurt on the tight cache. *)
  let pos =
    List.find
      (fun (s : Experiments.Ablations.study) ->
        String.length s.Experiments.Ablations.st_name > 0
        && s.Experiments.Ablations.st_name.[0] = 'p')
      studies
  in
  match pos.Experiments.Ablations.st_rows with
  | [ base; ph ] ->
    check_bool "pettis-hansen not worse" true
      (ph.Experiments.Ablations.a_cycles
      <= base.Experiments.Ablations.a_cycles)
  | _ -> Alcotest.fail "expected two positioning rows"

let test_cache_sweep_structure () =
  let sweeps = Experiments.Cache_sweep.run ~benchmarks:[ "147.vortex" ] () in
  match sweeps with
  | [ s ] ->
    check_bool "code grew under inlining" true
      (s.Experiments.Cache_sweep.cw_code_opt
      > s.Experiments.Cache_sweep.cw_code_base);
    check_int "six points" 6 (List.length s.Experiments.Cache_sweep.cw_points);
    List.iter
      (fun (p : Experiments.Cache_sweep.point) ->
        check_bool "speedup sensible" true
          (p.cw_speedup > 0.5 && p.cw_speedup < 10.0))
      s.Experiments.Cache_sweep.cw_points;
    (* The abstract's claim: at ample capacity the inlined binary's
       miss rate is tiny and the speedup is at its plateau. *)
    let last = List.nth s.Experiments.Cache_sweep.cw_points 5 in
    check_bool "large cache miss rate tiny" true (last.cw_opt_miss_rate < 0.01);
    let best =
      List.fold_left
        (fun acc (p : Experiments.Cache_sweep.point) -> Float.max acc p.cw_speedup)
        0.0 s.Experiments.Cache_sweep.cw_points
    in
    check_bool "plateau near best" true (last.cw_speedup >= best *. 0.9)
  | _ -> Alcotest.fail "expected one sweep"

let test_scaling_structure () =
  let rows = Experiments.Scaling.run ~sizes:[ 2; 6 ] () in
  check_int "two rows" 2 (List.length rows);
  match rows with
  | [ small; big ] ->
    check_bool "bigger program" true
      (big.Experiments.Scaling.sc_routines
      > small.Experiments.Scaling.sc_routines);
    check_bool "speedup >= 1 at both sizes" true
      (small.Experiments.Scaling.sc_speedup >= 1.0
      && big.Experiments.Scaling.sc_speedup >= 1.0);
    check_bool "budget respected" true
      (big.Experiments.Scaling.sc_cost_growth <= 2.05)
  | _ -> ()

let () =
  Alcotest.run "experiments"
    [ ( "tables",
        [ Alcotest.test_case "render" `Quick test_tables_render;
          Alcotest.test_case "geomean" `Quick test_geomean ] );
      ( "figures",
        [ Alcotest.test_case "fig5" `Quick test_fig5_structure;
          Alcotest.test_case "table1" `Slow test_table1_structure;
          Alcotest.test_case "fig6" `Slow test_fig6_structure;
          Alcotest.test_case "fig7" `Slow test_fig7_structure;
          Alcotest.test_case "fig8" `Slow test_fig8_structure;
          Alcotest.test_case "ablations" `Slow test_ablations_structure;
          Alcotest.test_case "cache sweep" `Slow test_cache_sweep_structure;
          Alcotest.test_case "scaling" `Slow test_scaling_structure ] ) ]
