test/test_opt.ml: Alcotest Interp List Machine Minic Opt Ucode Workloads
