test/test_hlo.ml: Alcotest Array Hlo Interp List Minic Opt Option Printf String Ucode Workloads
