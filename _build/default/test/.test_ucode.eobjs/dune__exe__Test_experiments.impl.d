test/test_experiments.ml: Alcotest Experiments Float Hlo List String Ucode Workloads
