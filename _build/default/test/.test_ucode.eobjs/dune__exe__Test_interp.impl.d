test/test_interp.ml: Alcotest Int64 Interp List Minic Option Ucode Workloads
