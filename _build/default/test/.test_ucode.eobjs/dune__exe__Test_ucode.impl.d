test/test_ucode.ml: Alcotest Fmt Interp List Machine Minic String Ucode
