test/test_machine.ml: Alcotest Array Hlo Interp List Machine Minic Option Printf String Ucode Workloads
