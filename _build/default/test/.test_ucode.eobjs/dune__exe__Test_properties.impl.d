test/test_properties.ml: Alcotest Array Float Hlo Int64 Interp List Machine Minic Opt Option Printf QCheck QCheck_alcotest String Ucode
