test/test_ucode.mli:
