test/test_minic.ml: Alcotest Int64 Interp List Minic Ucode
