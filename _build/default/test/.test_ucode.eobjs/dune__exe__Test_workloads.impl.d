test/test_workloads.ml: Alcotest Hlo Interp List Machine Minic Printf String Ucode Workloads
