(* Tests for the machine back end: the cache model, the branch
   predictor, register allocation, code layout, and the simulator's
   agreement with the IR interpreter. *)

module U = Ucode.Types
module V = Machine.Vinsn
module R = Machine.Regalloc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let compile src = Minic.Compile.compile_string src

(* ------------------------------------------------------------------ *)
(* Cache model.                                                        *)

let test_cache_direct_mapped_conflict () =
  let c = Machine.Cache.create { Machine.Cache.sets = 4; assoc = 1; line_words = 4 } in
  (* Addresses 0 and 64 map to the same set (64/4 = line 16, 16 mod 4 = 0). *)
  check_bool "cold miss" false (Machine.Cache.access c 0);
  check_bool "same line hits" true (Machine.Cache.access c 1);
  check_bool "conflict evicts" false (Machine.Cache.access c 64);
  check_bool "original gone" false (Machine.Cache.access c 0);
  check_int "accesses" 4 c.Machine.Cache.accesses;
  check_int "misses" 3 c.Machine.Cache.misses

let test_cache_two_way_lru () =
  let c = Machine.Cache.create { Machine.Cache.sets = 2; assoc = 2; line_words = 1 } in
  (* Lines 0, 2, 4 all map to set 0. *)
  ignore (Machine.Cache.access c 0);  (* miss, way A *)
  ignore (Machine.Cache.access c 2);  (* miss, way B *)
  check_bool "0 still resident" true (Machine.Cache.access c 0);
  (* LRU is now line 2; inserting line 4 evicts it. *)
  check_bool "4 misses" false (Machine.Cache.access c 4);
  check_bool "0 survived (not LRU)" true (Machine.Cache.access c 0);
  check_bool "2 was evicted" false (Machine.Cache.access c 2)

let test_cache_size_and_reset () =
  let c = Machine.Cache.create { Machine.Cache.sets = 8; assoc = 2; line_words = 4 } in
  check_int "size" 64 (Machine.Cache.size_words c);
  ignore (Machine.Cache.access c 5);
  Machine.Cache.reset c;
  check_int "reset accesses" 0 c.Machine.Cache.accesses;
  check_bool "cold after reset" false (Machine.Cache.access c 5)

(* ------------------------------------------------------------------ *)
(* Branch predictor.                                                   *)

let test_predictor_learns_loop () =
  let p = Machine.Branch_predictor.create ~entries:16 () in
  (* A loop branch taken 10 times then not taken: the 2-bit counter
     should mispredict at most twice at the start and once at the end. *)
  let wrong = ref 0 in
  for _ = 1 to 10 do
    if not (Machine.Branch_predictor.conditional p ~pc:3 ~taken:true) then
      incr wrong
  done;
  if not (Machine.Branch_predictor.conditional p ~pc:3 ~taken:false) then
    incr wrong;
  check_bool "few mispredicts" true (!wrong <= 3);
  check_int "branches counted" 11 p.Machine.Branch_predictor.branches

let test_predictor_collisions () =
  let p = Machine.Branch_predictor.create ~entries:4 () in
  (* pcs 1 and 5 collide (5 mod 4 = 1): alternating opposite outcomes
     keep flipping the shared counter — high miss rate, as the paper
     warns for branch-table collisions. *)
  let wrong = ref 0 in
  for _ = 1 to 20 do
    if not (Machine.Branch_predictor.conditional p ~pc:1 ~taken:true) then incr wrong;
    if not (Machine.Branch_predictor.conditional p ~pc:5 ~taken:false) then incr wrong
  done;
  check_bool "collisions hurt" true (!wrong >= 15)

let test_predictor_returns_always_miss () =
  let p = Machine.Branch_predictor.create () in
  Machine.Branch_predictor.always_mispredicted p;
  Machine.Branch_predictor.always_mispredicted p;
  Machine.Branch_predictor.unconditional p;
  check_int "mispredicts" 2 p.Machine.Branch_predictor.mispredicts;
  check_int "branches" 3 p.Machine.Branch_predictor.branches

(* ------------------------------------------------------------------ *)
(* Register allocation.                                                *)

let test_regalloc_all_allocated () =
  let p = compile {|
    func f(a, b, c) {
      var x = a + b;
      var y = b + c;
      return x * y;
    }
    func main() { return f(1, 2, 3); }
  |} in
  let f = U.find_routine_exn p "f" in
  let alloc = R.allocate f in
  (* Every register that occurs has a location. *)
  List.iter
    (fun (blk : U.block) ->
      List.iter
        (fun i ->
          List.iter (fun v -> ignore (R.location alloc v)) (U.instr_uses i);
          Option.iter (fun v -> ignore (R.location alloc v)) (U.instr_def i))
        blk.U.b_instrs)
    f.U.r_blocks;
  check_int "small routine spills nothing" 0 alloc.R.nspills

let test_regalloc_call_crossing_goes_callee_saved () =
  let p = compile {|
    func g(x) { return x; }
    func f(keep) {
      var r = g(1);
      return keep + r;
    }
    func main() { return f(5); }
  |} in
  let f = U.find_routine_exn p "f" in
  let alloc = R.allocate f in
  (* [keep] is live across the call to g: it must sit in a callee-saved
     register or a spill slot, never caller-saved. *)
  let keep = List.hd f.U.r_params in
  (match R.location alloc keep with
  | R.Preg r -> check_bool "callee-saved" true (R.is_callee_saved r)
  | R.Spill _ -> ());
  check_bool "prologue saves something" true
    (alloc.R.used_callee_saved <> [])

let test_regalloc_reuses_registers () =
  (* A long chain of short-lived temporaries must fit in few registers:
     interval reuse keeps pressure constant. *)
  let stmts =
    String.concat "\n"
      (List.init 60 (fun i -> Printf.sprintf "s = s + %d * 2;" i))
  in
  let src = Printf.sprintf "func main() { var s = 0; %s print_int(s); return 0; }" stmts in
  let p = compile src in
  let main = U.find_routine_exn p "main" in
  let alloc = R.allocate main in
  check_int "no spills despite 100+ virtuals" 0 alloc.R.nspills

let test_regalloc_spills_under_pressure () =
  (* Many simultaneously-live values must overflow into spill slots. *)
  let n = 40 in
  let decls =
    String.concat "\n"
      (List.init n (fun i -> Printf.sprintf "var v%d = g + %d;" i i))
  in
  let uses =
    String.concat " + " (List.init n (fun i -> Printf.sprintf "v%d" i))
  in
  let src =
    Printf.sprintf
      "global g = 1;\nfunc main() { %s\n print_int(%s); return 0; }" decls uses
  in
  let p = compile src in
  let main = U.find_routine_exn p "main" in
  let alloc = R.allocate main in
  check_bool "spills happen" true (alloc.R.nspills > 0);
  (* And the program still runs correctly through the machine. *)
  let ir = Interp.run p in
  let sim = Machine.Sim.run_program p in
  check_string "spill correctness" ir.Interp.output sim.Machine.Sim.output

(* ------------------------------------------------------------------ *)
(* Layout.                                                             *)

let test_layout_structure () =
  let p = compile {|
    func helper(x) { return x + 1; }
    func main() { return helper(41); }
  |} in
  let image = Machine.Layout.build p in
  check_bool "halt stub at 0" true
    (image.Machine.Layout.code.(Machine.Layout.halt_address) = V.Mhalt);
  let entry name = List.assoc name image.Machine.Layout.entries in
  check_bool "entries distinct" true (entry "helper" <> entry "main");
  check_bool "main entry recorded" true
    (image.Machine.Layout.main_entry = entry "main");
  (* All branch targets resolved. *)
  Array.iter
    (fun insn ->
      match insn with
      | V.Mjmp t | V.Mbeqz (_, t) | V.Mbnez (_, t) | V.Mcall t -> (
        match t with
        | V.Taddr _ -> ()
        | _ -> Alcotest.fail "unresolved target after layout")
      | V.Mla _ -> Alcotest.fail "unresolved Mla after layout"
      | _ -> ())
    image.Machine.Layout.code

let test_layout_data_matches_interp () =
  (* Globals must land at the same cells in both engines; observable
     via address arithmetic between two globals. *)
  let src = {|
    global a[3];
    global b;
    func main() {
      print_int(&b - &a);
      return 0;
    }
  |} in
  let p = compile src in
  let ir = Interp.run p in
  let sim = Machine.Sim.run_program p in
  check_string "same layout" ir.Interp.output sim.Machine.Sim.output;
  check_string "gap is the array size" "3\n" ir.Interp.output

(* ------------------------------------------------------------------ *)
(* Simulator.                                                          *)

let test_sim_metrics_sane () =
  let p = compile {|
    func main() {
      var s = 0;
      for (var i = 0; i < 100; i = i + 1) { s = s + i; }
      print_int(s);
      return 0;
    }
  |} in
  let r = Machine.Sim.run_program p in
  let m = r.Machine.Sim.metrics in
  check_string "output" "4950\n" r.Machine.Sim.output;
  check_bool "cycles >= instructions" true
    (m.Machine.Metrics.cycles >= m.Machine.Metrics.instructions);
  check_int "icache accesses = instructions" m.Machine.Metrics.instructions
    m.Machine.Metrics.icache_accesses;
  check_bool "cpi >= 1" true (Machine.Metrics.cpi m >= 1.0);
  check_bool "some branches" true (m.Machine.Metrics.branches > 0);
  check_bool "misses within accesses" true
    (m.Machine.Metrics.dcache_misses <= m.Machine.Metrics.dcache_accesses)

let test_sim_traps () =
  let trap_of src =
    match Machine.Sim.run_program (compile src) with
    | exception Machine.Sim.Trap (t, _) -> Some t
    | _ -> None
  in
  check_bool "div by zero" true
    (trap_of "func main() { var z = 0; return 1 / z; }"
    = Some Machine.Sim.Division_by_zero);
  check_bool "abort" true
    (trap_of "func main() { abort(); return 0; }" = Some Machine.Sim.Aborted);
  (match trap_of "func f(n) { return f(n + 1); } func main() { return f(0); }" with
  | Some Machine.Sim.Stack_overflow -> ()
  | _ -> Alcotest.fail "expected stack overflow");
  match trap_of "global a[2]; func main() { return a[9999999]; }" with
  | Some (Machine.Sim.Memory_fault _) -> ()
  | _ -> Alcotest.fail "expected memory fault"

let test_sim_instruction_limit () =
  let p = compile "func main() { while (1) { } return 0; }" in
  let config =
    { Machine.Sim.default_config with Machine.Sim.max_instructions = 5000 }
  in
  match Machine.Sim.run ~config (Machine.Layout.build p) with
  | exception Machine.Sim.Trap (Machine.Sim.Out_of_instructions, _) -> ()
  | _ -> Alcotest.fail "expected instruction limit trap"

let test_sim_indirect_calls () =
  let src = {|
    func a(x) { return x * 2; }
    func b(x) { return x + 100; }
    func pick(n) {
      if (n & 1) { return &a; }
      return &b;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 10; i = i + 1) {
        var f = pick(i);
        s = s + f(i);
      }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let ir = Interp.run p in
  let sim = Machine.Sim.run_program p in
  check_string "indirect calls agree" ir.Interp.output sim.Machine.Sim.output

let test_sim_call_overhead_visible () =
  (* The same computation with and without a call must differ in
     D-cache accesses: argument/return traffic is real memory traffic. *)
  let with_call = compile {|
    func add(a, b) { return a + b; }
    func main() {
      var s = 0;
      for (var i = 0; i < 1000; i = i + 1) { s = add(s, i); }
      print_int(s);
      return 0;
    }
  |} in
  let without_call = compile {|
    func main() {
      var s = 0;
      for (var i = 0; i < 1000; i = i + 1) { s = s + i; }
      print_int(s);
      return 0;
    }
  |} in
  let m1 = (Machine.Sim.run_program with_call).Machine.Sim.metrics in
  let m2 = (Machine.Sim.run_program without_call).Machine.Sim.metrics in
  check_bool "call version touches memory more" true
    (m1.Machine.Metrics.dcache_accesses
    > m2.Machine.Metrics.dcache_accesses + 2000);
  check_bool "call version runs more instructions" true
    (m1.Machine.Metrics.instructions > m2.Machine.Metrics.instructions)

let test_sim_agrees_on_fixture_programs () =
  (* A grab bag of shapes: nested calls, arity mismatch, globals,
     short-circuit, early returns, deep-ish recursion. *)
  let fixtures =
    [ {| func main() { print_int(0 - 9223372036854775807); return 0; } |};
      {| func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
         func main() { print_int(fib(15)); return 0; } |};
      {| func v(a, b, c) { return a * 100 + b * 10 + c; }
         func main() { print_int(v(1, 2)); print_int(v(1, 2, 3, 4)); return 0; } |};
      {| global acc;
         func tick() { acc = acc + 1; return acc; }
         func main() {
           var x = tick() && tick() || tick();
           print_int(x); print_int(acc);
           return 0;
         } |};
      {| func main() {
           var p = alloc(10);
           for (var i = 0; i < 10; i = i + 1) { p[i] = i * i; }
           var s = 0;
           for (var i = 0; i < 10; i = i + 1) { s = s + p[i]; }
           print_int(s);
           return 0;
         } |} ]
  in
  List.iter
    (fun src ->
      let p = compile src in
      let ir = Interp.run p in
      let sim = Machine.Sim.run_program p in
      check_string "fixture agrees" ir.Interp.output sim.Machine.Sim.output)
    fixtures

(* ------------------------------------------------------------------ *)
(* Profile-guided code positioning (Pettis-Hansen).                    *)

let positioning_fixture () =
  let src = {|
    func hot_leaf(x) { return x * 3 + 1; }
    func cold_leaf(x) { return x * 5 + 2; }
    func middle(x) { return hot_leaf(x) + 1; }
    func main() {
      var s = 0;
      for (var i = 0; i < 500; i = i + 1) { s = s + middle(i); }
      s = s + cold_leaf(s);
      print_int(s & 1048575);
      return 0;
    }
  |} in
  let p = compile src in
  let profile = (Interp.train p).Interp.profile in
  (p, profile)

let test_positioning_orders_hot_pairs_adjacent () =
  let p, profile = positioning_fixture () in
  let order = Machine.Positioning.order p profile in
  let pos n =
    let rec find i = function
      | [] -> max_int
      | x :: _ when x = n -> i
      | _ :: tl -> find (i + 1) tl
    in
    find 0 order
  in
  Alcotest.(check int) "all routines placed" 4 (List.length order);
  (* main/middle and middle/hot_leaf are the heavy pairs; cold_leaf
     must not sit between them. *)
  check_bool "hot chain adjacent" true
    (abs (pos "middle" - pos "hot_leaf") = 1);
  check_bool "cold leaf last" true (pos "cold_leaf" = 3)

let test_positioning_edge_weights () =
  let p, profile = positioning_fixture () in
  let weights = Machine.Positioning.edge_weights p profile in
  (* Heaviest pairs first; main<->middle and middle<->hot_leaf carry
     the 500-iteration loop. *)
  (match weights with
  | ((a1, b1), w1) :: ((a2, b2), w2) :: _ ->
    check_bool "top weight is the loop" true (w1 >= 500.0 && w2 >= 500.0);
    check_bool "pairs involve middle" true
      (List.mem "middle" [ a1; b1 ] && List.mem "middle" [ a2; b2 ])
  | _ -> Alcotest.fail "expected at least two weighted edges");
  (* cold_leaf's single call weighs 1. *)
  let cold =
    List.find_opt (fun ((a, b), _) -> a = "cold_leaf" || b = "cold_leaf") weights
  in
  match cold with
  | Some (_, w) -> Alcotest.(check (float 0.001)) "cold weight" 1.0 w
  | None -> Alcotest.fail "cold edge missing"

let test_positioning_preserves_semantics () =
  let p, profile = positioning_fixture () in
  let reordered = Machine.Positioning.apply p profile in
  (match Ucode.Validate.check_program reordered with
  | [] -> ()
  | errors -> Alcotest.fail (Ucode.Validate.errors_to_string errors));
  let a = Machine.Sim.run_program p in
  let b = Machine.Sim.run_program reordered in
  check_string "same output" a.Machine.Sim.output b.Machine.Sim.output;
  Alcotest.(check int) "same routine count"
    (List.length p.Ucode.Types.p_routines)
    (List.length reordered.Ucode.Types.p_routines)

let test_positioning_empty_profile_is_identity_safe () =
  let p, _ = positioning_fixture () in
  let reordered = Machine.Positioning.apply p Ucode.Profile.empty in
  let a = Machine.Sim.run_program p in
  let b = Machine.Sim.run_program reordered in
  check_string "still runs" a.Machine.Sim.output b.Machine.Sim.output

let test_positioning_helps_tight_icache () =
  (* On the workload where the ablation shows the effect, a conflicting
     direct-mapped I-cache must see fewer misses after positioning. *)
  let b = Workloads.Suite.find "124.m88ksim" in
  let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
  let profile = (Interp.train p).Interp.profile in
  let res = Hlo.Driver.run ~profile p in
  let optimized = res.Hlo.Driver.program in
  let trained = (Interp.train optimized).Interp.profile in
  let config =
    { Machine.Sim.default_config with
      Machine.Sim.icache = { Machine.Cache.sets = 48; assoc = 1; line_words = 8 } }
  in
  let base = Machine.Sim.run ~config (Machine.Layout.build optimized) in
  let positioned =
    Machine.Sim.run ~config
      (Machine.Layout.build (Machine.Positioning.apply optimized trained))
  in
  check_string "same output" base.Machine.Sim.output
    positioned.Machine.Sim.output;
  check_bool "fewer icache misses" true
    (positioned.Machine.Sim.metrics.Machine.Metrics.icache_misses
    < base.Machine.Sim.metrics.Machine.Metrics.icache_misses)

let () =
  Alcotest.run "machine"
    [ ( "cache",
        [ Alcotest.test_case "direct-mapped conflicts" `Quick
            test_cache_direct_mapped_conflict;
          Alcotest.test_case "two-way LRU" `Quick test_cache_two_way_lru;
          Alcotest.test_case "size and reset" `Quick test_cache_size_and_reset ] );
      ( "predictor",
        [ Alcotest.test_case "learns a loop" `Quick test_predictor_learns_loop;
          Alcotest.test_case "collisions" `Quick test_predictor_collisions;
          Alcotest.test_case "returns always miss" `Quick
            test_predictor_returns_always_miss ] );
      ( "regalloc",
        [ Alcotest.test_case "all allocated" `Quick test_regalloc_all_allocated;
          Alcotest.test_case "call crossing" `Quick
            test_regalloc_call_crossing_goes_callee_saved;
          Alcotest.test_case "register reuse" `Quick test_regalloc_reuses_registers;
          Alcotest.test_case "spills under pressure" `Quick
            test_regalloc_spills_under_pressure ] );
      ( "layout",
        [ Alcotest.test_case "structure" `Quick test_layout_structure;
          Alcotest.test_case "data layout" `Quick test_layout_data_matches_interp ] );
      ( "positioning",
        [ Alcotest.test_case "hot pairs adjacent" `Quick
            test_positioning_orders_hot_pairs_adjacent;
          Alcotest.test_case "edge weights" `Quick test_positioning_edge_weights;
          Alcotest.test_case "preserves semantics" `Quick
            test_positioning_preserves_semantics;
          Alcotest.test_case "empty profile safe" `Quick
            test_positioning_empty_profile_is_identity_safe;
          Alcotest.test_case "helps tight icache" `Slow
            test_positioning_helps_tight_icache ] );
      ( "sim",
        [ Alcotest.test_case "metrics sane" `Quick test_sim_metrics_sane;
          Alcotest.test_case "traps" `Quick test_sim_traps;
          Alcotest.test_case "instruction limit" `Quick test_sim_instruction_limit;
          Alcotest.test_case "indirect calls" `Quick test_sim_indirect_calls;
          Alcotest.test_case "call overhead" `Quick test_sim_call_overhead_visible;
          Alcotest.test_case "fixtures agree" `Quick
            test_sim_agrees_on_fixture_programs ] ) ]
