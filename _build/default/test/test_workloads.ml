(* Tests for the benchmark suite: every workload compiles cleanly,
   runs identically on both engines at both input sizes, produces the
   frozen golden outputs, and exhibits the call-site features the
   experiments rely on. *)

module U = Ucode.Types
module CG = Ucode.Callgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Golden outputs for the train inputs, frozen from a verified run;
   any semantic drift in the workloads or the tool chain trips these. *)
let golden_train =
  [ ("008.espresso", "224809\n");
    ("022.li", "363743\n");
    ("023.eqntott", "751375\n");
    ("026.compress", "622680\n306\n");
    ("072.sc", "407360\n");
    ("085.gcc", "987743\n");
    ("099.go", "513732\n");
    ("124.m88ksim", "371647\n");
    ("126.gcc", "874569\n");
    ("129.compress", "467704\n498\n");
    ("130.li", "59187\n");
    ("132.ijpeg", "13825\n");
    ("134.perl", "383756\n");
    ("147.vortex", "883906\n") ]

let test_registry () =
  check_int "fourteen benchmarks" 14 (List.length Workloads.Suite.all);
  check_int "six SPEC92" 6
    (List.length (Workloads.Suite.of_suite Workloads.Suite.Spec92));
  check_int "eight SPEC95" 8
    (List.length (Workloads.Suite.of_suite Workloads.Suite.Spec95));
  List.iter
    (fun b ->
      check_bool "ref bigger than train" true
        (b.Workloads.Suite.b_ref_size > b.Workloads.Suite.b_train_size))
    Workloads.Suite.all

let test_compiles_clean () =
  List.iter
    (fun b ->
      let sources = Workloads.Suite.sources b ~input:Workloads.Suite.Train in
      let p, diags = Minic.Compile.compile_program sources in
      Alcotest.(check (list string))
        (b.Workloads.Suite.b_name ^ " no diagnostics")
        []
        (List.map Minic.Diag.to_string diags);
      match Ucode.Validate.check_program p with
      | [] -> ()
      | errors -> Alcotest.fail (Ucode.Validate.errors_to_string errors))
    Workloads.Suite.all

let test_golden_outputs () =
  List.iter
    (fun (name, expected) ->
      let b = Workloads.Suite.find name in
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let r = Interp.run p in
      check_string (name ^ " golden") expected r.Interp.output)
    golden_train

let test_engines_agree_both_inputs () =
  List.iter
    (fun b ->
      List.iter
        (fun input ->
          let p = Workloads.Suite.compile b ~input in
          let ir = Interp.run p in
          let sim = Machine.Sim.run_program p in
          check_string
            (b.Workloads.Suite.b_name ^ " engines agree")
            ir.Interp.output sim.Machine.Sim.output;
          check_bool "produces output" true (String.length ir.Interp.output > 0))
        [ Workloads.Suite.Train; Workloads.Suite.Ref ])
    Workloads.Suite.all

let test_call_site_features () =
  (* Every benchmark must offer cross-module sites (the paper: "the
     ability to inline these cross-module calls is crucial"); the
     designated ones must also have indirect and recursive sites. *)
  List.iter
    (fun b ->
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let counts = CG.classify (CG.build p) in
      let get c = List.assoc c counts in
      check_bool
        (b.Workloads.Suite.b_name ^ " has cross-module sites")
        true
        (get CG.Cross_module > 0);
      check_bool
        (b.Workloads.Suite.b_name ^ " has external sites")
        true
        (get CG.External > 0))
    Workloads.Suite.all;
  let has_indirect name =
    let p = Workloads.Suite.compile (Workloads.Suite.find name)
        ~input:Workloads.Suite.Train in
    List.assoc CG.Indirect_call (CG.classify (CG.build p)) > 0
  in
  check_bool "li dispatches indirectly" true (has_indirect "022.li");
  check_bool "eqntott sorts through pointers" true (has_indirect "023.eqntott");
  let has_recursive name =
    let p = Workloads.Suite.compile (Workloads.Suite.find name)
        ~input:Workloads.Suite.Train in
    List.assoc CG.Recursive (CG.classify (CG.build p)) > 0
  in
  check_bool "li recurses" true (has_recursive "022.li");
  check_bool "go recurses (flood fill)" true (has_recursive "099.go");
  check_bool "gcc recurses (parser/folder)" true (has_recursive "085.gcc")

let test_constant_argument_sites () =
  (* The cloning benchmarks must call with interesting constants. *)
  List.iter
    (fun name ->
      let b = Workloads.Suite.find name in
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let any_const_context =
        List.exists
          (fun (r : U.routine) ->
            let contexts = Hlo.Summaries.edge_contexts r in
            U.Int_map.exists
              (fun _ values ->
                List.exists
                  (function
                    | Hlo.Summaries.Cconst _ | Hlo.Summaries.Cfun _ -> true
                    | Hlo.Summaries.Cunknown -> false)
                  values)
              contexts)
          p.U.p_routines
      in
      check_bool (name ^ " has constant-arg sites") true any_const_context)
    [ "022.li"; "124.m88ksim"; "132.ijpeg"; "023.eqntott" ]

let test_train_cheaper_than_ref () =
  List.iter
    (fun b ->
      let train = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let ref_ = Workloads.Suite.compile b ~input:Workloads.Suite.Ref in
      let st = (Interp.run train).Interp.steps in
      let sr = (Interp.run ref_).Interp.steps in
      check_bool (b.Workloads.Suite.b_name ^ " ref runs longer") true (sr > st))
    Workloads.Suite.all

let test_sizes_reasonable () =
  List.iter
    (fun b ->
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let n = List.length p.U.p_routines in
      check_bool (b.Workloads.Suite.b_name ^ " enough routines") true (n >= 8);
      let steps = (Interp.run p).Interp.steps in
      check_bool (b.Workloads.Suite.b_name ^ " runs long enough") true
        (steps > 50_000);
      check_bool (b.Workloads.Suite.b_name ^ " train not too slow") true
        (steps < 5_000_000))
    Workloads.Suite.all

(* ------------------------------------------------------------------ *)
(* Synthetic program generator.                                        *)

let test_synthetic_deterministic () =
  let a = Workloads.Synthetic.generate ~modules:4 ~seed:7 () in
  let b = Workloads.Synthetic.generate ~modules:4 ~seed:7 () in
  let c = Workloads.Synthetic.generate ~modules:4 ~seed:8 () in
  check_bool "same seed, same program" true
    (List.map (fun s -> s.Minic.Compile.src_text) a
    = List.map (fun s -> s.Minic.Compile.src_text) b);
  check_bool "different seed, different program" true
    (List.map (fun s -> s.Minic.Compile.src_text) a
    <> List.map (fun s -> s.Minic.Compile.src_text) c)

let test_synthetic_compiles_and_runs () =
  List.iter
    (fun modules ->
      let p = Workloads.Synthetic.compile ~modules () in
      (match Ucode.Validate.check_program p with
      | [] -> ()
      | errors -> Alcotest.fail (Ucode.Validate.errors_to_string errors));
      let ir = Interp.run p in
      let sim = Machine.Sim.run_program p in
      check_string
        (Printf.sprintf "synthetic %d modules agrees" modules)
        ir.Interp.output sim.Machine.Sim.output;
      check_bool "grows with modules" true
        (List.length p.U.p_routines > modules))
    [ 1; 3; 8 ]

let test_synthetic_hlo_preserves () =
  let p = Workloads.Synthetic.compile ~modules:6 () in
  let profile = (Interp.train p).Interp.profile in
  let config = { Hlo.Config.default with Hlo.Config.validate = true } in
  let res = Hlo.Driver.run ~config ~profile p in
  check_string "HLO preserves synthetic program"
    (Interp.run p).Interp.output
    (Interp.run res.Hlo.Driver.program).Interp.output;
  check_bool "HLO found work" true
    (Hlo.Report.total_operations res.Hlo.Driver.report > 0)

let () =
  Alcotest.run "workloads"
    [ ( "suite",
        [ Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "compiles clean" `Quick test_compiles_clean;
          Alcotest.test_case "golden outputs" `Quick test_golden_outputs;
          Alcotest.test_case "engines agree" `Slow test_engines_agree_both_inputs;
          Alcotest.test_case "call-site features" `Quick test_call_site_features;
          Alcotest.test_case "constant-arg sites" `Quick
            test_constant_argument_sites;
          Alcotest.test_case "train vs ref" `Quick test_train_cheaper_than_ref;
          Alcotest.test_case "sizes reasonable" `Quick test_sizes_reasonable ] );
      ( "synthetic",
        [ Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "compiles and runs" `Quick
            test_synthetic_compiles_and_runs;
          Alcotest.test_case "HLO preserves" `Quick test_synthetic_hlo_preserves ] ) ]
