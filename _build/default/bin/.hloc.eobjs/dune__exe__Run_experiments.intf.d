bin/run_experiments.mli:
