bin/hloc.ml: Arg Cmd Cmdliner Filename Fmt Fun Hlo Interp List Machine Minic Printf String Term Ucode
