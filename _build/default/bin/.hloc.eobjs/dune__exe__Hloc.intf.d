bin/hloc.mli:
