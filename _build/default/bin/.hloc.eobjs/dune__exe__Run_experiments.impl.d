bin/run_experiments.ml: Arg Cmd Cmdliner Experiments Fmt List Term Workloads
