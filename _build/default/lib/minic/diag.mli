(** Source positions and compiler diagnostics. *)

type pos = { file : string; line : int; col : int }

val dummy_pos : pos
val pp_pos : Format.formatter -> pos -> unit

type severity = Error | Warning

type t = { d_pos : pos; d_severity : severity; d_message : string }

val error : pos -> ('a, unit, string, t) format4 -> 'a
val warning : pos -> ('a, unit, string, t) format4 -> 'a
val is_error : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Compile_error of t list

(** Raise {!Compile_error} if any diagnostic is an error. *)
val fail_on_errors : t list -> unit
