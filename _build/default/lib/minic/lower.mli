(** Lowering checked MiniC to ucode: one routine per function, a
    dedicated register per local, short-circuit operators as control
    flow, conditions as nonzero tests, implicit [return 0] off the end.
    Names stay source-level; {!Ucode.Linker} resolves them. *)

exception Lower_error of Diag.t

(** Lower one module to linkable IR. *)
val lower_unit : ?ext:Sema.ext_env -> Ast.unit_ -> Ucode.Linker.module_ir
