(** Front-end driver: MiniC source text to a linked ucode program
    (the "front ends + linker" half of the paper's isom pipeline). *)

type source = { src_module : string; src_text : string }

val source : module_name:string -> string -> source

(** Parse, check (each module against the others' exports), lower and
    link a multi-module program.  Returns the program and all
    diagnostics (warnings included).  Raises {!Diag.Compile_error} on
    errors and {!Ucode.Linker.Link_error} on link failures. *)
val compile_program :
  ?main:string -> source list -> Ucode.Types.program * Diag.t list

(** Compile a single-module program given as one string. *)
val compile_string :
  ?module_name:string -> ?main:string -> string -> Ucode.Types.program
