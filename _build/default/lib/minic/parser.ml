(** Recursive-descent parser for MiniC.

    Menhir is not available in this environment, so the grammar is
    parsed by hand: precedence climbing for binary operators, one-token
    lookahead everywhere, and assignment disambiguated by parsing an
    expression first and reinterpreting it as an lvalue when an [=]
    follows. *)

open Ast

exception Parse_error of Diag.t

let fail pos fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Diag.error pos "%s" m))) fmt

type state = { toks : Lexer.lexed array; mutable i : int }

let current st = st.toks.(st.i)
let peek_tok st = (current st).Lexer.tok
let peek_pos st = (current st).Lexer.pos

let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let expect st tok =
  if peek_tok st = tok then advance st
  else
    fail (peek_pos st) "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek_tok st))

let expect_ident st =
  match peek_tok st with
  | Token.IDENT name ->
    advance st;
    name
  | t -> fail (peek_pos st) "expected identifier but found %s" (Token.to_string t)

let expect_int st =
  match peek_tok st with
  | Token.INT v ->
    advance st;
    v
  | Token.MINUS -> (
    advance st;
    match peek_tok st with
    | Token.INT v ->
      advance st;
      Int64.neg v
    | t -> fail (peek_pos st) "expected integer but found %s" (Token.to_string t))
  | t -> fail (peek_pos st) "expected integer but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

let binop_of_token = function
  | Token.PIPEPIPE -> Some (Lor, 1)
  | Token.AMPAMP -> Some (Land, 2)
  | Token.PIPE -> Some (Bor, 3)
  | Token.CARET -> Some (Bxor, 4)
  | Token.AMP -> Some (Band, 5)
  | Token.EQ -> Some (Eq, 6)
  | Token.NE -> Some (Ne, 6)
  | Token.LT -> Some (Lt, 7)
  | Token.LE -> Some (Le, 7)
  | Token.GT -> Some (Gt, 7)
  | Token.GE -> Some (Ge, 7)
  | Token.SHL -> Some (Shl, 8)
  | Token.SHR -> Some (Shr, 8)
  | Token.PLUS -> Some (Add, 9)
  | Token.MINUS -> Some (Sub, 9)
  | Token.STAR -> Some (Mul, 10)
  | Token.SLASH -> Some (Div, 10)
  | Token.PERCENT -> Some (Rem, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek_tok st) with
    | Some (op, prec) when prec >= min_prec ->
      let pos = peek_pos st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := { e = Binary (op, !lhs, rhs); e_pos = pos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let pos = peek_pos st in
  match peek_tok st with
  | Token.MINUS ->
    advance st;
    { e = Unary (Neg, parse_unary st); e_pos = pos }
  | Token.BANG ->
    advance st;
    { e = Unary (Lnot, parse_unary st); e_pos = pos }
  | _ -> parse_postfix st

and parse_postfix st =
  let base = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Token.LBRACKET ->
      let pos = peek_pos st in
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      base := { e = Index (!base, idx); e_pos = pos }
    | _ -> continue_ := false
  done;
  !base

and parse_primary st =
  let pos = peek_pos st in
  match peek_tok st with
  | Token.INT v ->
    advance st;
    { e = Int v; e_pos = pos }
  | Token.AMP ->
    advance st;
    let name = expect_ident st in
    { e = Addr_of name; e_pos = pos }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name -> (
    advance st;
    match peek_tok st with
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      { e = Call (name, args); e_pos = pos }
    | _ -> { e = Ident name; e_pos = pos })
  | t -> fail pos "expected expression but found %s" (Token.to_string t)

and parse_args st =
  if peek_tok st = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match peek_tok st with
      | Token.COMMA ->
        advance st;
        loop (e :: acc)
      | Token.RPAREN ->
        advance st;
        List.rev (e :: acc)
      | t -> fail (peek_pos st) "expected , or ) but found %s" (Token.to_string t)
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

(** An assignment or expression statement, without the trailing
    semicolon (shared by plain statements and [for] headers). *)
let rec parse_simple_stmt st =
  let pos = peek_pos st in
  match peek_tok st with
  | Token.KW_VAR ->
    advance st;
    let name = expect_ident st in
    expect st Token.ASSIGN;
    let e = parse_expr st in
    { s = Decl (name, e); s_pos = pos }
  | _ -> (
    let e = parse_expr st in
    match peek_tok st with
    | Token.ASSIGN -> (
      advance st;
      let value = parse_expr st in
      match e.e with
      | Ident name -> { s = Assign (name, value); s_pos = pos }
      | Index (base, idx) -> { s = Index_assign (base, idx, value); s_pos = pos }
      | _ -> fail pos "left-hand side of assignment is not assignable")
    | _ -> { s = Expr e; s_pos = pos })

and parse_stmt st =
  let pos = peek_pos st in
  match peek_tok st with
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_block st in
    let else_ =
      if peek_tok st = Token.KW_ELSE then begin
        advance st;
        if peek_tok st = Token.KW_IF then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    { s = If (cond, then_, else_); s_pos = pos }
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_block st in
    { s = While (cond, body); s_pos = pos }
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek_tok st = Token.SEMI then None else Some (parse_simple_stmt st)
    in
    expect st Token.SEMI;
    let cond = if peek_tok st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let step =
      if peek_tok st = Token.RPAREN then None else Some (parse_simple_stmt st)
    in
    expect st Token.RPAREN;
    let body = parse_block st in
    { s = For (init, cond, step, body); s_pos = pos }
  | Token.KW_RETURN ->
    advance st;
    let value = if peek_tok st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    { s = Return value; s_pos = pos }
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    { s = Break; s_pos = pos }
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    { s = Continue; s_pos = pos }
  | _ ->
    let s = parse_simple_stmt st in
    expect st Token.SEMI;
    s

and parse_block st =
  expect st Token.LBRACE;
  let rec loop acc =
    if peek_tok st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top-level declarations.                                             *)

let parse_func_attrs st =
  let attrs = ref default_func_attrs in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Token.KW_STATIC ->
      advance st;
      attrs := { !attrs with fa_static = true }
    | Token.KW_NOINLINE ->
      advance st;
      attrs := { !attrs with fa_noinline = true }
    | Token.KW_NOCLONE ->
      advance st;
      attrs := { !attrs with fa_noclone = true }
    | Token.KW_VARARGS ->
      advance st;
      attrs := { !attrs with fa_varargs = true }
    | Token.KW_ALLOCA ->
      advance st;
      attrs := { !attrs with fa_alloca = true }
    | Token.KW_FPRELAXED ->
      advance st;
      attrs := { !attrs with fa_fprelaxed = true }
    | _ -> continue_ := false
  done;
  !attrs

let parse_global st ~public =
  let pos = peek_pos st in
  expect st Token.KW_GLOBAL;
  let name = expect_ident st in
  let size, is_array =
    if peek_tok st = Token.LBRACKET then begin
      advance st;
      let n = expect_int st in
      expect st Token.RBRACKET;
      if Int64.compare n 1L < 0 || Int64.compare n 1_000_000L > 0 then
        fail pos "array size %Ld out of range" n;
      (Int64.to_int n, true)
    end
    else (1, false)
  in
  let init =
    if peek_tok st = Token.ASSIGN then begin
      advance st;
      if peek_tok st = Token.LBRACE then begin
        advance st;
        let rec loop acc =
          let v = expect_int st in
          match peek_tok st with
          | Token.COMMA ->
            advance st;
            loop (v :: acc)
          | Token.RBRACE ->
            advance st;
            List.rev (v :: acc)
          | t ->
            fail (peek_pos st) "expected , or } but found %s" (Token.to_string t)
        in
        loop []
      end
      else [ expect_int st ]
    end
    else []
  in
  expect st Token.SEMI;
  if List.length init > size then fail pos "initializer longer than %s" name;
  { g_name = name; g_public = public; g_size = size; g_is_array = is_array;
    g_init = init; g_pos = pos }

let parse_unit ~module_name (toks : Lexer.lexed list) : unit_ =
  let st = { toks = Array.of_list toks; i = 0 } in
  let funcs = ref [] in
  let globals = ref [] in
  let rec loop () =
    match peek_tok st with
    | Token.EOF -> ()
    | Token.KW_PUBLIC ->
      advance st;
      globals := parse_global st ~public:true :: !globals;
      loop ()
    | Token.KW_GLOBAL ->
      globals := parse_global st ~public:false :: !globals;
      loop ()
    | _ ->
      let pos = peek_pos st in
      let attrs = parse_func_attrs st in
      expect st Token.KW_FUNC;
      let name = expect_ident st in
      expect st Token.LPAREN;
      let params =
        if peek_tok st = Token.RPAREN then begin
          advance st;
          []
        end
        else
          let rec params_loop acc =
            let p = expect_ident st in
            match peek_tok st with
            | Token.COMMA ->
              advance st;
              params_loop (p :: acc)
            | Token.RPAREN ->
              advance st;
              List.rev (p :: acc)
            | t ->
              fail (peek_pos st) "expected , or ) but found %s"
                (Token.to_string t)
          in
          params_loop []
      in
      let body = parse_block st in
      funcs :=
        { f_name = name; f_params = params; f_body = body; f_attrs = attrs;
          f_pos = pos }
        :: !funcs;
      loop ()
  in
  loop ();
  { u_name = module_name; u_funcs = List.rev !funcs; u_globals = List.rev !globals }

(** Parse one module from source text. *)
let parse ~module_name ~file src =
  parse_unit ~module_name (Lexer.tokenize ~file src)
