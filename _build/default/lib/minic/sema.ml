(** Semantic analysis for MiniC.

    Checks one module against the set of names exported by the other
    modules of the program (sema runs after all modules have been
    parsed, mirroring the isom compile model where the whole program is
    visible at once).

    Note that a call whose argument count disagrees with the callee's
    parameter count is a *warning*, not an error — exactly the kind of
    dusty-deck C the paper's legality screen has to cope with
    ("argument arity differences" make a site illegal to transform but
    the program still compiles and runs). *)

open Ast

(** Names exported by the rest of the program. *)
type ext_env = {
  ext_funcs : (string * int) list;  (** exported function name, arity *)
  ext_globals : (string * int * bool) list;
      (** public global name, size, is-array *)
}

let empty_ext = { ext_funcs = []; ext_globals = [] }

(** What a name visible in a module resolves to (ignoring locals). *)
type kind =
  | Kglobal of { size : int; array : bool }
  | Kfunc of int     (** a defined function with its arity *)
  | Kbuiltin of int  (** a builtin with its arity *)

let builtin_arities =
  [ ("print_int", 1); ("print_char", 1); ("alloc", 1); ("abort", 0) ]

(** Module-level name environment: everything visible in [u] except
    locals.  Module definitions shadow external ones, which shadow
    builtins. *)
type env = { e_names : (string * kind) list }

let build_env (ext : ext_env) (u : unit_) : env =
  let module_globals =
    List.map
      (fun g -> (g.g_name, Kglobal { size = g.g_size; array = g.g_is_array }))
      u.u_globals
  in
  let module_funcs =
    List.map (fun f -> (f.f_name, Kfunc (List.length f.f_params))) u.u_funcs
  in
  let externals =
    List.map
      (fun (n, s, a) -> (n, Kglobal { size = s; array = a }))
      ext.ext_globals
    @ List.map (fun (n, a) -> (n, Kfunc a)) ext.ext_funcs
  in
  let builtins = List.map (fun (n, a) -> (n, Kbuiltin a)) builtin_arities in
  { e_names = module_globals @ module_funcs @ externals @ builtins }

let lookup env name = List.assoc_opt name env.e_names

(** Exports of a parsed module, for building the [ext_env] of the
    others. *)
let exports_of_unit (u : unit_) : ext_env =
  { ext_funcs =
      List.filter_map
        (fun f ->
          if f.f_attrs.fa_static then None
          else Some (f.f_name, List.length f.f_params))
        u.u_funcs;
    ext_globals =
      List.filter_map
        (fun g ->
          if g.g_public then Some (g.g_name, g.g_size, g.g_is_array) else None)
        u.u_globals }

let combine_exts exts =
  { ext_funcs = List.concat_map (fun e -> e.ext_funcs) exts;
    ext_globals = List.concat_map (fun e -> e.ext_globals) exts }

(* ------------------------------------------------------------------ *)

type checker = {
  env : env;
  mutable diags : Diag.t list;
  mutable scopes : string list list;  (** innermost first *)
  mutable loop_depth : int;
}

let report c d = c.diags <- d :: c.diags

let in_scope c name = List.exists (List.mem name) c.scopes

let declare c pos name =
  match c.scopes with
  | [] -> invalid_arg "Sema.declare: no open scope"
  | scope :: rest ->
    if List.mem name scope then
      report c (Diag.error pos "duplicate declaration of %s" name);
    c.scopes <- (name :: scope) :: rest

let push_scope c = c.scopes <- [] :: c.scopes

let pop_scope c =
  match c.scopes with
  | [] -> invalid_arg "Sema.pop_scope: no open scope"
  | _ :: rest -> c.scopes <- rest

let rec check_expr c (e : expr) =
  match e.e with
  | Int _ -> ()
  | Ident name ->
    if not (in_scope c name) then (
      match lookup c.env name with
      | Some (Kglobal _) -> ()
      | Some (Kfunc _) | Some (Kbuiltin _) ->
        (* Decays to a function handle; legal. *)
        ()
      | None -> report c (Diag.error e.e_pos "undefined identifier %s" name))
  | Index (base, idx) ->
    check_expr c base;
    check_expr c idx
  | Call (name, args) ->
    List.iter (check_expr c) args;
    let nargs = List.length args in
    if in_scope c name then
      (* Indirect call through a local function handle. *)
      ()
    else (
      match lookup c.env name with
      | Some (Kfunc arity) | Some (Kbuiltin arity) ->
        if arity <> nargs then
          report c
            (Diag.warning e.e_pos
               "call to %s passes %d argument(s) but it takes %d" name nargs
               arity)
      | Some (Kglobal _) ->
        report c
          (Diag.warning e.e_pos
             "call through global %s (indirect; cannot be checked)" name)
      | None -> report c (Diag.error e.e_pos "call to undefined %s" name))
  | Addr_of name ->
    if in_scope c name then
      report c (Diag.error e.e_pos "cannot take the address of local %s" name)
    else if lookup c.env name = None then
      report c (Diag.error e.e_pos "undefined identifier %s" name)
  | Unary (_, a) -> check_expr c a
  | Binary (_, a, b) ->
    check_expr c a;
    check_expr c b

let rec check_stmt c (s : stmt) =
  match s.s with
  | Decl (name, e) ->
    check_expr c e;
    declare c s.s_pos name
  | Assign (name, e) ->
    check_expr c e;
    if not (in_scope c name) then (
      match lookup c.env name with
      | Some (Kglobal { array; _ }) ->
        if array then
          report c
            (Diag.error s.s_pos "cannot assign to array %s (index it)" name)
      | Some (Kfunc _) | Some (Kbuiltin _) ->
        report c (Diag.error s.s_pos "cannot assign to function %s" name)
      | None -> report c (Diag.error s.s_pos "assignment to undefined %s" name))
  | Index_assign (base, idx, value) ->
    check_expr c base;
    check_expr c idx;
    check_expr c value
  | If (cond, then_, else_) ->
    check_expr c cond;
    check_block c then_;
    check_block c else_
  | While (cond, body) ->
    check_expr c cond;
    c.loop_depth <- c.loop_depth + 1;
    check_block c body;
    c.loop_depth <- c.loop_depth - 1
  | For (init, cond, step, body) ->
    push_scope c;
    Option.iter (check_stmt c) init;
    Option.iter (check_expr c) cond;
    c.loop_depth <- c.loop_depth + 1;
    check_block c body;
    Option.iter (check_stmt c) step;
    c.loop_depth <- c.loop_depth - 1;
    pop_scope c
  | Return e -> Option.iter (check_expr c) e
  | Expr e -> check_expr c e
  | Break | Continue ->
    if c.loop_depth = 0 then
      report c (Diag.error s.s_pos "break/continue outside of a loop")

and check_block c block =
  push_scope c;
  List.iter (check_stmt c) block;
  pop_scope c

let check_func c (f : func) =
  c.scopes <- [ [] ];
  c.loop_depth <- 0;
  List.iter (fun p -> declare c f.f_pos p) f.f_params;
  List.iter (check_stmt c) f.f_body;
  c.scopes <- []

(** Check one module.  Returns all diagnostics (errors and warnings). *)
let check ?(ext = empty_ext) (u : unit_) : Diag.t list =
  let env = build_env ext u in
  let c = { env; diags = []; scopes = []; loop_depth = 0 } in
  (* Duplicate top-level names within the module. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem seen f.f_name then
        report c (Diag.error f.f_pos "duplicate definition of %s" f.f_name);
      Hashtbl.replace seen f.f_name ();
      let ps = List.sort_uniq compare f.f_params in
      if List.length ps <> List.length f.f_params then
        report c (Diag.error f.f_pos "duplicate parameter names in %s" f.f_name))
    u.u_funcs;
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem seen g.g_name then
        report c (Diag.error g.g_pos "duplicate definition of %s" g.g_name);
      Hashtbl.replace seen g.g_name ())
    u.u_globals;
  List.iter (check_func c) u.u_funcs;
  List.rev c.diags

(** Check a whole multi-module program; diagnostics for all modules. *)
let check_program (units : unit_ list) : Diag.t list =
  let all_exports = List.map exports_of_unit units in
  List.concat_map
    (fun u ->
      let others =
        List.filteri
          (fun i _ -> (List.nth units i).u_name <> u.u_name)
          all_exports
      in
      check ~ext:(combine_exts others) u)
    units
