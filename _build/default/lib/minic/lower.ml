(** Lowering MiniC to ucode.

    One routine per function; globals become ucode globals.  Names in
    calls, [faddr] and [gaddr] stay source-level — the linker resolves
    and mangles them.  Call sites get module-local ids (the linker
    renumbers them to program-unique ids).

    Conventions:
    - every local variable owns a dedicated register (assignment is a
      [Move] into it), so expression temporaries can be reused freely;
    - conditions are values: any nonzero register is true;
    - comparison and logical operators produce 0 or 1;
    - a function that falls off its end returns 0. *)

open Ast
module U = Ucode.Types
module B = Ucode.Builder

exception Lower_error of Diag.t

let fail pos fmt =
  Printf.ksprintf (fun m -> raise (Lower_error (Diag.error pos "%s" m))) fmt

type ctx = {
  b : B.t;
  env : Sema.env;
  mutable scopes : (string * U.reg) list list;  (** innermost first *)
  mutable loops : (U.label * U.label) list;     (** (break, continue) *)
}

let lookup_local ctx name =
  let rec search = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some r -> Some r
      | None -> search rest)
  in
  search ctx.scopes

let declare_local ctx name reg =
  match ctx.scopes with
  | scope :: rest -> ctx.scopes <- ((name, reg) :: scope) :: rest
  | [] -> invalid_arg "Lower.declare_local: no open scope"

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> invalid_arg "Lower.pop_scope: no open scope"

(** If the previous statement sealed the current block (return, break,
    continue), open a fresh block for the (unreachable) code that
    follows; CFG simplification deletes it later. *)
let ensure_block ctx =
  if not (B.in_block ctx.b) then B.start_block ctx.b (B.fresh_label ctx.b)

let binop_of_ast = function
  | Add -> U.Add | Sub -> U.Sub | Mul -> U.Mul | Div -> U.Div | Rem -> U.Rem
  | Band -> U.And | Bor -> U.Or | Bxor -> U.Xor | Shl -> U.Shl | Shr -> U.Shr
  | Eq -> U.Eq | Ne -> U.Ne | Lt -> U.Lt | Le -> U.Le | Gt -> U.Gt | Ge -> U.Ge
  | Land | Lor -> invalid_arg "binop_of_ast: short-circuit operator"

let rec lower_expr ctx (e : expr) : U.reg =
  match e.e with
  | Int v -> B.const ctx.b v
  | Ident name -> (
    match lookup_local ctx name with
    | Some r -> r
    | None -> (
      match Sema.lookup ctx.env name with
      | Some (Sema.Kglobal { array = true; _ }) ->
        (* Arrays decay to their address. *)
        let d = B.fresh_reg ctx.b in
        B.emit ctx.b (U.Gaddr (d, name));
        d
      | Some (Sema.Kglobal _) ->
        let addr = B.fresh_reg ctx.b in
        B.emit ctx.b (U.Gaddr (addr, name));
        B.load ctx.b addr
      | Some (Sema.Kfunc _) ->
        let d = B.fresh_reg ctx.b in
        B.emit ctx.b (U.Faddr (d, name));
        d
      | Some (Sema.Kbuiltin _) ->
        fail e.e_pos "cannot take the value of builtin %s" name
      | None -> fail e.e_pos "undefined identifier %s" name))
  | Index (base, idx) ->
    let addr = lower_address ctx base idx in
    B.load ctx.b addr
  | Call (name, args) -> (
    match lower_call ctx ~want_value:true e.e_pos name args with
    | Some r -> r
    | None -> assert false)
  | Addr_of name -> (
    match Sema.lookup ctx.env name with
    | Some (Sema.Kglobal _) ->
      let d = B.fresh_reg ctx.b in
      B.emit ctx.b (U.Gaddr (d, name));
      d
    | Some (Sema.Kfunc _) ->
      let d = B.fresh_reg ctx.b in
      B.emit ctx.b (U.Faddr (d, name));
      d
    | Some (Sema.Kbuiltin _) | None ->
      fail e.e_pos "cannot take the address of %s" name)
  | Unary (Neg, a) ->
    let ra = lower_expr ctx a in
    B.unop ctx.b U.Neg ra
  | Unary (Lnot, a) ->
    let ra = lower_expr ctx a in
    B.unop ctx.b U.Not ra
  | Binary (Land, a, b) -> lower_short_circuit ctx ~is_and:true a b
  | Binary (Lor, a, b) -> lower_short_circuit ctx ~is_and:false a b
  | Binary (op, a, b) ->
    let ra = lower_expr ctx a in
    let rb = lower_expr ctx b in
    B.binop ctx.b (binop_of_ast op) ra rb

(** Address of [base[idx]]. *)
and lower_address ctx base idx =
  let base_reg = lower_expr ctx base in
  let idx_reg = lower_expr ctx idx in
  B.binop ctx.b U.Add base_reg idx_reg

(** [a && b] / [a || b] with proper short-circuiting; the result (0 or
    1) is written into a dedicated register along both paths. *)
and lower_short_circuit ctx ~is_and a b =
  let b_ = ctx.b in
  let res = B.fresh_reg b_ in
  let l_rhs = B.fresh_label b_ in
  let l_short = B.fresh_label b_ in
  let l_join = B.fresh_label b_ in
  let ra = lower_expr ctx a in
  if is_and then B.seal b_ (U.Branch (ra, l_rhs, l_short))
  else B.seal b_ (U.Branch (ra, l_short, l_rhs));
  B.start_block b_ l_rhs;
  let rb = lower_expr ctx b in
  let zero = B.const b_ 0L in
  let norm = B.binop b_ U.Ne rb zero in
  B.emit b_ (U.Move (res, norm));
  B.seal b_ (U.Jump l_join);
  B.start_block b_ l_short;
  B.emit b_ (U.Const (res, if is_and then 0L else 1L));
  B.seal b_ (U.Jump l_join);
  B.start_block b_ l_join;
  res

(** Lower a call.  Resolution: a local or global variable holding a
    function handle gives an indirect call; a known function or builtin
    gives a direct call by (still unresolved) name. *)
and lower_call ctx ~want_value pos name args =
  let arg_regs = List.map (lower_expr ctx) args in
  let dst = if want_value then Some (B.fresh_reg ctx.b) else None in
  let callee =
    match lookup_local ctx name with
    | Some r -> U.Indirect r
    | None -> (
      match Sema.lookup ctx.env name with
      | Some (Sema.Kfunc _) | Some (Sema.Kbuiltin _) -> U.Direct name
      | Some (Sema.Kglobal { array = false; _ }) ->
        let addr = B.fresh_reg ctx.b in
        B.emit ctx.b (U.Gaddr (addr, name));
        let handle = B.load ctx.b addr in
        U.Indirect handle
      | Some (Sema.Kglobal _) -> fail pos "cannot call array %s" name
      | None -> fail pos "call to undefined %s" name)
  in
  B.call ctx.b ~dst callee arg_regs;
  dst

let rec lower_stmt ctx (s : stmt) =
  ensure_block ctx;
  match s.s with
  | Decl (name, e) ->
    let value = lower_expr ctx e in
    let slot = B.fresh_reg ctx.b in
    B.emit ctx.b (U.Move (slot, value));
    declare_local ctx name slot
  | Assign (name, e) -> (
    match lookup_local ctx name with
    | Some slot ->
      let value = lower_expr ctx e in
      B.emit ctx.b (U.Move (slot, value))
    | None -> (
      match Sema.lookup ctx.env name with
      | Some (Sema.Kglobal _) ->
        let value = lower_expr ctx e in
        let addr = B.fresh_reg ctx.b in
        B.emit ctx.b (U.Gaddr (addr, name));
        B.emit ctx.b (U.Store (addr, value))
      | _ -> fail s.s_pos "assignment to undefined %s" name))
  | Index_assign (base, idx, e) ->
    let addr = lower_address ctx base idx in
    let value = lower_expr ctx e in
    B.emit ctx.b (U.Store (addr, value))
  | If (cond, then_, else_) ->
    let rc = lower_expr ctx cond in
    let l_then = B.fresh_label ctx.b in
    let l_else = B.fresh_label ctx.b in
    let l_join = B.fresh_label ctx.b in
    B.seal ctx.b (U.Branch (rc, l_then, l_else));
    B.start_block ctx.b l_then;
    lower_block ctx then_;
    if B.in_block ctx.b then B.seal ctx.b (U.Jump l_join);
    B.start_block ctx.b l_else;
    lower_block ctx else_;
    if B.in_block ctx.b then B.seal ctx.b (U.Jump l_join);
    B.start_block ctx.b l_join
  | While (cond, body) ->
    let l_cond = B.fresh_label ctx.b in
    let l_body = B.fresh_label ctx.b in
    let l_exit = B.fresh_label ctx.b in
    B.seal ctx.b (U.Jump l_cond);
    B.start_block ctx.b l_cond;
    let rc = lower_expr ctx cond in
    B.seal ctx.b (U.Branch (rc, l_body, l_exit));
    B.start_block ctx.b l_body;
    ctx.loops <- (l_exit, l_cond) :: ctx.loops;
    lower_block ctx body;
    ctx.loops <- List.tl ctx.loops;
    if B.in_block ctx.b then B.seal ctx.b (U.Jump l_cond);
    B.start_block ctx.b l_exit
  | For (init, cond, step, body) ->
    push_scope ctx;
    Option.iter (lower_stmt ctx) init;
    let l_cond = B.fresh_label ctx.b in
    let l_body = B.fresh_label ctx.b in
    let l_step = B.fresh_label ctx.b in
    let l_exit = B.fresh_label ctx.b in
    B.seal ctx.b (U.Jump l_cond);
    B.start_block ctx.b l_cond;
    (match cond with
    | Some c ->
      let rc = lower_expr ctx c in
      B.seal ctx.b (U.Branch (rc, l_body, l_exit))
    | None -> B.seal ctx.b (U.Jump l_body));
    B.start_block ctx.b l_body;
    ctx.loops <- (l_exit, l_step) :: ctx.loops;
    lower_block ctx body;
    ctx.loops <- List.tl ctx.loops;
    if B.in_block ctx.b then B.seal ctx.b (U.Jump l_step);
    B.start_block ctx.b l_step;
    Option.iter (lower_stmt ctx) step;
    B.seal ctx.b (U.Jump l_cond);
    B.start_block ctx.b l_exit;
    pop_scope ctx
  | Return (Some e) ->
    let r = lower_expr ctx e in
    B.seal ctx.b (U.Return (Some r))
  | Return None -> B.seal ctx.b (U.Return None)
  | Expr { e = Call (name, args); e_pos } ->
    ignore (lower_call ctx ~want_value:false e_pos name args)
  | Expr e -> ignore (lower_expr ctx e)
  | Break -> (
    match ctx.loops with
    | (l_break, _) :: _ -> B.seal ctx.b (U.Jump l_break)
    | [] -> fail s.s_pos "break outside of a loop")
  | Continue -> (
    match ctx.loops with
    | (_, l_continue) :: _ -> B.seal ctx.b (U.Jump l_continue)
    | [] -> fail s.s_pos "continue outside of a loop")

and lower_block ctx block =
  push_scope ctx;
  List.iter (lower_stmt ctx) block;
  pop_scope ctx

let attrs_of_func (f : func) : U.attrs =
  { U.a_varargs = f.f_attrs.fa_varargs; a_alloca = f.f_attrs.fa_alloca;
    a_fp_model = (if f.f_attrs.fa_fprelaxed then U.Relaxed else U.Strict);
    a_no_inline = f.f_attrs.fa_noinline; a_no_clone = f.f_attrs.fa_noclone }

let lower_func ~module_name ~env ~fresh_site (f : func) : U.routine =
  let linkage = if f.f_attrs.fa_static then U.Module_local else U.Exported in
  let b, params =
    B.create ~name:f.f_name ~module_name ~attrs:(attrs_of_func f) ~linkage
      ~nparams:(List.length f.f_params) ~fresh_site ()
  in
  let ctx = { b; env; scopes = [ [] ]; loops = [] } in
  List.iter2 (fun name reg -> declare_local ctx name reg) f.f_params params;
  let entry = B.fresh_label b in
  B.start_block b entry;
  List.iter (lower_stmt ctx) f.f_body;
  if B.in_block b then B.seal b (U.Return None);
  B.finish b

let lower_global ~module_name (g : Ast.global) : U.global =
  { U.g_name = g.g_name; g_module = module_name; g_size = g.g_size;
    g_init = g.g_init;
    g_linkage = (if g.g_public then U.Exported else U.Module_local) }

(** Lower a checked module to linkable IR. *)
let lower_unit ?(ext = Sema.empty_ext) (u : unit_) : Ucode.Linker.module_ir =
  let env = Sema.build_env ext u in
  let fresh_site, _count = B.site_counter () in
  { Ucode.Linker.m_name = u.u_name;
    m_routines =
      List.map (lower_func ~module_name:u.u_name ~env ~fresh_site) u.u_funcs;
    m_globals = List.map (lower_global ~module_name:u.u_name) u.u_globals }
