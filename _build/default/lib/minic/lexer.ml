(** Hand-written lexer for MiniC.

    Produces the full token list up front (MiniC sources are small);
    each token carries its starting position.  Supports decimal and
    hexadecimal integers, character literals, [//] line comments and
    [/* */] block comments (non-nesting, like C). *)

type lexed = { tok : Token.t; pos : Diag.pos }

exception Lex_error of Diag.t

let fail pos fmt =
  Printf.ksprintf (fun m -> raise (Lex_error (Diag.error pos "%s" m))) fmt

type state = {
  src : string;
  file : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let pos_of st =
  { Diag.file = st.file; line = st.line; col = st.off - st.bol + 1 }

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.off + 1
  | _ -> ());
  st.off <- st.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    let start = pos_of st in
    advance st;
    advance st;
    let rec loop () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        loop ()
      | None, _ -> fail start "unterminated block comment"
    in
    loop ();
    skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let pos = pos_of st in
  let start = st.off in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done
  end
  else
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
  let text = String.sub st.src start (st.off - start) in
  match Int64.of_string_opt text with
  | Some v -> { tok = Token.INT v; pos }
  | None -> fail pos "invalid integer literal %s" text

let lex_char st =
  let pos = pos_of st in
  advance st;
  let value =
    match peek st with
    | Some '\\' -> (
      advance st;
      let c =
        match peek st with
        | Some 'n' -> '\n'
        | Some 't' -> '\t'
        | Some '0' -> '\000'
        | Some '\\' -> '\\'
        | Some '\'' -> '\''
        | Some c -> fail pos "unknown escape \\%c" c
        | None -> fail pos "unterminated character literal"
      in
      advance st;
      Int64.of_int (Char.code c))
    | Some c ->
      advance st;
      Int64.of_int (Char.code c)
    | None -> fail pos "unterminated character literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> fail pos "unterminated character literal");
  { tok = Token.INT value; pos }

let lex_ident st =
  let pos = pos_of st in
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  let tok =
    match List.assoc_opt text Token.keywords with
    | Some kw -> kw
    | None -> Token.IDENT text
  in
  { tok; pos }

let lex_operator st =
  let pos = pos_of st in
  let two tok = advance st; advance st; { tok; pos } in
  let one tok = advance st; { tok; pos } in
  match (peek st, peek2 st) with
  | Some '<', Some '<' -> two Token.SHL
  | Some '>', Some '>' -> two Token.SHR
  | Some '<', Some '=' -> two Token.LE
  | Some '>', Some '=' -> two Token.GE
  | Some '=', Some '=' -> two Token.EQ
  | Some '!', Some '=' -> two Token.NE
  | Some '&', Some '&' -> two Token.AMPAMP
  | Some '|', Some '|' -> two Token.PIPEPIPE
  | Some '(', _ -> one Token.LPAREN
  | Some ')', _ -> one Token.RPAREN
  | Some '{', _ -> one Token.LBRACE
  | Some '}', _ -> one Token.RBRACE
  | Some '[', _ -> one Token.LBRACKET
  | Some ']', _ -> one Token.RBRACKET
  | Some ',', _ -> one Token.COMMA
  | Some ';', _ -> one Token.SEMI
  | Some '=', _ -> one Token.ASSIGN
  | Some '+', _ -> one Token.PLUS
  | Some '-', _ -> one Token.MINUS
  | Some '*', _ -> one Token.STAR
  | Some '/', _ -> one Token.SLASH
  | Some '%', _ -> one Token.PERCENT
  | Some '&', _ -> one Token.AMP
  | Some '|', _ -> one Token.PIPE
  | Some '^', _ -> one Token.CARET
  | Some '!', _ -> one Token.BANG
  | Some '<', _ -> one Token.LT
  | Some '>', _ -> one Token.GT
  | Some c, _ -> fail pos "unexpected character %C" c
  | None, _ -> { tok = Token.EOF; pos }

(** Tokenize a whole source file.  The result always ends with [EOF]. *)
let tokenize ~file src : lexed list =
  let st = { src; file; off = 0; line = 1; bol = 0 } in
  let rec loop acc =
    skip_ws_and_comments st;
    match peek st with
    | None -> List.rev ({ tok = Token.EOF; pos = pos_of st } :: acc)
    | Some c when is_digit c -> loop (lex_number st :: acc)
    | Some '\'' -> loop (lex_char st :: acc)
    | Some c when is_ident_start c -> loop (lex_ident st :: acc)
    | Some _ -> loop (lex_operator st :: acc)
  in
  loop []
