(** Hand-written lexer for MiniC: decimal/hex integers, character
    literals with escapes, [//] and [/* */] comments.  Produces the
    whole token list up front; every token carries its position. *)

type lexed = { tok : Token.t; pos : Diag.pos }

exception Lex_error of Diag.t

(** Tokenize a source file; the result always ends with [EOF]. *)
val tokenize : file:string -> string -> lexed list
