(** Semantic analysis for MiniC.  A module is checked against the
    exports of the rest of the program (the isom model: everything is
    visible at once).  Arity-mismatched calls are *warnings* — the
    dusty-deck C the paper's legality screen must cope with. *)

(** Names exported by the rest of the program. *)
type ext_env = {
  ext_funcs : (string * int) list;  (** exported name, arity *)
  ext_globals : (string * int * bool) list;  (** name, size, is-array *)
}

val empty_ext : ext_env

(** What a module-visible name resolves to (ignoring locals). *)
type kind =
  | Kglobal of { size : int; array : bool }
  | Kfunc of int     (** defined function, arity *)
  | Kbuiltin of int  (** builtin, arity *)

val builtin_arities : (string * int) list

(** Module-level name environment (shared with lowering). *)
type env

val build_env : ext_env -> Ast.unit_ -> env
val lookup : env -> string -> kind option

(** Exports of a parsed module. *)
val exports_of_unit : Ast.unit_ -> ext_env

val combine_exts : ext_env list -> ext_env

(** Check one module; all diagnostics (errors and warnings). *)
val check : ?ext:ext_env -> Ast.unit_ -> Diag.t list

(** Check a whole multi-module program. *)
val check_program : Ast.unit_ list -> Diag.t list
