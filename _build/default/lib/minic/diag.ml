(** Source positions and compiler diagnostics for MiniC. *)

type pos = { file : string; line : int; col : int }

let dummy_pos = { file = "<none>"; line = 0; col = 0 }

let pp_pos ppf p = Fmt.pf ppf "%s:%d:%d" p.file p.line p.col

type severity = Error | Warning

type t = { d_pos : pos; d_severity : severity; d_message : string }

let error pos fmt =
  Printf.ksprintf (fun m -> { d_pos = pos; d_severity = Error; d_message = m }) fmt

let warning pos fmt =
  Printf.ksprintf
    (fun m -> { d_pos = pos; d_severity = Warning; d_message = m })
    fmt

let is_error d = d.d_severity = Error

let pp ppf d =
  Fmt.pf ppf "%a: %s: %s" pp_pos d.d_pos
    (match d.d_severity with Error -> "error" | Warning -> "warning")
    d.d_message

let to_string d = Fmt.str "%a" pp d

exception Compile_error of t list

let fail_on_errors diags =
  if List.exists is_error diags then raise (Compile_error diags)
