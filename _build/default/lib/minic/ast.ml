(** Abstract syntax of MiniC.

    MiniC is the single-type (64-bit integer) C-like language the
    workloads are written in.  It was designed to exercise every
    call-site feature the paper's policies key on: multiple modules,
    [static] linkage, calls with mismatched arity, attribute-restricted
    routines ([noinline], [varargs], [alloca], [fprelaxed]), function
    values and indirect calls, global scalars and arrays. *)

type unop = Neg | Lnot  (** arithmetic negation; logical not *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit *)

type expr = { e : expr_desc; e_pos : Diag.pos }

and expr_desc =
  | Int of int64
  | Ident of string
      (** a local, a parameter, a global scalar (read), a global array
          (decays to its address) or a function (decays to its handle) *)
  | Index of expr * expr  (** [base[index]]: load through address *)
  | Call of string * expr list
      (** direct if the name denotes a function, indirect if it denotes
          a variable holding a function handle *)
  | Addr_of of string     (** [&name]: address of a global / handle of a function *)
  | Unary of unop * expr
  | Binary of binop * expr * expr

type stmt = { s : stmt_desc; s_pos : Diag.pos }

and stmt_desc =
  | Decl of string * expr              (** [var x = e;] *)
  | Assign of string * expr
  | Index_assign of expr * expr * expr (** [base[index] = value;] *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Expr of expr
  | Break
  | Continue

and block = stmt list

type func_attrs = {
  fa_static : bool;
  fa_noinline : bool;
  fa_noclone : bool;
  fa_varargs : bool;
  fa_alloca : bool;
  fa_fprelaxed : bool;
}

let default_func_attrs =
  { fa_static = false; fa_noinline = false; fa_noclone = false;
    fa_varargs = false; fa_alloca = false; fa_fprelaxed = false }

type func = {
  f_name : string;
  f_params : string list;
  f_body : block;
  f_attrs : func_attrs;
  f_pos : Diag.pos;
}

type global = {
  g_name : string;
  g_public : bool;
  g_size : int;          (** 1 for scalars *)
  g_is_array : bool;
  g_init : int64 list;
  g_pos : Diag.pos;
}

(** One source module (compilation unit). *)
type unit_ = {
  u_name : string;  (** module name, from the file name *)
  u_funcs : func list;
  u_globals : global list;
}
