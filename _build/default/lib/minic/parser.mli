(** Recursive-descent parser for MiniC (precedence climbing for binary
    operators, one-token lookahead; assignment disambiguated by parsing
    an expression and reinterpreting it as an lvalue). *)

exception Parse_error of Diag.t

(** Parse one module from already-lexed tokens. *)
val parse_unit : module_name:string -> Lexer.lexed list -> Ast.unit_

(** Lex and parse one module from source text. *)
val parse : module_name:string -> file:string -> string -> Ast.unit_
