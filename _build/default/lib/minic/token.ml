(** Tokens of the MiniC language. *)

type t =
  | INT of int64
  | IDENT of string
  (* keywords *)
  | KW_FUNC | KW_STATIC | KW_PUBLIC | KW_GLOBAL | KW_VAR
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_NOINLINE | KW_NOCLONE | KW_VARARGS | KW_ALLOCA | KW_FPRELAXED
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | ASSIGN
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | AMPAMP | PIPEPIPE | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

let keywords =
  [ ("func", KW_FUNC); ("static", KW_STATIC); ("public", KW_PUBLIC);
    ("global", KW_GLOBAL); ("var", KW_VAR); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("for", KW_FOR); ("return", KW_RETURN);
    ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("noinline", KW_NOINLINE); ("noclone", KW_NOCLONE);
    ("varargs", KW_VARARGS); ("alloca", KW_ALLOCA);
    ("fprelaxed", KW_FPRELAXED) ]

let to_string = function
  | INT i -> Int64.to_string i
  | IDENT s -> s
  | KW_FUNC -> "func" | KW_STATIC -> "static" | KW_PUBLIC -> "public"
  | KW_GLOBAL -> "global" | KW_VAR -> "var" | KW_IF -> "if"
  | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_NOINLINE -> "noinline" | KW_NOCLONE -> "noclone"
  | KW_VARARGS -> "varargs" | KW_ALLOCA -> "alloca"
  | KW_FPRELAXED -> "fprelaxed"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | COMMA -> "," | SEMI -> ";"
  | ASSIGN -> "=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | PERCENT -> "%" | AMP -> "&" | PIPE -> "|" | CARET -> "^"
  | SHL -> "<<" | SHR -> ">>" | AMPAMP -> "&&" | PIPEPIPE -> "||"
  | BANG -> "!" | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">=" | EOF -> "<eof>"
