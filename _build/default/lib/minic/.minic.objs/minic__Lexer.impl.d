lib/minic/lexer.ml: Char Diag Int64 List Printf String Token
