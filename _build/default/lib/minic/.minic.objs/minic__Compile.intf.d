lib/minic/compile.mli: Diag Ucode
