lib/minic/token.ml: Int64
