lib/minic/parser.mli: Ast Diag Lexer
