lib/minic/diag.mli: Format
