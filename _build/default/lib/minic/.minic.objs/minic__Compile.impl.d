lib/minic/compile.ml: Ast Diag Lexer List Lower Parser Sema Ucode
