lib/minic/lexer.mli: Diag Token
