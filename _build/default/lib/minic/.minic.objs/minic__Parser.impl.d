lib/minic/parser.ml: Array Ast Diag Int64 Lexer List Printf Token
