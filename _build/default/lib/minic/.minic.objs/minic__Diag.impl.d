lib/minic/diag.ml: Fmt List Printf
