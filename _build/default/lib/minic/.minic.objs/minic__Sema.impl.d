lib/minic/sema.ml: Ast Diag Hashtbl List Option
