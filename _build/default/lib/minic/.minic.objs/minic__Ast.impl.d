lib/minic/ast.ml: Diag
