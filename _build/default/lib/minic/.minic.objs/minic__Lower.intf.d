lib/minic/lower.mli: Ast Diag Sema Ucode
