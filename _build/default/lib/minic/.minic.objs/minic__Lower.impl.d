lib/minic/lower.ml: Ast Diag List Option Printf Sema Ucode
