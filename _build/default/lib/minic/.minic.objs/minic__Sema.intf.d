lib/minic/sema.mli: Ast Diag
