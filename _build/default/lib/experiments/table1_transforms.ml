(** Table 1: inline and clone information for selected benchmarks at
    the four optimization scopes.

    For each benchmark and each scope — base (per-module, heuristic),
    [c] (cross-module), [p] (profile feedback), [cp] (both) — report
    the number of inlines, clones created, clone replacements and
    routine deletions, the compile-time estimate (in the quadratic cost
    model's units, plus measured wall-clock), and the run time
    (simulated cycles). *)

(** The subset of benchmarks shown in the paper's Table 1. *)
let default_benchmarks =
  [ "008.espresso"; "022.li"; "072.sc"; "085.gcc"; "099.go"; "124.m88ksim";
    "147.vortex" ]

type row = {
  benchmark : string;
  scope : Hlo.Config.scope;
  inlines : int;
  clones : int;
  clone_replacements : int;
  deletions : int;
  compile_cost : float;       (** Σ size² after HLO *)
  compile_seconds : float;
  run_cycles : int;
}

let run_one ?input ~(base_config : Hlo.Config.t) (name : string)
    (scope : Hlo.Config.scope) : row =
  let b = Workloads.Suite.find name in
  let config = Hlo.Config.with_scope base_config scope in
  let r = Pipeline.run_benchmark ?input ~config b in
  let report = r.Pipeline.r_report in
  { benchmark = name; scope; inlines = report.Hlo.Report.inlines;
    clones = report.Hlo.Report.clones_created;
    clone_replacements = report.Hlo.Report.clone_replacements;
    deletions = report.Hlo.Report.deletions;
    compile_cost = report.Hlo.Report.cost_after;
    compile_seconds = r.Pipeline.r_compile_seconds;
    run_cycles = r.Pipeline.r_metrics.Machine.Metrics.cycles }

let run ?input ?(base_config = Hlo.Config.default)
    ?(benchmarks = default_benchmarks) () : row list =
  List.concat_map
    (fun name ->
      List.map
        (fun scope -> run_one ?input ~base_config name scope)
        [ Hlo.Config.Base; Hlo.Config.C; Hlo.Config.P; Hlo.Config.CP ])
    benchmarks

let to_table (rows : row list) : string =
  let headers =
    [ "benchmark"; "scope"; "inlines"; "clones"; "repls"; "deletions";
      "compile(cost)"; "compile(s)"; "run(cycles)" ]
  in
  let body =
    List.map
      (fun r ->
        [ r.benchmark; Hlo.Config.scope_name r.scope;
          string_of_int r.inlines; string_of_int r.clones;
          string_of_int r.clone_replacements; string_of_int r.deletions;
          Printf.sprintf "%.0f" r.compile_cost;
          Tables.f2 r.compile_seconds; string_of_int r.run_cycles ])
      rows
  in
  Tables.render ~aligns:[ Tables.Left; Tables.Left ] ~headers body
