lib/experiments/pipeline.ml: Hlo Interp Machine Printf String Sys Ucode Workloads
