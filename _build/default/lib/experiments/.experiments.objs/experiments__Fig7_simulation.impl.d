lib/experiments/fig7_simulation.ml: Hlo List Machine Pipeline Tables Workloads
