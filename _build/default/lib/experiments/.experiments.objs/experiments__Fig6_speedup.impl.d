lib/experiments/fig6_speedup.ml: Hlo List Machine Pipeline Tables Workloads
