lib/experiments/pipeline.mli: Hlo Machine Ucode Workloads
