lib/experiments/fig8_budget.ml: Hlo List Machine Pipeline Printf Tables Workloads
