lib/experiments/scaling.ml: Hlo Interp List Machine Sys Tables Ucode Workloads
