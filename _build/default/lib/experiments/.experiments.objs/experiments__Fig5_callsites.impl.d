lib/experiments/fig5_callsites.ml: List Tables Ucode Workloads
