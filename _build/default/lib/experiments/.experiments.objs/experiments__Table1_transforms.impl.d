lib/experiments/table1_transforms.ml: Hlo List Machine Pipeline Printf Tables Workloads
