lib/experiments/tables.ml: Array List Printf String
