lib/experiments/cache_sweep.ml: Hlo List Machine Pipeline Printf String Tables Workloads
