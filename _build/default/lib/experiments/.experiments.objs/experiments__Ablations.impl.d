lib/experiments/ablations.ml: Hlo Interp List Machine Pipeline Printf Tables Workloads
