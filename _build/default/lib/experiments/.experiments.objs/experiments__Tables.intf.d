lib/experiments/tables.mli:
