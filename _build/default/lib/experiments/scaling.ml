(** The §3.5 scaling study: does aggressive inlining keep paying off —
    and keep its compile-time appetite in check — as programs grow?

    The paper reports that the speedups seen on SPEC "can also be
    obtained in large production codes" (a 500k-line kernel).  We sweep
    synthetic programs ({!Workloads.Synthetic}) from a handful of
    routines up to production-like call-graph sizes and record, at each
    size: the static shape, HLO's activity under the default budget,
    the achieved speedup over a no-inline/no-clone compile, and the
    compiler's wall-clock. *)

type row = {
  sc_modules : int;
  sc_routines : int;
  sc_call_sites : int;
  sc_instructions : int;
  sc_operations : int;   (** inlines + clone replacements *)
  sc_cost_growth : float;  (** cost_after / cost_before *)
  sc_speedup : float;      (** cycles(neither) / cycles(default HLO) *)
  sc_compile_seconds : float;
}

let run_one ~modules : row =
  let program = Workloads.Synthetic.compile ~modules () in
  let profile = (Interp.train program).Interp.profile in
  let t0 = Sys.time () in
  let res = Hlo.Driver.run ~profile program in
  let compile_seconds = Sys.time () -. t0 in
  let baseline_config =
    Hlo.Config.with_transforms Hlo.Config.default ~inline:false ~clone:false
  in
  let baseline = Hlo.Driver.run ~config:baseline_config ~profile program in
  let cycles p =
    (Machine.Sim.run_program p).Machine.Sim.metrics.Machine.Metrics.cycles
  in
  let base_cycles = cycles baseline.Hlo.Driver.program in
  let opt_cycles = cycles res.Hlo.Driver.program in
  let cg = Ucode.Callgraph.build program in
  { sc_modules = modules;
    sc_routines = List.length program.Ucode.Types.p_routines;
    sc_call_sites = Ucode.Callgraph.total_sites cg;
    sc_instructions = Ucode.Size.program_size program;
    sc_operations = Hlo.Report.total_operations res.Hlo.Driver.report;
    sc_cost_growth =
      (if res.Hlo.Driver.report.Hlo.Report.cost_before > 0.0 then
         res.Hlo.Driver.report.Hlo.Report.cost_after
         /. res.Hlo.Driver.report.Hlo.Report.cost_before
       else 1.0);
    sc_speedup = float_of_int base_cycles /. float_of_int opt_cycles;
    sc_compile_seconds = compile_seconds }

let default_sizes = [ 2; 4; 8; 16; 32 ]

let run ?(sizes = default_sizes) () : row list =
  List.map (fun modules -> run_one ~modules) sizes

let to_table (rows : row list) : string =
  Tables.render
    ~headers:[ "modules"; "routines"; "sites"; "instrs"; "ops"; "cost growth";
               "speedup"; "compile(s)" ]
    (List.map
       (fun r ->
         [ string_of_int r.sc_modules; string_of_int r.sc_routines;
           string_of_int r.sc_call_sites; string_of_int r.sc_instructions;
           string_of_int r.sc_operations; Tables.f2 r.sc_cost_growth;
           Tables.f2 r.sc_speedup; Tables.f2 r.sc_compile_seconds ])
       rows)
