(** The end-to-end measurement pipeline shared by all experiments,
    mirroring the paper's methodology (§3):

    1. compile the benchmark's modules and link them (the isom path);
    2. when the scope includes profile feedback, compile the *train*
       configuration, run it instrumented in the IR interpreter, and
       keep the profile database (site and block ids are stable across
       the two configurations, which differ only in a data constant —
       just as SPEC train/ref differ only in inputs);
    3. run HLO at the requested scope/transform configuration on the
       *ref* configuration;
    4. lower to VR32, lay out, and simulate: cycles are the "run time",
       and the ucode cost model supplies the "compile time" units. *)

module U = Ucode.Types

type run = {
  r_benchmark : Workloads.Suite.benchmark;
  r_config : Hlo.Config.t;
  r_program : U.program;        (** after HLO *)
  r_report : Hlo.Report.t;
  r_metrics : Machine.Metrics.t;
  r_output : string;            (** simulated program output (checked) *)
  r_compile_seconds : float;    (** wall clock of the compile half *)
}

(** Profile a benchmark: compile at train size, run instrumented. *)
let train_profile (b : Workloads.Suite.benchmark) : Ucode.Profile.t =
  let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
  (Interp.train p).Interp.profile

(** Compile and simulate one benchmark under an HLO configuration. *)
let run_benchmark ?(input = Workloads.Suite.Ref) ?(sim_config : Machine.Sim.config option)
    ~(config : Hlo.Config.t) (b : Workloads.Suite.benchmark) : run =
  let t0 = Sys.time () in
  let profile =
    if config.Hlo.Config.use_profile then train_profile b
    else Ucode.Profile.empty
  in
  let program = Workloads.Suite.compile b ~input in
  let result = Hlo.Driver.run ~config ~profile program in
  let t1 = Sys.time () in
  let sim = Machine.Sim.run_program ?config:sim_config result.Hlo.Driver.program in
  (* Guard against miscompilation: the transformed program must produce
     the same output as the unoptimized original. *)
  let reference = Interp.run program in
  if not (String.equal reference.Interp.output sim.Machine.Sim.output) then
    invalid_arg
      (Printf.sprintf "pipeline: %s output changed under HLO (%s scope)"
         b.Workloads.Suite.b_name
         (if config.Hlo.Config.cross_module then "cross-module" else "module"));
  { r_benchmark = b; r_config = config; r_program = result.Hlo.Driver.program;
    r_report = result.Hlo.Driver.report; r_metrics = sim.Machine.Sim.metrics;
    r_output = sim.Machine.Sim.output; r_compile_seconds = t1 -. t0 }

(** The four transform configurations of Figure 6. *)
type transforms = Neither | Inline_only | Clone_only | Both

let transforms_name = function
  | Neither -> "neither"
  | Inline_only -> "inline"
  | Clone_only -> "clone"
  | Both -> "inline and clone"

let config_of_transforms ?(base = Hlo.Config.default) = function
  | Neither -> Hlo.Config.with_transforms base ~inline:false ~clone:false
  | Inline_only -> Hlo.Config.with_transforms base ~inline:true ~clone:false
  | Clone_only -> Hlo.Config.with_transforms base ~inline:false ~clone:true
  | Both -> Hlo.Config.with_transforms base ~inline:true ~clone:true
