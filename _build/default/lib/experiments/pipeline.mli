(** The end-to-end measurement pipeline shared by all experiments:
    compile, (optionally) train-profile, run HLO at a configuration,
    lower, simulate — with an output-equality guard against the
    untransformed program. *)

type run = {
  r_benchmark : Workloads.Suite.benchmark;
  r_config : Hlo.Config.t;
  r_program : Ucode.Types.program;  (** after HLO *)
  r_report : Hlo.Report.t;
  r_metrics : Machine.Metrics.t;
  r_output : string;
  r_compile_seconds : float;  (** wall clock of the compile half *)
}

(** Compile at train size and run instrumented. *)
val train_profile : Workloads.Suite.benchmark -> Ucode.Profile.t

(** Compile and simulate one benchmark under an HLO configuration.
    Raises if the transformed program's output differs from the
    original's. *)
val run_benchmark :
  ?input:Workloads.Suite.input ->
  ?sim_config:Machine.Sim.config ->
  config:Hlo.Config.t ->
  Workloads.Suite.benchmark ->
  run

(** The four transform configurations of Figure 6. *)
type transforms = Neither | Inline_only | Clone_only | Both

val transforms_name : transforms -> string
val config_of_transforms : ?base:Hlo.Config.t -> transforms -> Hlo.Config.t
