(** Plain-text table rendering and small numeric helpers. *)

type align = Left | Right

(** Render rows under headers; columns sized to fit, missing [aligns]
    default to [Right]. *)
val render :
  ?aligns:align list -> headers:string list -> string list list -> string

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string

(** Geometric mean ([0.0] on the empty list). *)
val geomean : float list -> float
