(** Figure 5: static characteristics of call sites.

    For each benchmark, the call sites of the linked (unoptimized)
    program are classified as external / indirect / cross-module /
    within-module / recursive, plus the total count — the paper's
    stacked bars with the total printed at the right. *)

module CG = Ucode.Callgraph

type row = {
  benchmark : string;
  suite : Workloads.Suite.spec_suite;
  counts : (CG.site_class * int) list;
  total : int;
}

let classify_benchmark (b : Workloads.Suite.benchmark) : row =
  let p = Workloads.Suite.compile b ~input:Workloads.Suite.Ref in
  let cg = CG.build p in
  { benchmark = b.Workloads.Suite.b_name; suite = b.Workloads.Suite.b_suite;
    counts = CG.classify cg; total = CG.total_sites cg }

let run () : row list = List.map classify_benchmark Workloads.Suite.all

let to_table (rows : row list) : string =
  let headers =
    "benchmark" :: List.map CG.site_class_name CG.all_site_classes @ [ "total" ]
  in
  let body =
    List.map
      (fun r ->
        r.benchmark
        :: List.map (fun c -> string_of_int (List.assoc c r.counts))
             CG.all_site_classes
        @ [ string_of_int r.total ])
      rows
  in
  Tables.render ~aligns:[ Tables.Left ] ~headers body
