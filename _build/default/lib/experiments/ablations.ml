(** Ablation studies for the design choices DESIGN.md calls out.

    Each study toggles one mechanism and reports what it buys on a
    subset of the suite:

    - {b staging}: the budget is released in stages across passes
      (Figure 2's [S[0..limit-1]]) versus handing the whole allowance
      to pass 0;
    - {b cold-penalty}: the inliner's penalty for call sites executed
      less often than their caller's entry versus treating all sites
      by raw frequency;
    - {b outlining}: the §5 "aggressive outlining" extension on/off;
    - {b positioning}: Pettis–Hansen profile-guided code positioning
      of the post-HLO image versus program-order layout, measured on a
      deliberately small I-cache where placement conflicts matter. *)

type variant_row = {
  a_benchmark : string;
  a_variant : string;
  a_cycles : int;
  a_detail : string;  (** study-specific extra column *)
}

type study = {
  st_name : string;
  st_detail_label : string;
  st_rows : variant_row list;
}

let default_benchmarks = [ "022.li"; "124.m88ksim"; "147.vortex"; "072.sc" ]

let profile_and_program ?(input = Workloads.Suite.Train) name =
  let b = Workloads.Suite.find name in
  let profile = Pipeline.train_profile b in
  let program = Workloads.Suite.compile b ~input in
  (profile, program)

let simulate ?sim_config p = (Machine.Sim.run_program ?config:sim_config p)

(* ------------------------------------------------------------------ *)

let staging ?input ?(benchmarks = default_benchmarks) () : study =
  let rows =
    List.concat_map
      (fun name ->
        let profile, program = profile_and_program ?input name in
        let run staging label =
          let config = { Hlo.Config.default with Hlo.Config.staging } in
          let res = Hlo.Driver.run ~config ~profile program in
          let sim = simulate res.Hlo.Driver.program in
          { a_benchmark = name; a_variant = label;
            a_cycles = sim.Machine.Sim.metrics.Machine.Metrics.cycles;
            a_detail =
              string_of_int (Hlo.Report.total_operations res.Hlo.Driver.report) }
        in
        [ run [ 0.25; 0.5; 0.75; 1.0 ] "staged";
          run [ 1.0 ] "all-upfront" ])
      benchmarks
  in
  { st_name = "budget staging"; st_detail_label = "operations"; st_rows = rows }

let cold_penalty ?input ?(benchmarks = default_benchmarks) () : study =
  let rows =
    List.concat_map
      (fun name ->
        let profile, program = profile_and_program ?input name in
        let run penalty label =
          let config =
            { Hlo.Config.default with Hlo.Config.cold_site_penalty = penalty }
          in
          let res = Hlo.Driver.run ~config ~profile program in
          let sim = simulate res.Hlo.Driver.program in
          { a_benchmark = name; a_variant = label;
            a_cycles = sim.Machine.Sim.metrics.Machine.Metrics.cycles;
            a_detail = string_of_int res.Hlo.Driver.report.Hlo.Report.inlines }
        in
        [ run 0.25 "penalized"; run 1.0 "raw-frequency" ])
      benchmarks
  in
  { st_name = "cold-site penalty"; st_detail_label = "inlines"; st_rows = rows }

let outlining ?input ?(benchmarks = default_benchmarks) () : study =
  let rows =
    List.concat_map
      (fun name ->
        let profile, program = profile_and_program ?input name in
        let run enable label =
          let config =
            { Hlo.Config.default with Hlo.Config.enable_outlining = enable }
          in
          let res = Hlo.Driver.run ~config ~profile program in
          let sim = simulate res.Hlo.Driver.program in
          { a_benchmark = name; a_variant = label;
            a_cycles = sim.Machine.Sim.metrics.Machine.Metrics.cycles;
            a_detail =
              Printf.sprintf "%d outlined / cost %.0f"
                res.Hlo.Driver.report.Hlo.Report.outlined
                res.Hlo.Driver.report.Hlo.Report.cost_after }
        in
        [ run false "inline-only"; run true "outline+inline" ])
      benchmarks
  in
  { st_name = "aggressive outlining (paper §5)";
    st_detail_label = "outlined/cost"; st_rows = rows }

(** A small, direct-mapped I-cache where routine placement decides
    which hot pairs conflict. *)
let tight_icache_sim =
  { Machine.Sim.default_config with
    Machine.Sim.icache = { Machine.Cache.sets = 48; assoc = 1; line_words = 8 } }

let positioning ?input ?(benchmarks = default_benchmarks) () : study =
  let rows =
    List.concat_map
      (fun name ->
        let profile, program = profile_and_program ?input name in
        let res = Hlo.Driver.run ~profile program in
        let optimized = res.Hlo.Driver.program in
        let trained = (Interp.train optimized).Interp.profile in
        let run p label =
          let sim = simulate ~sim_config:tight_icache_sim p in
          { a_benchmark = name; a_variant = label;
            a_cycles = sim.Machine.Sim.metrics.Machine.Metrics.cycles;
            a_detail =
              string_of_int sim.Machine.Sim.metrics.Machine.Metrics.icache_misses }
        in
        [ run optimized "program-order";
          run (Machine.Positioning.apply optimized trained) "pettis-hansen" ])
      benchmarks
  in
  { st_name = "profile-guided code positioning (Pettis-Hansen, [12])";
    st_detail_label = "I$ misses"; st_rows = rows }

let all ?input ?benchmarks () : study list =
  [ staging ?input ?benchmarks (); cold_penalty ?input ?benchmarks ();
    outlining ?input ?benchmarks (); positioning ?input ?benchmarks () ]

let to_table (s : study) : string =
  Printf.sprintf "-- %s --\n%s" s.st_name
    (Tables.render
       ~aligns:[ Tables.Left; Tables.Left ]
       ~headers:[ "benchmark"; "variant"; "run(cycles)"; s.st_detail_label ]
       (List.map
          (fun r ->
            [ r.a_benchmark; r.a_variant; string_of_int r.a_cycles; r.a_detail ])
          s.st_rows))
