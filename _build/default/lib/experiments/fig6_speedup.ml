(** Figure 6: relative speedup of the SPEC integer programs with
    inlining, cloning, or both.

    Baseline is a full cross-module, profile-fed compile with inlining
    and cloning disabled (the paper's baseline likewise kept every
    other optimization on).  Speedup = cycles(neither) / cycles(X).
    The suite summary rows are geometric means, as in the paper. *)

type row = {
  benchmark : string;
  suite : Workloads.Suite.spec_suite;
  speedup_inline : float;
  speedup_clone : float;
  speedup_both : float;
}

type result = {
  rows : row list;
  geomean92 : float * float * float;  (** inline, clone, both *)
  geomean95 : float * float * float;
}

let run_one ?input ~(base_config : Hlo.Config.t)
    (b : Workloads.Suite.benchmark) : row =
  let cycles transforms =
    let config = Pipeline.config_of_transforms ~base:base_config transforms in
    let r = Pipeline.run_benchmark ?input ~config b in
    float_of_int r.Pipeline.r_metrics.Machine.Metrics.cycles
  in
  let base = cycles Pipeline.Neither in
  { benchmark = b.Workloads.Suite.b_name; suite = b.Workloads.Suite.b_suite;
    speedup_inline = base /. cycles Pipeline.Inline_only;
    speedup_clone = base /. cycles Pipeline.Clone_only;
    speedup_both = base /. cycles Pipeline.Both }

let run ?input ?(base_config = Hlo.Config.default)
    ?(benchmarks = Workloads.Suite.all) () : result =
  let rows = List.map (run_one ?input ~base_config) benchmarks in
  let mean suite =
    let of_suite = List.filter (fun r -> r.suite = suite) rows in
    ( Tables.geomean (List.map (fun r -> r.speedup_inline) of_suite),
      Tables.geomean (List.map (fun r -> r.speedup_clone) of_suite),
      Tables.geomean (List.map (fun r -> r.speedup_both) of_suite) )
  in
  { rows; geomean92 = mean Workloads.Suite.Spec92;
    geomean95 = mean Workloads.Suite.Spec95 }

let to_table (r : result) : string =
  let headers = [ "benchmark"; "inline"; "clone"; "inline+clone" ] in
  let body =
    List.map
      (fun row ->
        [ row.benchmark; Tables.f2 row.speedup_inline;
          Tables.f2 row.speedup_clone; Tables.f2 row.speedup_both ])
      r.rows
  in
  let mean_row label (i, c, b) =
    [ label; Tables.f2 i; Tables.f2 c; Tables.f2 b ]
  in
  Tables.render ~aligns:[ Tables.Left ] ~headers
    (body
    @ [ mean_row "SPECint92 (geomean)" r.geomean92;
        mean_row "SPECint95 (geomean)" r.geomean95 ])
