(** Figure 8: incremental benefit of inlines and clone replacements in
    022.li at various budget levels.

    At each budget (percent growth allowance) the compiler is run
    repeatedly, artificially stopped after k = 0, step, 2*step, ...
    operations; each stop is compiled to the machine and simulated.
    The resulting curves show run time falling as successive
    operations land, flattening once the useful ones are done — the
    validation-of-heuristics experiment of §3.4. *)

type point = {
  operations : int;    (** cap on inline + clone-replacement operations *)
  performed : int;     (** operations actually performed *)
  run_cycles : int;
}

type curve = { budget_percent : float; points : point list }

let default_budgets = [ 25.0; 100.0; 200.0; 1000.0 ]

let run_point ?input ~(base_config : Hlo.Config.t)
    (b : Workloads.Suite.benchmark) ~budget ~cap : point =
  let config =
    { base_config with Hlo.Config.budget_percent = budget;
      max_operations = Some cap }
  in
  let r = Pipeline.run_benchmark ?input ~config b in
  { operations = cap;
    performed = Hlo.Report.total_operations r.Pipeline.r_report;
    run_cycles = r.Pipeline.r_metrics.Machine.Metrics.cycles }

(** Total operations HLO would perform at [budget] with no cap. *)
let total_operations ?input ~(base_config : Hlo.Config.t)
    (b : Workloads.Suite.benchmark) ~budget : int =
  let config =
    { base_config with Hlo.Config.budget_percent = budget;
      max_operations = None }
  in
  let r = Pipeline.run_benchmark ?input ~config b in
  Hlo.Report.total_operations r.Pipeline.r_report

let run ?input ?(base_config = Hlo.Config.default)
    ?(benchmark = "022.li") ?(budgets = default_budgets) ?(points = 12) () :
    curve list =
  let b = Workloads.Suite.find benchmark in
  List.map
    (fun budget ->
      let total = total_operations ?input ~base_config b ~budget in
      let step = max 1 (total / max 1 (points - 1)) in
      let rec caps k acc =
        if k >= total then List.rev (total :: acc) else caps (k + step) (k :: acc)
      in
      let caps = caps 0 [] in
      { budget_percent = budget;
        points =
          List.map (fun cap -> run_point ?input ~base_config b ~budget ~cap) caps })
    budgets

let to_table (curves : curve list) : string =
  let headers = [ "budget"; "op cap"; "ops done"; "run(cycles)" ] in
  let body =
    List.concat_map
      (fun c ->
        List.map
          (fun p ->
            [ Printf.sprintf "%.0f" c.budget_percent;
              string_of_int p.operations; string_of_int p.performed;
              string_of_int p.run_cycles ])
          c.points)
      curves
  in
  Tables.render ~headers body
