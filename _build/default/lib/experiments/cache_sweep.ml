(** Instruction-cache sensitivity — testing the abstract's claim that
    "a large instruction cache mitigates the impact of code expansion".

    The same pair of binaries (neither vs. full inline+clone, compiled
    once) is simulated across I-cache sizes from far-too-small to
    comfortably large.  If the claim holds, inlining's speedup should
    be depressed at small caches — where its code expansion turns into
    extra misses — and recover as capacity grows. *)

type point = {
  cw_words : int;          (** I-cache capacity in instruction words *)
  cw_base_cycles : int;    (** neither *)
  cw_opt_cycles : int;     (** inline + clone *)
  cw_speedup : float;
  cw_base_miss_rate : float;
  cw_opt_miss_rate : float;
}

type sweep = {
  cw_benchmark : string;
  cw_code_base : int;  (** image words without inlining *)
  cw_code_opt : int;   (** image words with inlining *)
  cw_points : point list;
}

(** Cache geometries swept: direct-mapped at small sizes (conflict
    pressure), two-way beyond. *)
let default_geometries : Machine.Cache.config list =
  [ { Machine.Cache.sets = 16; assoc = 1; line_words = 8 };   (*   128 w *)
    { Machine.Cache.sets = 32; assoc = 1; line_words = 8 };   (*   256 w *)
    { Machine.Cache.sets = 64; assoc = 1; line_words = 8 };   (*   512 w *)
    { Machine.Cache.sets = 128; assoc = 2; line_words = 8 };  (*  2048 w *)
    { Machine.Cache.sets = 256; assoc = 2; line_words = 8 };  (*  4096 w *)
    { Machine.Cache.sets = 1024; assoc = 2; line_words = 8 } ](* 16384 w *)

let run_one ?(input = Workloads.Suite.Train)
    ?(geometries = default_geometries) (name : string) : sweep =
  let b = Workloads.Suite.find name in
  let profile = Pipeline.train_profile b in
  let program = Workloads.Suite.compile b ~input in
  let compile transforms =
    let config = Pipeline.config_of_transforms transforms in
    (Hlo.Driver.run ~config ~profile program).Hlo.Driver.program
  in
  let base_image = Machine.Layout.build (compile Pipeline.Neither) in
  let opt_image = Machine.Layout.build (compile Pipeline.Both) in
  let points =
    List.map
      (fun geometry ->
        let config =
          { Machine.Sim.default_config with Machine.Sim.icache = geometry }
        in
        let base = Machine.Sim.run ~config base_image in
        let opt = Machine.Sim.run ~config opt_image in
        assert (String.equal base.Machine.Sim.output opt.Machine.Sim.output);
        let words =
          geometry.Machine.Cache.sets * geometry.Machine.Cache.assoc
          * geometry.Machine.Cache.line_words
        in
        { cw_words = words;
          cw_base_cycles = base.Machine.Sim.metrics.Machine.Metrics.cycles;
          cw_opt_cycles = opt.Machine.Sim.metrics.Machine.Metrics.cycles;
          cw_speedup =
            float_of_int base.Machine.Sim.metrics.Machine.Metrics.cycles
            /. float_of_int opt.Machine.Sim.metrics.Machine.Metrics.cycles;
          cw_base_miss_rate =
            Machine.Metrics.icache_miss_rate base.Machine.Sim.metrics;
          cw_opt_miss_rate =
            Machine.Metrics.icache_miss_rate opt.Machine.Sim.metrics })
      geometries
  in
  { cw_benchmark = name;
    cw_code_base = Machine.Layout.code_size base_image;
    cw_code_opt = Machine.Layout.code_size opt_image;
    cw_points = points }

let default_benchmarks = [ "126.gcc"; "147.vortex"; "130.li" ]

let run ?input ?geometries ?(benchmarks = default_benchmarks) () : sweep list =
  List.map (fun n -> run_one ?input ?geometries n) benchmarks

let to_table (sweeps : sweep list) : string =
  let body =
    List.concat_map
      (fun s ->
        List.map
          (fun p ->
            [ Printf.sprintf "%s (%d->%d w)" s.cw_benchmark s.cw_code_base
                s.cw_code_opt;
              string_of_int p.cw_words; string_of_int p.cw_base_cycles;
              string_of_int p.cw_opt_cycles; Tables.f2 p.cw_speedup;
              Printf.sprintf "%.2f%%" (100.0 *. p.cw_base_miss_rate);
              Printf.sprintf "%.2f%%" (100.0 *. p.cw_opt_miss_rate) ])
          s.cw_points)
      sweeps
  in
  Tables.render
    ~aligns:[ Tables.Left ]
    ~headers:[ "benchmark (code size)"; "I$ words"; "base cyc"; "inlined cyc";
               "speedup"; "base I$ miss"; "inlined I$ miss" ]
    body
