(** Plain-text table rendering for experiment output. *)

type align = Left | Right

(** Render rows under headers; column widths fit the content. *)
let render ?(aligns : align list = []) ~(headers : string list)
    (rows : string list list) : string =
  let ncols = List.length headers in
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> Right
  in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if n <= 0 then cell
    else
      match align_of i with
      | Left -> cell ^ String.make n ' '
      | Right -> String.make n ' ' ^ cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  "
      (List.mapi (fun i _ -> String.make widths.(i) '-') headers)
  in
  String.concat "\n" (line headers :: rule :: List.map line rows) ^ "\n"

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))
