(** Figure 7: simulation results for the PA8000-style machine running
    the SPEC95-style benchmarks under the four transform
    configurations.

    The panels, as in the paper: relative cycles, CPI, relative I-cache
    accesses, I-cache miss rate (x1000), relative D-cache accesses,
    D-cache miss rate (x100), relative branches, branch miss rate —
    each "relative" panel scaled against the run with neither inlining
    nor cloning. *)

(** The paper simulated "modified versions of the SPEC95 integer
    benchmarks with simplified input sets"; we use the train inputs of
    the 95-style suite for the same reason. *)
let default_benchmarks =
  [ "099.go"; "124.m88ksim"; "126.gcc"; "129.compress"; "130.li";
    "132.ijpeg"; "134.perl"; "147.vortex" ]

type row = {
  benchmark : string;
  transforms : Pipeline.transforms;
  metrics : Machine.Metrics.t;
  rel_cycles : float;
  cpi : float;
  rel_icache_accesses : float;
  icache_miss_x1000 : float;
  rel_dcache_accesses : float;
  dcache_miss_x100 : float;
  rel_branches : float;
  branch_miss_rate : float;
}

let run_one ?(input = Workloads.Suite.Train) ?sim_config
    ~(base_config : Hlo.Config.t) (name : string) : row list =
  let b = Workloads.Suite.find name in
  let metric_of transforms =
    let config = Pipeline.config_of_transforms ~base:base_config transforms in
    (Pipeline.run_benchmark ~input ?sim_config ~config b).Pipeline.r_metrics
  in
  let baseline = metric_of Pipeline.Neither in
  let make transforms metrics =
    { benchmark = name; transforms; metrics;
      rel_cycles =
        Machine.Metrics.relative ~baseline (fun m -> m.Machine.Metrics.cycles)
          metrics;
      cpi = Machine.Metrics.cpi metrics;
      rel_icache_accesses =
        Machine.Metrics.relative ~baseline
          (fun m -> m.Machine.Metrics.icache_accesses)
          metrics;
      icache_miss_x1000 = 1000.0 *. Machine.Metrics.icache_miss_rate metrics;
      rel_dcache_accesses =
        Machine.Metrics.relative ~baseline
          (fun m -> m.Machine.Metrics.dcache_accesses)
          metrics;
      dcache_miss_x100 = 100.0 *. Machine.Metrics.dcache_miss_rate metrics;
      rel_branches =
        Machine.Metrics.relative ~baseline (fun m -> m.Machine.Metrics.branches)
          metrics;
      branch_miss_rate = Machine.Metrics.branch_miss_rate metrics }
  in
  [ make Pipeline.Neither baseline;
    make Pipeline.Clone_only (metric_of Pipeline.Clone_only);
    make Pipeline.Inline_only (metric_of Pipeline.Inline_only);
    make Pipeline.Both (metric_of Pipeline.Both) ]

let run ?input ?sim_config ?(base_config = Hlo.Config.default)
    ?(benchmarks = default_benchmarks) () : row list =
  List.concat_map (fun n -> run_one ?input ?sim_config ~base_config n) benchmarks

let to_table (rows : row list) : string =
  let headers =
    [ "benchmark"; "config"; "rel.cycles"; "CPI"; "rel.I$acc"; "I$miss*1000";
      "rel.D$acc"; "D$miss*100"; "rel.branches"; "br.missrate" ]
  in
  let body =
    List.map
      (fun r ->
        [ r.benchmark; Pipeline.transforms_name r.transforms;
          Tables.f3 r.rel_cycles; Tables.f3 r.cpi;
          Tables.f3 r.rel_icache_accesses; Tables.f2 r.icache_miss_x1000;
          Tables.f3 r.rel_dcache_accesses; Tables.f2 r.dcache_miss_x100;
          Tables.f3 r.rel_branches; Tables.f3 r.branch_miss_rate ])
      rows
  in
  Tables.render ~aligns:[ Tables.Left; Tables.Left ] ~headers body
