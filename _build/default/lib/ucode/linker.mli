(** Linking separately produced modules into one program — the paper's
    *isom* path that makes cross-module optimization possible.

    Mangles module-local ([static]) names to [module$name], resolves
    every direct reference (same module first, then exports, then
    builtins), and renumbers call sites to be program-unique. *)

type module_ir = {
  m_name : string;
  m_routines : Types.routine list;
  m_globals : Types.global list;
}

exception Link_error of string

(** [link ~main modules] produces a validated whole program.  [main]
    (default ["main"]) must be exported by some module.  Raises
    {!Link_error} on duplicate exports, duplicate in-module
    definitions, unresolved references or a missing entry point. *)
val link : ?main:string -> module_ir list -> Types.program

(** [mangle m n] is the final name of module [m]'s static [n]. *)
val mangle : string -> string -> string
