(** The compile-time cost model: program cost is [Σ size(R)²], after
    the paper's observation that the HP-UX back end contains algorithms
    quadratic in routine size.  A cost unit is (instructions)². *)

(** Number of instructions in a routine (terminators count 1 each). *)
val routine_size : Types.routine -> int

(** [float_of_int (routine_size r) ** 2]. *)
val routine_cost : Types.routine -> float

(** Sum of {!routine_cost} over the program. *)
val program_cost : Types.program -> float

(** Cost of a hypothetical routine of [n] instructions. *)
val cost_of_size : int -> float

(** Total instruction count of the program. *)
val program_size : Types.program -> int

val block_count : Types.routine -> int
