(** The compile-time cost model.

    The paper models back-end compile time as quadratic in routine size
    (the HP-UX optimizer "contains several algorithms that are quadratic
    in the size of the routine being optimized"), so program cost is
    [Σ size(R)²] and the inliner's budget is expressed as a percentage
    increase over that sum.  We use the same model; a cost unit is
    therefore (instructions)². *)

open Types

(** Number of instructions in a routine; terminators count 1 each so an
    empty block still has weight. *)
let routine_size (r : routine) =
  List.fold_left (fun acc b -> acc + List.length b.b_instrs + 1) 0 r.r_blocks

let routine_cost r =
  let s = routine_size r in
  float_of_int (s * s)

let program_cost (p : program) =
  List.fold_left (fun acc r -> acc +. routine_cost r) 0.0 p.p_routines

(** Cost of a routine of [n] instructions, without materializing it. *)
let cost_of_size n = float_of_int (n * n)

(** Static counts used in reports. *)
let program_size (p : program) =
  List.fold_left (fun acc r -> acc + routine_size r) 0 p.p_routines

let block_count (r : routine) = List.length r.r_blocks
