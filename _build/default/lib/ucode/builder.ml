(** Imperative construction of routines.

    The front end's lowering pass and many tests need to emit code into
    a routine under construction: allocate fresh registers and blocks,
    append instructions to the "current" block, and seal blocks with a
    terminator.  This module provides that, producing an immutable
    {!Types.routine} at the end. *)

open Types

type t = {
  name : string;
  module_name : string;
  params : reg list;
  attrs : attrs;
  linkage : linkage;
  mutable next_reg : int;
  mutable next_label : int;
  (* Blocks are finished (sealed) out of order; [order] remembers
     creation order so the entry block stays first. *)
  mutable sealed : (label * block) list;
  mutable current : label option;
  mutable current_instrs : instr list;  (* reversed *)
  fresh_site : unit -> site;
}

let create ~name ~module_name ?(attrs = default_attrs) ?(linkage = Exported)
    ~nparams ~fresh_site () =
  let params = List.init nparams Fun.id in
  let b =
    { name; module_name; params; attrs; linkage; next_reg = nparams;
      next_label = 0; sealed = []; current = None; current_instrs = [];
      fresh_site }
  in
  (b, params)

let fresh_reg b =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  r

let fresh_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

(** Begin emitting into block [l].  Any unfinished block must have been
    sealed first. *)
let start_block b l =
  (match b.current with
  | Some open_block ->
    invalid_arg
      (Printf.sprintf "Builder.start_block: block %d still open" open_block)
  | None -> ());
  if List.mem_assoc l b.sealed then
    invalid_arg (Printf.sprintf "Builder.start_block: block %d already sealed" l);
  b.current <- Some l;
  b.current_instrs <- []

let emit b i =
  match b.current with
  | None -> invalid_arg "Builder.emit: no open block"
  | Some _ -> b.current_instrs <- i :: b.current_instrs

let seal b term =
  match b.current with
  | None -> invalid_arg "Builder.seal: no open block"
  | Some l ->
    let block = { b_id = l; b_instrs = List.rev b.current_instrs; b_term = term } in
    b.sealed <- (l, block) :: b.sealed;
    b.current <- None;
    b.current_instrs <- []

let in_block b = b.current <> None

(* Convenience emitters returning the destination register. *)

let const b k =
  let d = fresh_reg b in
  emit b (Const (d, k));
  d

let binop b op a1 a2 =
  let d = fresh_reg b in
  emit b (Binop (d, op, a1, a2));
  d

let unop b op a =
  let d = fresh_reg b in
  emit b (Unop (d, op, a));
  d

let load b addr =
  let d = fresh_reg b in
  emit b (Load (d, addr));
  d

let call b ~dst callee args =
  emit b (Call { c_dst = dst; c_callee = callee; c_args = args;
                 c_site = b.fresh_site () })

let finish b =
  (match b.current with
  | Some l ->
    invalid_arg (Printf.sprintf "Builder.finish: block %d still open" l)
  | None -> ());
  if b.sealed = [] then invalid_arg "Builder.finish: routine has no blocks";
  (* Entry is block 0 by convention; emit blocks in label order. *)
  let blocks =
    List.sort (fun (l1, _) (l2, _) -> compare l1 l2) (List.rev b.sealed)
    |> List.map snd
  in
  (match blocks with
  | { b_id = 0; _ } :: _ -> ()
  | _ -> invalid_arg "Builder.finish: entry block 0 missing");
  { r_name = b.name; r_module = b.module_name; r_params = b.params;
    r_blocks = blocks; r_next_reg = b.next_reg; r_next_label = b.next_label;
    r_attrs = b.attrs; r_linkage = b.linkage; r_origin = From_source }

(** A program-wide fresh-site allocator to thread through builders. *)
let site_counter () =
  let n = ref 0 in
  let fresh () =
    let s = !n in
    incr n;
    s
  in
  (fresh, fun () -> !n)
