(** Structural well-formedness checks on the IR.

    Run after the front end and after every HLO transformation in tests
    (and behind a flag in the driver): catching a malformed routine at
    the point of creation is vastly cheaper than debugging a bad
    simulation result. *)

open Types

type error = { where : string; what : string }

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

(** Check a single routine; returns all problems found. *)
let check_routine (r : routine) : error list =
  let problems = ref [] in
  let add e = problems := e :: !problems in
  let where = "routine " ^ r.r_name in
  if r.r_blocks = [] then add (err where "no blocks");
  (* Unique block ids, all in range. *)
  let ids = List.map (fun b -> b.b_id) r.r_blocks in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then add (err where "duplicate block id %d" l);
      Hashtbl.replace seen l ();
      if l < 0 || l >= r.r_next_label then
        add (err where "block id %d out of range [0,%d)" l r.r_next_label))
    ids;
  (* Parameters distinct and in range. *)
  let nparams = List.length r.r_params in
  if List.sort_uniq compare r.r_params <> List.sort compare r.r_params then
    add (err where "duplicate parameter registers");
  List.iter
    (fun p ->
      if p < 0 || p >= r.r_next_reg then
        add (err where "parameter register r%d out of range" p))
    r.r_params;
  ignore nparams;
  (* Registers in range; branch targets exist. *)
  let check_reg ctx x =
    if x < 0 || x >= r.r_next_reg then
      add (err where "%s: register r%d out of range [0,%d)" ctx x r.r_next_reg)
  in
  List.iter
    (fun b ->
      let ctx = Printf.sprintf "block %d" b.b_id in
      List.iter
        (fun i ->
          List.iter (check_reg ctx) (instr_uses i);
          Option.iter (check_reg ctx) (instr_def i))
        b.b_instrs;
      List.iter (check_reg ctx) (term_uses b.b_term);
      List.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then
            add (err where "%s: branch to missing block %d" ctx l))
        (term_targets b.b_term))
    r.r_blocks;
  List.rev !problems

(** Check a whole program: routine-level checks plus name uniqueness,
    resolvable direct callees (defined routine or builtin), resolvable
    global references, existence of [main], and site uniqueness. *)
let check_program (p : program) : error list =
  let problems = ref [] in
  let add e = problems := e :: !problems in
  List.iter (fun r -> List.iter add (check_routine r)) p.p_routines;
  let where = "program" in
  (* Unique routine and global names. *)
  let names = Hashtbl.create 64 in
  List.iter
    (fun (r : routine) ->
      if Hashtbl.mem names r.r_name then
        add (err where "duplicate routine name %s" r.r_name);
      Hashtbl.replace names r.r_name ())
    p.p_routines;
  let gnames = Hashtbl.create 64 in
  List.iter
    (fun (g : global) ->
      if Hashtbl.mem gnames g.g_name then
        add (err where "duplicate global name %s" g.g_name);
      Hashtbl.replace gnames g.g_name ();
      if g.g_size <= 0 then add (err where "global %s has size %d" g.g_name g.g_size);
      if List.length g.g_init > g.g_size then
        add (err where "global %s: initializer longer than size" g.g_name))
    p.p_globals;
  if not (Hashtbl.mem names p.p_main) then
    add (err where "main routine %s not defined" p.p_main);
  (* References resolve; sites unique and in range. *)
  let sites = Hashtbl.create 256 in
  List.iter
    (fun (r : routine) ->
      let where = "routine " ^ r.r_name in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Call { c_callee = Direct n; c_site; _ } ->
                if (not (Hashtbl.mem names n)) && not (is_builtin n) then
                  add (err where "call to undefined routine %s" n);
                if Hashtbl.mem sites c_site then
                  add (err where "duplicate call site id %d" c_site);
                Hashtbl.replace sites c_site ();
                if c_site < 0 || c_site >= p.p_next_site then
                  add (err where "site id %d out of range" c_site)
              | Call { c_site; _ } ->
                if Hashtbl.mem sites c_site then
                  add (err where "duplicate call site id %d" c_site);
                Hashtbl.replace sites c_site ();
                if c_site < 0 || c_site >= p.p_next_site then
                  add (err where "site id %d out of range" c_site)
              | Faddr (_, n) ->
                if not (Hashtbl.mem names n) then
                  add (err where "faddr of undefined routine %s" n)
              | Gaddr (_, n) ->
                if not (Hashtbl.mem gnames n) then
                  add (err where "gaddr of undefined global %s" n)
              | _ -> ())
            b.b_instrs)
        r.r_blocks)
    p.p_routines;
  List.rev !problems

exception Invalid of error list

(** Raise {!Invalid} if the program is malformed. *)
let check_program_exn p =
  match check_program p with [] -> () | errors -> raise (Invalid errors)

let errors_to_string errors =
  String.concat "\n" (List.map (fun e -> Fmt.str "%a" pp_error e) errors)
