lib/ucode/rename.ml: List Types
