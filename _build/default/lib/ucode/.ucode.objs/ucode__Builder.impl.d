lib/ucode/builder.ml: Fun List Printf Types
