lib/ucode/size.ml: List Types
