lib/ucode/pp.ml: Fmt List String Types
