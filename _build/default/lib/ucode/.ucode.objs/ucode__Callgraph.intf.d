lib/ucode/callgraph.mli: Types
