lib/ucode/validate.ml: Fmt Hashtbl List Option Printf String Types
