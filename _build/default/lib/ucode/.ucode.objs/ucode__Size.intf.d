lib/ucode/size.mli: Types
