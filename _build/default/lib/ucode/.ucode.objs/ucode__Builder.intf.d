lib/ucode/builder.mli: Types
