lib/ucode/linker.ml: Hashtbl List Printf Types Validate
