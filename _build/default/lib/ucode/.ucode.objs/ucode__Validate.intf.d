lib/ucode/validate.mli: Format Types
