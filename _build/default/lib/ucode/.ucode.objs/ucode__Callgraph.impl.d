lib/ucode/callgraph.ml: Hashtbl List Option String_map Types
