lib/ucode/rename.mli: Types
