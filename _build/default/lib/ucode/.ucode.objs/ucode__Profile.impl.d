lib/ucode/profile.ml: Fmt Int_map List Option String_map Types
