lib/ucode/profile.mli: Format Types
