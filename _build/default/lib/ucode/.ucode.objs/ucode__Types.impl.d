lib/ucode/types.ml: Int List Map Option Printf Set String
