lib/ucode/pp.mli: Format Types
