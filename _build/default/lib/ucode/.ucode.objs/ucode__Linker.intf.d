lib/ucode/linker.mli: Types
