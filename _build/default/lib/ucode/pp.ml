(** Pretty-printing of the IR, for diagnostics, tests and the
    [--dump-ir] option of the command-line compiler. *)

open Types

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let unop_name = function Neg -> "neg" | Not -> "not"

let pp_reg ppf r = Fmt.pf ppf "r%d" r
let pp_label ppf l = Fmt.pf ppf "L%d" l

let pp_callee ppf = function
  | Direct n -> Fmt.string ppf n
  | Indirect r -> Fmt.pf ppf "*%a" pp_reg r

let pp_call ppf { c_dst; c_callee; c_args; c_site } =
  (match c_dst with
  | Some d -> Fmt.pf ppf "%a = " pp_reg d
  | None -> ());
  Fmt.pf ppf "call %a(%a) @@site%d" pp_callee c_callee
    Fmt.(list ~sep:(any ", ") pp_reg)
    c_args c_site

let pp_instr ppf = function
  | Const (d, k) -> Fmt.pf ppf "%a = const %Ld" pp_reg d k
  | Faddr (d, n) -> Fmt.pf ppf "%a = faddr %s" pp_reg d n
  | Gaddr (d, n) -> Fmt.pf ppf "%a = gaddr %s" pp_reg d n
  | Unop (d, op, a) -> Fmt.pf ppf "%a = %s %a" pp_reg d (unop_name op) pp_reg a
  | Binop (d, op, a, b) ->
    Fmt.pf ppf "%a = %s %a, %a" pp_reg d (binop_name op) pp_reg a pp_reg b
  | Move (d, a) -> Fmt.pf ppf "%a = %a" pp_reg d pp_reg a
  | Load (d, a) -> Fmt.pf ppf "%a = load [%a]" pp_reg d pp_reg a
  | Store (a, v) -> Fmt.pf ppf "store [%a] = %a" pp_reg a pp_reg v
  | Call c -> pp_call ppf c

let pp_term ppf = function
  | Jump l -> Fmt.pf ppf "jump %a" pp_label l
  | Branch (r, l1, l2) ->
    Fmt.pf ppf "branch %a ? %a : %a" pp_reg r pp_label l1 pp_label l2
  | Return (Some r) -> Fmt.pf ppf "return %a" pp_reg r
  | Return None -> Fmt.pf ppf "return"

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%a:@,%a%a@]" pp_label b.b_id
    Fmt.(list ~sep:nop (pp_instr ++ cut))
    b.b_instrs pp_term b.b_term

let linkage_name = function Exported -> "export" | Module_local -> "static"

let pp_attrs ppf a =
  let flags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ (a.a_varargs, "varargs"); (a.a_alloca, "alloca");
        (a.a_fp_model = Relaxed, "fp-relaxed");
        (a.a_no_inline, "noinline"); (a.a_no_clone, "noclone") ]
  in
  if flags <> [] then Fmt.pf ppf " [%s]" (String.concat "," flags)

let pp_routine ppf r =
  Fmt.pf ppf "@[<v 2>%s routine %s.%s(%a)%a%s:@,%a@]" (linkage_name r.r_linkage)
    r.r_module r.r_name
    Fmt.(list ~sep:(any ", ") pp_reg)
    r.r_params pp_attrs r.r_attrs
    (match r.r_origin with
    | From_source -> ""
    | Clone_of orig -> " <clone of " ^ orig ^ ">")
    Fmt.(list ~sep:cut pp_block)
    r.r_blocks

let pp_global ppf g =
  Fmt.pf ppf "global %s.%s[%d]" g.g_module g.g_name g.g_size;
  if g.g_init <> [] then
    Fmt.pf ppf " = {%a}" Fmt.(list ~sep:(any ", ") int64) g.g_init

let pp_program ppf p =
  Fmt.pf ppf "@[<v>program (main = %s)@,%a@,%a@]" p.p_main
    Fmt.(list ~sep:cut pp_global)
    p.p_globals
    Fmt.(list ~sep:(cut ++ cut) pp_routine)
    p.p_routines

let routine_to_string r = Fmt.str "%a" pp_routine r
let program_to_string p = Fmt.str "%a" pp_program p
