(** Call-graph construction, strongly connected components, and the
    call-site classification of the paper's Figure 5.

    Edges are individual call *sites*, not collapsed caller/callee
    pairs: each site carries its own profile weight and calling
    context. *)

type edge = {
  e_caller : string;
  e_site : Types.site;
  e_block : Types.label;  (** caller block containing the site *)
  e_callee : Types.callee;
  e_args : Types.reg list;
  e_dst : Types.reg option;
}

type t = {
  cg_program : Types.program;
  cg_edges : edge list;  (** in program order *)
  cg_callers : edge list Types.String_map.t;
      (** callee name -> incoming edges *)
  cg_callees : edge list Types.String_map.t;
      (** caller name -> outgoing edges *)
}

val build : Types.program -> t

(** Incoming direct-call edges of a routine. *)
val incoming : t -> string -> edge list

(** Outgoing edges of a routine (direct and indirect). *)
val outgoing : t -> string -> edge list

(** Strongly connected components of the direct-call graph, bottom-up:
    every component appears after the components it calls into. *)
val sccs : t -> string list list

(** Routine names ordered callees-first (concatenated {!sccs}). *)
val bottom_up_order : t -> string list

(** Map from routine name to its SCC's id. *)
val scc_ids : t -> int Types.String_map.t

(** The Figure 5 categories. *)
type site_class =
  | External      (** callee not visible: builtins / library routines *)
  | Indirect_call (** callee computed at run time *)
  | Cross_module  (** direct call into another module *)
  | Within_module (** direct call within the same module *)
  | Recursive     (** direct call within the caller's SCC *)

val site_class_name : site_class -> string
val all_site_classes : site_class list
val classify_edge : t -> edge -> site_class

(** Histogram over all sites, in {!all_site_classes} order. *)
val classify : t -> (site_class * int) list

val total_sites : t -> int
