(** Imperative construction of routines.

    Used by the front end's lowering pass and by tests to emit code:
    allocate fresh registers and blocks, append instructions to the
    current block, seal blocks with terminators, and finally obtain an
    immutable {!Types.routine}.

    Protocol: {!create}, then repeat {!start_block} / {!emit} /
    {!seal}, then {!finish}.  Block 0 must exist and is the entry. *)

type t

(** [create ~name ~module_name ~nparams ~fresh_site ()] returns a
    builder and the parameter registers (always [0 .. nparams-1]).
    [fresh_site] allocates program-unique call-site ids. *)
val create :
  name:string ->
  module_name:string ->
  ?attrs:Types.attrs ->
  ?linkage:Types.linkage ->
  nparams:int ->
  fresh_site:(unit -> Types.site) ->
  unit ->
  t * Types.reg list

val fresh_reg : t -> Types.reg
val fresh_label : t -> Types.label

(** Begin emitting into a new block.  Raises [Invalid_argument] if a
    block is still open or the label was already sealed. *)
val start_block : t -> Types.label -> unit

(** Append an instruction to the open block. *)
val emit : t -> Types.instr -> unit

(** Close the open block with a terminator. *)
val seal : t -> Types.terminator -> unit

(** Is a block currently open? *)
val in_block : t -> bool

(** Convenience emitters returning the destination register. *)

val const : t -> int64 -> Types.reg
val binop : t -> Types.binop -> Types.reg -> Types.reg -> Types.reg
val unop : t -> Types.unop -> Types.reg -> Types.reg
val load : t -> Types.reg -> Types.reg

val call :
  t -> dst:Types.reg option -> Types.callee -> Types.reg list -> unit

(** Produce the routine.  Raises [Invalid_argument] if a block is still
    open, no blocks exist, or block 0 (the entry) is missing. *)
val finish : t -> Types.routine

(** A fresh program-wide site allocator: [(fresh, count)]. *)
val site_counter : unit -> (unit -> Types.site) * (unit -> int)
