(** Structural well-formedness checks on the IR.

    Run after the front end and (in tests, or with
    [Hlo.Config.validate]) after every transformation. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** All problems in one routine: missing blocks, duplicate or
    out-of-range block ids, out-of-range registers, branches to missing
    blocks, duplicate parameters. *)
val check_routine : Types.routine -> error list

(** Routine-level checks plus program-level ones: unique routine and
    global names, resolvable direct callees ([Faddr]/[Gaddr] targets
    included), existing [main], globally unique in-range site ids,
    sane global sizes and initializers. *)
val check_program : Types.program -> error list

exception Invalid of error list

(** Raise {!Invalid} if the program is malformed. *)
val check_program_exn : Types.program -> unit

val errors_to_string : error list -> string
