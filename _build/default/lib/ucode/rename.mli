(** Copying routine bodies with consistent renaming — the machinery
    under both the cloner and the inliner.

    Registers and labels are shifted into the target namespace; every
    copied call instruction receives a fresh program-unique site id
    (profile data is keyed by sites).  The returned maps let callers
    transfer scaled profile counts onto the copy. *)

type copy = {
  cp_blocks : Types.block list;
  cp_params : Types.reg list;  (** renamed formal parameters *)
  cp_entry : Types.label;      (** renamed entry label *)
  cp_next_reg : int;           (** one past the highest register used *)
  cp_next_label : int;
  cp_site_map : (Types.site * Types.site) list;
      (** original site -> copied site *)
  cp_block_map : (Types.label * Types.label) list;
      (** original label -> copied label *)
}

(** [copy_body r ~reg_base ~label_base ~fresh_site] copies [r]'s body
    with registers shifted by [reg_base], labels by [label_base], and
    call sites renumbered via [fresh_site]. *)
val copy_body :
  Types.routine ->
  reg_base:int ->
  label_base:int ->
  fresh_site:(unit -> Types.site) ->
  copy

(** Full copy of a routine under a new name (cloning).  Registers and
    labels keep their values; only sites are renewed.  The copy's
    origin records the transitive original. *)
val copy_routine :
  Types.routine ->
  new_name:string ->
  fresh_site:(unit -> Types.site) ->
  Types.routine * (Types.site * Types.site) list
