(** Call graph construction, SCCs and call-site classification.

    The call graph drives everything HLO does: edges are individual
    call *sites* (not collapsed caller/callee pairs) because each site
    carries its own profile weight and its own calling context.  The
    classification below is the one used in the paper's Figure 5. *)

open Types

type edge = {
  e_caller : string;
  e_site : site;
  e_block : label;            (** block of the caller containing the site *)
  e_callee : callee;
  e_args : reg list;
  e_dst : reg option;
}

type t = {
  cg_program : program;
  cg_edges : edge list;                      (** in program order *)
  cg_callers : edge list String_map.t;       (** callee name -> incoming edges *)
  cg_callees : edge list String_map.t;       (** caller name -> outgoing edges *)
}

let edges_of_routine (r : routine) =
  List.concat_map
    (fun b ->
      List.filter_map
        (function
          | Call c ->
            Some { e_caller = r.r_name; e_site = c.c_site; e_block = b.b_id;
                   e_callee = c.c_callee; e_args = c.c_args; e_dst = c.c_dst }
          | _ -> None)
        b.b_instrs)
    r.r_blocks

let build (p : program) : t =
  let edges = List.concat_map edges_of_routine p.p_routines in
  let add key e m =
    String_map.update key
      (function None -> Some [ e ] | Some es -> Some (e :: es))
      m
  in
  let callers, callees =
    List.fold_left
      (fun (callers, callees) e ->
        let callers =
          match e.e_callee with
          | Direct n -> add n e callers
          | Indirect _ -> callers
        in
        (callers, add e.e_caller e callees))
      (String_map.empty, String_map.empty) edges
  in
  let rev = String_map.map List.rev in
  { cg_program = p; cg_edges = edges; cg_callers = rev callers;
    cg_callees = rev callees }

let incoming t name =
  Option.value ~default:[] (String_map.find_opt name t.cg_callers)

let outgoing t name =
  Option.value ~default:[] (String_map.find_opt name t.cg_callees)

(* ------------------------------------------------------------------ *)
(* Strongly connected components (Tarjan), used both to classify
   recursive call sites and to produce the bottom-up order in which the
   inliner schedules its work. *)

let sccs (t : t) : string list list =
  let p = t.cg_program in
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let succs name =
    outgoing t name
    |> List.filter_map (fun e ->
           match e.e_callee with
           | Direct n when find_routine p n <> None -> Some n
           | Direct _ | Indirect _ -> None)
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter
    (fun (r : routine) ->
      if not (Hashtbl.mem index r.r_name) then strongconnect r.r_name)
    p.p_routines;
  (* Tarjan pops an SCC only after every SCC it can reach has been
     popped, so components are produced callees-first; [result]
     accumulates them in reverse, hence the final [List.rev] restores
     the bottom-up order. *)
  List.rev !result

(** Routine names ordered bottom-up: a routine appears after the
    routines it (transitively) calls, up to cycles. *)
let bottom_up_order t : string list = List.concat (sccs t)

(** Map from routine name to the id of its SCC. *)
let scc_ids t : int String_map.t =
  List.fold_left
    (fun (i, m) comp ->
      (i + 1, List.fold_left (fun m name -> String_map.add name i m) m comp))
    (0, String_map.empty) (sccs t)
  |> snd

(* ------------------------------------------------------------------ *)
(* Figure 5 call-site classification. *)

type site_class =
  | External      (** callee not visible: builtins / library routines *)
  | Indirect_call (** callee computed at run time *)
  | Cross_module  (** direct call into another module *)
  | Within_module (** direct call to another routine of the same module *)
  | Recursive     (** direct call within the caller's SCC (self or mutual) *)

let site_class_name = function
  | External -> "external"
  | Indirect_call -> "indirect"
  | Cross_module -> "cross-module"
  | Within_module -> "within-module"
  | Recursive -> "recursive"

let all_site_classes =
  [ External; Indirect_call; Cross_module; Within_module; Recursive ]

let classify_edge_with ids t (e : edge) : site_class =
  let p = t.cg_program in
  match e.e_callee with
  | Indirect _ -> Indirect_call
  | Direct n -> (
    match find_routine p n with
    | None -> External
    | Some callee ->
      let same_scc =
        match (String_map.find_opt e.e_caller ids, String_map.find_opt n ids) with
        | Some a, Some b -> a = b
        | _ -> false
      in
      if n = e.e_caller || same_scc then Recursive
      else
        let caller = find_routine_exn p e.e_caller in
        if caller.r_module = callee.r_module then Within_module
        else Cross_module)

let classify_edge t e = classify_edge_with (scc_ids t) t e

(** Histogram of site classes over the whole program. *)
let classify t : (site_class * int) list =
  let ids = scc_ids t in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let c = classify_edge_with ids t e in
      Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    t.cg_edges;
  List.map
    (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt counts c)))
    all_site_classes

let total_sites t = List.length t.cg_edges
