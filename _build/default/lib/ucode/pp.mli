(** Pretty-printing of the IR for diagnostics, tests and [--dump-ir]. *)

val binop_name : Types.binop -> string
val unop_name : Types.unop -> string
val pp_reg : Format.formatter -> Types.reg -> unit
val pp_label : Format.formatter -> Types.label -> unit
val pp_callee : Format.formatter -> Types.callee -> unit
val pp_call : Format.formatter -> Types.call -> unit
val pp_instr : Format.formatter -> Types.instr -> unit
val pp_term : Format.formatter -> Types.terminator -> unit
val pp_block : Format.formatter -> Types.block -> unit
val pp_attrs : Format.formatter -> Types.attrs -> unit
val pp_routine : Format.formatter -> Types.routine -> unit
val pp_global : Format.formatter -> Types.global -> unit
val pp_program : Format.formatter -> Types.program -> unit
val routine_to_string : Types.routine -> string
val program_to_string : Types.program -> string
