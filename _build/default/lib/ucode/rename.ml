(** Copying routine bodies with consistent renaming.

    Both the cloner and the inliner duplicate IR: registers and labels
    must be shifted into the target routine's namespace, and every call
    instruction in the copy must receive a fresh program-unique site id
    (profile data is keyed by sites).  The [site_map] returned lets the
    caller transfer scaled profile counts onto the copy. *)

open Types

type copy = {
  cp_blocks : block list;
  cp_params : reg list;       (** renamed formal parameters *)
  cp_entry : label;           (** renamed entry label *)
  cp_next_reg : int;          (** one past the highest register used *)
  cp_next_label : int;
  cp_site_map : (site * site) list;  (** original site -> copied site *)
  cp_block_map : (label * label) list;(** original label -> copied label *)
}

(** [copy_body r ~reg_base ~label_base ~fresh_site] returns a copy of
    [r]'s body with registers shifted by [reg_base], labels shifted by
    [label_base] and call sites renumbered via [fresh_site]. *)
let copy_body (r : routine) ~reg_base ~label_base ~fresh_site =
  let rename_reg x = x + reg_base in
  let rename_label l = l + label_base in
  let site_map = ref [] in
  let copy_instr i =
    let i = map_instr_regs rename_reg i in
    match i with
    | Call c ->
      let s = fresh_site () in
      site_map := (c.c_site, s) :: !site_map;
      (* [c.c_site] here is already the original site: register renaming
         does not touch sites. *)
      Call { c with c_site = s }
    | other -> other
  in
  let copy_block b =
    { b_id = rename_label b.b_id;
      b_instrs = List.map copy_instr b.b_instrs;
      b_term = map_term_labels rename_label (map_term_regs rename_reg b.b_term) }
  in
  let blocks = List.map copy_block r.r_blocks in
  { cp_blocks = blocks;
    cp_params = List.map rename_reg r.r_params;
    cp_entry = rename_label (entry_block r).b_id;
    cp_next_reg = r.r_next_reg + reg_base;
    cp_next_label = r.r_next_label + label_base;
    cp_site_map = List.rev !site_map;
    cp_block_map = List.map (fun b -> (b.b_id, rename_label b.b_id)) r.r_blocks }

(** Fresh full copy of a routine under a new name (used by the cloner).
    Registers and labels keep their values; only sites are renewed. *)
let copy_routine (r : routine) ~new_name ~fresh_site =
  let copy = copy_body r ~reg_base:0 ~label_base:0 ~fresh_site in
  ( { r with r_name = new_name; r_blocks = copy.cp_blocks;
      r_origin = Clone_of (match r.r_origin with
                           | Clone_of orig -> orig
                           | From_source -> r.r_name) },
    copy.cp_site_map )
