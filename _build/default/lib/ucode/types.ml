(** The intermediate representation shared by the whole system.

    This plays the role of HP's [ucode]: a language- and
    machine-independent program representation that the front end
    produces, that HLO transforms, and that the back end consumes.  A
    program is a set of routines tagged with the module they came from;
    each routine is a control-flow graph of basic blocks over an
    unbounded pool of virtual registers.

    Values are untyped 64-bit integers.  Memory is a flat array of
    64-bit cells addressed by integers; globals are allocated in it at
    link time.  Function values are represented by small integer
    handles produced by [Faddr], enabling indirect calls through
    registers — the ingredient behind the paper's staged
    devirtualization (clone + constant propagation turns an indirect
    call into a direct, inlinable one).

    All structures are immutable; transformations build new values. *)

type reg = int
(** A virtual register, dense from 0 within a routine. *)

type label = int
(** A basic-block identifier, unique within a routine. *)

type site = int
(** A call-site identifier, unique within a whole program.  Profile
    data is keyed by sites, so every textual call instruction — even
    copies made by inlining and cloning — gets a fresh site. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not

type callee =
  | Direct of string  (** call by name (resolved at link time) *)
  | Indirect of reg   (** call through a function handle in a register *)

type call = {
  c_dst : reg option;     (** destination of the return value, if used *)
  c_callee : callee;
  c_args : reg list;
  c_site : site;
}

type instr =
  | Const of reg * int64        (** [r <- imm] *)
  | Faddr of reg * string       (** [r <- handle of routine] *)
  | Gaddr of reg * string       (** [r <- address of global] *)
  | Unop of reg * unop * reg    (** [r <- op r1] *)
  | Binop of reg * binop * reg * reg  (** [r <- r1 op r2] *)
  | Move of reg * reg           (** [r <- r1] *)
  | Load of reg * reg           (** [r <- mem[r1]] *)
  | Store of reg * reg          (** [mem[r1] <- r2] *)
  | Call of call

type terminator =
  | Jump of label
  | Branch of reg * label * label  (** if reg <> 0 then first else second *)
  | Return of reg option

type block = {
  b_id : label;
  b_instrs : instr list;
  b_term : terminator;
}

type linkage =
  | Exported      (** visible to every module *)
  | Module_local  (** C [static]: visible only within its module *)

(** Floating-point/semantics model recorded in the IR.  The paper's
    inliner refuses sites where caller and callee disagree on whether
    reassociation is permitted; we carry the same bit. *)
type fp_model = Strict | Relaxed

type attrs = {
  a_varargs : bool;     (** callee takes a variable argument list *)
  a_alloca : bool;      (** callee dynamically allocates stack space *)
  a_fp_model : fp_model;
  a_no_inline : bool;   (** user directive: never inline this routine *)
  a_no_clone : bool;    (** user directive: never clone this routine *)
}

let default_attrs =
  { a_varargs = false; a_alloca = false; a_fp_model = Strict;
    a_no_inline = false; a_no_clone = false }

(** Where a routine came from, for reporting. *)
type origin =
  | From_source
  | Clone_of of string  (** name of the routine this was cloned from *)

type routine = {
  r_name : string;        (** unique within the program after linking *)
  r_module : string;
  r_params : reg list;
  r_blocks : block list;  (** head is the entry block *)
  r_next_reg : int;       (** all registers used are < r_next_reg *)
  r_next_label : int;     (** all labels used are < r_next_label *)
  r_attrs : attrs;
  r_linkage : linkage;
  r_origin : origin;
}

type global = {
  g_name : string;    (** unique within the program after linking *)
  g_module : string;
  g_size : int;       (** number of 64-bit cells *)
  g_init : int64 list;(** initial values for a prefix of the cells *)
  g_linkage : linkage;
}

type program = {
  p_routines : routine list;
  p_globals : global list;
  p_main : string;
  p_next_site : site;  (** fresh call-site allocator *)
}

(* ------------------------------------------------------------------ *)
(* Small accessors used throughout the code base.                      *)

let entry_block r =
  match r.r_blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("entry_block: routine " ^ r.r_name ^ " has no blocks")

let find_block r l =
  List.find_opt (fun b -> b.b_id = l) r.r_blocks

let find_block_exn r l =
  match find_block r l with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "find_block: no block %d in routine %s" l r.r_name)

let find_routine p name =
  List.find_opt (fun r -> r.r_name = name) p.p_routines

let find_routine_exn p name =
  match find_routine p name with
  | Some r -> r
  | None -> invalid_arg ("find_routine: no routine named " ^ name)

let find_global p name =
  List.find_opt (fun g -> g.g_name = name) p.p_globals

(** Replace the routine with the same name, preserving order. *)
let update_routine p r =
  let replaced = ref false in
  let routines =
    List.map
      (fun r0 -> if r0.r_name = r.r_name then (replaced := true; r) else r0)
      p.p_routines
  in
  if not !replaced then invalid_arg ("update_routine: unknown " ^ r.r_name);
  { p with p_routines = routines }

let add_routine p r =
  if find_routine p r.r_name <> None then
    invalid_arg ("add_routine: duplicate " ^ r.r_name);
  { p with p_routines = p.p_routines @ [ r ] }

let remove_routines p names =
  let dead name = List.mem name names in
  { p with p_routines = List.filter (fun r -> not (dead r.r_name)) p.p_routines }

(* ------------------------------------------------------------------ *)
(* Register use/def structure of instructions.                         *)

(** Registers read by an instruction. *)
let instr_uses = function
  | Const _ | Faddr _ | Gaddr _ -> []
  | Unop (_, _, a) -> [ a ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Move (_, a) -> [ a ]
  | Load (_, a) -> [ a ]
  | Store (a, v) -> [ a; v ]
  | Call { c_callee; c_args; _ } ->
    (match c_callee with Indirect r -> r :: c_args | Direct _ -> c_args)

(** Register written by an instruction, if any. *)
let instr_def = function
  | Const (d, _) | Faddr (d, _) | Gaddr (d, _)
  | Unop (d, _, _) | Binop (d, _, _, _) | Move (d, _) | Load (d, _) -> Some d
  | Store _ -> None
  | Call { c_dst; _ } -> c_dst

let term_uses = function
  | Jump _ -> []
  | Branch (r, _, _) -> [ r ]
  | Return (Some r) -> [ r ]
  | Return None -> []

let term_targets = function
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> [ l1; l2 ]
  | Return _ -> []

(** Apply [f] to every register mentioned by the instruction (both uses
    and the def). *)
let map_instr_regs f = function
  | Const (d, k) -> Const (f d, k)
  | Faddr (d, n) -> Faddr (f d, n)
  | Gaddr (d, n) -> Gaddr (f d, n)
  | Unop (d, op, a) -> Unop (f d, op, f a)
  | Binop (d, op, a, b) -> Binop (f d, op, f a, f b)
  | Move (d, a) -> Move (f d, f a)
  | Load (d, a) -> Load (f d, f a)
  | Store (a, v) -> Store (f a, f v)
  | Call c ->
    let c_callee =
      match c.c_callee with
      | Direct n -> Direct n
      | Indirect r -> Indirect (f r)
    in
    Call { c with c_dst = Option.map f c.c_dst; c_callee;
                  c_args = List.map f c.c_args }

(** Apply [f] to the *use* positions only, leaving defs alone. *)
let map_instr_uses f = function
  | Const (d, k) -> Const (d, k)
  | Faddr (d, n) -> Faddr (d, n)
  | Gaddr (d, n) -> Gaddr (d, n)
  | Unop (d, op, a) -> Unop (d, op, f a)
  | Binop (d, op, a, b) -> Binop (d, op, f a, f b)
  | Move (d, a) -> Move (d, f a)
  | Load (d, a) -> Load (d, f a)
  | Store (a, v) -> Store (f a, f v)
  | Call c ->
    let c_callee =
      match c.c_callee with
      | Direct n -> Direct n
      | Indirect r -> Indirect (f r)
    in
    Call { c with c_callee; c_args = List.map f c.c_args }

let map_term_regs f = function
  | Jump l -> Jump l
  | Branch (r, l1, l2) -> Branch (f r, l1, l2)
  | Return r -> Return (Option.map f r)

let map_term_labels f = function
  | Jump l -> Jump (f l)
  | Branch (r, l1, l2) -> Branch (r, f l1, f l2)
  | Return r -> Return r

(** All call instructions of a routine, in block order. *)
let calls_of_routine r =
  List.concat_map
    (fun b ->
      List.filter_map (function Call c -> Some (b, c) | _ -> None) b.b_instrs)
    r.r_blocks

(** Names of builtin external routines known to every engine.  Calls to
    these count as "external" sites in the Figure 5 classification. *)
let builtins = [ "print_int"; "print_char"; "alloc"; "abort" ]

let is_builtin name = List.mem name builtins

let builtin_arity = function
  | "print_int" | "print_char" | "alloc" -> Some 1
  | "abort" -> Some 0
  | _ -> None

(** Arity of any direct-callable name in [p]: a routine's parameter
    count or a builtin's arity. *)
let arity_in_program (p : program) name =
  match find_routine p name with
  | Some r -> Some (List.length r.r_params)
  | None -> builtin_arity name

module String_map = Map.Make (String)
module String_set = Set.Make (String)
module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)
