(** The cloning pass (Figure 3): intersect calling contexts S(E) with
    parameter usage P(R) into clone specs, greedily sweep compatible
    sites into clone groups, rank groups by benefit, materialize under
    the stage budget (free when the clonee provably dies), reuse clones
    recorded in the database, and retarget the grouped sites. *)

(** Run one pass under the stage-[pass] allotment; returns the names of
    routines created or modified. *)
val run_pass : State.t -> pass:int -> string list
