(** Mutable state threaded through one HLO run: the evolving program,
    its (coherently updated) profile, the budget, the report, and the
    clone database that lets later passes reuse earlier clones. *)

type clone_entry = {
  ce_name : string;
  ce_site_map : (Ucode.Types.site * Ucode.Types.site) list;
      (** original site -> clone-body site, for profile transfer *)
}

type t = {
  config : Config.t;
  mutable program : Ucode.Types.program;
  mutable profile : Ucode.Profile.t;
  budget : Budget.t;
  report : Report.t;
  clone_db : (string, clone_entry) Hashtbl.t;  (** spec key -> entry *)
  mutable next_clone_id : int;
  mutable stop : bool;  (** the operation cap has been reached *)
}

val create :
  Config.t -> program:Ucode.Types.program -> profile:Ucode.Profile.t -> t

(** Allocate a program-unique call-site id (bumps [p_next_site]). *)
val fresh_site : t -> Ucode.Types.site

val fresh_clone_name : t -> string -> string

(** Record an operation; trips [stop] at the configured cap. *)
val note_operation : t -> Report.operation -> unit

(** May HLO still transform? *)
val running : t -> bool
