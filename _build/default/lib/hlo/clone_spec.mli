(** Clone specifications: which formals of a callee are pinned to which
    caller-supplied constants.  Intersecting S(E) with P(R) yields the
    spec of the clone a site wants; other sites whose context matches
    share the clone (the paper's clone group). *)

type binding = Bconst of int64 | Bfun of string

type t = {
  cs_callee : string;
  cs_bindings : (int * binding) list;  (** ascending formal index *)
}

val is_empty : t -> bool
val to_string : t -> string

(** Stable key for the clone database. *)
val key : t -> string

(** Keep bindings for formals the caller pins to a constant *and* the
    callee profits from knowing; [None] when there are none or the
    arity disagrees (an illegal site). *)
val intersect :
  callee:Ucode.Types.routine ->
  context:Summaries.context_value list ->
  usage:Summaries.param_usage ->
  t option

(** Does the site's context supply every binding of the spec? *)
val matches : Summaries.context_value list -> t -> bool

(** Value of the spec to the callee: summed interest weights of the
    bound formals, with the configured bonus for a routine handle that
    feeds an indirect call. *)
val value : config:Config.t -> usage:Summaries.param_usage -> t -> float

(** Materialize the clone: copy under [clone_name], drop the bound
    formals from the signature, prepend their initializers to the
    entry block.  Returns the clone (module-local) and the site
    renaming of the copied body. *)
val make_clone :
  callee:Ucode.Types.routine ->
  clone_name:string ->
  fresh_site:(unit -> Ucode.Types.site) ->
  t ->
  Ucode.Types.routine * (Ucode.Types.site * Ucode.Types.site) list

(** Retarget one call to the clone, dropping the absorbed actuals. *)
val retarget_call :
  t -> clone_name:string -> Ucode.Types.call -> Ucode.Types.call
