(** Per-routine and per-edge summaries feeding the heuristics:
    parameter-usage descriptors P(R), calling-context descriptors S(E),
    and the block/site frequency estimates shared by the cloner's and
    inliner's benefit calculations. *)

(** Blocks of the routine that sit on a CFG cycle (the loop heuristic
    used when no profile is available). *)
val blocks_in_cycles : Ucode.Types.routine -> Ucode.Types.Int_set.t

(** Frequency weight assigned to in-loop blocks without profile data. *)
val loop_weight : float

(** Execution weight of a block relative to its routine's entry
    (1.0 = once per invocation). *)
val block_relative_weight :
  config:Config.t ->
  profile:Ucode.Profile.t ->
  Ucode.Types.routine ->
  Ucode.Types.label ->
  float

(** Absolute frequency estimate of a call site: measured count with
    profile data, the loop heuristic without. *)
val site_frequency :
  config:Config.t ->
  profile:Ucode.Profile.t ->
  Ucode.Types.routine ->
  site:Ucode.Types.site ->
  label:Ucode.Types.label ->
  float

(** What the caller knows about an actual argument. *)
type context_value = Cconst of int64 | Cfun of string | Cunknown

(** S(E) for every call site of the routine. *)
val edge_contexts :
  Ucode.Types.routine -> context_value list Ucode.Types.Int_map.t

(** P(R): per-formal interest weights; [pu_indirect] flags formals that
    reach the function position of an indirect call (the
    devirtualization enabler, weighted highest). *)
type param_usage = {
  pu_weights : float array;
  pu_indirect : bool array;
}

val param_usage :
  config:Config.t ->
  profile:Ucode.Profile.t ->
  Ucode.Types.routine ->
  param_usage
