(** Mutable state threaded through an HLO run: the evolving program,
    its profile database (kept coherent across transformations), the
    budget, the report, and the clone database that lets later passes
    reuse clones made by earlier ones. *)

module U = Ucode.Types

(** What the clone database remembers about a materialized clone: its
    name and the site renaming of its copied body (needed to transfer
    additional profile weight onto it when the clone is reused). *)
type clone_entry = {
  ce_name : string;
  ce_site_map : (U.site * U.site) list;
}

type t = {
  config : Config.t;
  mutable program : U.program;
  mutable profile : Ucode.Profile.t;
  budget : Budget.t;
  report : Report.t;
  clone_db : (string, clone_entry) Hashtbl.t;  (** spec key -> entry *)
  mutable next_clone_id : int;
  mutable stop : bool;  (** set when [max_operations] is reached *)
}

let create (config : Config.t) ~(program : U.program)
    ~(profile : Ucode.Profile.t) : t =
  let report = Report.create () in
  report.Report.cost_before <- Ucode.Size.program_cost program;
  { config; program; profile;
    budget = Budget.create config ~initial_cost:(Ucode.Size.program_cost program);
    report; clone_db = Hashtbl.create 32; next_clone_id = 0;
    stop = (match config.Config.max_operations with
           | Some cap -> cap <= 0
           | None -> false) }

let fresh_site (st : t) : U.site =
  let s = st.program.U.p_next_site in
  st.program <- { st.program with U.p_next_site = s + 1 };
  s

let fresh_clone_name (st : t) base =
  let id = st.next_clone_id in
  st.next_clone_id <- id + 1;
  Printf.sprintf "%s__clone%d" base id

(** Record one operation (an inline or a clone replacement) and trip
    the stop flag once the configured operation cap is hit. *)
let note_operation (st : t) (op : Report.operation) : unit =
  st.report.Report.operations <- op :: st.report.Report.operations;
  (match op with
  | Report.Op_inline _ -> st.report.Report.inlines <- st.report.Report.inlines + 1
  | Report.Op_clone_replace _ ->
    st.report.Report.clone_replacements <- st.report.Report.clone_replacements + 1);
  match st.config.Config.max_operations with
  | Some cap when Report.total_operations st.report >= cap -> st.stop <- true
  | _ -> ()

(** May HLO transform anything more right now? *)
let running (st : t) = not st.stop
