(** The inlining pass (Figure 4): screen every edge for legality
    (indirect, arity, varargs, alloca, FP model, user directives,
    scope), rank viable sites by profile frequency (cold-site penalty,
    small-callee bias), accept greedily under the stage budget with
    cascaded size estimates, and execute the schedule bottom-up so
    callers receive already-inlined callee bodies. *)

(** Run one pass under the stage-[pass] allotment; returns the names of
    modified routines. *)
val run_pass : State.t -> pass:int -> string list
