lib/hlo/cloner.ml: Budget Clone_spec Config Float Hashtbl List Option Report State Summaries Ucode
