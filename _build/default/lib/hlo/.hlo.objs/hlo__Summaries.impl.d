lib/hlo/summaries.ml: Array Config Hashtbl List Opt Option Ucode
