lib/hlo/outliner.mli: State Ucode
