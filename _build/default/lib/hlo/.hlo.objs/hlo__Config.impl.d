lib/hlo/config.ml:
