lib/hlo/driver.mli: Config Report Ucode
