lib/hlo/budget.ml: Array Config Float
