lib/hlo/inliner.mli: State
