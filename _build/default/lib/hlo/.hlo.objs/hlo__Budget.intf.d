lib/hlo/budget.mli: Config
