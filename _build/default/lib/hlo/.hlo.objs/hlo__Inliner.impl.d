lib/hlo/inliner.ml: Budget Config Float Hashtbl List Option Report State Summaries Ucode
