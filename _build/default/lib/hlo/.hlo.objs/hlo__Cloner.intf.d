lib/hlo/cloner.mli: State
