lib/hlo/report.mli: Format Ucode
