lib/hlo/state.ml: Budget Config Hashtbl Printf Report Ucode
