lib/hlo/report.ml: Fmt List Printf Ucode
