lib/hlo/state.mli: Budget Config Hashtbl Report Ucode
