lib/hlo/outliner.ml: Hashtbl List Opt Printf State Ucode
