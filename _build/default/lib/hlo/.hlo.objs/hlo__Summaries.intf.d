lib/hlo/summaries.mli: Config Ucode
