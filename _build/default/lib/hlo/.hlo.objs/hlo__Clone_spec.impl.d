lib/hlo/clone_spec.ml: Array Config Int64 List Printf String Summaries Ucode
