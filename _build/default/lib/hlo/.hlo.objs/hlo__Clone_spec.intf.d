lib/hlo/clone_spec.mli: Config Summaries Ucode
