lib/hlo/driver.ml: Budget Cloner Config Hashtbl Inliner List Opt Outliner Printf Report State Ucode
