(** mini-sc: a spreadsheet recalculation engine, after 072.sc.

    The benchmark's famous property is its stubbed curses library: the
    SPEC version of sc links against display routines that do nothing,
    and HLO's interprocedural analysis discovers they are side-effect
    free and deletes the calls before inlining spends any budget on
    them (§3.1 of the paper).  The [curses] module below reproduces
    that: every recalculation calls [move]/[addch]/[refresh_screen]
    stubs from the hot loop.

    The sheet itself is a grid of cells holding either constants or
    formulas (sum / product / relative reference) evaluated to a
    fixpoint. *)

let curses = {|
// Stubbed display library, as shipped with the SPEC version of sc:
// pure, loop-free routines that compute nothing anybody uses.
func move_cursor(r, c) { return r * 80 + c; }
func addch(ch) { return ch & 255; }
func clrtoeol() { return 0; }
func refresh_screen() { return 0; }
func standout() { return 1; }
func standend() { return 0; }
|}

let sheet = {|
// Grid: 24 rows x 16 cols. kind 0 = constant, 1 = sum of row above,
// 2 = product of two neighbours, 3 = reference + delta.
global kinds[384];
global vals[384];
global args[384];

func cell_index(r, c) { return r * 16 + c; }
func get_val(i) { return vals[i]; }
func set_val(i, v) { vals[i] = v; }
func get_kind(i) { return kinds[i]; }

func set_cell(r, c, kind, arg) {
  var i = cell_index(r, c);
  kinds[i] = kind;
  args[i] = arg;
  if (kind == 0) { vals[i] = arg; }
  return i;
}

static func eval_cell(r, c) {
  var i = cell_index(r, c);
  var k = kinds[i];
  if (k == 0) { return vals[i]; }
  if (k == 1) {
    var s = 0;
    for (var cc = 0; cc < 16; cc = cc + 1) {
      if (r > 0) { s = s + vals[cell_index(r - 1, cc)]; }
    }
    return s % 1000003;
  }
  if (k == 2) {
    var a = 1;
    if (c > 0) { a = vals[i - 1]; }
    var b = 1;
    if (c < 15) { b = vals[i + 1]; }
    return (a * b + args[i]) % 1000003;
  }
  var ref = args[i] & 383;
  return vals[ref] + (args[i] >> 9);
}

// One full recalculation pass; returns how many cells changed.
func recalc() {
  var changed = 0;
  for (var r = 0; r < 24; r = r + 1) {
    for (var c = 0; c < 16; c = c + 1) {
      var i = cell_index(r, c);
      var v = eval_cell(r, c);
      // "Display" the cell through the stubbed curses layer.
      move_cursor(r, c);
      addch(v & 255);
      if (v != vals[i]) {
        vals[i] = v;
        changed = changed + 1;
      }
    }
    clrtoeol();
  }
  refresh_screen();
  return changed;
}
|}

let main = {|
func main() {
  // Populate the sheet deterministically.
  var x = 7;
  for (var r = 0; r < 24; r = r + 1) {
    for (var c = 0; c < 16; c = c + 1) {
      x = (x * 1103515245 + 12345) & 1048575;
      var kind = x % 4;
      if (r == 0) { kind = 0; }
      set_cell(r, c, kind, x % 97);
    }
  }
  var rounds = input_size;
  var total = 0;
  for (var round = 0; round < rounds; round = round + 1) {
    var changed = recalc();
    total = (total * 31 + changed) % 999983;
    // Edit one cell, as an interactive user would.
    set_cell(1 + (round % 23), round % 16, 0, round * 13 % 97);
  }
  for (var c = 0; c < 16; c = c + 1) {
    total = (total * 17 + get_val(cell_index(23, c))) % 999983;
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("curses", curses); ("sheet", sheet); ("scmain", main) ]
