(** mini-vortex: an object-oriented in-memory database, after
    147.vortex.

    Vortex is famous for its deep chains of tiny accessor and
    validation routines around every record operation.  Here objects of
    three "classes" (person, part, draw) live in fixed-size record
    arrays behind a memory layer; transactions insert, look up by a
    hashed index, validate every field through per-class checkers, and
    periodically traverse relations — thousands of dynamic calls, two
    and three layers deep, most of them trivially inlinable. *)

let mem = {|
// Record storage: each object is 8 cells in a typed arena.
global arena[16384];
public global nobjects = 0;

func obj_alloc() {
  if (nobjects >= 2048) { abort(); }
  var h = nobjects;
  nobjects = nobjects + 1;
  return h;
}

func field_get(h, f) { return arena[h * 8 + (f & 7)]; }
func field_set(h, f, v) { arena[h * 8 + (f & 7)] = v; return 0; }
func obj_count() { return nobjects; }
func db_reset() { nobjects = 0; return 0; }
|}

let objects = {|
// Field 0: class tag (1 person, 2 part, 3 draw); 1: id; 2..5 payload;
// 6: relation handle; 7: checksum.
func class_of(h) { return field_get(h, 0); }
func id_of(h) { return field_get(h, 1); }

func checksum_of(h) {
  var s = 0;
  for (var f = 0; f < 7; f = f + 1) { s = (s * 31 + field_get(h, f)) & 1048575; }
  return s;
}

func seal(h) { field_set(h, 7, checksum_of(h)); return 0; }
func is_valid(h) { return field_get(h, 7) == checksum_of(h); }

func new_object(class, id, p1, p2) {
  var h = obj_alloc();
  field_set(h, 0, class);
  field_set(h, 1, id);
  field_set(h, 2, p1);
  field_set(h, 3, p2);
  field_set(h, 4, p1 * 3 + p2);
  field_set(h, 5, (p1 ^ p2) & 255);
  field_set(h, 6, 0 - 1);
  seal(h);
  return h;
}

func relate(h, target) {
  field_set(h, 6, target);
  seal(h);
  return 0;
}

// Per-class validators, each a pile of small checks.
static func valid_person(h) {
  if (field_get(h, 2) < 0) { return 0; }
  if (field_get(h, 3) > 1048576) { return 0; }
  return is_valid(h);
}
static func valid_part(h) {
  if (field_get(h, 4) != field_get(h, 2) * 3 + field_get(h, 3)) { return 0; }
  return is_valid(h);
}
static func valid_draw(h) {
  if ((field_get(h, 5) & 255) != field_get(h, 5)) { return 0; }
  return is_valid(h);
}

func validate(h) {
  var c = class_of(h);
  if (c == 1) { return valid_person(h); }
  if (c == 2) { return valid_part(h); }
  if (c == 3) { return valid_draw(h); }
  return 0;
}
|}

let db = {|
global index_[4096];

func index_clear() {
  for (var i = 0; i < 4096; i = i + 1) { index_[i] = 0 - 1; }
  return 0;
}

static func slot_for(id) { return (id * 2654435761) & 4095; }

func index_insert(id, h) {
  var s = slot_for(id);
  var probes = 0;
  while (probes < 4096) {
    if (index_[s] < 0) { index_[s] = h; return s; }
    s = (s + 1) & 4095;
    probes = probes + 1;
  }
  abort();
  return 0;
}

func index_find(id) {
  var s = slot_for(id);
  var probes = 0;
  while (probes < 4096) {
    var h = index_[s];
    if (h < 0) { return 0 - 1; }
    if (id_of(h) == id) { return h; }
    s = (s + 1) & 4095;
    probes = probes + 1;
  }
  return 0 - 1;
}

// Walk the relation chain from h, summing ids (bounded).
func traverse(h) {
  var sum = 0;
  var steps = 0;
  while (h >= 0 && steps < 64) {
    if (validate(h) == 0) { return 0 - sum; }
    sum = (sum + id_of(h)) % 999983;
    h = field_get(h, 6);
    steps = steps + 1;
  }
  return sum;
}
|}

let main = {|
func main() {
  var txns = input_size;
  db_reset();
  index_clear();
  var x = 31;
  var total = 0;
  var prev = 0 - 1;
  for (var t = 0; t < txns; t = t + 1) {
    x = (x * 1103515245 + 12345) & 1048575;
    var class = 1 + (x % 3);
    var id = t * 2 + 1;
    var h = new_object(class, id, x & 1023, (x >> 10) & 1023);
    index_insert(id, h);
    if (prev >= 0) { relate(h, prev); }
    prev = h;
    // Point lookups, mostly hits with some misses (cold path).
    var probe = index_find(1 + 2 * (x % (t + 1)));
    if (probe >= 0) { total = (total + traverse(probe)) % 999983; }
    else { total = (total + 7) % 999983; }
    if (t % 32 == 31) {
      // Full validation sweep.
      var ok = 0;
      for (var i = 0; i < obj_count(); i = i + 1) {
        ok = ok + validate(i);
      }
      total = (total * 31 + ok) % 999983;
    }
    if (obj_count() >= 2000) { db_reset(); index_clear(); prev = 0 - 1; }
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("mem", mem); ("objects", objects); ("db", db); ("vmain", main) ]
