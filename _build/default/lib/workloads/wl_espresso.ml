(** mini-espresso: two-level boolean cover manipulation, after
    008.espresso.

    Cubes over [nbits] inputs are encoded two bits per variable
    (01 = negated, 10 = positive, 11 = don't care) packed in one word.
    The kernel is the classic espresso inner loop: pairwise cube
    intersection/containment tests over a cover, plus a reduction pass
    that absorbs contained cubes — bit-twiddling helpers called from
    quadratic loops. *)

let cube = {|
// Two bits per variable, 24 variables per word.
func cube_full() { return 0 - 1; }  // all don't-care

func cube_and(a, b) { return a & b; }

// A cube is empty if some variable has both bits zero.
func cube_empty(c, nvars) {
  for (var v = 0; v < nvars; v = v + 1) {
    if (((c >> (v * 2)) & 3) == 0) { return 1; }
  }
  return 0;
}

// Does cube a contain cube b?  (b's bits are a subset of a's.)
func cube_contains(a, b) { return (a | b) == a; }

// Number of don't-care variables (a crude size measure).
func cube_dc_count(c, nvars) {
  var n = 0;
  for (var v = 0; v < nvars; v = v + 1) {
    if (((c >> (v * 2)) & 3) == 3) { n = n + 1; }
  }
  return n;
}

// Set variable v of cube c to literal lit (1, 2 or 3).
func cube_set(c, v, lit) {
  var cleared = c - (c & (3 << (v * 2)));
  return cleared | (lit << (v * 2));
}
|}

let cover = {|
global cubes[2048];
public global ncubes = 0;

func cover_clear() { ncubes = 0; return 0; }
func cover_get(i) { return cubes[i]; }

func cover_add(c) {
  if (ncubes >= 2048) { abort(); }
  cubes[ncubes] = c;
  ncubes = ncubes + 1;
  return 0;
}

// Remove cubes contained in another cube of the cover (absorption).
func cover_reduce(nvars) {
  var kept = 0;
  for (var i = 0; i < ncubes; i = i + 1) {
    var absorbed = 0;
    for (var j = 0; j < ncubes; j = j + 1) {
      if (i != j) {
        if (cube_contains(cubes[j], cubes[i])) {
          if (cubes[j] != cubes[i] || j < i) { absorbed = 1; }
        }
      }
    }
    if (absorbed == 0) {
      cubes[kept] = cubes[i];
      kept = kept + 1;
    }
  }
  ncubes = kept;
  return kept;
}

// Count pairs with nonempty intersection (the espresso "distance 0"
// test driving consensus).
func cover_overlaps(nvars) {
  var n = 0;
  for (var i = 0; i < ncubes; i = i + 1) {
    for (var j = i + 1; j < ncubes; j = j + 1) {
      var x = cube_and(cubes[i], cubes[j]);
      if (cube_empty(x, nvars) == 0) { n = n + 1; }
    }
  }
  return n;
}
|}

let main = {|
static func gen_cover(n, nvars, seed) {
  cover_clear();
  var x = seed;
  for (var i = 0; i < n; i = i + 1) {
    var c = cube_full();
    for (var v = 0; v < nvars; v = v + 1) {
      x = (x * 1103515245 + 12345) & 1048575;
      var lit = x % 4;
      if (lit == 0) { lit = 3; }
      c = cube_set(c, v, lit);
    }
    cover_add(c);
  }
  return 0;
}

func main() {
  var nvars = 12;
  var n = input_size;
  var total = 0;
  for (var round = 0; round < 3; round = round + 1) {
    gen_cover(n, nvars, round * 977 + 13);
    var kept = cover_reduce(nvars);
    var overlaps = cover_overlaps(nvars);
    total = (total * 131 + kept * 7 + overlaps) % 999979;
    var dc = 0;
    for (var i = 0; i < ncubes; i = i + 1) {
      dc = dc + cube_dc_count(cover_get(i), nvars);
    }
    total = (total + dc) % 999979;
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("cube", cube); ("cover", cover); ("esmain", main) ]
