(** mini-m88ksim: an instruction-set simulator simulating a toy CPU,
    after 124.m88ksim.

    The guest machine has 16 registers and a small encoded instruction
    memory; the host loop is the classic fetch/decode/dispatch shape
    with one small handler per opcode.  [step_cpu] is called from the
    driver with a constant [trace] argument — the real m88ksim's
    biggest cloning win in the paper's Table 1 was of exactly this
    form (trace/no-trace specialization). *)

let decode = {|
// Instruction word: op*65536 + d*4096 + a*256 + b*16 + imm4
func op_of(w) { return (w >> 16) & 15; }
func rd_of(w) { return (w >> 12) & 15; }
func ra_of(w) { return (w >> 8) & 15; }
func rb_of(w) { return (w >> 4) & 15; }
func imm_of(w) { return w & 15; }

func encode(op, d, a, b, imm) {
  return op * 65536 + d * 4096 + a * 256 + b * 16 + imm;
}
|}

let exec = {|
global gregs[16];
global gmem[1024];
public global gpc = 0;
public global cycles = 0;

func reg_get(i) { return gregs[i & 15]; }
func reg_set(i, v) { if ((i & 15) != 0) { gregs[i & 15] = v; } return 0; }

static func do_alu(op, a, b, imm) {
  if (op == 0) { return a + b; }
  if (op == 1) { return a - b; }
  if (op == 2) { return a & b; }
  if (op == 3) { return a | b; }
  if (op == 4) { return a ^ b; }
  if (op == 5) { return a + imm; }
  if (op == 6) { return a << (imm & 7); }
  return a >> (imm & 7);
}

func step_cpu(w, trace) {
  var op = op_of(w);
  cycles = cycles + 1;
  if (op < 8) {
    var v = do_alu(op, reg_get(ra_of(w)), reg_get(rb_of(w)), imm_of(w));
    reg_set(rd_of(w), v);
    gpc = gpc + 1;
  } else {
    if (op == 8) {  // load
      reg_set(rd_of(w), gmem[(reg_get(ra_of(w)) + imm_of(w)) & 1023]);
      gpc = gpc + 1;
    } else { if (op == 9) {  // store
      gmem[(reg_get(ra_of(w)) + imm_of(w)) & 1023] = reg_get(rb_of(w));
      gpc = gpc + 1;
    } else { if (op == 10) { // branch if nonzero, backwards by imm
      if (reg_get(ra_of(w)) != 0) { gpc = gpc - imm_of(w); }
      else { gpc = gpc + 1; }
    } else {                 // nop / halt handled by driver
      gpc = gpc + 1;
    } } }
  }
  if (trace != 0) {
    // Expensive bookkeeping nobody enables in the timed run.
    var h = 0;
    for (var i = 0; i < 16; i = i + 1) { h = (h * 31 + gregs[i]) & 1048575; }
    gmem[1023] = h;
  }
  return gpc;
}

func cpu_reset() {
  for (var i = 0; i < 16; i = i + 1) { gregs[i] = 0; }
  gpc = 0;
  cycles = 0;
  return 0;
}

func mem_poke(a, v) { gmem[a & 1023] = v; return 0; }
func mem_peek(a) { return gmem[a & 1023]; }
|}

let main = {|
global prog[64];

static func assemble() {
  // r1 = counter, r2 = accumulator, r3 = address, r4 = scratch
  prog[0] = encode(5, 1, 0, 0, 12);    // r1 = 12
  prog[1] = encode(5, 3, 0, 0, 0);     // r3 = 0
  prog[2] = encode(8, 4, 3, 0, 2);     // r4 = mem[r3+2]
  prog[3] = encode(0, 2, 2, 4, 0);     // r2 = r2 + r4
  prog[4] = encode(6, 4, 4, 0, 1);     // r4 = r4 << 1
  prog[5] = encode(9, 0, 3, 4, 3);     // mem[r3+3] = r4
  prog[6] = encode(5, 3, 3, 0, 1);     // r3 = r3 + 1
  prog[7] = encode(5, 1, 1, 0, 15);    // r1 = r1 + 15 (decrement via mask)
  prog[8] = encode(1, 1, 1, 0, 0);     // r1 = r1 - r1? placeholder
  prog[9] = encode(10, 0, 1, 0, 7);    // if r1 != 0 jump back 7
  prog[10] = encode(15, 0, 0, 0, 0);   // halt
  // Fix the decrement: r1 = r1 - r5 where r5 = 1.
  prog[7] = encode(5, 5, 0, 0, 1);     // r5 = 1
  prog[8] = encode(1, 1, 1, 5, 0);     // r1 = r1 - r5
  return 11;
}

static func run_guest(steps, trace) {
  cpu_reset();
  for (var i = 0; i < 8; i = i + 1) { mem_poke(i, i * 3 + 1); }
  var executed = 0;
  while (executed < steps) {
    var pc = gpc;
    if (pc < 0 || pc > 10) { return executed; }
    var w = prog[pc];
    if (op_of(w) == 15) { return executed; }
    step_cpu(w, trace);
    executed = executed + 1;
  }
  return executed;
}

func main() {
  assemble();
  var rounds = input_size;
  var total = 0;
  for (var round = 0; round < rounds; round = round + 1) {
    var n = run_guest(200, 0);
    total = (total * 31 + n + reg_get(2) + cycles) % 999983;
    if (round % 16 == 0) {
      // Occasional traced run exercises the cold path.
      run_guest(50, 1);
      total = (total + mem_peek(1023)) % 999983;
    }
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("decode", decode); ("exec", exec); ("simmain", main) ]
