(** mini-gcc: a toy expression compiler, after 085.gcc / 126.gcc.

    The shape of the real gcc at benchmark scale: scan a token stream,
    build expression trees in a node pool, run a recursive
    constant-folding/simplification pass full of shape predicates, and
    emit linear code by pattern dispatch — lots of branchy tree walking
    through one-line predicates, exactly the inlining fodder the paper
    reports for both gcc entries. *)

let scan = {|
// Token stream generated from a seed: pseudo "programs" of numbers,
// variables, operators and parens, encoded as (kind, value) pairs.
global tok_kind[2048];
global tok_val[2048];
public global ntoks = 0;

// kinds: 0 num, 1 var, 2 plus, 3 times, 4 lparen, 5 rparen, 6 end
func tok_push(k, v) {
  if (ntoks >= 2048) { abort(); }
  tok_kind[ntoks] = k;
  tok_val[ntoks] = v;
  ntoks = ntoks + 1;
  return 0;
}

func gen_tokens(seed, n) {
  ntoks = 0;
  var x = seed;
  var depth = 0;
  for (var i = 0; i < n; i = i + 1) {
    x = (x * 1103515245 + 12345) & 1048575;
    var r = x % 8;
    if (r < 2) { tok_push(0, x % 100); tok_push(2 + (x % 2), 0); }
    else { if (r < 4) { tok_push(1, x % 8); tok_push(2 + ((x >> 3) % 2), 0); }
    else { if (r < 5 && depth < 6) { tok_push(4, 0); depth = depth + 1; }
    else { if (r < 6 && depth > 0) {
      tok_push(0, x % 50);
      tok_push(5, 0);
      depth = depth - 1;
      tok_push(2, 0);
    }
    else { tok_push(0, x % 10); tok_push(2, 0); } } } }
  }
  tok_push(0, 1);
  while (depth > 0) { tok_push(5, 0); depth = depth - 1; }
  tok_push(6, 0);
  return ntoks;
}

func tok_kind_at(i) { return tok_kind[i]; }
func tok_val_at(i) { return tok_val[i]; }
|}

let tree = {|
// Expression nodes: op 0 = num, 1 = var, 2 = plus, 3 = times.
global node_op[4096];
global node_a[4096];
global node_b[4096];
public global nnodes = 0;

func node_new(op, a, b) {
  if (nnodes >= 4096) { abort(); }
  var n = nnodes;
  nnodes = nnodes + 1;
  node_op[n] = op;
  node_a[n] = a;
  node_b[n] = b;
  return n;
}

func op_of(n) { return node_op[n]; }
func lhs(n) { return node_a[n]; }
func rhs(n) { return node_b[n]; }
func is_num(n) { return node_op[n] == 0; }
func num_val(n) { return node_a[n]; }
func is_zero(n) { return node_op[n] == 0 && node_a[n] == 0; }
func is_one(n) { return node_op[n] == 0 && node_a[n] == 1; }

// Recursive-descent parser over the token stream; pos passed in a
// global cursor.
global cursor = 0;

func parse_reset() { cursor = 0; return 0; }

func parse_primary() {
  var k = tok_kind_at(cursor);
  if (k == 0) { var v = tok_val_at(cursor); cursor = cursor + 1; return node_new(0, v, 0); }
  if (k == 1) { var s = tok_val_at(cursor); cursor = cursor + 1; return node_new(1, s, 0); }
  if (k == 4) {
    cursor = cursor + 1;
    var e = parse_expr();
    if (tok_kind_at(cursor) == 5) { cursor = cursor + 1; }
    return e;
  }
  cursor = cursor + 1;
  return node_new(0, 0, 0);
}

func parse_term() {
  var e = parse_primary();
  while (tok_kind_at(cursor) == 3) {
    cursor = cursor + 1;
    var r = parse_primary();
    e = node_new(3, e, r);
  }
  return e;
}

func parse_expr() {
  var e = parse_term();
  while (tok_kind_at(cursor) == 2) {
    cursor = cursor + 1;
    var r = parse_term();
    e = node_new(2, e, r);
  }
  return e;
}

// Constant folding + algebraic simplification.
func fold(n) {
  var op = op_of(n);
  if (op == 0 || op == 1) { return n; }
  var a = fold(lhs(n));
  var b = fold(rhs(n));
  if (is_num(a) && is_num(b)) {
    if (op == 2) { return node_new(0, (num_val(a) + num_val(b)) % 65536, 0); }
    return node_new(0, (num_val(a) * num_val(b)) % 65536, 0);
  }
  if (op == 2 && is_zero(a)) { return b; }
  if (op == 2 && is_zero(b)) { return a; }
  if (op == 3 && is_one(a)) { return b; }
  if (op == 3 && is_one(b)) { return a; }
  if (op == 3 && (is_zero(a) || is_zero(b))) { return node_new(0, 0, 0); }
  return node_new(op, a, b);
}
|}

let emit = {|
// Code emission by pattern dispatch into a buffer of (op, arg) pairs.
global code_op[8192];
global code_arg[8192];
public global ncode = 0;

func emit_insn(op, arg) {
  if (ncode >= 8192) { abort(); }
  code_op[ncode] = op;
  code_arg[ncode] = arg;
  ncode = ncode + 1;
  return 0;
}

// ops: 0 pushi, 1 pushv, 2 add, 3 mul, 4 addi (peephole), 5 muli
func emit_expr(n) {
  var op = op_of(n);
  if (op == 0) { emit_insn(0, num_val(n)); return 1; }
  if (op == 1) { emit_insn(1, lhs(n)); return 1; }
  var left = emit_expr(lhs(n));
  // Peephole: op with constant rhs folds to an immediate form.
  if (is_num(rhs(n))) {
    if (op == 2) { emit_insn(4, num_val(rhs(n))); return left + 1; }
    emit_insn(5, num_val(rhs(n)));
    return left + 1;
  }
  var right = emit_expr(rhs(n));
  if (op == 2) { emit_insn(2, 0); } else { emit_insn(3, 0); }
  return left + right + 1;
}

// Evaluate the emitted code (the "test run" of the compiled program).
global estack[128];

func exec_code(venv) {
  var sp = 0;
  for (var i = 0; i < ncode; i = i + 1) {
    var op = code_op[i];
    var a = code_arg[i];
    if (op == 0) { estack[sp] = a; sp = sp + 1; }
    if (op == 1) { estack[sp] = (venv >> ((a & 7) * 4)) & 15; sp = sp + 1; }
    if (op == 2) { sp = sp - 1; estack[sp - 1] = estack[sp - 1] + estack[sp]; }
    if (op == 3) { sp = sp - 1; estack[sp - 1] = (estack[sp - 1] * estack[sp]) % 65536; }
    if (op == 4) { estack[sp - 1] = estack[sp - 1] + a; }
    if (op == 5) { estack[sp - 1] = (estack[sp - 1] * a) % 65536; }
    if (sp > 120) { return estack[sp - 1]; }
  }
  return estack[0];
}
|}

let main = {|
func main() {
  var programs = input_size;
  var total = 0;
  for (var pgm = 0; pgm < programs; pgm = pgm + 1) {
    nnodes = 0;
    ncode = 0;
    gen_tokens(pgm * 7919 + 11, 60);
    parse_reset();
    var tree_root = parse_expr();
    var folded = fold(tree_root);
    var n = emit_expr(folded);
    var v1 = exec_code(305419896);
    var v2 = exec_code(19088743);
    total = (total * 31 + n + v1 + v2) % 999983;
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("scan", scan); ("tree", tree); ("emit", emit); ("gmain", main) ]
