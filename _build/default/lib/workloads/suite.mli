(** The benchmark suite: fourteen entries mirroring the SPEC integer
    programs the paper evaluates (six SPEC92-style, eight SPEC95-style;
    gcc, li and compress appear in both at different input sizes, as in
    SPEC itself).  Every entry has a *train* input for the instrumented
    profiling run and a larger *ref* input for the timed runs. *)

type spec_suite = Spec92 | Spec95

val suite_name : spec_suite -> string

type benchmark = {
  b_name : string;  (** e.g. "022.li" *)
  b_suite : spec_suite;
  b_sources : (string * string) list;  (** module name, MiniC text *)
  b_train_size : int;
  b_ref_size : int;
}

type input = Train | Ref

val all : benchmark list

(** Raises [Invalid_argument] on an unknown name. *)
val find : string -> benchmark

val of_suite : spec_suite -> benchmark list

(** Full source list at the given input size, including the generated
    [config] module publishing [input_size]. *)
val sources : benchmark -> input:input -> Minic.Compile.source list

(** Compile and link a benchmark. *)
val compile : benchmark -> input:input -> Ucode.Types.program
