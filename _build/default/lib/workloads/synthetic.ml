(** Synthetic large programs, for the paper's §3.5 claim:

    "A major challenge to effectively deploying aggressive inlining is
    the sheer size of production codes.  We have recently been
    experimenting with compiling the 500,000 line performance kernel of
    an important application program, and have been amazed to find that
    significant speedups like we see in some of the SPEC benchmarks can
    also be obtained in large production codes."

    [generate ~modules ~funcs_per_module ~seed] builds a deterministic
    multi-module MiniC program with a layered call structure (functions
    call only strictly earlier functions, so the call graph is acyclic
    and every run terminates): a mix of exported and [static] routines,
    hot accessor-style leaves, mode-style parameters invoked with
    literals (clone fodder), per-module state arrays, and a [main] that
    drives every module from a loop.  Scaling [modules] scales program
    size without changing its character — the fixture behind the
    scaling study in {!Experiments}. *)

(* A tiny deterministic PRNG (no [Random]: runs must be reproducible
   across OCaml versions). *)
type rng = { mutable state : int64 }

let make_rng seed = { state = Int64.of_int (seed * 2 + 1) }

let next rng bound =
  rng.state <-
    Int64.add (Int64.mul rng.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.rem (Int64.shift_right_logical rng.state 33) (Int64.of_int bound))

(** The name of function [k] of module [j]. *)
let fname j k = Printf.sprintf "fn_%d_%d" j k

let gen_function rng ~module_index ~func_index ~callables =
  let name = fname module_index func_index in
  let static = next rng 3 = 0 && callables <> [] in
  (* Body: a few statements over two params and the module array. *)
  let arr = Printf.sprintf "data_%d" module_index in
  let lines = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string lines (s ^ "\n  ")) fmt in
  add "var acc = p0 * %d + p1;" (1 + next rng 9);
  let nstmts = 2 + next rng 4 in
  for _ = 1 to nstmts do
    match next rng 6 with
    | 0 -> add "acc = acc + %s[(acc) & 63];" arr
    | 1 -> add "%s[(p0 + %d) & 63] = acc;" arr (next rng 64)
    | 2 when callables <> [] ->
      let callee, arity = List.nth callables (next rng (List.length callables)) in
      let args =
        List.init arity (fun i ->
            if next rng 3 = 0 then string_of_int (next rng 16)
            else if i = 0 then "acc"
            else "p1")
      in
      add "acc = acc + %s(%s);" callee (String.concat ", " args)
    | 3 -> add "if (acc & %d) { acc = acc * 3 + 1; } else { acc = acc - p1; }"
             (1 lsl next rng 4)
    | 4 -> add "acc = (acc ^ (acc >> %d)) & 1048575;" (1 + next rng 5)
    | _ -> add "acc = acc + %d;" (next rng 100)
  done;
  let text =
    Printf.sprintf "%sfunc %s(p0, p1) {\n  %sreturn acc & 1048575;\n}"
      (if static then "static " else "")
      name (Buffer.contents lines)
  in
  (* A static function is callable only from its own module; we keep
     things simple by exposing only exported functions across modules
     and everything within the module.  The returned "callable" entry
     carries that visibility. *)
  (text, (name, 2, static))

let gen_module rng ~module_index ~funcs_per_module ~imported =
  let header = Printf.sprintf "global data_%d[64];" module_index in
  let texts = ref [ header ] in
  let local = ref [] in
  for k = 0 to funcs_per_module - 1 do
    (* Call earlier functions of this module, or exported earlier
       modules' functions. *)
    let callables =
      List.map (fun (n, a, _) -> (n, a)) !local
      @ List.map (fun (n, a) -> (n, a)) imported
    in
    let text, entry = gen_function rng ~module_index ~func_index:k ~callables in
    texts := text :: !texts;
    local := entry :: !local
  done;
  let exported =
    List.filter_map (fun (n, a, static) -> if static then None else Some (n, a))
      !local
  in
  (String.concat "\n\n" (List.rev !texts), exported)

(** Generate the whole program's sources. *)
let generate ?(funcs_per_module = 6) ?(seed = 1) ~modules () :
    Minic.Compile.source list =
  if modules < 1 then invalid_arg "Synthetic.generate: modules < 1";
  let rng = make_rng seed in
  let module_sources = ref [] in
  let imported = ref [] in
  for j = 0 to modules - 1 do
    let text, exported =
      gen_module rng ~module_index:j ~funcs_per_module ~imported:!imported
    in
    module_sources := (Printf.sprintf "mod%d" j, text) :: !module_sources;
    imported := !imported @ exported
  done;
  (* main drives one exported entry point per module from a hot loop. *)
  let entry_calls =
    List.mapi
      (fun i (n, _) ->
        Printf.sprintf "    s = (s + %s(i + %d, s & 255)) %% 999983;" n i)
      (List.filteri (fun i _ -> i mod 3 = 0) !imported)
  in
  let main_text =
    Printf.sprintf
      "func main() {\n  var s = 0;\n  for (var i = 0; i < 400; i = i + 1) {\n%s\n  }\n  print_int(s);\n  return 0;\n}"
      (String.concat "\n" entry_calls)
  in
  List.rev_map
    (fun (name, text) -> Minic.Compile.source ~module_name:name text)
    ((Printf.sprintf "mainmod", main_text) :: !module_sources)

(** Generate and link. *)
let compile ?funcs_per_module ?seed ~modules () : Ucode.Types.program =
  fst (Minic.Compile.compile_program (generate ?funcs_per_module ?seed ~modules ()))
