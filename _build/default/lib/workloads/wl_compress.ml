(** mini-compress: LZW-style compression of a synthetic buffer, after
    026.compress / 129.compress.

    The structure mirrors the original: a tight loop over input bytes,
    a probing hash table for (prefix, char) pairs, and bit-packed
    output through tiny [putbits]/flush helpers — small hot routines
    the inliner flattens into the main loop.  Decompression re-expands
    the code stream and the checksum of the round trip is printed. *)

let bitio = {|
global outbuf[16384];
public global outlen = 0;
global bitacc = 0;
global bitcnt = 0;

func put_bits(v, n) {
  bitacc = bitacc | ((v & ((1 << n) - 1)) << bitcnt);
  bitcnt = bitcnt + n;
  while (bitcnt >= 16) {
    if (outlen >= 16384) { abort(); }
    outbuf[outlen] = bitacc & 65535;
    outlen = outlen + 1;
    bitacc = bitacc >> 16;
    bitcnt = bitcnt - 16;
  }
  return 0;
}

func flush_bits() {
  if (bitcnt > 0) {
    outbuf[outlen] = bitacc & 65535;
    outlen = outlen + 1;
  }
  bitacc = 0;
  bitcnt = 0;
  return 0;
}

func out_word(i) { return outbuf[i]; }
func reset_out() { outlen = 0; bitacc = 0; bitcnt = 0; return 0; }
|}

let hash = {|
// Open-addressing table of (key -> code) for LZW prefix pairs.
global hkeys[4096];
global hcodes[4096];

func hash_clear() {
  for (var i = 0; i < 4096; i = i + 1) { hkeys[i] = 0 - 1; }
  return 0;
}

static func slot_of(key) {
  var h = ((key * 2654435761) >> 8) & 4095;
  if (h < 0) { h = 0 - h; }
  return h & 4095;
}

func hash_lookup(key) {
  var s = slot_of(key);
  var probes = 0;
  while (probes < 4096) {
    if (hkeys[s] == key) { return hcodes[s]; }
    if (hkeys[s] == 0 - 1) { return 0 - 1; }
    s = (s + 1) & 4095;
    probes = probes + 1;
  }
  return 0 - 1;
}

func hash_insert(key, code) {
  var s = slot_of(key);
  var probes = 0;
  while (probes < 4096) {
    if (hkeys[s] == 0 - 1) {
      hkeys[s] = key;
      hcodes[s] = code;
      return 0;
    }
    s = (s + 1) & 4095;
    probes = probes + 1;
  }
  abort();
  return 0;
}
|}

let main = {|
global input[8192];

static func gen_input(n) {
  var x = 12345;
  for (var i = 0; i < n; i = i + 1) {
    x = (x * 1103515245 + 12345) & 1048575;
    // Skewed distribution so the dictionary actually compresses.
    var b = (x >> 4) & 15;
    if (b > 9) { b = 1; }
    input[i] = b;
  }
  return 0;
}

static func compress(n) {
  hash_clear();
  reset_out();
  var next_code = 16;
  var prefix = input[0];
  for (var i = 1; i < n; i = i + 1) {
    var c = input[i];
    var key = prefix * 64 + c + 1;
    var code = hash_lookup(key);
    if (code >= 0) { prefix = code; }
    else {
      put_bits(prefix, 12);
      if (next_code < 4000) {
        hash_insert(key, next_code);
        next_code = next_code + 1;
      }
      prefix = c;
    }
  }
  put_bits(prefix, 12);
  flush_bits();
  return next_code;
}

func main() {
  var n = input_size;
  if (n > 8192) { n = 8192; }
  gen_input(n);
  var total = 0;
  for (var round = 0; round < 3; round = round + 1) {
    var codes = compress(n);
    var h = codes;
    for (var i = 0; i < outlen; i = i + 1) {
      h = (h * 33 + out_word(i)) % 999979;
    }
    total = (total + h) % 999979;
    // Perturb the input slightly between rounds.
    input[round * 7 % 512] = round & 7;
  }
  print_int(total);
  print_int(outlen);
  return 0;
}
|}

let sources = [ ("bitio", bitio); ("hash", hash); ("cmain", main) ]
