lib/workloads/wl_perl.ml:
