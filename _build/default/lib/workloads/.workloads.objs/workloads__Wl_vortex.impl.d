lib/workloads/wl_vortex.ml:
