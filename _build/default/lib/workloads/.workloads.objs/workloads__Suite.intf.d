lib/workloads/suite.mli: Minic Ucode
