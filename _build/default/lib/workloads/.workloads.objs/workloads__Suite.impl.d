lib/workloads/suite.ml: List Minic Printf Ucode Wl_compress Wl_eqntott Wl_espresso Wl_gcc Wl_go Wl_ijpeg Wl_li Wl_m88ksim Wl_perl Wl_sc Wl_vortex
