lib/workloads/wl_sc.ml:
