lib/workloads/wl_m88ksim.ml:
