lib/workloads/wl_li.ml:
