lib/workloads/wl_ijpeg.ml:
