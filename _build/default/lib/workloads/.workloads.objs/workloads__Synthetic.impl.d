lib/workloads/synthetic.ml: Buffer Int64 List Minic Printf String Ucode
