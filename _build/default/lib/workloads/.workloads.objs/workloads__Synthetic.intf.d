lib/workloads/synthetic.mli: Minic Ucode
