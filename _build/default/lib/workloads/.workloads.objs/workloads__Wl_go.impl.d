lib/workloads/wl_go.ml:
