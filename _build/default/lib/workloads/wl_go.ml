(** mini-go: board-game position evaluation, after 099.go.

    A 19x19 board is filled deterministically; the kernel alternates
    recursive flood-fill liberty counting (the classic go-engine inner
    routine), influence radiation from every stone, and candidate-move
    scoring — branchy integer code over a 2-D array with deep chains of
    small helpers, the shape that made 099.go hard on branch
    predictors. *)

let board = {|
// 19x19 board with a one-cell border, row stride 21.
global grid[441];
global mark[441];

func at(r, c) { return grid[r * 21 + c]; }
func set_at(r, c, v) { grid[r * 21 + c] = v; return 0; }
func on_board(r, c) {
  if (r < 1) { return 0; }
  if (c < 1) { return 0; }
  if (r > 19) { return 0; }
  if (c > 19) { return 0; }
  return 1;
}

func clear_marks() {
  for (var i = 0; i < 441; i = i + 1) { mark[i] = 0; }
  return 0;
}

// Recursive liberty count of the group containing (r,c).
func liberties(r, c, color) {
  if (on_board(r, c) == 0) { return 0; }
  var i = r * 21 + c;
  if (mark[i] != 0) { return 0; }
  mark[i] = 1;
  var v = grid[i];
  if (v == 0) { return 1; }
  if (v != color) { return 0; }
  return liberties(r - 1, c, color) + liberties(r + 1, c, color)
       + liberties(r, c - 1, color) + liberties(r, c + 1, color);
}
|}

let tactics = {|
global influence[441];

func radiate(r, c, color, strength) {
  for (var dr = 0 - 2; dr <= 2; dr = dr + 1) {
    for (var dc = 0 - 2; dc <= 2; dc = dc + 1) {
      var rr = r + dr;
      var cc = c + dc;
      if (on_board(rr, cc)) {
        var d = dr;
        if (d < 0) { d = 0 - d; }
        var e = dc;
        if (e < 0) { e = 0 - e; }
        var dist = d + e;
        if (dist <= 2) {
          var gain = strength / (1 + dist);
          if (color == 1) { influence[rr * 21 + cc] = influence[rr * 21 + cc] + gain; }
          else { influence[rr * 21 + cc] = influence[rr * 21 + cc] - gain; }
        }
      }
    }
  }
  return 0;
}

func influence_map() {
  for (var i = 0; i < 441; i = i + 1) { influence[i] = 0; }
  for (var r = 1; r <= 19; r = r + 1) {
    for (var c = 1; c <= 19; c = c + 1) {
      var v = at(r, c);
      if (v != 0) { radiate(r, c, v, 8); }
    }
  }
  var score = 0;
  for (var i = 0; i < 441; i = i + 1) {
    if (influence[i] > 0) { score = score + 1; }
    if (influence[i] < 0) { score = score - 1; }
  }
  return score;
}

func score_move(r, c, color) {
  if (at(r, c) != 0) { return 0 - 1000; }
  set_at(r, c, color);
  clear_marks();
  var libs = liberties(r, c, color);
  var inf = influence_map();
  set_at(r, c, 0);
  if (color == 2) { inf = 0 - inf; }
  return libs * 4 + inf;
}
|}

let main = {|
func main() {
  // Deterministic position.
  var x = 42;
  for (var r = 1; r <= 19; r = r + 1) {
    for (var c = 1; c <= 19; c = c + 1) {
      x = (x * 1103515245 + 12345) & 1048575;
      var v = x % 5;
      if (v > 2) { v = 0; }
      set_at(r, c, v);
    }
  }
  var moves = input_size;
  var total = 0;
  var color = 1;
  for (var m = 0; m < moves; m = m + 1) {
    x = (x * 1103515245 + 12345) & 1048575;
    var r = 1 + (x % 19);
    var c = 1 + ((x >> 5) % 19);
    var s = score_move(r, c, color);
    total = (total * 31 + s + 2000) % 999983;
    if (s > 0) {
      set_at(r, c, color);
      color = 3 - color;
    }
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("board", board); ("tactics", tactics); ("gomain", main) ]
