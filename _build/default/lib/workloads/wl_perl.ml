(** mini-perl: a bytecode interpreter with string hashing, after
    134.perl.

    A tiny stack VM executes a fixed "script" that hashes synthetic
    strings into an associative array, updates counters and builds a
    report — the hash/assoc-array inner loops and per-opcode handler
    calls that dominate the real perl interpreter.  Strings are runs of
    small integers in a character heap. *)

let hashtab = {|
// Associative array: open addressing, key = string handle (offset,len)
// hashed by contents.
global hkey_off[1024];
global hkey_len[1024];
global hval[1024];
global chars[8192];
public global nchars = 0;

func str_new() { return nchars; }
func str_putc(c) {
  if (nchars >= 8192) { abort(); }
  chars[nchars] = c & 255;
  nchars = nchars + 1;
  return 0;
}
func str_at(off, i) { return chars[off + i]; }

func str_hash(off, len) {
  var h = 5381;
  for (var i = 0; i < len; i = i + 1) {
    h = ((h * 33) + chars[off + i]) & 1048575;
  }
  return h;
}

func str_eq(o1, l1, o2, l2) {
  if (l1 != l2) { return 0; }
  for (var i = 0; i < l1; i = i + 1) {
    if (chars[o1 + i] != chars[o2 + i]) { return 0; }
  }
  return 1;
}

func tab_clear() {
  for (var i = 0; i < 1024; i = i + 1) { hkey_len[i] = 0; }
  return 0;
}

// Add delta to the value at key; creates the entry at 0.
func tab_bump(off, len, delta) {
  var s = str_hash(off, len) & 1023;
  var probes = 0;
  while (probes < 1024) {
    if (hkey_len[s] == 0) {
      hkey_off[s] = off;
      hkey_len[s] = len;
      hval[s] = delta;
      return delta;
    }
    if (str_eq(hkey_off[s], hkey_len[s], off, len)) {
      hval[s] = hval[s] + delta;
      return hval[s];
    }
    s = (s + 1) & 1023;
    probes = probes + 1;
  }
  abort();
  return 0;
}

func tab_sum() {
  var t = 0;
  for (var i = 0; i < 1024; i = i + 1) {
    if (hkey_len[i] != 0) { t = (t + hval[i] * hkey_len[i]) % 999983; }
  }
  return t;
}
|}

let vm = {|
// Stack VM: opcodes 0 push-imm, 1 add, 2 mul, 3 dup, 4 hash-bump,
// 5 jnz (backwards), 6 drop, 7 halt.
global stack[64];
public global sp_ = 0;

func push(v) { stack[sp_] = v; sp_ = sp_ + 1; return 0; }
func pop() { sp_ = sp_ - 1; return stack[sp_]; }

// One instruction; returns the new vpc.
func vm_step(op, arg, vpc, str_off, str_len) {
  if (op == 0) { push(arg); return vpc + 1; }
  if (op == 1) { var b = pop(); var a = pop(); push(a + b); return vpc + 1; }
  if (op == 2) { var b2 = pop(); var a2 = pop(); push(a2 * b2); return vpc + 1; }
  if (op == 3) { var t = pop(); push(t); push(t); return vpc + 1; }
  if (op == 4) { push(tab_bump(str_off, str_len, pop() & 255)); return vpc + 1; }
  if (op == 5) { if (pop() != 0) { return vpc - arg; } return vpc + 1; }
  if (op == 6) { pop(); return vpc + 1; }
  return 0 - 1;
}
|}

let main = {|
global script_op[32];
global script_arg[32];

static func assemble() {
  // Loop: counter times { acc = (acc*3+7); bump hash by acc }.
  script_op[0] = 0; script_arg[0] = 5;   // push 5 (acc)
  script_op[1] = 0; script_arg[1] = 3;   // push 3
  script_op[2] = 2; script_arg[2] = 0;   // mul
  script_op[3] = 0; script_arg[3] = 7;   // push 7
  script_op[4] = 1; script_arg[4] = 0;   // add
  script_op[5] = 3; script_arg[5] = 0;   // dup
  script_op[6] = 4; script_arg[6] = 0;   // bump
  script_op[7] = 6; script_arg[7] = 0;   // drop bump result
  script_op[8] = 3; script_arg[8] = 0;   // dup acc
  script_op[9] = 0; script_arg[9] = 1048575;
  script_op[10] = 2; script_arg[10] = 0; // acc * mask (keeps nonzero)
  script_op[11] = 5; script_arg[11] = 10;// jnz back 10 -> vpc 1
  script_op[12] = 7; script_arg[12] = 0; // halt
  return 13;
}

static func make_word(n, seed) {
  var off = str_new();
  for (var i = 0; i < n; i = i + 1) {
    str_putc(97 + ((seed + i * 7) % 23));
  }
  return off;
}

func main() {
  assemble();
  tab_clear();
  var words = input_size;
  var total = 0;
  for (var w = 0; w < words; w = w + 1) {
    var len = 3 + (w % 6);
    var off = make_word(len, w * 13 + 1);
    // Run the script against this word, bounded.
    var vpc = 0;
    var fuel = 60;
    while (fuel > 0 && vpc >= 0 && script_op[vpc] != 7) {
      vpc = vm_step(script_op[vpc], script_arg[vpc], vpc, off, len);
      fuel = fuel - 1;
    }
    sp_ = 0;
    total = (total * 31 + tab_sum()) % 999983;
    if (nchars > 7000) { nchars = 0; tab_clear(); }
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("hashtab", hashtab); ("vm", vm); ("plmain", main) ]
