(** mini-li: a tiny lisp interpreter in the spirit of 022.li / 130.li
    (xlisp).

    Cons cells live in a heap of parallel arrays; the hot path is the
    recursive [eval]/[apply] pair over deep expression trees, built
    from many one-line accessors ([car], [cdr], [tag_of], ...) — the
    call-site population that made the real li the paper's best case
    (2.02x).  The [eval_in_mode] wrapper is always invoked with a
    constant mode, a cloning opportunity, and arithmetic dispatch goes
    through a function-pointer table (indirect calls that cloning plus
    constant propagation can devirtualize). *)

(* Expression encoding: a cell is (tag, a, b).
   tag 0 = number (a = value)
   tag 1 = symbol (a = slot in the environment)
   tag 2 = cons   (a = car cell, b = cdr cell): (op expr expr)
   op codes: 0 add, 1 sub, 2 mul, 3 if-positive *)

let cell = {|
global tags[4096];
global cars[4096];
global cdrs[4096];
public global ncells = 1;

func cons(tag, a, b) {
  var c = ncells;
  if (c >= 4096) { abort(); }
  ncells = c + 1;
  tags[c] = tag;
  cars[c] = a;
  cdrs[c] = b;
  return c;
}

func tag_of(c) { return tags[c]; }
func car(c) { return cars[c]; }
func cdr(c) { return cdrs[c]; }
func is_number(c) { return tags[c] == 0; }
func is_symbol(c) { return tags[c] == 1; }
func number(v) { return cons(0, v, 0); }
func symbol(slot) { return cons(1, slot, 0); }
func list3(op, x, y) { return cons(2, op, cons(2, x, cons(2, y, 0))); }
|}

let eval = {|
global env[16];

func set_env(slot, v) { env[slot & 15] = v; }
func get_env(slot) { return env[slot & 15]; }

static func prim_add(x, y) { return x + y; }
static func prim_sub(x, y) { return x - y; }
static func prim_mul(x, y) { return x * y; }

global prims[3];

func init_prims() {
  prims[0] = &prim_add;
  prims[1] = &prim_sub;
  prims[2] = &prim_mul;
}

func eval(e) {
  var t = tag_of(e);
  if (t == 0) { return car(e); }
  if (t == 1) { return get_env(car(e)); }
  // cons: (op x y)
  var op = car(e);
  var args = cdr(e);
  var x = eval(car(args));
  var rest = cdr(args);
  var y = eval(car(rest));
  if (op == 3) {
    if (x > 0) { return y; }
    return 0 - y;
  }
  var f = prims[op];
  return f(x, y);
}

// Mode 0: plain eval; mode 1: eval twice and sum (stress); mode 2:
// absolute value of result.  Callers always pass a literal mode.
func eval_in_mode(e, mode) {
  if (mode == 0) { return eval(e); }
  if (mode == 1) { return eval(e) + eval(e); }
  var v = eval(e);
  if (v < 0) { return 0 - v; }
  return v;
}
|}

let main = {|
static func build(depth, seed) {
  if (depth <= 0) {
    if (seed % 3 == 0) { return number(seed % 17); }
    return symbol(seed);
  }
  var op = seed % 4;
  var l = build(depth - 1, seed * 2 + 1);
  var r = build(depth - 1, seed * 3 + 2);
  return list3(op, l, r);
}

static func checksum(v, acc) { return (acc * 31 + v) % 999983; }

func main() {
  init_prims();
  for (var i = 0; i < 16; i = i + 1) { set_env(i, i * 7 - 20); }
  var total = 0;
  var rounds = input_size;
  for (var round = 0; round < rounds; round = round + 1) {
    var e = build(6, round + 3);
    total = checksum(eval_in_mode(e, 0), total);
    total = checksum(eval_in_mode(e, 1), total);
    total = checksum(eval_in_mode(e, 2), total);
    // reset the heap for the next round
    ncells = 1;
    if (total < 0) { total = 0 - total; }
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("cell", cell); ("evalmod", eval); ("limain", main) ]
