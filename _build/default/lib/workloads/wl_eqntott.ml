(** mini-eqntott: truth-table construction and canonical sorting, after
    023.eqntott.

    The real eqntott spent most of its time in [qsort] calling the
    comparison function [cmppt] through a function pointer — the
    canonical indirect-call workload.  Here a boolean expression over
    [nvars] inputs is evaluated for every input assignment, and the
    resulting product terms are sorted with a hand-rolled quicksort
    that takes its comparator as a function handle. *)

let expr = {|
// Expression over variables encoded as a fixed operator tree; the
// evaluator walks it for a given assignment bitmask.
func eval_term(mask, v) { return (mask >> (v & 63)) & 1; }

func eval_expr(mask, depth, seed) {
  if (depth <= 0) { return eval_term(mask, seed % 12); }
  var l = eval_expr(mask, depth - 1, seed * 5 + 1);
  var r = eval_expr(mask, depth - 1, seed * 7 + 2);
  var op = seed % 3;
  if (op == 0) { return l & r; }
  if (op == 1) { return l | r; }
  return l ^ r;
}
|}

let sortmod = {|
global pt[8192];
public global npt = 0;

func pt_get(i) { return pt[i]; }
func pt_set(i, v) { pt[i] = v; }
func pt_push(v) {
  if (npt >= 8192) { abort(); }
  pt[npt] = v;
  npt = npt + 1;
}

// Comparators, selected by handle as in the real eqntott.
func cmp_ascending(a, b) { return a - b; }
func cmp_descending(a, b) { return b - a; }
func cmp_gray(a, b) { return (a ^ (a >> 1)) - (b ^ (b >> 1)); }

static func swap(i, j) {
  var t = pt[i];
  pt[i] = pt[j];
  pt[j] = t;
}

// Quicksort over pt[lo..hi] with comparator handle cmp.
func qsort_pt(lo, hi, cmp) {
  if (lo >= hi) { return 0; }
  var pivot = pt[(lo + hi) / 2];
  var i = lo;
  var j = hi;
  while (i <= j) {
    while (cmp(pt[i], pivot) < 0) { i = i + 1; }
    while (cmp(pt[j], pivot) > 0) { j = j - 1; }
    if (i <= j) {
      swap(i, j);
      i = i + 1;
      j = j - 1;
    }
  }
  qsort_pt(lo, j, cmp);
  qsort_pt(i, hi, cmp);
  return 0;
}
|}

let main = {|
static func checksum() {
  var h = 0;
  for (var i = 0; i < npt; i = i + 1) {
    h = (h * 131 + pt_get(i)) % 1000003;
  }
  return h;
}

func main() {
  var nmasks = input_size;
  var total = 0;
  for (var round = 0; round < 4; round = round + 1) {
    npt = 0;
    for (var mask = 0; mask < nmasks; mask = mask + 1) {
      var on = eval_expr(mask, 4, round + 2);
      if (on != 0) { pt_push(mask * 2 + 1); }
      else { pt_push(mask * 2); }
    }
    qsort_pt(0, npt - 1, &cmp_gray);
    total = (total + checksum()) % 1000003;
    qsort_pt(0, npt - 1, &cmp_descending);
    total = (total + checksum()) % 1000003;
    qsort_pt(0, npt - 1, &cmp_ascending);
    total = (total + checksum()) % 1000003;
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("expr", expr); ("sortmod", sortmod); ("eqmain", main) ]
