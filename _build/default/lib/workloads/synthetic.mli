(** Deterministic synthetic large programs for the paper's §3.5 scaling
    claim: layered acyclic call graphs over [modules] modules, a mix of
    exported and static routines, constant-argument sites, per-module
    state, and a [main] that drives every module from a hot loop.
    Same seed, same program — runs are reproducible. *)

(** Generate the program's sources. *)
val generate :
  ?funcs_per_module:int ->
  ?seed:int ->
  modules:int ->
  unit ->
  Minic.Compile.source list

(** Generate, compile and link. *)
val compile :
  ?funcs_per_module:int -> ?seed:int -> modules:int -> unit -> Ucode.Types.program
