(** mini-ijpeg: 8x8 block transform coding, after 132.ijpeg.

    Deterministic "image" blocks go through a separable integer
    transform (a DCT stand-in built from butterfly helpers), quantize /
    dequantize with a quality parameter the driver always passes as a
    literal (a clone candidate that folds the divisor), inverse
    transform, and an error accumulation — fixed-point inner loops
    dominated by small arithmetic helpers. *)

let dct = {|
global blk[64];
global tmp[64];

func blk_get(i) { return blk[i]; }
func blk_set(i, v) { blk[i] = v; return 0; }

static func rot(a, b, k) {
  // Poor man's rotation butterfly with fixed-point scale 256.
  return (a * (256 - k) + b * k) >> 8;
}

func fwd_pass(stride, base) {
  // One 8-point butterfly pass starting at base with the given stride.
  for (var i = 0; i < 4; i = i + 1) {
    var lo = base + i * stride;
    var hi = base + (7 - i) * stride;
    var s = blk[lo] + blk[hi];
    var d = blk[lo] - blk[hi];
    tmp[lo] = rot(s, d, 64 + i * 16);
    tmp[hi] = rot(d, s, 32 + i * 8);
  }
  for (var i = 0; i < 8; i = i + 1) {
    blk[base + i * stride] = tmp[base + i * stride];
  }
  return 0;
}

func fwd_transform() {
  for (var r = 0; r < 8; r = r + 1) { fwd_pass(1, r * 8); }
  for (var c = 0; c < 8; c = c + 1) { fwd_pass(8, c); }
  return 0;
}
|}

let quant = {|
func quant_step(i, quality) {
  var base = 1 + (i & 7) + (i >> 3);
  return 1 + (base * 50) / quality;
}

func quantize(quality) {
  var nonzero = 0;
  for (var i = 0; i < 64; i = i + 1) {
    var q = quant_step(i, quality);
    var v = blk_get(i) / q;
    blk_set(i, v);
    if (v != 0) { nonzero = nonzero + 1; }
  }
  return nonzero;
}

func dequantize(quality) {
  for (var i = 0; i < 64; i = i + 1) {
    blk_set(i, blk_get(i) * quant_step(i, quality));
  }
  return 0;
}
|}

let main = {|
static func fill_block(seed) {
  var x = seed;
  for (var i = 0; i < 64; i = i + 1) {
    x = (x * 1103515245 + 12345) & 1048575;
    blk_set(i, (x % 255) - 128);
  }
  return x;
}

static func block_energy() {
  var e = 0;
  for (var i = 0; i < 64; i = i + 1) {
    var v = blk_get(i);
    e = e + v * v;
  }
  return e % 999979;
}

func main() {
  var blocks = input_size;
  var total = 0;
  var seed = 99;
  for (var b = 0; b < blocks; b = b + 1) {
    seed = fill_block(seed + b);
    fwd_transform();
    var nz = quantize(75);
    total = (total * 31 + nz) % 999979;
    dequantize(75);
    fwd_transform();
    total = (total + block_energy()) % 999979;
    if (b % 8 == 0) {
      // Occasional high-quality block (cold path, different literal).
      var nz2 = quantize(95);
      dequantize(95);
      total = (total + nz2) % 999979;
    }
  }
  print_int(total);
  return 0;
}
|}

let sources = [ ("dct", dct); ("quant", quant); ("jmain", main) ]
