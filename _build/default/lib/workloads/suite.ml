(** The benchmark suite: fourteen entries mirroring the SPEC integer
    programs the paper evaluates (six from SPEC92, eight from SPEC95).

    As in SPEC itself, three programs appear in both suites (gcc, li,
    compress); the SPEC95 entries run substantially larger inputs.
    Every entry has a *train* input (used for the instrumented
    profiling run, as in the paper's methodology) and a *ref* input
    (used for the timed/simulated runs). *)

type spec_suite = Spec92 | Spec95

let suite_name = function Spec92 -> "SPECint92" | Spec95 -> "SPECint95"

type benchmark = {
  b_name : string;
  b_suite : spec_suite;
  b_sources : (string * string) list;  (** module name, MiniC text *)
  b_train_size : int;
  b_ref_size : int;
}

type input = Train | Ref

let all : benchmark list =
  [ { b_name = "008.espresso"; b_suite = Spec92; b_sources = Wl_espresso.sources;
      b_train_size = 24; b_ref_size = 64 };
    { b_name = "022.li"; b_suite = Spec92; b_sources = Wl_li.sources;
      b_train_size = 20; b_ref_size = 80 };
    { b_name = "023.eqntott"; b_suite = Spec92; b_sources = Wl_eqntott.sources;
      b_train_size = 128; b_ref_size = 512 };
    { b_name = "026.compress"; b_suite = Spec92; b_sources = Wl_compress.sources;
      b_train_size = 1024; b_ref_size = 4096 };
    { b_name = "072.sc"; b_suite = Spec92; b_sources = Wl_sc.sources;
      b_train_size = 10; b_ref_size = 50 };
    { b_name = "085.gcc"; b_suite = Spec92; b_sources = Wl_gcc.sources;
      b_train_size = 30; b_ref_size = 120 };
    { b_name = "099.go"; b_suite = Spec95; b_sources = Wl_go.sources;
      b_train_size = 8; b_ref_size = 40 };
    { b_name = "124.m88ksim"; b_suite = Spec95; b_sources = Wl_m88ksim.sources;
      b_train_size = 30; b_ref_size = 200 };
    { b_name = "126.gcc"; b_suite = Spec95; b_sources = Wl_gcc.sources;
      b_train_size = 40; b_ref_size = 220 };
    { b_name = "129.compress"; b_suite = Spec95; b_sources = Wl_compress.sources;
      b_train_size = 2048; b_ref_size = 8192 };
    { b_name = "130.li"; b_suite = Spec95; b_sources = Wl_li.sources;
      b_train_size = 30; b_ref_size = 140 };
    { b_name = "132.ijpeg"; b_suite = Spec95; b_sources = Wl_ijpeg.sources;
      b_train_size = 40; b_ref_size = 260 };
    { b_name = "134.perl"; b_suite = Spec95; b_sources = Wl_perl.sources;
      b_train_size = 60; b_ref_size = 300 };
    { b_name = "147.vortex"; b_suite = Spec95; b_sources = Wl_vortex.sources;
      b_train_size = 80; b_ref_size = 400 } ]

let find name =
  match List.find_opt (fun b -> b.b_name = name) all with
  | Some b -> b
  | None -> invalid_arg ("Suite.find: unknown benchmark " ^ name)

let of_suite s = List.filter (fun b -> b.b_suite = s) all

(** Full source list for a benchmark at the given input size,
    including the generated [config] module that publishes
    [input_size]. *)
let sources (b : benchmark) ~(input : input) : Minic.Compile.source list =
  let size = match input with Train -> b.b_train_size | Ref -> b.b_ref_size in
  let config = Printf.sprintf "public global input_size = %d;\n" size in
  Minic.Compile.source ~module_name:"config" config
  :: List.map
       (fun (m, text) -> Minic.Compile.source ~module_name:m text)
       b.b_sources

(** Compile a benchmark to a linked ucode program. *)
let compile (b : benchmark) ~(input : input) : Ucode.Types.program =
  fst (Minic.Compile.compile_program (sources b ~input))
