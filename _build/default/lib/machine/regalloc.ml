(** Linear-scan register allocation for VR32.

    The paper observes that the HP-UX register allocator "has little
    difficulty with the larger routines created by inlining and
    cloning, and for the most part register pressure is not an issue";
    reproducing that requires an allocator that reuses registers across
    non-overlapping live ranges — a naive one-virtual-one-physical
    scheme drowns post-inlining routines in spill traffic and erases
    the very effect being measured.

    Classic linear scan: instructions are numbered in block order, each
    virtual register gets one conservative live interval (extended over
    every block where liveness says it is live-in/out, which safely
    covers loops), intervals are walked in start order and assigned
    from two pools:

    - intervals that span a call site must live in *callee-saved*
      registers (the callee preserves them; the cost is one
      save/restore pair in the callee's prologue/epilogue);
    - other intervals prefer *caller-saved* registers, falling back to
      free callee-saved ones.

    When no compatible register is free, the active interval with the
    furthest end (or the new interval itself) is spilled to a frame
    slot; spilled accesses go through the two reserved scratch
    registers — visible D-cache traffic, exactly the register-pressure
    cost the paper discusses.

    Register convention:
    [r0] zero/unused, [r1] return value, [r2-r15] caller-saved,
    [r16-r28] callee-saved, [r29-r30] scratch, [r31] stack pointer. *)

module U = Ucode.Types

let result_reg = 1
let caller_saved_pool = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
let callee_saved_pool = [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28 ]
let scratch1 = 29
let scratch2 = 30
let sp = 31

let is_callee_saved p = p >= 16 && p <= 28

type location = Preg of int | Spill of int  (** frame slot index *)

type t = {
  locations : location U.Int_map.t;
  used_callee_saved : int list;  (** ascending; saved in the prologue *)
  nspills : int;
}

let location t v =
  match U.Int_map.find_opt v t.locations with
  | Some loc -> loc
  | None ->
    invalid_arg (Printf.sprintf "Regalloc.location: unallocated vreg %d" v)

(** Frame size in words: spill slots then the callee-saved save area. *)
let frame_size t = t.nspills + List.length t.used_callee_saved

(* ------------------------------------------------------------------ *)
(* Live intervals.                                                     *)

type interval = {
  vreg : U.reg;
  start : int;
  stop : int;            (** inclusive *)
  crosses_call : bool;
}

(** Conservative live intervals over the linearized routine. *)
let intervals_of (r : U.routine) : interval list * int list =
  let live = Opt.Liveness.compute r in
  let starts = Hashtbl.create 64 in
  let stops = Hashtbl.create 64 in
  let extend v pos =
    (match Hashtbl.find_opt starts v with
    | Some s when s <= pos -> ()
    | _ -> Hashtbl.replace starts v pos);
    match Hashtbl.find_opt stops v with
    | Some s when s >= pos -> ()
    | _ -> Hashtbl.replace stops v pos
  in
  let call_positions = ref [] in
  (* Position 0 is the prologue, where parameters are defined;
     instructions start at 1 so a call as the very first instruction
     still counts as strictly inside a parameter's interval. *)
  let pos = ref 1 in
  List.iter (fun p -> extend p 0) r.U.r_params;
  List.iter
    (fun (b : U.block) ->
      let block_start = !pos in
      List.iter
        (fun i ->
          List.iter (fun v -> extend v !pos) (U.instr_uses i);
          (match U.instr_def i with Some d -> extend d !pos | None -> ());
          (match i with U.Call _ -> call_positions := !pos :: !call_positions
                      | _ -> ());
          incr pos)
        b.U.b_instrs;
      (* The terminator occupies a position too. *)
      List.iter (fun v -> extend v !pos) (U.term_uses b.U.b_term);
      let block_end = !pos in
      incr pos;
      (* A register live into or out of the block is live across all of
         it — covers values carried around loop back edges. *)
      U.Int_set.iter (fun v -> extend v block_start)
        (Opt.Liveness.live_in live b.U.b_id);
      U.Int_set.iter
        (fun v ->
          extend v block_start;
          extend v block_end)
        (Opt.Liveness.live_out live b.U.b_id))
    r.U.r_blocks;
  let calls = List.sort compare !call_positions in
  let crosses start stop =
    List.exists (fun c -> start < c && c < stop) calls
  in
  let ivs =
    Hashtbl.fold
      (fun v start acc ->
        let stop = Hashtbl.find stops v in
        { vreg = v; start; stop; crosses_call = crosses start stop } :: acc)
      starts []
  in
  (List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg)) ivs, calls)

(* ------------------------------------------------------------------ *)
(* The scan.                                                           *)

let allocate (r : U.routine) : t =
  let ivs, _calls = intervals_of r in
  let locations = ref U.Int_map.empty in
  let used_callee = Hashtbl.create 16 in
  let nspills = ref 0 in
  let free_caller = ref caller_saved_pool in
  let free_callee = ref callee_saved_pool in
  (* Active intervals, kept sorted by [stop] ascending. *)
  let active : interval list ref = ref [] in
  let preg_of iv =
    match U.Int_map.find_opt iv.vreg !locations with
    | Some (Preg p) -> Some p
    | _ -> None
  in
  let release p =
    if is_callee_saved p then free_callee := p :: !free_callee
    else free_caller := p :: !free_caller
  in
  let expire current_start =
    let expired, still =
      List.partition (fun iv -> iv.stop < current_start) !active
    in
    List.iter (fun iv -> Option.iter release (preg_of iv)) expired;
    active := still
  in
  let insert_active iv =
    let rec ins = function
      | [] -> [ iv ]
      | hd :: tl when hd.stop >= iv.stop -> iv :: hd :: tl
      | hd :: tl -> hd :: ins tl
    in
    active := ins !active
  in
  let assign iv p =
    if is_callee_saved p then Hashtbl.replace used_callee p ();
    locations := U.Int_map.add iv.vreg (Preg p) !locations;
    insert_active iv
  in
  let spill_slot () =
    let s = !nspills in
    incr nspills;
    s
  in
  let take pool =
    match !pool with
    | p :: rest ->
      pool := rest;
      Some p
    | [] -> None
  in
  let try_take iv =
    if iv.crosses_call then take free_callee
    else
      match take free_caller with
      | Some p -> Some p
      | None -> take free_callee
  in
  let scan iv =
    expire iv.start;
    match try_take iv with
    | Some p -> assign iv p
    | None ->
      (* Spill the compatible active interval that ends last, if it
         outlives the new one; otherwise spill the new interval. *)
      let compatible other =
        match preg_of other with
        | Some p ->
          if iv.crosses_call then is_callee_saved p else true
        | None -> false
      in
      let victim =
        List.fold_left
          (fun best other ->
            if not (compatible other) then best
            else
              match best with
              | Some b when b.stop >= other.stop -> best
              | _ -> Some other)
          None !active
      in
      (match victim with
      | Some v when v.stop > iv.stop ->
        let p = Option.get (preg_of v) in
        locations := U.Int_map.add v.vreg (Spill (spill_slot ())) !locations;
        active := List.filter (fun o -> o.vreg <> v.vreg) !active;
        assign iv p
      | _ -> locations := U.Int_map.add iv.vreg (Spill (spill_slot ())) !locations)
  in
  List.iter scan ivs;
  { locations = !locations;
    used_callee_saved =
      Hashtbl.fold (fun p () acc -> p :: acc) used_callee [] |> List.sort compare;
    nspills = !nspills }
