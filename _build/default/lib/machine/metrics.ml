(** Execution metrics collected by the simulator — the quantities the
    paper plots in Figure 7. *)

type t = {
  instructions : int;   (** retired VR32 instructions *)
  cycles : int;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  branches : int;       (** conditional + jumps + calls + returns *)
  branch_mispredicts : int;
}

let cpi t =
  if t.instructions = 0 then 0.0
  else float_of_int t.cycles /. float_of_int t.instructions

let icache_miss_rate t =
  if t.icache_accesses = 0 then 0.0
  else float_of_int t.icache_misses /. float_of_int t.icache_accesses

let dcache_miss_rate t =
  if t.dcache_accesses = 0 then 0.0
  else float_of_int t.dcache_misses /. float_of_int t.dcache_accesses

let branch_miss_rate t =
  if t.branches = 0 then 0.0
  else float_of_int t.branch_mispredicts /. float_of_int t.branches

(** Ratio of a metric against a baseline run, as in Figure 7's
    "relative" panels (1.0 = unchanged). *)
let relative ~(baseline : t) (f : t -> int) (t : t) =
  let b = f baseline in
  if b = 0 then 1.0 else float_of_int (f t) /. float_of_int b

let pp ppf t =
  Fmt.pf ppf
    "instrs=%d cycles=%d CPI=%.3f I$=%d/%d (%.2f%%) D$=%d/%d (%.2f%%) br=%d/%d (%.2f%%)"
    t.instructions t.cycles (cpi t) t.icache_misses t.icache_accesses
    (100.0 *. icache_miss_rate t)
    t.dcache_misses t.dcache_accesses
    (100.0 *. dcache_miss_rate t)
    t.branch_mispredicts t.branches
    (100.0 *. branch_miss_rate t)
