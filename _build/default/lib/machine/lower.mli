(** Instruction selection: one ucode routine to VR32 code, under the
    stack-argument calling convention documented in the implementation
    (arguments stored below sp; [call] pushes the return address; the
    callee's frame holds spill slots and the callee-saved save area).

    [arity_of] pads/truncates mismatched direct calls to the
    interpreter's pad-with-zero semantics; [is_routine] decides
    call-vs-syscall (user definitions shadow builtins). *)

type lowered = {
  lw_name : string;
  lw_code : Vinsn.t array;
      (** targets are [Tlocal]/[Troutine]/[Tglobal], resolved by
          {!Layout} *)
}

val lower_routine :
  arity_of:(string -> int option) ->
  is_routine:(string -> bool) ->
  Ucode.Types.routine ->
  lowered
