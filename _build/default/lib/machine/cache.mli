(** A parametric set-associative cache with true-LRU replacement, used
    for both the I-cache and the D-cache of the simulated machine.
    Addresses are in words. *)

type config = {
  sets : int;
  assoc : int;
  line_words : int;
}

(** Defaults sized so the mini-workloads stress the caches the way SPEC
    binaries stressed the PA8000's. *)
val default_icache : config

val default_dcache : config

type t = private {
  cfg : config;
  tags : int array array;
  last_use : int array array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val create : config -> t
val size_words : t -> int

(** Access one word address; true on hit.  Updates LRU state and the
    access/miss counters. *)
val access : t -> int -> bool

val reset : t -> unit
val miss_rate : t -> float
