(** The machine simulator — the stand-in for the PA8000 simulator
    behind the paper's Figure 7.  Executes a laid-out image while
    driving an I-cache (per fetch), a D-cache (per load/store) and a
    branch predictor (returns and indirect calls always mispredict);
    cycles are 1 per retired instruction plus miss, mispredict and
    multiplier/divider latencies. *)

type penalties = {
  icache_miss : int;
  dcache_miss : int;
  branch_mispredict : int;
  mul_extra : int;
  div_extra : int;
}

val default_penalties : penalties

type config = {
  memory_cells : int;
  max_instructions : int;
  icache : Cache.config;
  dcache : Cache.config;
  predictor_entries : int;
  penalties : penalties;
}

val default_config : config

type trap =
  | Division_by_zero
  | Memory_fault of int64
  | Stack_overflow
  | Bad_jump of int
  | Aborted
  | Out_of_instructions
  | Out_of_memory

(** Carries the trap and the faulting pc. *)
exception Trap of trap * int

val trap_message : trap -> string

type result = {
  exit_code : int64;
  output : string;
  metrics : Metrics.t;
}

val run : ?config:config -> Layout.image -> result

(** Lower + lay out + simulate in one step. *)
val run_program : ?config:config -> Ucode.Types.program -> result
