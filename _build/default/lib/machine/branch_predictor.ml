(** Branch prediction model.

    A table of 2-bit saturating counters indexed by the low bits of the
    branch's instruction address — collisions between branches mapping
    to the same entry degrade accuracy exactly as the paper worries
    ("an increase in the total number of branches may increase the rate
    of branch collision in a branch prediction cache").

    Following the paper's description of the PA8000, *procedure return
    branches are always mispredicted*; indirect calls likewise (their
    target comes from a register). *)

type t = {
  counters : int array;       (** 0..3; >=2 predicts taken *)
  mutable branches : int;      (** everything control-flow: cond, jumps, calls, returns *)
  mutable conditional : int;
  mutable mispredicts : int;
}

let create ?(entries = 256) () =
  if entries <= 0 then invalid_arg "Branch_predictor.create";
  { counters = Array.make entries 1; branches = 0; conditional = 0;
    mispredicts = 0 }

let index t pc = pc land (Array.length t.counters - 1)

(** Record a conditional branch at [pc] with outcome [taken]; returns
    [true] if it was predicted correctly. *)
let conditional t ~pc ~taken =
  t.branches <- t.branches + 1;
  t.conditional <- t.conditional + 1;
  let i = index t pc in
  let c = t.counters.(i) in
  let predicted_taken = c >= 2 in
  let correct = predicted_taken = taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  t.counters.(i) <-
    (if taken then min 3 (c + 1) else max 0 (c - 1));
  correct

(** Unconditional direct jumps and calls: counted as branches, never
    mispredicted (the target is in the instruction). *)
let unconditional t = t.branches <- t.branches + 1

(** Returns and register-indirect calls: counted and always
    mispredicted, as on the PA8000. *)
let always_mispredicted t =
  t.branches <- t.branches + 1;
  t.mispredicts <- t.mispredicts + 1

let miss_rate t =
  if t.branches = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.branches

let reset t =
  Array.fill t.counters 0 (Array.length t.counters) 1;
  t.branches <- 0;
  t.conditional <- 0;
  t.mispredicts <- 0
