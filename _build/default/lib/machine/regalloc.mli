(** Linear-scan register allocation for VR32.

    Conservative live intervals (extended over every block where
    liveness holds, covering loops); intervals crossing a call must
    live in callee-saved registers; the rest prefer caller-saved.
    When no compatible register is free, the furthest-ending interval
    spills to a frame slot, accessed through the two reserved scratch
    registers. *)

val result_reg : int
val caller_saved_pool : int list
val callee_saved_pool : int list
val scratch1 : int
val scratch2 : int
val sp : int
val is_callee_saved : int -> bool

type location = Preg of int | Spill of int  (** frame slot index *)

type t = {
  locations : location Ucode.Types.Int_map.t;
  used_callee_saved : int list;  (** ascending; saved in the prologue *)
  nspills : int;
}

(** Location of a virtual register; raises on an unallocated one. *)
val location : t -> Ucode.Types.reg -> location

(** Frame words: spill slots plus the callee-saved save area. *)
val frame_size : t -> int

type interval = {
  vreg : Ucode.Types.reg;
  start : int;
  stop : int;  (** inclusive *)
  crosses_call : bool;
}

(** Conservative live intervals over the linearized routine, sorted by
    start, plus the call positions. *)
val intervals_of : Ucode.Types.routine -> interval list * int list

val allocate : Ucode.Types.routine -> t
