(** Code and data layout: whole program to executable image.

    Instruction memory: address 0 holds the halt stub; routines follow
    in program order.  A routine's handle *is* its entry address, so an
    [Mla rd, routine] becomes a plain immediate load and an indirect
    call jumps straight to the loaded address.

    Data memory mirrors the interpreter's layout exactly — cell 0
    reserved, globals from cell 1 in program order, the allocator break
    after them — so a program produces bit-identical output on both
    engines.  The stack grows down from the top of data memory. *)

module U = Ucode.Types
module V = Vinsn

type image = {
  code : V.t array;
  entries : (string * int) list;       (** routine name -> entry address *)
  routine_extent : (string * (int * int)) list;
      (** routine -> (first, one-past-last) address, for attribution *)
  global_bases : (string * int) list;
  data_break : int;  (** first data cell not used by globals *)
  global_init : (int * int64) list;    (** cell -> initial value *)
  main_entry : int;
}

let halt_address = 0

let build (p : U.program) : image =
  let arity_of name = U.arity_in_program p name in
  let is_routine name = U.find_routine p name <> None in
  let lowered =
    List.map (Lower.lower_routine ~arity_of ~is_routine) p.U.p_routines
  in
  (* Pass 1: place code. *)
  let entries = Hashtbl.create 64 in
  let extents = ref [] in
  let pos = ref 1 (* 0 = halt stub *) in
  List.iter
    (fun (lw : Lower.lowered) ->
      Hashtbl.replace entries lw.Lower.lw_name !pos;
      extents := (lw.Lower.lw_name, (!pos, !pos + Array.length lw.Lower.lw_code))
                 :: !extents;
      pos := !pos + Array.length lw.Lower.lw_code)
    lowered;
  (* Data layout, identical to {!Interp}. *)
  let global_bases = ref [] in
  let global_init = ref [] in
  let next = ref 1 in
  List.iter
    (fun (g : U.global) ->
      global_bases := (g.U.g_name, !next) :: !global_bases;
      List.iteri (fun i v -> global_init := (!next + i, v) :: !global_init)
        g.U.g_init;
      next := !next + g.U.g_size)
    p.U.p_globals;
  let entry_of name =
    match Hashtbl.find_opt entries name with
    | Some a -> a
    | None -> invalid_arg ("Layout.build: undefined routine " ^ name)
  in
  let base_of name =
    match List.assoc_opt name !global_bases with
    | Some a -> a
    | None -> invalid_arg ("Layout.build: undefined global " ^ name)
  in
  (* Pass 2: patch targets. *)
  let code = Array.make !pos V.Mhalt in
  List.iter
    (fun (lw : Lower.lowered) ->
      let base = Hashtbl.find entries lw.Lower.lw_name in
      let patch_target = function
        | V.Tlocal off -> V.Taddr (base + off)
        | V.Troutine n -> V.Taddr (entry_of n)
        | V.Taddr a -> V.Taddr a
        | V.Tblock _ | V.Tglobal _ ->
          invalid_arg "Layout.build: unresolved branch target"
      in
      Array.iteri
        (fun i insn ->
          let insn' =
            match insn with
            | V.Mla (d, V.Troutine n) -> V.Mli (d, Int64.of_int (entry_of n))
            | V.Mla (d, V.Tglobal g) -> V.Mli (d, Int64.of_int (base_of g))
            | V.Mla (_, _) -> invalid_arg "Layout.build: bad Mla target"
            | V.Mjmp t -> V.Mjmp (patch_target t)
            | V.Mbeqz (r, t) -> V.Mbeqz (r, patch_target t)
            | V.Mbnez (r, t) -> V.Mbnez (r, patch_target t)
            | V.Mcall t -> V.Mcall (patch_target t)
            | other -> other
          in
          code.(base + i) <- insn')
        lw.Lower.lw_code)
    lowered;
  { code;
    entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) entries [];
    routine_extent = List.rev !extents;
    global_bases = List.rev !global_bases; data_break = !next;
    global_init = List.rev !global_init;
    main_entry = entry_of p.U.p_main }

let code_size image = Array.length image.code

(** Disassembly listing, for debugging and the CLI's [--dump-asm]. *)
let pp ppf image =
  let starts =
    List.map (fun (name, (first, _)) -> (first, name)) image.routine_extent
  in
  Array.iteri
    (fun addr insn ->
      (match List.assoc_opt addr starts with
      | Some name -> Fmt.pf ppf "%s:@." name
      | None -> ());
      Fmt.pf ppf "  %4d: %a@." addr V.pp insn)
    image.code
