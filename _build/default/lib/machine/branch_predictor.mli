(** Branch prediction: a table of 2-bit saturating counters indexed by
    the branch address (collisions degrade accuracy, as the paper
    worries).  Returns and indirect calls are always mispredicted, as
    on the PA8000. *)

type t = private {
  counters : int array;
  mutable branches : int;
  mutable conditional : int;
  mutable mispredicts : int;
}

val create : ?entries:int -> unit -> t

(** Record a conditional branch; true when predicted correctly. *)
val conditional : t -> pc:int -> taken:bool -> bool

(** Direct jumps/calls: counted, never mispredicted. *)
val unconditional : t -> unit

(** Returns and indirect calls: counted, always mispredicted. *)
val always_mispredicted : t -> unit

val miss_rate : t -> float
val reset : t -> unit
