(** Instruction selection: one ucode routine to VR32 code.

    Calling convention (see also {!Vinsn} and {!Regalloc}):

    Caller, to invoke [f(a0..a_{n-1})]:
    {v
      st  a_i, -(1+i)(sp)     ; outgoing actuals just below sp
      addi sp, sp, -n
      call f                  ; pushes the return address: mem[--sp] <- pc+1
      addi sp, sp, +n
      mov  dst, r1            ; result, if used
    v}

    Callee frame (offsets from the callee's sp after the prologue):
    {v
      [0 .. nspills-1]            spill slots
      [nspills .. nspills+k-1]    saved callee-saved registers
      [frame]                     return address (pushed by call)
      [frame+1 .. frame+n]        incoming actuals; param i at frame+n-i
    v}

    Every [return] runs the epilogue: result to r1, restore saved
    registers, pop the frame, [ret] (pops the return address).

    A routine that falls off without a value returns 0 in r1 — the
    same convention the interpreter implements, which is what makes
    the two engines differentially testable. *)

module U = Ucode.Types
module V = Vinsn
module R = Regalloc

type lowered = {
  lw_name : string;
  lw_code : V.t array;  (** branch targets are [Tlocal]/[Troutine]/[Tglobal] *)
}

type ctx = {
  alloc : R.t;
  routine : U.routine;
  arity_of : string -> int option;
      (** callee arity lookup, for padding/truncating mismatched
          direct calls to the interpreter's pad-with-zero semantics *)
  is_routine : string -> bool;
      (** defined routines get [call]; everything else is a builtin
          syscall (user definitions shadow builtins, as in the
          interpreter) *)
  buf : V.t list ref;         (** reversed *)
  block_offsets : (U.label, int) Hashtbl.t;
  mutable emitted : int;
}

let emit ctx i =
  ctx.buf := i :: !(ctx.buf);
  ctx.emitted <- ctx.emitted + 1

(** Physical register currently holding virtual [v], loading a spilled
    value into [scratch] if needed. *)
let read ctx ~scratch v =
  match R.location ctx.alloc v with
  | R.Preg p -> p
  | R.Spill slot ->
    emit ctx (V.Mload (scratch, R.sp, slot));
    scratch

(** Physical register an instruction should write for virtual [v];
    call [commit] afterwards to flush a spilled def. *)
let def_target ctx v =
  match R.location ctx.alloc v with
  | R.Preg p -> (p, fun () -> ())
  | R.Spill slot ->
    (R.scratch1, fun () -> emit ctx (V.Mstore (R.sp, slot, R.scratch1)))

let move_into ctx v ~from_phys =
  match R.location ctx.alloc v with
  | R.Preg p -> if p <> from_phys then emit ctx (V.Mmov (p, from_phys))
  | R.Spill slot -> emit ctx (V.Mstore (R.sp, slot, from_phys))

(* ------------------------------------------------------------------ *)

(** Stage exactly [expected] outgoing arguments below sp: surplus
    actuals are dropped, missing ones are written as zero — matching
    the interpreter's convention for arity-mismatched direct calls. *)
let stage_arguments ctx args ~expected =
  List.iteri
    (fun i a ->
      if i < expected then begin
        let p = read ctx ~scratch:R.scratch1 a in
        emit ctx (V.Mstore (R.sp, -(1 + i), p))
      end)
    args;
  let supplied = List.length args in
  if expected > supplied then begin
    emit ctx (V.Mli (R.scratch2, 0L));
    for i = supplied to expected - 1 do
      emit ctx (V.Mstore (R.sp, -(1 + i), R.scratch2))
    done
  end

let lower_call ctx (c : U.call) =
  let supplied = List.length c.U.c_args in
  (match c.U.c_callee with
  | U.Direct name ->
    let n = Option.value ~default:supplied (ctx.arity_of name) in
    stage_arguments ctx c.U.c_args ~expected:n;
    if n > 0 then emit ctx (V.Maddi (R.sp, R.sp, -n));
    if ctx.is_routine name then emit ctx (V.Mcall (V.Troutine name))
    else emit ctx (V.Msys (name, n));
    if n > 0 then emit ctx (V.Maddi (R.sp, R.sp, n))
  | U.Indirect h ->
    (* Indirect calls must match the target's arity exactly (checked by
       the interpreter's semantics); stage what was supplied.  Load the
       target before sp moves: a spilled handle is sp-relative. *)
    stage_arguments ctx c.U.c_args ~expected:supplied;
    let p = read ctx ~scratch:R.scratch1 h in
    if supplied > 0 then emit ctx (V.Maddi (R.sp, R.sp, -supplied));
    emit ctx (V.Mcalli p);
    if supplied > 0 then emit ctx (V.Maddi (R.sp, R.sp, supplied)));
  match c.U.c_dst with
  | Some d -> move_into ctx d ~from_phys:R.result_reg
  | None -> ()

let lower_instr ctx (i : U.instr) =
  match i with
  | U.Const (d, k) ->
    let p, commit = def_target ctx d in
    emit ctx (V.Mli (p, k));
    commit ()
  | U.Faddr (d, name) ->
    let p, commit = def_target ctx d in
    emit ctx (V.Mla (p, V.Troutine name));
    commit ()
  | U.Gaddr (d, name) ->
    let p, commit = def_target ctx d in
    emit ctx (V.Mla (p, V.Tglobal name));
    commit ()
  | U.Unop (d, op, a) ->
    let pa = read ctx ~scratch:R.scratch1 a in
    let p, commit = def_target ctx d in
    emit ctx (match op with U.Neg -> V.Mneg (p, pa) | U.Not -> V.Mnot (p, pa));
    commit ()
  | U.Binop (d, op, a, b) ->
    let pa = read ctx ~scratch:R.scratch1 a in
    let pb = read ctx ~scratch:R.scratch2 b in
    let p, commit = def_target ctx d in
    emit ctx (V.Malu (op, p, pa, pb));
    commit ()
  | U.Move (d, a) ->
    let pa = read ctx ~scratch:R.scratch1 a in
    move_into ctx d ~from_phys:pa
  | U.Load (d, a) ->
    let pa = read ctx ~scratch:R.scratch1 a in
    let p, commit = def_target ctx d in
    emit ctx (V.Mload (p, pa, 0));
    commit ()
  | U.Store (a, v) ->
    let pa = read ctx ~scratch:R.scratch1 a in
    let pv = read ctx ~scratch:R.scratch2 v in
    emit ctx (V.Mstore (pa, 0, pv))
  | U.Call c -> lower_call ctx c

let lower_epilogue ctx value =
  (match value with
  | Some v ->
    let p = read ctx ~scratch:R.scratch1 v in
    if p <> R.result_reg then emit ctx (V.Mmov (R.result_reg, p))
  | None -> emit ctx (V.Mli (R.result_reg, 0L)));
  List.iteri
    (fun j s -> emit ctx (V.Mload (s, R.sp, ctx.alloc.R.nspills + j)))
    ctx.alloc.R.used_callee_saved;
  let frame = R.frame_size ctx.alloc in
  if frame > 0 then emit ctx (V.Maddi (R.sp, R.sp, frame));
  emit ctx V.Mret

let lower_term ctx (t : U.terminator) =
  match t with
  | U.Jump l -> emit ctx (V.Mjmp (V.Tblock l))
  | U.Branch (c, l1, l2) ->
    let p = read ctx ~scratch:R.scratch1 c in
    emit ctx (V.Mbnez (p, V.Tblock l1));
    emit ctx (V.Mjmp (V.Tblock l2))
  | U.Return v -> lower_epilogue ctx v

let lower_prologue ctx =
  let alloc = ctx.alloc in
  let frame = R.frame_size alloc in
  if frame > 0 then emit ctx (V.Maddi (R.sp, R.sp, -frame));
  List.iteri
    (fun j s -> emit ctx (V.Mstore (R.sp, alloc.R.nspills + j, s)))
    alloc.R.used_callee_saved;
  let n = List.length ctx.routine.U.r_params in
  List.iteri
    (fun i param ->
      let off = frame + n - i in
      match R.location alloc param with
      | R.Preg p -> emit ctx (V.Mload (p, R.sp, off))
      | R.Spill slot ->
        emit ctx (V.Mload (R.scratch1, R.sp, off));
        emit ctx (V.Mstore (R.sp, slot, R.scratch1)))
    ctx.routine.U.r_params

(** Lower one routine.  Block order follows the routine's block list
    (entry first); [Tblock] targets are resolved to [Tlocal] offsets. *)
let lower_routine ~(arity_of : string -> int option)
    ~(is_routine : string -> bool) (r : U.routine) : lowered =
  let alloc = R.allocate r in
  let ctx =
    { alloc; routine = r; arity_of; is_routine; buf = ref [];
      block_offsets = Hashtbl.create 16; emitted = 0 }
  in
  lower_prologue ctx;
  List.iter
    (fun (b : U.block) ->
      Hashtbl.replace ctx.block_offsets b.U.b_id ctx.emitted;
      List.iter (lower_instr ctx) b.U.b_instrs;
      lower_term ctx b.U.b_term)
    r.U.r_blocks;
  let resolve = function
    | V.Tblock l -> V.Tlocal (Hashtbl.find ctx.block_offsets l)
    | t -> t
  in
  let resolve_insn = function
    | V.Mjmp t -> V.Mjmp (resolve t)
    | V.Mbeqz (p, t) -> V.Mbeqz (p, resolve t)
    | V.Mbnez (p, t) -> V.Mbnez (p, resolve t)
    | V.Mcall t -> V.Mcall (resolve t)
    | V.Mla (p, t) -> V.Mla (p, resolve t)
    | i -> i
  in
  let code =
    List.rev_map resolve_insn !(ctx.buf) |> Array.of_list
  in
  { lw_name = r.U.r_name; lw_code = code }
