(** Execution metrics collected by the simulator — the quantities the
    paper plots in Figure 7. *)

type t = {
  instructions : int;
  cycles : int;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  branches : int;  (** conditional + jumps + calls + returns *)
  branch_mispredicts : int;
}

val cpi : t -> float
val icache_miss_rate : t -> float
val dcache_miss_rate : t -> float
val branch_miss_rate : t -> float

(** Ratio of a counter against a baseline run (Figure 7's "relative"
    panels; 1.0 = unchanged). *)
val relative : baseline:t -> (t -> int) -> t -> float

val pp : Format.formatter -> t -> unit
