lib/machine/regalloc.mli: Ucode
