lib/machine/regalloc.ml: Hashtbl List Opt Option Printf Ucode
