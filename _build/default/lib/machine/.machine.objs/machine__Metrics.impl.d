lib/machine/metrics.ml: Fmt
