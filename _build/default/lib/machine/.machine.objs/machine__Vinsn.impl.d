lib/machine/vinsn.ml: Fmt Ucode
