lib/machine/branch_predictor.ml: Array
