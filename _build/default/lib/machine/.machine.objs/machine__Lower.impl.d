lib/machine/lower.ml: Array Hashtbl List Option Regalloc Ucode Vinsn
