lib/machine/metrics.mli: Format
