lib/machine/branch_predictor.mli:
