lib/machine/layout.mli: Format Ucode Vinsn
