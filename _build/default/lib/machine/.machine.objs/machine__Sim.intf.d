lib/machine/sim.mli: Cache Layout Metrics Ucode
