lib/machine/lower.mli: Ucode Vinsn
