lib/machine/sim.ml: Array Branch_predictor Buffer Cache Char Int64 Layout List Metrics Printf Regalloc Ucode Vinsn
