lib/machine/positioning.mli: Ucode
