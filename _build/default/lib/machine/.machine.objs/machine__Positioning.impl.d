lib/machine/positioning.ml: Hashtbl List Option Ucode
