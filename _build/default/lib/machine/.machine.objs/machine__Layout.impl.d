lib/machine/layout.ml: Array Fmt Hashtbl Int64 List Lower Ucode Vinsn
