lib/machine/cache.mli:
