(** Code and data layout: whole program to executable image.

    Instruction address 0 holds the halt stub; routines follow in
    program order (see {!Positioning} for profile-guided order).  A
    routine's handle *is* its entry address.  Data layout mirrors the
    interpreter's exactly, so programs produce bit-identical output on
    both engines. *)

type image = {
  code : Vinsn.t array;
  entries : (string * int) list;  (** routine -> entry address *)
  routine_extent : (string * (int * int)) list;
      (** routine -> (first, one-past-last) address *)
  global_bases : (string * int) list;
  data_break : int;   (** first data cell not used by globals *)
  global_init : (int * int64) list;  (** cell -> initial value *)
  main_entry : int;
}

val halt_address : int

(** Lower every routine, place code and data, patch every target. *)
val build : Ucode.Types.program -> image

val code_size : image -> int

(** Disassembly listing. *)
val pp : Format.formatter -> image -> unit
