(** Profile-guided code positioning after Pettis & Hansen (PLDI'90) —
    the paper's reference [12]: heaviest-edge chain merging over the
    dynamic call graph places hot caller/callee pairs adjacently in the
    instruction image. *)

(** Dynamic weight of every undirected caller/callee pair, heaviest
    first (indirect sites contribute via their target histograms). *)
val edge_weights :
  Ucode.Types.program ->
  Ucode.Profile.t ->
  ((string * string) * float) list

(** Routine layout order: the entry routine's chain first, then chains
    by descending weight. *)
val order : Ucode.Types.program -> Ucode.Profile.t -> string list

(** Reorder the program's routines for layout.  No semantic change —
    only image placement. *)
val apply : Ucode.Types.program -> Ucode.Profile.t -> Ucode.Types.program
