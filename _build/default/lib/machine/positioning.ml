(** Profile-guided code positioning, after Pettis & Hansen (PLDI'90) —
    reference [12] of the paper, and the other half of HP's PBO story:
    once inlining has decided *what* code exists, positioning decides
    *where* it sits, so that callers and callees share I-cache lines
    instead of conflicting.

    The classic "closest is best" chain merge over the dynamic call
    graph: every routine starts as a singleton chain; the undirected
    call-graph edges are visited by descending dynamic weight and the
    chains containing the two endpoints are concatenated (heaviest
    caller/callee pairs end up adjacent).  Chains are then emitted by
    total weight, the entry routine's chain first. *)

module U = Ucode.Types

(** Dynamic weight of every undirected caller/callee pair. *)
let edge_weights (p : U.program) (profile : Ucode.Profile.t) :
    ((string * string) * float) list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : U.routine) ->
      List.iter
        (fun (_, (c : U.call)) ->
          let weight = Ucode.Profile.site_count profile c.U.c_site in
          let targets =
            match c.U.c_callee with
            | U.Direct n -> if U.find_routine p n <> None then [ (n, weight) ] else []
            | U.Indirect _ ->
              (* Indirect sites contribute through their measured
                 target histogram. *)
              Ucode.Profile.site_targets profile c.U.c_site
          in
          List.iter
            (fun (callee, w) ->
              if w > 0.0 && callee <> r.U.r_name then begin
                let key =
                  if r.U.r_name < callee then (r.U.r_name, callee)
                  else (callee, r.U.r_name)
                in
                Hashtbl.replace tbl key
                  (w +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key))
              end)
            targets)
        (U.calls_of_routine r))
    p.U.p_routines;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> compare ka kb | n -> n)

(** Routine order for layout: heaviest-edge chain merging. *)
let order (p : U.program) (profile : Ucode.Profile.t) : string list =
  (* chain_of maps a routine to its chain id; chains maps id -> names
     in order. *)
  let chain_of = Hashtbl.create 64 in
  let chains = Hashtbl.create 64 in
  let weights = Hashtbl.create 64 in
  List.iteri
    (fun i (r : U.routine) ->
      Hashtbl.replace chain_of r.U.r_name i;
      Hashtbl.replace chains i [ r.U.r_name ];
      Hashtbl.replace weights i 0.0)
    p.U.p_routines;
  List.iter
    (fun ((a, b), w) ->
      let ca = Hashtbl.find_opt chain_of a in
      let cb = Hashtbl.find_opt chain_of b in
      match (ca, cb) with
      | Some ca, Some cb when ca <> cb ->
        (* Merge the lighter chain after the heavier one, so the
           hottest code gravitates to the front of the image. *)
        let la = Hashtbl.find chains ca and lb = Hashtbl.find chains cb in
        let wa = Hashtbl.find weights ca and wb = Hashtbl.find weights cb in
        let merged = if wa >= wb then la @ lb else lb @ la in
        Hashtbl.replace chains ca merged;
        Hashtbl.remove chains cb;
        List.iter (fun n -> Hashtbl.replace chain_of n ca) lb;
        Hashtbl.replace weights ca
          (w +. Hashtbl.find weights ca +. Hashtbl.find weights cb);
        Hashtbl.remove weights cb
      | _ -> ())
    (edge_weights p profile);
  (* Emit: the chain containing main first, then by descending chain
     weight, then the stragglers in program order. *)
  let main_chain = Hashtbl.find_opt chain_of p.U.p_main in
  let all =
    Hashtbl.fold (fun id names acc -> (id, names) :: acc) chains []
  in
  let ranked =
    List.sort
      (fun (ia, _) (ib, _) ->
        let w i = Hashtbl.find weights i in
        let main_first i = if Some i = main_chain then 1 else 0 in
        match compare (main_first ib) (main_first ia) with
        | 0 -> (
          match compare (w ib) (w ia) with 0 -> compare ia ib | n -> n)
        | n -> n)
      all
  in
  List.concat_map snd ranked

(** Reorder a program's routines for layout (no semantic change: names
    and references are unaffected, only image placement). *)
let apply (p : U.program) (profile : Ucode.Profile.t) : U.program =
  let names = order p profile in
  let rank = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace rank n i) names;
  let routines =
    List.stable_sort
      (fun (a : U.routine) (b : U.routine) ->
        compare
          (Option.value ~default:max_int (Hashtbl.find_opt rank a.U.r_name))
          (Option.value ~default:max_int (Hashtbl.find_opt rank b.U.r_name)))
      p.U.p_routines
  in
  { p with U.p_routines = routines }
