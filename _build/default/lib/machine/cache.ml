(** A parametric set-associative cache model with true-LRU replacement.

    Addresses are in words (one IR cell / one instruction per word).
    Used for both the instruction and the data cache of the simulated
    machine; the paper's Figure 7 reports access counts and miss rates
    from exactly such a pair of models. *)

type config = {
  sets : int;        (** number of sets (power of two) *)
  assoc : int;       (** ways per set *)
  line_words : int;  (** words per line (power of two) *)
}

(** Small defaults tuned so the mini-workloads exercise the caches the
    way SPEC binaries exercised the PA8000's: the instruction working
    sets of the benchmarks are a few thousand words, so a ~4K-word
    I-cache sees the post-inlining growth, and a ~8K-word D-cache sees
    the save/restore traffic. *)
let default_icache = { sets = 256; assoc = 2; line_words = 8 }
let default_dcache = { sets = 512; assoc = 2; line_words = 8 }

type t = {
  cfg : config;
  tags : int array array;      (** [set][way] = tag, -1 empty *)
  last_use : int array array;  (** [set][way] = LRU stamp *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create cfg =
  if cfg.sets <= 0 || cfg.assoc <= 0 || cfg.line_words <= 0 then
    invalid_arg "Cache.create: nonpositive geometry";
  { cfg;
    tags = Array.init cfg.sets (fun _ -> Array.make cfg.assoc (-1));
    last_use = Array.init cfg.sets (fun _ -> Array.make cfg.assoc 0);
    clock = 0; accesses = 0; misses = 0 }

let size_words t = t.cfg.sets * t.cfg.assoc * t.cfg.line_words

(** Access one word address; returns [true] on hit. *)
let access t (addr : int) : bool =
  t.clock <- t.clock + 1;
  t.accesses <- t.accesses + 1;
  let line = addr / t.cfg.line_words in
  let set = line mod t.cfg.sets in
  let tag = line / t.cfg.sets in
  let tags = t.tags.(set) in
  let stamps = t.last_use.(set) in
  let rec find w = if w >= t.cfg.assoc then None
                   else if tags.(w) = tag then Some w
                   else find (w + 1) in
  match find 0 with
  | Some w ->
    stamps.(w) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict the LRU way (empty ways have stamp 0 and lose). *)
    let victim = ref 0 in
    for w = 1 to t.cfg.assoc - 1 do
      if stamps.(w) < stamps.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    stamps.(!victim) <- t.clock;
    false

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) t.tags;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.last_use;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses
