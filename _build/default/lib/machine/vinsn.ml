(** VR32: the virtual RISC the back end targets.

    A load/store machine with 32 physical registers and a word-addressed
    memory shared with the IR semantics (one cell = one 64-bit word).
    Instructions occupy one word of a separate instruction memory; the
    I-cache is indexed by instruction address.

    Register convention (see {!Regalloc}):
    - [r0]      hardwired zero (unused by generated code)
    - [r1]      return value
    - [r2–r15]  caller-saved temporaries
    - [r16–r28] callee-saved
    - [r29,r30] reserved assembler scratch (spill traffic)
    - [r31]     stack pointer

    Calls pass arguments on the stack: the caller stores actuals just
    below its stack pointer, drops [sp] past them, and [call] pushes
    the return address.  All of that traffic is ordinary [store]/[load]
    instructions, which is exactly why inlining away a call visibly
    reduces D-cache accesses — the effect the paper measures in
    Figure 7. *)

type mreg = int

(** Branch/jump/call targets are symbolic until {!Layout} assigns
    addresses. *)
type target =
  | Tblock of Ucode.Types.label  (** block of the routine being lowered *)
  | Tlocal of int                (** offset within the routine's code *)
  | Troutine of string           (** entry of a routine *)
  | Tglobal of string            (** address of a global (for [Mla]) *)
  | Taddr of int                 (** resolved absolute address *)

type t =
  | Mli of mreg * int64          (** [rd <- imm] *)
  | Mla of mreg * target         (** [rd <- address] (routine handle / global) *)
  | Mmov of mreg * mreg
  | Malu of Ucode.Types.binop * mreg * mreg * mreg  (** [rd <- ra op rb] *)
  | Mneg of mreg * mreg
  | Mnot of mreg * mreg
  | Maddi of mreg * mreg * int   (** [rd <- ra + imm] (sp arithmetic) *)
  | Mload of mreg * mreg * int   (** [rd <- mem(ra + off)] *)
  | Mstore of mreg * int * mreg  (** [mem(ra + off) <- rb] *)
  | Mjmp of target
  | Mbeqz of mreg * target
  | Mbnez of mreg * target
  | Mcall of target              (** push return address; jump *)
  | Mcalli of mreg               (** indirect call through an address *)
  | Mret
  | Msys of string * int         (** builtin name, argument count *)
  | Mhalt

let is_branch = function
  | Mjmp _ | Mbeqz _ | Mbnez _ | Mcall _ | Mcalli _ | Mret -> true
  | _ -> false

let is_memory = function Mload _ | Mstore _ -> true | _ -> false

let pp_target ppf = function
  | Tblock l -> Fmt.pf ppf "L%d" l
  | Tlocal off -> Fmt.pf ppf "+%d" off
  | Troutine n -> Fmt.string ppf n
  | Tglobal g -> Fmt.pf ppf "&%s" g
  | Taddr a -> Fmt.pf ppf "@%d" a

let pp ppf = function
  | Mli (d, k) -> Fmt.pf ppf "li r%d, %Ld" d k
  | Mla (d, t) -> Fmt.pf ppf "la r%d, %a" d pp_target t
  | Mmov (d, a) -> Fmt.pf ppf "mov r%d, r%d" d a
  | Malu (op, d, a, b) ->
    Fmt.pf ppf "%s r%d, r%d, r%d" (Ucode.Pp.binop_name op) d a b
  | Mneg (d, a) -> Fmt.pf ppf "neg r%d, r%d" d a
  | Mnot (d, a) -> Fmt.pf ppf "not r%d, r%d" d a
  | Maddi (d, a, k) -> Fmt.pf ppf "addi r%d, r%d, %d" d a k
  | Mload (d, a, off) -> Fmt.pf ppf "ld r%d, %d(r%d)" d off a
  | Mstore (a, off, b) -> Fmt.pf ppf "st r%d, %d(r%d)" b off a
  | Mjmp t -> Fmt.pf ppf "j %a" pp_target t
  | Mbeqz (r, t) -> Fmt.pf ppf "beqz r%d, %a" r pp_target t
  | Mbnez (r, t) -> Fmt.pf ppf "bnez r%d, %a" r pp_target t
  | Mcall t -> Fmt.pf ppf "call %a" pp_target t
  | Mcalli r -> Fmt.pf ppf "calli r%d" r
  | Mret -> Fmt.string ppf "ret"
  | Msys (n, k) -> Fmt.pf ppf "sys %s/%d" n k
  | Mhalt -> Fmt.string ppf "halt"
