(** Minimal interprocedural analysis: deletable-call detection.

    The paper notes that HLO performs "a limited amount of
    interprocedural analysis" after input; its headline use is
    discovering that the stubbed-out curses routines of [072.sc] have
    no side effects, so the calls to them can be deleted *before*
    inlining spends budget on them.

    A routine is [deletable] when calls to it can be erased if the
    result is unused.  That requires both purity (no stores, no
    builtin/external calls, no indirect calls, only deletable direct
    callees) and guaranteed termination, which we establish
    conservatively: an acyclic CFG and no recursion (the routine's SCC
    is trivial).  Division traps are the one effect we knowingly give
    up, as production compilers do. *)

module U = Ucode.Types
module CG = Ucode.Callgraph

let has_loop (r : U.routine) : bool =
  (* A back edge exists iff some DFS reaches an ancestor: detect via
     coloring. *)
  let succs = Cfg.successors r in
  let color = Hashtbl.create 16 in (* 1 = in progress, 2 = done *)
  let exception Cycle in
  let rec visit l =
    match Hashtbl.find_opt color l with
    | Some 1 -> raise Cycle
    | Some _ -> ()
    | None ->
      Hashtbl.replace color l 1;
      List.iter visit (Option.value ~default:[] (U.Int_map.find_opt l succs));
      Hashtbl.replace color l 2
  in
  try
    visit (U.entry_block r).U.b_id;
    false
  with Cycle -> true

(** Set of routine names whose calls may be deleted when unused. *)
let deletable_routines (p : U.program) : U.String_set.t =
  let cg = CG.build p in
  let scc_sizes =
    List.fold_left
      (fun m comp ->
        let n = List.length comp in
        List.fold_left (fun m name -> U.String_map.add name n m) m comp)
      U.String_map.empty (CG.sccs cg)
  in
  let locally_ok (r : U.routine) =
    (not (has_loop r))
    && U.String_map.find_opt r.U.r_name scc_sizes = Some 1
    && (not (List.exists (fun e -> e.CG.e_caller = r.U.r_name
                                   && (match e.CG.e_callee with
                                      | U.Direct n -> n = r.U.r_name
                                      | U.Indirect _ -> false))
               (CG.outgoing cg r.U.r_name)))
    && List.for_all
         (fun (b : U.block) ->
           List.for_all
             (fun i ->
               match i with
               | U.Store _ -> false
               | U.Call { c_callee = U.Indirect _; _ } -> false
               | U.Call { c_callee = U.Direct n; _ } ->
                 (* resolved by the fixpoint below; builtins never *)
                 not (U.is_builtin n) && U.find_routine p n <> None
               | _ -> true)
             b.U.b_instrs)
         r.U.r_blocks
  in
  (* Start from all locally-acceptable routines and iteratively remove
     those calling a non-deletable routine. *)
  let candidates =
    List.filter locally_ok p.U.p_routines
    |> List.map (fun (r : U.routine) -> r.U.r_name)
    |> U.String_set.of_list
  in
  let calls_ok set (r : U.routine) =
    List.for_all
      (fun e ->
        match e.CG.e_callee with
        | U.Direct n -> U.String_set.mem n set
        | U.Indirect _ -> false)
      (CG.outgoing cg r.U.r_name)
  in
  let rec fixpoint set =
    let set' =
      U.String_set.filter
        (fun name -> calls_ok set (U.find_routine_exn p name))
        set
    in
    if U.String_set.equal set set' then set else fixpoint set'
  in
  fixpoint candidates
