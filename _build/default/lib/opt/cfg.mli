(** Control-flow-graph helpers shared by the passes. *)

(** Successor labels of each block. *)
val successors :
  Ucode.Types.routine -> Ucode.Types.label list Ucode.Types.Int_map.t

(** Predecessor labels of each block (blocks without predecessors map
    to []). *)
val predecessors :
  Ucode.Types.routine -> Ucode.Types.label list Ucode.Types.Int_map.t

(** Labels reachable from the entry block. *)
val reachable : Ucode.Types.routine -> Ucode.Types.Int_set.t

(** Blocks in reverse postorder from the entry. *)
val reverse_postorder : Ucode.Types.routine -> Ucode.Types.label list

(** Replace a routine's blocks, keeping the entry first.  Raises if the
    entry block is missing or duplicated. *)
val with_blocks :
  Ucode.Types.routine -> Ucode.Types.block list -> Ucode.Types.routine
