(** Loop-invariant code motion.

    Pure, non-trapping computations whose operands are not defined
    anywhere in a natural loop are hoisted to a freshly created
    preheader.  The big practical winners in this IR are the [Gaddr]
    and [Const] address computations that lowering re-emits on every
    iteration of a loop over a global array.

    Correctness without SSA requires care; an instruction [d <- op …]
    is hoisted only when all of:
    - it is pure and cannot trap ([Div]/[Rem] are excluded: the
      preheader runs even when the loop body would not, and hoisting a
      trap changes behavior; [Load]s are excluded because loop stores
      and calls may alias);
    - every operand register has no definition inside the loop;
    - [d] has exactly one definition inside the loop (this one);
    - [d] is not live into the loop header — if it were, some path
      observes the *outside* value of [d] before this definition (that
      includes every path that reaches a loop exit without executing
      the definition), and the hoisted write would clobber it.

    One hoisting round per invocation; the optimization pipeline's
    fixpoint iteration picks up second-order opportunities (an
    invariant chain hoists one link per round). *)

module U = Ucode.Types

(* ------------------------------------------------------------------ *)
(* Dominators (iterative data-flow over reverse postorder).            *)

let dominators (r : U.routine) : U.Int_set.t U.Int_map.t =
  let rpo = Cfg.reverse_postorder r in
  let preds = Cfg.predecessors r in
  let all = U.Int_set.of_list rpo in
  let entry = (U.entry_block r).U.b_id in
  let dom = ref (U.Int_map.singleton entry (U.Int_set.singleton entry)) in
  List.iter
    (fun l -> if l <> entry then dom := U.Int_map.add l all !dom)
    rpo;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let pred_doms =
            List.filter_map
              (fun p -> U.Int_map.find_opt p !dom)
              (Option.value ~default:[] (U.Int_map.find_opt l preds))
          in
          let meet =
            match pred_doms with
            | [] -> all
            | first :: rest -> List.fold_left U.Int_set.inter first rest
          in
          let updated = U.Int_set.add l meet in
          if not (U.Int_set.equal updated (U.Int_map.find l !dom)) then begin
            dom := U.Int_map.add l updated !dom;
            changed := true
          end
        end)
      rpo
  done;
  !dom

(* ------------------------------------------------------------------ *)
(* Natural loops.                                                      *)

type loop = { header : U.label; body : U.Int_set.t }

(** Natural loops of the routine, bodies merged per header, smallest
    first (inner loops before the outer loops containing them). *)
let natural_loops (r : U.routine) : loop list =
  let dom = dominators r in
  let preds = Cfg.predecessors r in
  let dominates h n =
    match U.Int_map.find_opt n dom with
    | Some ds -> U.Int_set.mem h ds
    | None -> false
  in
  (* Back edges: n -> h with h dom n. *)
  let back_edges =
    List.concat_map
      (fun (b : U.block) ->
        List.filter_map
          (fun t -> if dominates t b.U.b_id then Some (b.U.b_id, t) else None)
          (U.term_targets b.U.b_term))
      r.U.r_blocks
  in
  (* Natural loop of (n, h): h plus everything reaching n avoiding h. *)
  let body_of (n, h) =
    let rec up seen l =
      if U.Int_set.mem l seen || l = h then seen
      else
        let seen = U.Int_set.add l seen in
        List.fold_left up seen
          (Option.value ~default:[] (U.Int_map.find_opt l preds))
    in
    U.Int_set.add h (up U.Int_set.empty n)
  in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (n, h) ->
      let body = body_of (n, h) in
      Hashtbl.replace by_header h
        (match Hashtbl.find_opt by_header h with
        | Some prev -> U.Int_set.union prev body
        | None -> body))
    back_edges;
  Hashtbl.fold (fun header body acc -> { header; body } :: acc) by_header []
  |> List.sort (fun a b ->
         compare (U.Int_set.cardinal a.body) (U.Int_set.cardinal b.body))

(* ------------------------------------------------------------------ *)
(* Hoisting.                                                           *)

let pure_nontrapping = function
  | U.Const _ | U.Faddr _ | U.Gaddr _ | U.Unop _ | U.Move _ -> true
  | U.Binop (_, (U.Div | U.Rem), _, _) -> false
  | U.Binop _ -> true
  | U.Load _ | U.Store _ | U.Call _ -> false

(** Hoist from one loop.  Returns the routine and whether it changed. *)
let hoist_loop (r : U.routine) (l : loop) : U.routine * bool =
  let entry_id = (U.entry_block r).U.b_id in
  if l.header = entry_id then (r, false)
  else begin
    let in_loop lbl = U.Int_set.mem lbl l.body in
    (* Registers defined inside the loop, with definition counts. *)
    let def_counts = Hashtbl.create 32 in
    List.iter
      (fun (b : U.block) ->
        if in_loop b.U.b_id then
          List.iter
            (fun i ->
              match U.instr_def i with
              | Some d ->
                Hashtbl.replace def_counts d
                  (1 + Option.value ~default:0 (Hashtbl.find_opt def_counts d))
              | None -> ())
            b.U.b_instrs)
      r.U.r_blocks;
    let live = Liveness.compute r in
    let live_at_header = Liveness.live_in live l.header in
    let hoistable i =
      pure_nontrapping i
      && (match U.instr_def i with
         | Some d ->
           Hashtbl.find_opt def_counts d = Some 1
           && not (U.Int_set.mem d live_at_header)
         | None -> false)
      && List.for_all
           (fun u -> not (Hashtbl.mem def_counts u))
           (U.instr_uses i)
    in
    let hoisted = ref [] in
    let blocks =
      List.map
        (fun (b : U.block) ->
          if not (in_loop b.U.b_id) then b
          else
            { b with
              U.b_instrs =
                List.filter
                  (fun i ->
                    if hoistable i then begin
                      hoisted := i :: !hoisted;
                      false
                    end
                    else true)
                  b.U.b_instrs })
        r.U.r_blocks
    in
    match List.rev !hoisted with
    | [] -> (r, false)
    | hoisted ->
      (* Fresh preheader; every edge into the header from outside the
         loop is redirected through it. *)
      let ph = r.U.r_next_label in
      let redirect (b : U.block) =
        if in_loop b.U.b_id then b
        else
          { b with
            U.b_term =
              U.map_term_labels
                (fun t -> if t = l.header then ph else t)
                b.U.b_term }
      in
      let preheader =
        { U.b_id = ph; U.b_instrs = hoisted; U.b_term = U.Jump l.header }
      in
      let blocks = List.map redirect blocks @ [ preheader ] in
      ({ r with U.r_blocks = blocks; U.r_next_label = ph + 1 }, true)
  end

let run (r : U.routine) : U.routine * bool =
  (* Apply loops one at a time, innermost first, recomputing analyses
     after each change (routines are small). *)
  let rec go r changed =
    let rec try_loops = function
      | [] -> None
      | l :: rest -> (
        match hoist_loop r l with
        | r', true -> Some r'
        | _, false -> try_loops rest)
    in
    match try_loops (natural_loops r) with
    | Some r' -> go r' true
    | None -> (r, changed)
  in
  go r false
