(** Backward liveness analysis over virtual registers.

    Used by dead-code elimination and, crucially, by the machine back
    end: the set of registers live across each call site determines the
    caller-save traffic that inlining later eliminates — the mechanism
    behind the paper's observed drop in D-cache accesses. *)

module U = Ucode.Types

type t = {
  live_in : U.Int_set.t U.Int_map.t;   (** per block label *)
  live_out : U.Int_set.t U.Int_map.t;
}

let uses_of_instr i = U.Int_set.of_list (U.instr_uses i)

(** [use]/[def] sets of a whole block (use = used before any def). *)
let block_use_def (b : U.block) =
  let use, def =
    List.fold_left
      (fun (use, def) i ->
        let use =
          U.Int_set.union use (U.Int_set.diff (uses_of_instr i) def)
        in
        let def =
          match U.instr_def i with
          | Some d -> U.Int_set.add d def
          | None -> def
        in
        (use, def))
      (U.Int_set.empty, U.Int_set.empty)
      b.U.b_instrs
  in
  let term_use = U.Int_set.of_list (U.term_uses b.U.b_term) in
  (U.Int_set.union use (U.Int_set.diff term_use def), def)

let compute (r : U.routine) : t =
  let succs = Cfg.successors r in
  let use_def =
    List.fold_left
      (fun m b -> U.Int_map.add b.U.b_id (block_use_def b) m)
      U.Int_map.empty r.U.r_blocks
  in
  let live_in = ref U.Int_map.empty in
  let live_out = ref U.Int_map.empty in
  List.iter
    (fun (b : U.block) ->
      live_in := U.Int_map.add b.U.b_id U.Int_set.empty !live_in;
      live_out := U.Int_map.add b.U.b_id U.Int_set.empty !live_out)
    r.U.r_blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in reverse order of the block list; convergence does not
       depend on it, speed does. *)
    List.iter
      (fun (b : U.block) ->
        let l = b.U.b_id in
        let out =
          List.fold_left
            (fun acc s ->
              U.Int_set.union acc
                (Option.value ~default:U.Int_set.empty
                   (U.Int_map.find_opt s !live_in)))
            U.Int_set.empty
            (Option.value ~default:[] (U.Int_map.find_opt l succs))
        in
        let use, def = U.Int_map.find l use_def in
        let in_ = U.Int_set.union use (U.Int_set.diff out def) in
        if not (U.Int_set.equal in_ (U.Int_map.find l !live_in)) then begin
          live_in := U.Int_map.add l in_ !live_in;
          changed := true
        end;
        live_out := U.Int_map.add l out !live_out)
      (List.rev r.U.r_blocks)
  done;
  { live_in = !live_in; live_out = !live_out }

let live_in t l =
  Option.value ~default:U.Int_set.empty (U.Int_map.find_opt l t.live_in)

let live_out t l =
  Option.value ~default:U.Int_set.empty (U.Int_map.find_opt l t.live_out)

(** Walk a block backwards producing, for each instruction, the set of
    registers live *after* it.  Returned in instruction order. *)
let per_instr_live_out t (b : U.block) : U.Int_set.t list =
  let after_term = live_out t b.U.b_id in
  (* Live before the terminator = its uses ∪ block live-out. *)
  let live_at_term =
    U.Int_set.union after_term (U.Int_set.of_list (U.term_uses b.U.b_term))
  in
  let rec walk instrs =
    match instrs with
    | [] -> ([], live_at_term)
    | i :: rest ->
      let outs, live_after = walk rest in
      let live_before =
        let minus_def =
          match U.instr_def i with
          | Some d -> U.Int_set.remove d live_after
          | None -> live_after
        in
        U.Int_set.union minus_def (uses_of_instr i)
      in
      (live_after :: outs, live_before)
  in
  fst (walk b.U.b_instrs)

(** Registers live immediately after each call instruction, excluding
    the call's own destination: the values a caller must preserve
    around the call.  Result: site id -> live set. *)
let live_across_calls (r : U.routine) : U.Int_set.t U.Int_map.t =
  let t = compute r in
  List.fold_left
    (fun acc (b : U.block) ->
      let outs = per_instr_live_out t b in
      List.fold_left2
        (fun acc i live_after ->
          match i with
          | U.Call { c_site; c_dst; _ } ->
            let live =
              match c_dst with
              | Some d -> U.Int_set.remove d live_after
              | None -> live_after
            in
            U.Int_map.add c_site live acc
          | _ -> acc)
        acc b.U.b_instrs outs)
    U.Int_map.empty r.U.r_blocks
