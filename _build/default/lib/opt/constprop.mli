(** Conditional constant propagation with folding, algebraic
    simplification, constant-branch folding, and devirtualization of
    indirect calls whose callee register provably holds one function
    handle — the enabler of the paper's staged indirect-call
    optimization (§3.1). *)

(** The dataflow lattice: [Undef < Const/Fun < Nac]. *)
type value = Undef | Const of int64 | Fun of string | Nac

(** Converged abstract state at the entry of every reachable block. *)
val analyze : Ucode.Types.routine -> value Ucode.Types.Int_map.t Ucode.Types.Int_map.t

(** Abstract argument values at every call site: site id -> one lattice
    value per actual.  The raw material of HLO's calling-context
    descriptors S(E). *)
val values_at_calls : Ucode.Types.routine -> value list Ucode.Types.Int_map.t

(** Rewrite using the analysis; returns the new routine and a changed
    flag.  [arity_of] guards devirtualization: an indirect call only
    becomes direct when the argument count matches the target (a
    mismatched indirect call is a dynamic error and must stay one). *)
val run :
  ?arity_of:(string -> int option) ->
  Ucode.Types.routine ->
  Ucode.Types.routine * bool
