(** Block-local copy propagation: within a block, uses of a moved
    register are rewritten to the root of its copy chain until either
    end is redefined. *)

val run : Ucode.Types.routine -> Ucode.Types.routine * bool
