(** Block-local copy propagation.

    Within a basic block, a [Move (d, s)] makes [d] an alias of [s]
    until either is redefined; subsequent uses of [d] are rewritten to
    the root of the copy chain.  Runs after inlining (which introduces
    parameter-binding moves) and before CSE/DCE, which then erase the
    now-dead moves. *)

module U = Ucode.Types

let run (r : U.routine) : U.routine * bool =
  let changed = ref false in
  let rewrite_block (b : U.block) =
    (* copy.(d) = Some s: d currently holds the same value as s. *)
    let copies = Hashtbl.create 16 in
    let resolve x =
      match Hashtbl.find_opt copies x with Some root -> root | None -> x
    in
    let invalidate d =
      Hashtbl.remove copies d;
      (* Any alias whose root is d is now stale. *)
      let stale =
        Hashtbl.fold (fun k v acc -> if v = d then k :: acc else acc) copies []
      in
      List.iter (Hashtbl.remove copies) stale
    in
    let rewrite_instr i =
      let i' = U.map_instr_uses resolve i in
      if i' <> i then changed := true;
      (match U.instr_def i' with Some d -> invalidate d | None -> ());
      (match i' with
      | U.Move (d, s) when d <> s -> Hashtbl.replace copies d (resolve s)
      | _ -> ());
      i'
    in
    let instrs = List.map rewrite_instr b.U.b_instrs in
    let term = U.map_term_regs resolve b.U.b_term in
    if term <> b.U.b_term then changed := true;
    { b with U.b_instrs = instrs; U.b_term = term }
  in
  let blocks = List.map rewrite_block r.U.r_blocks in
  ({ r with U.r_blocks = blocks }, !changed)
