(** Dead-code elimination.

    Uses liveness: a pure instruction whose destination is dead after
    it is removed.  A call whose result is dead keeps running for its
    side effects but drops its destination; a call to a routine the
    interprocedural analysis proved side-effect-free *and terminating*
    is removed outright when its result is dead — this is exactly how
    the paper's HLO erased the no-op curses calls in [072.sc] before
    inlining even started. *)

module U = Ucode.Types

(** [run ~removable r] removes dead code from [r].  [removable name]
    must answer whether a call to [name] can be deleted when its result
    is unused (side-effect-free and guaranteed to terminate). *)
let run ?(removable = fun _ -> false) (r : U.routine) : U.routine * bool =
  let changed = ref false in
  let pass (r : U.routine) =
    let live = Liveness.compute r in
    let rewrite_block (b : U.block) =
      let outs = Liveness.per_instr_live_out live b in
      let instrs =
        List.map2
          (fun i live_after ->
            let dead d = not (U.Int_set.mem d live_after) in
            match i with
            | U.Const (d, _) | U.Faddr (d, _) | U.Gaddr (d, _)
            | U.Unop (d, _, _) | U.Binop (d, _, _, _) | U.Load (d, _) ->
              if dead d then begin
                changed := true;
                None
              end
              else Some i
            | U.Move (d, s) ->
              if dead d || d = s then begin
                changed := true;
                None
              end
              else Some i
            | U.Store _ -> Some i
            | U.Call ({ c_dst = Some d; c_callee; _ } as c) when dead d ->
              let deletable =
                match c_callee with
                | U.Direct n -> removable n
                | U.Indirect _ -> false
              in
              changed := true;
              if deletable then None else Some (U.Call { c with c_dst = None })
            | U.Call { c_dst = None; c_callee = U.Direct n; _ }
              when removable n ->
              changed := true;
              None
            | U.Call _ -> Some i)
          b.U.b_instrs outs
      in
      { b with U.b_instrs = List.filter_map Fun.id instrs }
    in
    { r with U.r_blocks = List.map rewrite_block r.U.r_blocks }
  in
  (* Removing an instruction can kill its operands' last uses; iterate
     to a fixpoint (bounded — each round removes at least one instr). *)
  let rec loop r n =
    if n = 0 then r
    else
      let r' = pass r in
      if r' = r then r else loop r' (n - 1)
  in
  let result = loop r 50 in
  (result, !changed)
