(** Control-flow-graph simplification, iterated to a fixpoint:
    same-target branches become jumps, unreachable blocks are deleted,
    jumps thread through empty blocks, and single-predecessor jump
    chains merge (bigger blocks give the local passes more scope). *)

val run : Ucode.Types.routine -> Ucode.Types.routine * bool
