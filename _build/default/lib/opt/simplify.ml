(** Control-flow-graph simplification.

    Four clean-ups, iterated to a fixpoint:
    - a conditional branch with identical targets becomes a jump;
    - blocks unreachable from the entry are deleted (constant-branch
      folding and inlining of never-returning paths create them);
    - jumps *through* an empty block are threaded to its target;
    - a block whose only successor has no other predecessor is merged
      with it (inlining and short-circuit lowering leave many such
      chains, and bigger blocks give local CSE/copy-prop more scope). *)

module U = Ucode.Types

let fold_trivial_branches (r : U.routine) =
  let rewrite (b : U.block) =
    match b.U.b_term with
    | U.Branch (_, l1, l2) when l1 = l2 -> { b with U.b_term = U.Jump l1 }
    | _ -> b
  in
  { r with U.r_blocks = List.map rewrite r.U.r_blocks }

let remove_unreachable (r : U.routine) =
  let reach = Cfg.reachable r in
  { r with
    U.r_blocks =
      List.filter (fun (b : U.block) -> U.Int_set.mem b.U.b_id reach) r.U.r_blocks }

(** Redirect branches that target an empty block ending in a jump
    straight to that jump's destination.  A bounded chase handles
    chains of empty blocks; cycles of empty blocks (infinite loops) are
    left alone. *)
let thread_jumps (r : U.routine) =
  let empty_target = Hashtbl.create 16 in
  List.iter
    (fun (b : U.block) ->
      match (b.U.b_instrs, b.U.b_term) with
      | [], U.Jump t when t <> b.U.b_id -> Hashtbl.replace empty_target b.U.b_id t
      | _ -> ())
    r.U.r_blocks;
  let rec chase seen l =
    match Hashtbl.find_opt empty_target l with
    | Some t when not (List.mem t seen) -> chase (l :: seen) t
    | _ -> l
  in
  let rewrite (b : U.block) =
    { b with U.b_term = U.map_term_labels (chase []) b.U.b_term }
  in
  { r with U.r_blocks = List.map rewrite r.U.r_blocks }

(** Merge [b -> t] when [b] jumps to [t], [t]'s only predecessor is
    [b], and [t] is not the entry block.

    The set of absorbable blocks is computed up front (a block is
    absorbable when its unique predecessor ends in a jump to it); only
    non-absorbable blocks are emitted, each extended by walking its
    absorption chain.  Computing the set first makes the decision
    order-independent — deciding during the traversal can absorb a
    block into two different predecessors' chains, leaving a dangling
    jump to a deleted label. *)
let merge_chains (r : U.routine) =
  let preds = Cfg.predecessors r in
  let entry_id = (U.entry_block r).U.b_id in
  let blocks = Hashtbl.create 16 in
  List.iter (fun (b : U.block) -> Hashtbl.replace blocks b.U.b_id b) r.U.r_blocks;
  let absorbable t =
    t <> entry_id
    &&
    match U.Int_map.find_opt t preds with
    | Some [ p ] -> (
      p <> t
      &&
      match Hashtbl.find_opt blocks p with
      | Some pred_block -> pred_block.U.b_term = U.Jump t
      | None -> false)
    | _ -> false
  in
  let absorbed = Hashtbl.create 16 in
  List.iter
    (fun (b : U.block) ->
      if absorbable b.U.b_id then Hashtbl.replace absorbed b.U.b_id ())
    r.U.r_blocks;
  let expand (b : U.block) : U.block =
    let rec follow acc term seen =
      match term with
      | U.Jump t when Hashtbl.mem absorbed t && not (U.Int_set.mem t seen) -> (
        match Hashtbl.find_opt blocks t with
        | Some target ->
          follow (acc @ target.U.b_instrs) target.U.b_term (U.Int_set.add t seen)
        | None -> (acc, term))
      | _ -> (acc, term)
    in
    let instrs, term = follow b.U.b_instrs b.U.b_term U.Int_set.empty in
    { b with U.b_instrs = instrs; U.b_term = term }
  in
  let kept =
    List.filter_map
      (fun (b : U.block) ->
        if Hashtbl.mem absorbed b.U.b_id then None else Some (expand b))
      r.U.r_blocks
  in
  { r with U.r_blocks = kept }

let run (r : U.routine) : U.routine * bool =
  let step r =
    r |> fold_trivial_branches |> remove_unreachable |> thread_jumps
    |> remove_unreachable |> merge_chains
  in
  let rec loop r n =
    if n = 0 then r
    else
      let r' = step r in
      if r' = r then r else loop r' (n - 1)
  in
  let r' = loop r 10 in
  (r', r' <> r)
