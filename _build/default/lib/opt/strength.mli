(** Strength reduction: multiplies by power-of-two constants become
    shifts (exact under two's-complement wraparound).  The machine
    retires shifts in one cycle but charges multiplier latency, so the
    rewrite is directly observable in cycles. *)

(** [log2_of_power k] is [Some n] when [k = 2^n], [n >= 0]. *)
val log2_of_power : int64 -> int option

val run : Ucode.Types.routine -> Ucode.Types.routine * bool
