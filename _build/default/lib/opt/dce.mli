(** Dead-code elimination.  A pure instruction whose destination is
    dead is removed; a call with a dead result keeps running for its
    effects but drops the destination — unless [removable] proves it
    deletable outright (see {!Ipa}). *)

val run :
  ?removable:(string -> bool) ->
  Ucode.Types.routine ->
  Ucode.Types.routine * bool
