(** Minimal interprocedural analysis: which routines' calls may be
    deleted when their result is unused.

    Deletable = side-effect free (no stores, no builtin or indirect
    calls, only deletable direct callees) *and* guaranteed to terminate
    (acyclic CFG, no recursion).  This is what lets HLO erase the
    stubbed curses calls of 072.sc before inlining starts (§3.1). *)

(** Does the routine's CFG contain a cycle? *)
val has_loop : Ucode.Types.routine -> bool

(** Names of routines whose calls can be erased when unused. *)
val deletable_routines : Ucode.Types.program -> Ucode.Types.String_set.t
