(** Backward liveness analysis over virtual registers; used by
    dead-code elimination, register allocation and the outliner. *)

type t

(** Converged per-block liveness for a routine. *)
val compute : Ucode.Types.routine -> t

(** Registers live at block entry. *)
val live_in : t -> Ucode.Types.label -> Ucode.Types.Int_set.t

(** Registers live at block exit. *)
val live_out : t -> Ucode.Types.label -> Ucode.Types.Int_set.t

(** [use]/[def] sets of one block (use = used before any def). *)
val block_use_def :
  Ucode.Types.block -> Ucode.Types.Int_set.t * Ucode.Types.Int_set.t

(** For each instruction of the block, the registers live *after* it,
    in instruction order. *)
val per_instr_live_out : t -> Ucode.Types.block -> Ucode.Types.Int_set.t list

(** Registers live immediately after each call (excluding the call's
    destination): what a caller must preserve across it.  Site id ->
    live set. *)
val live_across_calls :
  Ucode.Types.routine -> Ucode.Types.Int_set.t Ucode.Types.Int_map.t
