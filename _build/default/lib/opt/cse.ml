(** Block-local common-subexpression elimination (local value
    numbering).

    Pure computations ([Const], [Faddr], [Gaddr], [Unop], [Binop]) and
    [Load]s are hashed; a recomputation becomes a [Move] from the
    register already holding the value.  An entry dies when any
    register it mentions is redefined; [Load] entries additionally die
    at every [Store] and every [Call] (calls may write memory). *)

module U = Ucode.Types

type key =
  | Kconst of int64
  | Kfaddr of string
  | Kgaddr of string
  | Kunop of U.unop * U.reg
  | Kbinop of U.binop * U.reg * U.reg
  | Kload of U.reg

let key_of_instr = function
  | U.Const (_, k) -> Some (Kconst k)
  | U.Faddr (_, n) -> Some (Kfaddr n)
  | U.Gaddr (_, n) -> Some (Kgaddr n)
  | U.Unop (_, op, a) -> Some (Kunop (op, a))
  | U.Binop (_, op, a, b) ->
    (* Normalize commutative operations. *)
    let commutative =
      match op with
      | U.Add | U.Mul | U.And | U.Or | U.Xor | U.Eq | U.Ne -> true
      | _ -> false
    in
    if commutative && a > b then Some (Kbinop (op, b, a)) else Some (Kbinop (op, a, b))
  | U.Move _ | U.Store _ | U.Call _ | U.Load _ -> None

let key_regs = function
  | Kconst _ | Kfaddr _ | Kgaddr _ -> []
  | Kunop (_, a) -> [ a ]
  | Kbinop (_, a, b) -> [ a; b ]
  | Kload a -> [ a ]

let run (r : U.routine) : U.routine * bool =
  let changed = ref false in
  let rewrite_block (b : U.block) =
    let table : (key, U.reg) Hashtbl.t = Hashtbl.create 16 in
    let invalidate d =
      let stale =
        Hashtbl.fold
          (fun k holder acc ->
            if holder = d || List.mem d (key_regs k) then k :: acc else acc)
          table []
      in
      List.iter (Hashtbl.remove table) stale
    in
    let clobber_memory () =
      let stale =
        Hashtbl.fold
          (fun k _ acc -> match k with Kload _ -> k :: acc | _ -> acc)
          table []
      in
      List.iter (Hashtbl.remove table) stale
    in
    let rewrite_instr i =
      match i with
      | U.Store _ ->
        clobber_memory ();
        i
      | U.Call _ ->
        clobber_memory ();
        (match U.instr_def i with Some d -> invalidate d | None -> ());
        i
      | U.Load (d, a) -> (
        match Hashtbl.find_opt table (Kload a) with
        | Some holder when holder <> d ->
          changed := true;
          invalidate d;
          (* Keep [holder] as the canonical copy, unless the key itself
             mentions the just-redefined register. *)
          if a <> d then Hashtbl.replace table (Kload a) holder;
          U.Move (d, holder)
        | _ ->
          invalidate d;
          if d <> a then Hashtbl.replace table (Kload a) d;
          i)
      | _ -> (
        match key_of_instr i with
        | None ->
          (match U.instr_def i with Some d -> invalidate d | None -> ());
          i
        | Some k -> (
          match Hashtbl.find_opt table k with
          | Some holder ->
            let d = Option.get (U.instr_def i) in
            if holder = d then i
            else begin
              changed := true;
              invalidate d;
              (* Re-register: invalidate may have dropped [k] if it
                 mentions [d]. *)
              if not (List.mem d (key_regs k)) then Hashtbl.replace table k holder;
              U.Move (d, holder)
            end
          | None ->
            let d = Option.get (U.instr_def i) in
            invalidate d;
            if not (List.mem d (key_regs k)) then Hashtbl.replace table k d;
            i))
    in
    { b with U.b_instrs = List.map rewrite_instr b.U.b_instrs }
  in
  let blocks = List.map rewrite_block r.U.r_blocks in
  ({ r with U.r_blocks = blocks }, !changed)
