(** Control-flow-graph helpers shared by the optimization passes. *)

module U = Ucode.Types

(** Successor labels of each block. *)
let successors (r : U.routine) : U.label list U.Int_map.t =
  List.fold_left
    (fun m (b : U.block) ->
      U.Int_map.add b.U.b_id (U.term_targets b.U.b_term) m)
    U.Int_map.empty r.U.r_blocks

(** Predecessor labels of each block (blocks with no predecessors are
    present, mapped to []). *)
let predecessors (r : U.routine) : U.label list U.Int_map.t =
  let init =
    List.fold_left
      (fun m (b : U.block) -> U.Int_map.add b.U.b_id [] m)
      U.Int_map.empty r.U.r_blocks
  in
  List.fold_left
    (fun m (b : U.block) ->
      List.fold_left
        (fun m target ->
          U.Int_map.update target
            (function Some ps -> Some (b.U.b_id :: ps) | None -> Some [ b.U.b_id ])
            m)
        m
        (U.term_targets b.U.b_term))
    init r.U.r_blocks

(** Labels reachable from the entry block. *)
let reachable (r : U.routine) : U.Int_set.t =
  let succs = successors r in
  let rec visit seen l =
    if U.Int_set.mem l seen then seen
    else
      let seen = U.Int_set.add l seen in
      List.fold_left visit seen
        (Option.value ~default:[] (U.Int_map.find_opt l succs))
  in
  visit U.Int_set.empty (U.entry_block r).U.b_id

(** Blocks in reverse postorder from the entry (a good iteration order
    for forward dataflow problems). *)
let reverse_postorder (r : U.routine) : U.label list =
  let succs = successors r in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter visit (Option.value ~default:[] (U.Int_map.find_opt l succs));
      order := l :: !order
    end
  in
  visit (U.entry_block r).U.b_id;
  !order

(** Replace the blocks of a routine, keeping the entry block first.
    Raises if the entry block is missing from [blocks]. *)
let with_blocks (r : U.routine) (blocks : U.block list) : U.routine =
  let entry_id = (U.entry_block r).U.b_id in
  match List.partition (fun (b : U.block) -> b.U.b_id = entry_id) blocks with
  | [ entry ], rest -> { r with U.r_blocks = entry :: rest }
  | _ -> invalid_arg "Cfg.with_blocks: entry block missing or duplicated"
