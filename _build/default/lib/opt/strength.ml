(** Strength reduction: multiplies by a power-of-two constant become
    shifts.

    The target machine retires a shift in one cycle but pays extra
    latency for the multiplier (as the PA8000 did, where integer
    multiplies took the FP unit), so [x * 8] is strictly cheaper as
    [x << 3].  The rewrite is exact for every input: two's-complement
    multiplication and left shift wrap identically.

    The pass tracks constants block-locally (a global view is not
    needed — constants feeding multiplies are materialized in the same
    block by the front end and by constant propagation) and rewrites

    {v  c = const 2^k              c = const 2^k   (dropped later by DCE)
       d = mul a, c          =>    s = const k
                                   d = shl a, s   v} *)

module U = Ucode.Types

(** [log2 k] when [k] is a positive power of two. *)
let log2_of_power (k : int64) : int option =
  if Int64.compare k 1L < 0 then None
  else if Int64.logand k (Int64.sub k 1L) <> 0L then None
  else begin
    let rec go n v = if Int64.equal v 1L then n else go (n + 1) (Int64.shift_right_logical v 1) in
    Some (go 0 k)
  end

let run (r : U.routine) : U.routine * bool =
  let changed = ref false in
  let next_reg = ref r.U.r_next_reg in
  let fresh () =
    let v = !next_reg in
    incr next_reg;
    v
  in
  let rewrite_block (b : U.block) =
    let consts : (U.reg, int64) Hashtbl.t = Hashtbl.create 16 in
    let known reg =
      match Hashtbl.find_opt consts reg with
      | Some k -> log2_of_power k
      | None -> None
    in
    let rewrite i =
      let replacement =
        match i with
        | U.Binop (d, U.Mul, a, b_) -> (
          match (known b_, known a) with
          | Some sh, _ when sh > 0 ->
            let s = fresh () in
            Some [ U.Const (s, Int64.of_int sh); U.Binop (d, U.Shl, a, s) ]
          | _, Some sh when sh > 0 ->
            let s = fresh () in
            Some [ U.Const (s, Int64.of_int sh); U.Binop (d, U.Shl, b_, s) ]
          | _ -> None)
        | _ -> None
      in
      let out =
        match replacement with
        | Some instrs ->
          changed := true;
          instrs
        | None -> [ i ]
      in
      (* Track constants; any other def kills previous knowledge. *)
      List.iter
        (fun i' ->
          match i' with
          | U.Const (d, k) -> Hashtbl.replace consts d k
          | _ -> (
            match U.instr_def i' with
            | Some d -> Hashtbl.remove consts d
            | None -> ()))
        out;
      out
    in
    { b with U.b_instrs = List.concat_map rewrite b.U.b_instrs }
  in
  let blocks = List.map rewrite_block r.U.r_blocks in
  ({ r with U.r_blocks = blocks; U.r_next_reg = !next_reg }, !changed)
