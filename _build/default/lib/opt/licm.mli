(** Loop-invariant code motion: pure non-trapping computations with
    loop-invariant operands are hoisted to a fresh preheader — chiefly
    the [Gaddr]/[Const] address computations lowering re-emits on every
    iteration of loops over globals.  Non-SSA safety conditions are
    documented in the implementation. *)

type loop = { header : Ucode.Types.label; body : Ucode.Types.Int_set.t }

(** Dominator sets per block. *)
val dominators :
  Ucode.Types.routine -> Ucode.Types.Int_set.t Ucode.Types.Int_map.t

(** Natural loops, bodies merged per header, innermost first. *)
val natural_loops : Ucode.Types.routine -> loop list

val run : Ucode.Types.routine -> Ucode.Types.routine * bool
