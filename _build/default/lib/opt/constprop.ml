(** Conditional constant propagation with folding, algebraic
    simplification, constant-branch folding and — the enabler of the
    paper's staged indirect-call optimization — devirtualization of
    indirect calls whose callee register provably holds one function
    handle.

    A classic forward dataflow over the lattice
    [Undef < Const k / Fun f < Nac].  Since the IR is not SSA the
    transform cannot substitute constants into *uses*; instead it
    rewrites defining instructions (fold to [Const]), turns [Move]s of
    known constants into [Const], folds branches, and relies on
    copy-propagation/CSE/DCE downstream to clean up. *)

module U = Ucode.Types

type value = Undef | Const of int64 | Fun of string | Nac

let join a b =
  match (a, b) with
  | Undef, x | x, Undef -> x
  | Const x, Const y when Int64.equal x y -> Const x
  | Fun f, Fun g when String.equal f g -> Fun f
  | _ -> Nac

type env = value U.Int_map.t

let get env r = Option.value ~default:Undef (U.Int_map.find_opt r env)

let join_env (a : env) (b : env) : env =
  U.Int_map.merge
    (fun _ va vb ->
      Some (join (Option.value ~default:Undef va) (Option.value ~default:Undef vb)))
    a b

let env_equal (a : env) (b : env) = U.Int_map.equal ( = ) a b

(** Fold a binary operation over known constants.  Division and
    remainder by zero are left alone so the trap is preserved. *)
let fold_binop op a b =
  let open Int64 in
  let of_bool v = if v then 1L else 0L in
  match op with
  | U.Add -> Some (add a b)
  | U.Sub -> Some (sub a b)
  | U.Mul -> Some (mul a b)
  | U.Div -> if equal b 0L then None else Some (div a b)
  | U.Rem -> if equal b 0L then None else Some (rem a b)
  | U.And -> Some (logand a b)
  | U.Or -> Some (logor a b)
  | U.Xor -> Some (logxor a b)
  | U.Shl -> Some (shift_left a (to_int (logand b 63L)))
  | U.Shr -> Some (shift_right a (to_int (logand b 63L)))
  | U.Eq -> Some (of_bool (equal a b))
  | U.Ne -> Some (of_bool (not (equal a b)))
  | U.Lt -> Some (of_bool (compare a b < 0))
  | U.Le -> Some (of_bool (compare a b <= 0))
  | U.Gt -> Some (of_bool (compare a b > 0))
  | U.Ge -> Some (of_bool (compare a b >= 0))

let fold_unop op a =
  match op with
  | U.Neg -> Int64.neg a
  | U.Not -> if Int64.equal a 0L then 1L else 0L

(** Abstract transfer of one instruction. *)
let transfer (env : env) (i : U.instr) : env =
  let set d v = U.Int_map.add d v env in
  match i with
  | U.Const (d, k) -> set d (Const k)
  | U.Faddr (d, f) -> set d (Fun f)
  | U.Gaddr (d, _) -> set d Nac
  | U.Unop (d, op, a) -> (
    match get env a with
    | Const k -> set d (Const (fold_unop op k))
    | Undef -> set d Undef
    | Fun _ | Nac -> set d Nac)
  | U.Binop (d, op, a, b) -> (
    match (get env a, get env b) with
    | Const x, Const y -> (
      match fold_binop op x y with
      | Some k -> set d (Const k)
      | None -> set d Nac)
    | Undef, _ | _, Undef -> set d Undef
    | _ -> set d Nac)
  | U.Move (d, a) -> set d (get env a)
  | U.Load (d, _) -> set d Nac
  | U.Store _ -> env
  | U.Call { c_dst = Some d; _ } -> set d Nac
  | U.Call { c_dst = None; _ } -> env

(** Converged state at the entry of every block. *)
let analyze (r : U.routine) : env U.Int_map.t =
  let rpo = Cfg.reverse_postorder r in
  let preds = Cfg.predecessors r in
  let blocks = Hashtbl.create 16 in
  List.iter (fun (b : U.block) -> Hashtbl.replace blocks b.U.b_id b) r.U.r_blocks;
  let entry_id = (U.entry_block r).U.b_id in
  (* Parameters hold unknown values on entry. *)
  let entry_env =
    List.fold_left (fun e p -> U.Int_map.add p Nac e) U.Int_map.empty r.U.r_params
  in
  let in_states = ref (U.Int_map.singleton entry_id entry_env) in
  let out_of label =
    match U.Int_map.find_opt label !in_states with
    | None -> None
    | Some env ->
      let b = Hashtbl.find blocks label in
      Some (List.fold_left transfer env b.U.b_instrs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if label <> entry_id then begin
          let pred_outs =
            List.filter_map out_of
              (Option.value ~default:[] (U.Int_map.find_opt label preds))
          in
          match pred_outs with
          | [] -> ()  (* unreachable: leave absent (all-Undef) *)
          | first :: rest ->
            let merged = List.fold_left join_env first rest in
            let old = U.Int_map.find_opt label !in_states in
            if old = None || not (env_equal (Option.get old) merged) then begin
              in_states := U.Int_map.add label merged !in_states;
              changed := true
            end
        end)
      rpo
  done;
  !in_states

(** Abstract values of the arguments at every call site of [r]:
    site id -> one lattice value per actual argument.  This is the raw
    material of HLO's calling-context descriptors S(E) — "the caller
    passes integer 0 as the first actual". *)
let values_at_calls (r : U.routine) : value list U.Int_map.t =
  let in_states = analyze r in
  List.fold_left
    (fun acc (b : U.block) ->
      match U.Int_map.find_opt b.U.b_id in_states with
      | None -> acc  (* unreachable block *)
      | Some env0 ->
        let env = ref env0 in
        List.fold_left
          (fun acc i ->
            let acc =
              match i with
              | U.Call { c_site; c_args; _ } ->
                U.Int_map.add c_site (List.map (get !env) c_args) acc
              | _ -> acc
            in
            env := transfer !env i;
            acc)
          acc b.U.b_instrs)
    U.Int_map.empty r.U.r_blocks

(** Rewrite the routine using the analysis.  Returns the new routine
    and whether anything changed.

    [arity_of] guards devirtualization: an indirect call is only turned
    direct when the argument count matches the target's parameters —
    a mismatched indirect call is a dynamic error, and rewriting it
    into a (pad-with-zeros) direct call would change behavior. *)
let run ?(arity_of = fun (_ : string) -> (None : int option))
    (r : U.routine) : U.routine * bool =
  let in_states = analyze r in
  let changed = ref false in
  let rewrite_block (b : U.block) =
    match U.Int_map.find_opt b.U.b_id in_states with
    | None -> b  (* unreachable; simplify will drop it *)
    | Some env0 ->
      let env = ref env0 in
      let rewrite_instr i =
        let const_of r = match get !env r with Const k -> Some k | _ -> None in
        let i' =
          match i with
          | U.Unop (d, op, a) -> (
            match const_of a with
            | Some k -> U.Const (d, fold_unop op k)
            | None -> i)
          | U.Binop (d, op, a, b_) -> (
            match (const_of a, const_of b_) with
            | Some x, Some y -> (
              match fold_binop op x y with
              | Some k -> U.Const (d, k)
              | None -> i)
            | _, Some 0L when op = U.Add || op = U.Sub || op = U.Or
                              || op = U.Xor || op = U.Shl || op = U.Shr ->
              U.Move (d, a)
            | Some 0L, _ when op = U.Add || op = U.Or || op = U.Xor ->
              U.Move (d, b_)
            | _, Some 1L when op = U.Mul || op = U.Div -> U.Move (d, a)
            | Some 1L, _ when op = U.Mul -> U.Move (d, b_)
            | Some 0L, _ when op = U.Mul || op = U.And -> U.Const (d, 0L)
            | _, Some 0L when op = U.Mul || op = U.And -> U.Const (d, 0L)
            | _ -> i)
          | U.Move (d, a) -> (
            match get !env a with
            | Const k -> U.Const (d, k)
            | Fun f -> U.Faddr (d, f)
            | Undef | Nac -> i)
          | U.Call ({ c_callee = U.Indirect h; _ } as c) -> (
            match get !env h with
            | Fun f when arity_of f = Some (List.length c.U.c_args) ->
              U.Call { c with c_callee = U.Direct f }
            | _ -> i)
          | _ -> i
        in
        if i' <> i then changed := true;
        env := transfer !env i;  (* transfer of the original is identical *)
        i'
      in
      let instrs = List.map rewrite_instr b.U.b_instrs in
      let term =
        match b.U.b_term with
        | U.Branch (c, l1, l2) -> (
          match get !env c with
          | Const k ->
            changed := true;
            U.Jump (if Int64.equal k 0L then l2 else l1)
          | _ -> b.U.b_term)
        | t -> t
      in
      { b with U.b_instrs = instrs; U.b_term = term }
  in
  let blocks = List.map rewrite_block r.U.r_blocks in
  ({ r with U.r_blocks = blocks }, !changed)
