(** Block-local common-subexpression elimination (local value
    numbering).  Pure computations and loads are hashed; loads die at
    stores and calls; recomputations become moves. *)

val run : Ucode.Types.routine -> Ucode.Types.routine * bool
