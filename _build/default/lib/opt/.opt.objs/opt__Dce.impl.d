lib/opt/dce.ml: Fun List Liveness Ucode
