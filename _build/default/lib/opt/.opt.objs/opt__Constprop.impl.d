lib/opt/constprop.ml: Cfg Hashtbl Int64 List Option String Ucode
