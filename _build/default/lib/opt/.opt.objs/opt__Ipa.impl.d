lib/opt/ipa.ml: Cfg Hashtbl List Option Ucode
