lib/opt/licm.mli: Ucode
