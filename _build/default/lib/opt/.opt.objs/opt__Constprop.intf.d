lib/opt/constprop.mli: Ucode
