lib/opt/ipa.mli: Ucode
