lib/opt/copyprop.mli: Ucode
