lib/opt/cfg.ml: Hashtbl List Option Ucode
