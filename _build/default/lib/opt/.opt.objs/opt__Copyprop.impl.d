lib/opt/copyprop.ml: Hashtbl List Ucode
