lib/opt/liveness.mli: Ucode
