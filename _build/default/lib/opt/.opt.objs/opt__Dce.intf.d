lib/opt/dce.mli: Ucode
