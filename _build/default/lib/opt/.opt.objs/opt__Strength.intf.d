lib/opt/strength.mli: Ucode
