lib/opt/cfg.mli: Ucode
