lib/opt/liveness.ml: Cfg List Option Ucode
