lib/opt/licm.ml: Cfg Hashtbl List Liveness Option Ucode
