lib/opt/simplify.ml: Cfg Hashtbl List Ucode
