lib/opt/cse.mli: Ucode
