lib/opt/simplify.mli: Ucode
