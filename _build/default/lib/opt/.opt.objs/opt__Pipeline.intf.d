lib/opt/pipeline.mli: Ucode
