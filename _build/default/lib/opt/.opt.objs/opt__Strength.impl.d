lib/opt/strength.ml: Hashtbl Int64 List Ucode
