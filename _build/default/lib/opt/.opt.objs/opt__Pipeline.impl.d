lib/opt/pipeline.ml: Constprop Copyprop Cse Dce Ipa Licm List Option Simplify Strength Ucode
