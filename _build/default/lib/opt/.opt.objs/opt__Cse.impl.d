lib/opt/cse.ml: Hashtbl List Option Ucode
