(* Staged devirtualization (paper §3.1): indirect call sites "are not
   directly amenable to inlining or cloning", but HLO "will
   aggressively clone at sites where the caller passes a pointer to a
   procedure and the callee uses the value of a formal variable in an
   indirect call.  Subsequent constant propagation of this code pointer
   ... will then provide the information needed to turn the indirect
   call into a direct call, which can then be inlined or cloned in a
   later pass."

   This example is that sentence, executed — the eqntott/qsort shape:
   a sort routine taking its comparator through a function pointer.

     dune exec examples/devirtualize.exe *)

module U = Ucode.Types

let source = {|
global data[512];

func cmp_up(a, b) { return a - b; }
func cmp_down(a, b) { return b - a; }

static func swap(i, j) {
  var t = data[i];
  data[i] = data[j];
  data[j] = t;
}

// Classic qsort with a comparison callback: every compare is an
// indirect call through the formal [cmp].
func sort(lo, hi, cmp) {
  if (lo >= hi) { return 0; }
  var pivot = data[(lo + hi) / 2];
  var i = lo;
  var j = hi;
  while (i <= j) {
    while (cmp(data[i], pivot) < 0) { i = i + 1; }
    while (cmp(data[j], pivot) > 0) { j = j - 1; }
    if (i <= j) { swap(i, j); i = i + 1; j = j - 1; }
  }
  sort(lo, j, cmp);
  sort(i, hi, cmp);
  return 0;
}

// The element count lives in memory, so the only constant reaching
// sort's formals is the comparator — one clone per comparator, shared
// by the recursive call sites.
global n_items;

func fill(n) {
  var x = 7;
  for (var i = 0; i < n; i = i + 1) {
    x = (x * 1103515245 + 12345) & 1048575;
    data[i] = x;
  }
  n_items = n;
  return 0;
}

func main() {
  fill(512);
  var hi = n_items - 1;
  sort(0, hi, &cmp_up);
  print_int(data[0]);
  print_int(data[511]);
  sort(0, hi, &cmp_down);
  print_int(data[0]);
  return 0;
}
|}

let count_sites (p : U.program) =
  let cg = Ucode.Callgraph.build p in
  let classes = Ucode.Callgraph.classify cg in
  List.assoc Ucode.Callgraph.Indirect_call classes

(* Routines reachable from main through direct calls. *)
let reachable (p : U.program) =
  let rec go seen name =
    if U.String_set.mem name seen then seen
    else
      match U.find_routine p name with
      | None -> seen
      | Some r ->
        let seen = U.String_set.add name seen in
        List.fold_left
          (fun seen (_, c) ->
            match c.U.c_callee with
            | U.Direct n -> go seen n
            | U.Indirect _ -> seen)
          seen (U.calls_of_routine r)
  in
  go U.String_set.empty p.U.p_main

let hot_indirect_calls (p : U.program) =
  (* Indirect call instructions sitting inside some loop, in routines
     the program can still reach (the dead exported original keeps its
     indirect call but never runs). *)
  let live = reachable p in
  List.fold_left
    (fun acc (r : U.routine) ->
      if not (U.String_set.mem r.U.r_name live) then acc
      else
      let cyc = Hlo.Summaries.blocks_in_cycles r in
      acc
      + List.fold_left
          (fun acc (b : U.block) ->
            if U.Int_set.mem b.U.b_id cyc then
              acc
              + List.length
                  (List.filter
                     (function
                       | U.Call { c_callee = U.Indirect _; _ } -> true
                       | _ -> false)
                     b.U.b_instrs)
            else acc)
          0 r.U.r_blocks)
    0 p.U.p_routines

let () =
  let program = Minic.Compile.compile_string source in
  Fmt.pr "static indirect sites before HLO: %d (hot: %d)@."
    (count_sites program) (hot_indirect_calls program);

  let train = Interp.train program in
  (* A generous budget and extra passes let the staged chain run to
     completion: clone (binds the comparator) -> constant propagation
     (indirect call becomes direct) -> inline (the comparator
     disappears into the loop) -> repeat for the recursive sites. *)
  let config =
    { Hlo.Config.default with Hlo.Config.budget_percent = 400.0; pass_limit = 6 }
  in
  let result = Hlo.Driver.run ~config ~profile:train.Interp.profile program in
  let p' = result.Hlo.Driver.program in

  Fmt.pr "HLO: %a@." Hlo.Report.pp result.Hlo.Driver.report;
  Fmt.pr "hot indirect calls after HLO: %d@." (hot_indirect_calls p');
  List.iter
    (fun (r : U.routine) ->
      match r.U.r_origin with
      | U.Clone_of orig ->
        Fmt.pr "  clone %s (of %s), %d params left@." r.U.r_name orig
          (List.length r.U.r_params)
      | U.From_source -> ())
    p'.U.p_routines;

  (* Verify the whole chain kept the program meaning. *)
  let before = Interp.run program in
  let after = Machine.Sim.run_program p' in
  assert (String.equal before.Interp.output after.Machine.Sim.output);
  Fmt.pr "output unchanged: %s@."
    (String.concat " " (String.split_on_char '\n' (String.trim before.Interp.output)));
  let base = Machine.Sim.run_program program in
  Fmt.pr "cycles: %d -> %d (%.2fx)@." base.Machine.Sim.metrics.Machine.Metrics.cycles
    after.Machine.Sim.metrics.Machine.Metrics.cycles
    (float_of_int base.Machine.Sim.metrics.Machine.Metrics.cycles
    /. float_of_int after.Machine.Sim.metrics.Machine.Metrics.cycles)
