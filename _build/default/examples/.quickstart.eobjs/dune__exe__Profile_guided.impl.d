examples/profile_guided.ml: Fmt Hlo Interp List Machine Minic String Ucode
