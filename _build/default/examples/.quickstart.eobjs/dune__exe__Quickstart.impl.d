examples/quickstart.ml: Fmt Hlo Interp List Machine Minic String Ucode
