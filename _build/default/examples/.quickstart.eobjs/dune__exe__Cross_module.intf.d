examples/cross_module.mli:
