examples/cross_module.ml: Fmt Hlo Interp List Machine Minic String Ucode
