examples/devirtualize.mli:
