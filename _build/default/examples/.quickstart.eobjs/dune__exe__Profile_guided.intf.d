examples/profile_guided.mli:
