examples/quickstart.mli:
