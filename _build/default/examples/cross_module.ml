(* Cross-module optimization via the isom path (paper §2.1) and the
   072.sc dead-stub story (§3.1).

   An "application" module drives a "display" module whose routines are
   stubs that compute nothing anybody uses — exactly the special curses
   library shipped with the SPEC version of sc.  Two things happen:

   - HLO's interprocedural analysis proves the stubs side-effect-free
     and deletes the calls before any budget is spent on them;
   - cross-module inlining flattens the real work, which a per-module
     compile cannot touch.

     dune exec examples/cross_module.exe *)

module U = Ucode.Types

let display = {|
// A stubbed display library: pure, loop-free, result-ignored.
func move_to(r, c) { return r * 80 + c; }
func draw_cell(v) { return v & 255; }
func refresh() { return 0; }
|}

let cells = {|
public global grid[256];

func cell_at(r, c) { return grid[(r * 16 + c) & 255]; }
func put_cell(r, c, v) { grid[(r * 16 + c) & 255] = v; return 0; }
|}

let engine = {|
func step_row(r) {
  var changed = 0;
  for (var c = 0; c < 16; c = c + 1) {
    var v = cell_at(r, c);
    var next = (v * 3 + cell_at(r, (c + 1) & 15)) % 9973;
    move_to(r, c);        // stub call in the hot loop
    draw_cell(next);      // stub call in the hot loop
    if (next != v) {
      put_cell(r, c, next);
      changed = changed + 1;
    }
  }
  refresh();
  return changed;
}
|}

let app = {|
func main() {
  for (var i = 0; i < 256; i = i + 1) { grid[i] = i * 7 % 97; }
  var total = 0;
  for (var round = 0; round < 60; round = round + 1) {
    for (var r = 0; r < 16; r = r + 1) {
      total = total + step_row(r);
    }
  }
  print_int(total % 999983);
  return 0;
}
|}

let stub_calls (p : U.program) =
  List.fold_left
    (fun acc (r : U.routine) ->
      acc
      + List.length
          (List.filter
             (fun (_, c) ->
               match c.U.c_callee with
               | U.Direct ("move_to" | "draw_cell" | "refresh") -> true
               | _ -> false)
             (U.calls_of_routine r)))
    0 p.U.p_routines

let compile () =
  fst
    (Minic.Compile.compile_program
       [ Minic.Compile.source ~module_name:"display" display;
         Minic.Compile.source ~module_name:"cells" cells;
         Minic.Compile.source ~module_name:"engine" engine;
         Minic.Compile.source ~module_name:"app" app ])

let () =
  let program = compile () in
  Fmt.pr "stub calls in the source program: %d@." (stub_calls program);

  let train = Interp.train program in
  let run scope =
    let config = Hlo.Config.with_scope Hlo.Config.default scope in
    let result = Hlo.Driver.run ~config ~profile:train.Interp.profile program in
    let sim = Machine.Sim.run_program result.Hlo.Driver.program in
    (result, sim)
  in
  let module_only, sim_base = run Hlo.Config.P in
  let cross, sim_cross = run Hlo.Config.CP in
  assert (String.equal sim_base.Machine.Sim.output sim_cross.Machine.Sim.output);

  Fmt.pr "@.per-module compile (scope p):@.";
  Fmt.pr "  %a@." Hlo.Report.pp module_only.Hlo.Driver.report;
  Fmt.pr "  stub calls left: %d, cycles: %d@."
    (stub_calls module_only.Hlo.Driver.program)
    sim_base.Machine.Sim.metrics.Machine.Metrics.cycles;

  Fmt.pr "@.cross-module compile (scope cp):@.";
  Fmt.pr "  %a@." Hlo.Report.pp cross.Hlo.Driver.report;
  Fmt.pr "  stub calls left: %d, cycles: %d@."
    (stub_calls cross.Hlo.Driver.program)
    sim_cross.Machine.Sim.metrics.Machine.Metrics.cycles;

  Fmt.pr "@.cross-module speedup: %.2fx (output %s)@."
    (float_of_int sim_base.Machine.Sim.metrics.Machine.Metrics.cycles
    /. float_of_int sim_cross.Machine.Sim.metrics.Machine.Metrics.cycles)
    (String.trim sim_cross.Machine.Sim.output)
