(* Profile-guided versus heuristic inlining (the paper's "p" scope).

   A program with a hot path and a cold path that look identical
   statically: without profile data the inliner must guess; with PBO
   data it spends the budget on the path that actually runs.  We
   compare where the budget went and what it bought, mirroring the
   monotonic-improvement discussion of §3.2.

     dune exec examples/profile_guided.exe *)

module U = Ucode.Types

let source = {|
// Two same-sized kernels, both called from inside the loop, so the
// static heuristic rates the sites identically and takes them in
// program order — the cold one first.  Profile data sees 4995 calls
// against 5 and spends the budget (which affords exactly one inline)
// on the right site.
func hot_kernel(x) {
  var a = x * 17 + 3;
  var b = a ^ (x >> 2);
  var c = b + (x & 31);
  var d = c * 5 - (b >> 1);
  return d ^ (a << 1);
}
func cold_kernel(x) {
  var a = x * 13 + 5;
  var b = a ^ (x >> 3);
  var c = b + (x & 63);
  var d = c * 7 - (b >> 2);
  return d ^ (a << 2);
}

func main() {
  var s = 0;
  for (var i = 0; i < 5000; i = i + 1) {
    if (i % 1000 == 999) { s = cold_kernel(s); }
    else { s = s + hot_kernel(i); }
  }
  print_int(s & 1048575);
  return 0;
}
|}

let run_with ~use_profile program =
  let scope = if use_profile then Hlo.Config.CP else Hlo.Config.C in
  (* The default budget affords inlining exactly one of the kernels. *)
  let config =
    Hlo.Config.with_scope
      { Hlo.Config.default with Hlo.Config.budget_percent = 100.0 }
      scope
  in
  let profile =
    if use_profile then (Interp.train program).Interp.profile
    else Ucode.Profile.empty
  in
  let result = Hlo.Driver.run ~config ~profile program in
  let sim = Machine.Sim.run_program result.Hlo.Driver.program in
  (result, sim)

let () =
  let program = Minic.Compile.compile_string source in
  let baseline = Machine.Sim.run_program program in

  let heuristic, sim_h = run_with ~use_profile:false program in
  let guided, sim_p = run_with ~use_profile:true program in
  assert (String.equal sim_h.Machine.Sim.output sim_p.Machine.Sim.output);

  Fmt.pr "baseline (no HLO):      %d cycles@."
    baseline.Machine.Sim.metrics.Machine.Metrics.cycles;
  Fmt.pr "heuristic (scope c):    %d cycles   [%a]@."
    sim_h.Machine.Sim.metrics.Machine.Metrics.cycles Hlo.Report.pp
    heuristic.Hlo.Driver.report;
  Fmt.pr "profile-fed (scope cp): %d cycles   [%a]@."
    sim_p.Machine.Sim.metrics.Machine.Metrics.cycles Hlo.Report.pp
    guided.Hlo.Driver.report;

  (* What did each configuration choose to inline? *)
  let describe label (result : Hlo.Driver.result) =
    Fmt.pr "%s inlined:@." label;
    List.iter
      (function
        | Hlo.Report.Op_inline { caller; callee; _ } ->
          Fmt.pr "  %s <- %s@." caller callee
        | Hlo.Report.Op_clone_replace { caller; clone; _ } ->
          Fmt.pr "  %s -> %s (clone)@." caller clone)
      (Hlo.Report.operations_in_order result.Hlo.Driver.report)
  in
  describe "heuristic" heuristic;
  describe "profile-fed" guided;
  Fmt.pr "profile speedup over heuristic: %.3fx@."
    (float_of_int sim_h.Machine.Sim.metrics.Machine.Metrics.cycles
    /. float_of_int sim_p.Machine.Sim.metrics.Machine.Metrics.cycles)
