(* Quickstart: compile a MiniC program, profile it, run HLO, and
   measure the effect on the simulated machine.

     dune exec examples/quickstart.exe

   This walks the whole pipeline the paper describes: front end ->
   ucode -> instrumented training run -> inlining/cloning under a
   budget -> back end -> PA8000-style simulation. *)

let source = {|
// A hot leaf, a specializable helper and a loop that hammers both.
func square(x) { return x * x; }

func poly(mode, x) {
  if (mode == 0) { return x + 1; }
  if (mode == 1) { return x * 2; }
  return x - 1;
}

func main() {
  var s = 0;
  for (var i = 0; i < 2000; i = i + 1) {
    s = s + square(i);
    s = s + poly(0, i);   // constant mode: a cloning opportunity
    s = s + poly(1, i);
  }
  print_int(s);
  return 0;
}
|}

let () =
  (* 1. Front end: parse, check, lower, link. *)
  let program = Minic.Compile.compile_string source in
  Fmt.pr "compiled: %d routines, %d instructions@."
    (List.length program.Ucode.Types.p_routines)
    (Ucode.Size.program_size program);

  (* 2. Instrumented training run (the paper's PBO data). *)
  let train = Interp.train program in
  Fmt.pr "training run: %d IR steps, output %S@." train.Interp.steps
    (String.trim train.Interp.output);

  (* 3. HLO: multi-pass inlining and cloning under the default budget
     (100%% compile-cost growth), guided by the profile. *)
  let result = Hlo.Driver.run ~profile:train.Interp.profile program in
  Fmt.pr "HLO: %a@." Hlo.Report.pp result.Hlo.Driver.report;

  (* 4. Back end + machine simulation, before and after. *)
  let before = Machine.Sim.run_program program in
  let after = Machine.Sim.run_program result.Hlo.Driver.program in
  assert (String.equal before.Machine.Sim.output after.Machine.Sim.output);
  Fmt.pr "before: %a@." Machine.Metrics.pp before.Machine.Sim.metrics;
  Fmt.pr "after:  %a@." Machine.Metrics.pp after.Machine.Sim.metrics;
  Fmt.pr "speedup: %.2fx@."
    (float_of_int before.Machine.Sim.metrics.Machine.Metrics.cycles
    /. float_of_int after.Machine.Sim.metrics.Machine.Metrics.cycles)
