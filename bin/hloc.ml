(* hloc: the MiniC compiler driver.

   Compiles one or more .mc modules, links them, optionally runs the
   instrumented training interpreter to gather PBO data, applies HLO
   inlining and cloning at the requested scope and budget, and then
   either dumps the result or executes it (IR interpreter or VR32
   machine simulator).

     hloc a.mc b.mc --scope cp --budget 100 --run sim --stats *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_name_of_path path = Filename.remove_extension (Filename.basename path)

type runner = Run_none | Run_interp | Run_sim
type trace_format = Trace_chrome | Trace_jsonl

let compile_and_run files scope budget passes no_inline no_clone max_ops
    dump_ir dump_asm dump_profile stats runner main trace trace_format
    telemetry_summary jobs summary_cache =
  (* Parallelism: [--jobs N] overrides the HLO_JOBS environment
     default.  Results are bit-identical at any degree (the pool's
     maps are order-preserving); only wall-clock changes. *)
  if jobs > 0 then Parallel.Pool.set_jobs jobs;
  (* Summary cache: warm the memo store from disk before compiling and
     persist it afterwards — including on a failed compile, since
     entries computed before the failure are still valid. *)
  (match summary_cache with
  | None -> ()
  | Some path ->
    (match Hlo.Summary_cache.load path with
    | Ok n -> if stats && n > 0 then Fmt.pr "[cache] loaded %d summaries@." n
    | Error msg -> Fmt.epr "hloc: ignoring summary cache: %s@." msg));
  let save_summary_cache () =
    match summary_cache with
    | None -> ()
    | Some path ->
      (match Hlo.Summary_cache.save path with
      | Ok () -> ()
      | Error msg -> Fmt.epr "hloc: cannot write summary cache: %s@." msg)
  in
  Fun.protect ~finally:save_summary_cache @@ fun () ->
  (* Telemetry: install a collector when any observability flag is on;
     export/summarize even if the compile or the run traps. *)
  let collector =
    if trace <> None || telemetry_summary then begin
      let c = Telemetry.Collector.create () in
      Telemetry.Collector.install c;
      Some c
    end
    else None
  in
  let finish_telemetry () =
    match collector with
    | None -> ()
    | Some c ->
      Telemetry.Collector.uninstall ();
      (match trace with
      | None -> ()
      | Some path ->
        let contents =
          match trace_format with
          | Trace_chrome -> Telemetry.Export.chrome_string c
          | Trace_jsonl -> Telemetry.Export.jsonl c
        in
        (* Runs from Fun.protect's finally: an unwritable path must not
           turn into an "internal error" backtrace. *)
        try Telemetry.Export.write_file ~path contents
        with Sys_error msg -> Fmt.epr "hloc: cannot write trace: %s@." msg);
      if telemetry_summary then Fmt.pr "%a@." Telemetry.Summary.pp c
  in
  Fun.protect ~finally:finish_telemetry @@ fun () ->
  try
    let sources =
      List.map
        (fun path ->
          Minic.Compile.source ~module_name:(module_name_of_path path)
            (read_file path))
        files
    in
    let program, diags =
      Telemetry.Collector.with_span "minic.compile" (fun () ->
          Minic.Compile.compile_program ~main sources)
    in
    List.iter
      (fun d -> Fmt.epr "%a@." Minic.Diag.pp d)
      diags;
    let config =
      Hlo.Config.with_scope
        { Hlo.Config.default with
          Hlo.Config.budget_percent = budget; pass_limit = passes;
          enable_inlining = not no_inline; enable_cloning = not no_clone;
          max_operations = max_ops }
        scope
    in
    let profile =
      if config.Hlo.Config.use_profile then begin
        let r = Interp.train program in
        if stats then
          Fmt.pr "[train] %d IR steps, output %d bytes@." r.Interp.steps
            (String.length r.Interp.output);
        r.Interp.profile
      end
      else Ucode.Profile.empty
    in
    if dump_profile then Fmt.pr "%a@." Ucode.Profile.pp profile;
    let result = Hlo.Driver.run ~config ~profile program in
    let optimized = result.Hlo.Driver.program in
    if stats then
      Fmt.pr "[hlo] %a@." Hlo.Report.pp result.Hlo.Driver.report;
    if dump_ir then Fmt.pr "%a@." Ucode.Pp.pp_program optimized;
    if dump_asm then Fmt.pr "%a@." Machine.Layout.pp (Machine.Layout.build optimized);
    (match runner with
    | Run_none -> ()
    | Run_interp ->
      let r = Interp.run optimized in
      print_string r.Interp.output;
      if stats then Fmt.pr "[interp] exit=%Ld steps=%d@." r.Interp.exit_code
          r.Interp.steps
    | Run_sim ->
      let r = Machine.Sim.run_program optimized in
      print_string r.Machine.Sim.output;
      if stats then
        Fmt.pr "[sim] exit=%Ld %a@." r.Machine.Sim.exit_code Machine.Metrics.pp
          r.Machine.Sim.metrics);
    `Ok ()
  with
  | Minic.Diag.Compile_error diags ->
    List.iter (fun d -> Fmt.epr "%a@." Minic.Diag.pp d) diags;
    `Error (false, "compilation failed")
  | Sys_error msg -> `Error (false, msg)
  | Ucode.Linker.Link_error msg -> `Error (false, "link error: " ^ msg)
  | Interp.Trap (t, where) ->
    `Error (false, Printf.sprintf "trap in %s: %s" where (Interp.trap_message t))
  | Machine.Sim.Trap (t, pc) ->
    `Error
      (false, Printf.sprintf "machine trap at %d: %s" pc (Machine.Sim.trap_message t))

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.mc"
         ~doc:"MiniC source modules; the module name is the file basename.")

let scope =
  let parse = function
    | "base" -> Ok Hlo.Config.Base
    | "c" -> Ok Hlo.Config.C
    | "p" -> Ok Hlo.Config.P
    | "cp" -> Ok Hlo.Config.CP
    | s -> Error (`Msg ("unknown scope " ^ s))
  in
  let print ppf s = Fmt.string ppf (Hlo.Config.scope_name s) in
  Arg.(value
       & opt (conv (parse, print)) Hlo.Config.CP
       & info [ "scope" ] ~docv:"SCOPE"
           ~doc:"Optimization scope: $(b,base) (per-module), $(b,c) \
                 (cross-module), $(b,p) (profile feedback), $(b,cp) (both).")

let budget =
  Arg.(value & opt float 100.0
       & info [ "budget" ] ~docv:"PERCENT"
           ~doc:"Compile-time growth budget as a percentage (paper default \
                 100).")

let passes =
  Arg.(value & opt int 4
       & info [ "passes" ] ~docv:"N" ~doc:"Maximum clone+inline pass pairs.")

let no_inline =
  Arg.(value & flag & info [ "no-inline" ] ~doc:"Disable inlining.")

let no_clone = Arg.(value & flag & info [ "no-clone" ] ~doc:"Disable cloning.")

let max_ops =
  Arg.(value & opt (some int) None
       & info [ "max-operations" ] ~docv:"N"
           ~doc:"Artificially stop after N inline/clone operations (the \
                 Figure 8 instrumentation).")

let dump_ir =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the optimized ucode.")

let dump_asm =
  Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the VR32 disassembly.")

let dump_profile =
  Arg.(value & flag
       & info [ "dump-profile" ]
           ~doc:"Print the training profile database (block and call-site                  counts).")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print transformation and run statistics.")

let runner =
  let parse = function
    | "none" -> Ok Run_none
    | "interp" -> Ok Run_interp
    | "sim" -> Ok Run_sim
    | s -> Error (`Msg ("unknown runner " ^ s))
  in
  let print ppf = function
    | Run_none -> Fmt.string ppf "none"
    | Run_interp -> Fmt.string ppf "interp"
    | Run_sim -> Fmt.string ppf "sim"
  in
  Arg.(value
       & opt (conv (parse, print)) Run_sim
       & info [ "run" ] ~docv:"ENGINE"
           ~doc:"Execute the result: $(b,interp), $(b,sim) or $(b,none).")

let entry_name =
  Arg.(value & opt string "main"
       & info [ "main" ] ~docv:"NAME" ~doc:"Entry routine.")

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record telemetry (per-phase spans, counters and the \
                 optimizer decision journal) and write it to $(docv) on \
                 exit; the format is chosen by $(b,--trace-format).")

let trace_format =
  let parse = function
    | "chrome" -> Ok Trace_chrome
    | "jsonl" -> Ok Trace_jsonl
    | s -> Error (`Msg ("unknown trace format " ^ s))
  in
  let print ppf = function
    | Trace_chrome -> Fmt.string ppf "chrome"
    | Trace_jsonl -> Fmt.string ppf "jsonl"
  in
  Arg.(value
       & opt (conv (parse, print)) Trace_chrome
       & info [ "trace-format" ] ~docv:"FORMAT"
           ~doc:"Trace file format: $(b,chrome) (a chrome://tracing / \
                 Perfetto trace.json) or $(b,jsonl) (one JSON event per \
                 line).")

let telemetry_summary =
  Arg.(value & flag
       & info [ "telemetry-summary" ]
           ~doc:"Print a human-readable summary of phase timings, \
                 counters and optimizer decisions.")

let jobs =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Compile with $(docv) parallel domains (front end and \
                 scalar optimizer).  The output is bit-identical at any \
                 $(docv).  0 (the default) means: use the HLO_JOBS \
                 environment variable, else 1.")

let summary_cache =
  Arg.(value & opt (some string) None
       & info [ "summary-cache" ] ~docv:"PATH"
           ~doc:"Persist the content-hashed routine summary cache to \
                 $(docv): load it before compiling (if it exists) and \
                 save it back on exit, so repeated compiles of \
                 overlapping code skip recomputing summaries.")

let cmd =
  let doc = "profile-guided cross-module inlining and cloning for MiniC" in
  let info = Cmd.info "hloc" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(ret
            (const compile_and_run $ files $ scope $ budget $ passes $ no_inline
            $ no_clone $ max_ops $ dump_ir $ dump_asm $ dump_profile $ stats
            $ runner $ entry_name $ trace $ trace_format $ telemetry_summary
            $ jobs $ summary_cache))

let () = exit (Cmd.eval cmd)
