(* hloc: the MiniC compiler driver.

   Compiles one or more .mc modules, links them, optionally runs the
   instrumented training interpreter to gather PBO data, applies HLO
   inlining and cloning at the requested scope and budget, and then
   either dumps the result or executes it (IR interpreter or VR32
   machine simulator).

     hloc a.mc b.mc --scope cp --budget 100 --run sim --stats

   The isom path (the paper's separate-compilation model):

     hloc -c a.mc b.isom            # compile one module to a.isom
     hloc --link a.isom b.isom      # link isoms, then HLO as usual
     hloc --incremental a.mc b.mc   # manifest-driven rebuild + link

   All three produce bit-identical results to the whole-program
   compile: the same front-end stages run either way, and profile
   fragments stored in isoms are only used when every module has
   one. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_name_of_path path = Filename.remove_extension (Filename.basename path)

type runner = Run_none | Run_interp | Run_sim
type trace_format = Trace_chrome | Trace_jsonl
type mode = Whole | Compile_only | Link_isoms | Incremental

let is_isom_path path = Filename.check_suffix path ".isom"

(* Classify command-line inputs for the isom modes: [.isom] files are
   read (fatally — if you named an object file you meant it), anything
   else is MiniC source. *)
let classify_inputs files =
  List.map
    (fun path ->
      if is_isom_path path then
        match Isom.File.read ~path with
        | Ok i -> (path, Isom.Build.Obj i)
        | Error msg -> raise (Sys_error msg)
      else
        ( path,
          Isom.Build.Src
            (Minic.Compile.source ~module_name:(module_name_of_path path)
               (read_file path)) ))
    files

type daemon_mode = Daemon_off | Daemon_auto | Daemon_require

(* Replay daemon output pieces exactly as the in-process path prints
   them: "diag" to stderr, everything else to stdout in order. *)
let print_daemon_outputs outputs =
  List.iter
    (fun (channel, text) ->
      if channel = "diag" then prerr_string text else print_string text)
    outputs;
  flush stdout;
  flush stderr

(* Route an eligible compile through a running hlod.  [Ok result] is a
   final answer (success or a faithfully replayed failure); [Error msg]
   means "no usable daemon" — `--daemon auto` falls back to the
   in-process pipeline, `--daemon require` reports [msg]. *)
let try_daemon ~socket ~files ~scope ~budget ~passes ~no_inline ~no_clone
    ~max_ops ~policy_text ~inline_mode ~dump_ir ~dump_asm ~dump_profile
    ~dump_journal ~stats ~runner ~main =
  let module P = Serve.Protocol in
  let socket =
    match socket with Some s -> s | None -> Serve.Client.default_socket ()
  in
  if not (Serve.Client.probe socket) then
    Error (Printf.sprintf "no hlod daemon answering at %s" socket)
  else
    match Serve.Client.connect socket with
    | Error msg -> Error msg
    | Ok client ->
      Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
      let modules =
        List.map
          (fun path -> (module_name_of_path path, read_file path))
          files
      in
      let options =
        { P.co_scope = Hlo.Config.scope_name scope; co_budget = budget;
          co_passes = passes; co_inline = not no_inline;
          co_clone = not no_clone; co_max_ops = max_ops;
          co_policy = policy_text;
          co_inline_mode = Policy.inline_mode_name inline_mode;
          co_main = main;
          co_runner =
            (match runner with
            | Run_none -> "none"
            | Run_interp -> "interp"
            | Run_sim -> "sim");
          co_stats = stats; co_dump_ir = dump_ir;
          co_dump_profile = dump_profile; co_dump_asm = dump_asm;
          co_dump_journal = dump_journal }
      in
      (match Serve.Client.roundtrip client (P.Compile { modules; options }) with
      | Error msg -> Error ("daemon request failed: " ^ msg)
      | Ok (P.Compiled { outputs; _ }) ->
        print_daemon_outputs outputs;
        Ok (`Ok ())
      | Ok (P.Failed { reason; outputs; _ }) ->
        print_daemon_outputs outputs;
        Ok (`Error (false, reason))
      | Ok (P.Rejected rj) ->
        Ok
          (`Error
            (false,
             Printf.sprintf "daemon rejected the request (%s): %s"
               rj.P.rj_kind rj.P.rj_reason))
      | Ok _ -> Error "daemon sent an unexpected response")

let compile_and_run files scope budget passes no_inline no_clone max_ops
    inline_mode region_cold_fraction
    policy_file dump_policy dump_ir dump_asm dump_profile dump_journal stats
    runner main trace trace_format telemetry_summary jobs summary_cache
    compile_only link_isoms incremental isom_dir output write_profiles daemon
    daemon_socket =
  (* The policy (when given) overlays the tuned knobs — budget, staging,
     pass limit, heuristics thresholds, stage order — on top of the
     flag-derived configuration, so `--policy` wins over `--budget` and
     `--passes`.  Scope and transform switches stay with the flags. *)
  match
    match policy_file with
    | None -> Ok None
    | Some path -> (
      match Policy.load ~path with
      | Ok (Some p) -> Ok (Some p)
      | Ok None -> Error (Printf.sprintf "policy file %s does not exist" path)
      | Error msg -> Error msg)
  with
  | Error msg -> `Error (false, msg)
  | Ok policy_opt ->
  let config =
    let base =
      Hlo.Config.with_scope
        { Hlo.Config.default with
          Hlo.Config.budget_percent = budget; pass_limit = passes;
          enable_inlining = not no_inline; enable_cloning = not no_clone;
          max_operations = max_ops; inline_mode;
          region_cold_fraction }
        scope
    in
    match policy_opt with
    | None -> base
    | Some p -> Hlo.Config.of_policy ~base p
  in
  if dump_policy then begin
    print_string (Policy.to_string (Hlo.Config.to_policy config));
    `Ok ()
  end
  else if files = [] then `Error (true, "no input files")
  else
  match
    (match (compile_only, link_isoms, incremental) with
    | true, true, _ | true, _, true | _, true, true ->
      Error "at most one of -c, --link and --incremental may be given"
    | true, false, false -> Ok Compile_only
    | false, true, false -> Ok Link_isoms
    | false, false, true ->
      if List.exists is_isom_path files then
        Error "--incremental recompiles from source; pass .mc files, not .isom"
      else Ok Incremental
    | false, false, false ->
      (* Naming an object file implies linking. *)
      Ok (if List.exists is_isom_path files then Link_isoms else Whole))
  with
  | Error msg -> `Error (false, msg)
  | Ok mode when output <> None && mode <> Compile_only ->
    ignore mode; `Error (false, "-o is only meaningful with -c")
  | Ok mode ->
  (* Daemon routing: whole-program compiles whose only side effects are
     the printed outputs can be served by a running hlod — the daemon
     renders through the same code, so the bytes are identical.  Modes
     that write files (isom objects, traces, profile fragments, the
     summary cache) stay in-process. *)
  let daemon_eligible =
    mode = Whole && trace = None && (not telemetry_summary)
    && summary_cache = None && (not write_profiles)
    (* The bare --region-cold-fraction flag has no wire slot (a policy
       file carries it fine); a non-default value compiles in-process. *)
    && region_cold_fraction
       = Hlo.Config.default.Hlo.Config.region_cold_fraction
  in
  let daemon_verdict =
    match daemon with
    | Daemon_off -> `In_process
    | (Daemon_auto | Daemon_require) when not daemon_eligible ->
      if daemon = Daemon_require then
        `Fail
          "--daemon require: this invocation is not daemon-eligible \
           (isom modes, --trace, --telemetry-summary, --summary-cache \
           and --write-profiles run in-process)"
      else `In_process
    | Daemon_auto | Daemon_require -> (
      match
        try_daemon ~socket:daemon_socket ~files ~scope ~budget ~passes
          ~no_inline ~no_clone ~max_ops
          ~policy_text:(Option.map Policy.to_string policy_opt)
          ~inline_mode ~dump_ir ~dump_asm ~dump_profile ~dump_journal ~stats
          ~runner ~main
      with
      | Ok result -> `Served result
      | Error msg ->
        if daemon = Daemon_require then `Fail msg else `In_process)
  in
  match daemon_verdict with
  | `Served result -> result
  | `Fail msg -> `Error (false, msg)
  | `In_process ->
  (* Parallelism: [--jobs N] overrides the HLO_JOBS environment
     default.  Results are bit-identical at any degree (the pool's
     maps are order-preserving); only wall-clock changes. *)
  if jobs > 0 then Parallel.Pool.set_jobs jobs;
  (* Summary cache: warm the memo store from disk before compiling and
     persist it afterwards — including on a failed compile, since
     entries computed before the failure are still valid. *)
  (match summary_cache with
  | None -> ()
  | Some path ->
    (match Hlo.Summary_cache.load path with
    | Ok n -> if stats && n > 0 then Fmt.pr "[cache] loaded %d summaries@." n
    | Error msg -> Fmt.epr "hloc: ignoring summary cache: %s@." msg));
  let save_summary_cache () =
    match summary_cache with
    | None -> ()
    | Some path ->
      (match Hlo.Summary_cache.save path with
      | Ok () -> ()
      | Error msg -> Fmt.epr "hloc: cannot write summary cache: %s@." msg)
  in
  Fun.protect ~finally:save_summary_cache @@ fun () ->
  (* Telemetry: install a collector when any observability flag is on
     (the decision journal needs one too); export/summarize even if the
     compile or the run traps. *)
  let collector =
    if trace <> None || telemetry_summary || dump_journal then begin
      let c = Telemetry.Collector.create () in
      Telemetry.Collector.install c;
      Some c
    end
    else None
  in
  let finish_telemetry () =
    match collector with
    | None -> ()
    | Some c ->
      Telemetry.Collector.uninstall ();
      (match trace with
      | None -> ()
      | Some path ->
        let contents =
          match trace_format with
          | Trace_chrome -> Telemetry.Export.chrome_string c
          | Trace_jsonl -> Telemetry.Export.jsonl c
        in
        (* Runs from Fun.protect's finally: an unwritable path must not
           turn into an "internal error" backtrace. *)
        try Telemetry.Export.write_file ~path contents
        with Sys_error msg -> Fmt.epr "hloc: cannot write trace: %s@." msg);
      if telemetry_summary then Fmt.pr "%a@." Telemetry.Summary.pp c
  in
  Fun.protect ~finally:finish_telemetry @@ fun () ->
  try
    match mode with
    | Compile_only ->
      let inputs = classify_inputs files in
      let n_sources =
        List.length
          (List.filter
             (fun (_, i) ->
               match i with Isom.Build.Obj _ -> false | _ -> true)
             inputs)
      in
      if output <> None && n_sources <> 1 then
        `Error (false, "-o requires exactly one source module")
      else begin
        let isoms, diags = Isom.Build.compile_inputs (List.map snd inputs) in
        prerr_string (Serve.Render.diag diags);
        List.iter2
          (fun (path, input) isom ->
            match input with
            | Isom.Build.Obj _ -> ()  (* inputs providing exports only *)
            | _ ->
              let out =
                match output with
                | Some o -> o
                | None -> Filename.remove_extension path ^ ".isom"
              in
              (match Isom.File.write ~path:out isom with
              | Ok () -> if stats then Fmt.pr "[isom] wrote %s@." out
              | Error msg -> raise (Sys_error msg)))
          inputs isoms;
        `Ok ()
      end
    | (Whole | Link_isoms | Incremental) as mode ->
    let program, diags, link_info =
      match mode with
      | Compile_only -> assert false
      | Whole ->
        let sources =
          List.map
            (fun path ->
              Minic.Compile.source ~module_name:(module_name_of_path path)
                (read_file path))
            files
        in
        let program, diags =
          Telemetry.Collector.with_span "minic.compile" (fun () ->
              Minic.Compile.compile_program ~main sources)
        in
        (program, diags, None)
      | Link_isoms ->
        let inputs = classify_inputs files in
        let isoms, diags = Isom.Build.compile_inputs (List.map snd inputs) in
        let program, maps, seed = Isom.Build.link ~main isoms in
        (* Only inputs that exist as .isom files on disk can receive
           profile fragments later; sources compiled on the fly are
           linked but not persisted. *)
        let paired =
          List.filter_map
            (fun ((path, input), isom) ->
              match input with
              | Isom.Build.Obj _ -> Some (path, isom)
              | _ -> None)
            (List.combine inputs isoms)
        in
        (program, diags, Some (maps, paired, seed))
      | Incremental ->
        let sources =
          List.map
            (fun path ->
              Minic.Compile.source ~module_name:(module_name_of_path path)
                (read_file path))
            files
        in
        let isoms, diags, st =
          Isom.Build.compile_incremental ~dir:isom_dir sources
        in
        if stats then begin
          Fmt.pr "[isom] reused=%d recompiled=%d@."
            (List.length st.Isom.Build.s_reused)
            (List.length st.Isom.Build.s_recompiled);
          List.iter
            (fun (m, reason) -> Fmt.pr "[isom] recompiled %s: %s@." m reason)
            st.Isom.Build.s_recompiled
        end;
        let program, maps, seed = Isom.Build.link ~main isoms in
        let paired =
          List.map
            (fun i ->
              ( Filename.concat isom_dir
                  (Isom.File.file_name (Isom.File.name i)),
                i ))
            isoms
        in
        (program, diags, Some (maps, paired, seed))
    in
    prerr_string (Serve.Render.diag diags);
    let seed_profile =
      match link_info with Some (_, _, s) -> s | None -> None
    in
    let profile, trained =
      if config.Hlo.Config.use_profile then
        match seed_profile with
        | Some p ->
          (* Every isom carried a fragment from an earlier training
             run over these exact module bodies; merging them
             reproduces that profile, so skip retraining. *)
          if stats then
            Fmt.pr "[isom] profile seeded from module fragments@.";
          (p, false)
        | None ->
          let r = Interp.train program in
          if stats then print_string (Serve.Render.train_line r);
          (r.Interp.profile, true)
      else (Ucode.Profile.empty, false)
    in
    (match link_info with
    | Some (maps, paired, _) when write_profiles ->
      if not (config.Hlo.Config.use_profile && trained) then begin
        if stats then Fmt.pr "[isom] profile fragments unchanged@."
      end
      else (
        match Isom.Build.write_fragments paired ~maps ~profile with
        | Ok () ->
          if stats then
            Fmt.pr "[isom] wrote %d profile fragments@." (List.length paired)
        | Error msg ->
          Fmt.epr "hloc: cannot write profile fragments: %s@." msg)
    | Some _ -> ()
    | None ->
      if write_profiles then
        Fmt.epr "hloc: ignoring --write-profiles (whole-program mode)@.");
    if dump_profile then print_string (Serve.Render.profile profile);
    let result = Hlo.Driver.run ~config ~profile program in
    let optimized = result.Hlo.Driver.program in
    if stats then
      print_string (Serve.Render.report_line result.Hlo.Driver.report);
    if dump_ir then print_string (Serve.Render.ir optimized);
    if dump_asm then print_string (Serve.Render.asm optimized);
    if dump_journal then
      print_string
        (Serve.Render.journal
           (match collector with
           | Some c -> Telemetry.Collector.decisions c
           | None -> []));
    (match runner with
    | Run_none -> ()
    | Run_interp ->
      let r = Interp.run optimized in
      print_string r.Interp.output;
      if stats then print_string (Serve.Render.interp_stats_line r)
    | Run_sim ->
      let r = Machine.Sim.run_program optimized in
      print_string r.Machine.Sim.output;
      if stats then print_string (Serve.Render.sim_stats_line r));
    `Ok ()
  with
  | Minic.Diag.Compile_error diags ->
    prerr_string (Serve.Render.diag diags);
    `Error (false, "compilation failed")
  | Sys_error msg -> `Error (false, msg)
  | Ucode.Linker.Link_error msg -> `Error (false, "link error: " ^ msg)
  | Interp.Trap (t, where) ->
    `Error (false, Printf.sprintf "trap in %s: %s" where (Interp.trap_message t))
  | Machine.Sim.Trap (t, pc) ->
    `Error
      (false, Printf.sprintf "machine trap at %d: %s" pc (Machine.Sim.trap_message t))

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"MiniC source modules ($(b,.mc)) and/or isom object files \
               ($(b,.isom)); the module name is the file basename.  \
               Required except with $(b,--dump-policy).")

let scope =
  let parse = function
    | "base" -> Ok Hlo.Config.Base
    | "c" -> Ok Hlo.Config.C
    | "p" -> Ok Hlo.Config.P
    | "cp" -> Ok Hlo.Config.CP
    | s -> Error (`Msg ("unknown scope " ^ s))
  in
  let print ppf s = Fmt.string ppf (Hlo.Config.scope_name s) in
  Arg.(value
       & opt (conv (parse, print)) Hlo.Config.CP
       & info [ "scope" ] ~docv:"SCOPE"
           ~doc:"Optimization scope: $(b,base) (per-module), $(b,c) \
                 (cross-module), $(b,p) (profile feedback), $(b,cp) (both).")

let budget =
  Arg.(value & opt float 100.0
       & info [ "budget" ] ~docv:"PERCENT"
           ~doc:"Compile-time growth budget as a percentage (paper default \
                 100).")

let passes =
  Arg.(value & opt int 4
       & info [ "passes" ] ~docv:"N" ~doc:"Maximum clone+inline pass pairs.")

let no_inline =
  Arg.(value & flag & info [ "no-inline" ] ~doc:"Disable inlining.")

let no_clone = Arg.(value & flag & info [ "no-clone" ] ~doc:"Disable cloning.")

let max_ops =
  Arg.(value & opt (some int) None
       & info [ "max-operations" ] ~docv:"N"
           ~doc:"Artificially stop after N inline/clone operations (the \
                 Figure 8 instrumentation).")

let inline_mode =
  let parse s =
    match Policy.inline_mode_of_name s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Fmt.string ppf (Policy.inline_mode_name m) in
  Arg.(value
       & opt (conv (parse, print)) Policy.Whole
       & info [ "inline-mode" ] ~docv:"MODE"
           ~doc:"What to do with a callee whose whole body busts the \
                 budget: $(b,whole) rejects the site (the paper), \
                 $(b,region) eagerly outlines its cold regions and \
                 inlines the hot residue, $(b,demand) does the same \
                 lazily from the ranked worklist.  $(b,--policy) \
                 overrides this, like $(b,--budget).")

let region_cold_fraction =
  Arg.(value
       & opt float Hlo.Config.default.Hlo.Config.region_cold_fraction
       & info [ "region-cold-fraction" ] ~docv:"F"
           ~doc:"Region/demand coldness cut: a block below $(docv) times \
                 its routine's hottest block count is outlinable residue.")

let policy_file =
  Arg.(value & opt (some string) None
       & info [ "policy" ] ~docv:"FILE"
           ~doc:"Load a tuned HLO policy (written by $(b,hlo_tune) or \
                 $(b,--dump-policy) plus $(b,Policy.save)) and apply its \
                 knobs — budget, staging, pass limit, heuristic \
                 thresholds, stage order — overriding $(b,--budget) and \
                 $(b,--passes).  Scope and transform switches still come \
                 from the flags.")

let dump_policy =
  Arg.(value & flag
       & info [ "dump-policy" ]
           ~doc:"Print the effective policy in its canonical text form \
                 and exit without compiling.  Composes with the tuning \
                 flags and $(b,--policy), so it shows exactly what a \
                 compile with the same flags would use.")

let dump_ir =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the optimized ucode.")

let dump_asm =
  Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the VR32 disassembly.")

let dump_profile =
  Arg.(value & flag
       & info [ "dump-profile" ]
           ~doc:"Print the training profile database (block and call-site                  counts).")

let dump_journal =
  Arg.(value & flag
       & info [ "dump-journal" ]
           ~doc:"Print the optimizer decision journal: one line per \
                 inline/clone decision, deterministic (no wall-clock), \
                 identical whether the compile runs in-process or in a \
                 daemon.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print transformation and run statistics.")

let runner =
  let parse = function
    | "none" -> Ok Run_none
    | "interp" -> Ok Run_interp
    | "sim" -> Ok Run_sim
    | s -> Error (`Msg ("unknown runner " ^ s))
  in
  let print ppf = function
    | Run_none -> Fmt.string ppf "none"
    | Run_interp -> Fmt.string ppf "interp"
    | Run_sim -> Fmt.string ppf "sim"
  in
  Arg.(value
       & opt (conv (parse, print)) Run_sim
       & info [ "run" ] ~docv:"ENGINE"
           ~doc:"Execute the result: $(b,interp), $(b,sim) or $(b,none).")

let entry_name =
  Arg.(value & opt string "main"
       & info [ "main" ] ~docv:"NAME" ~doc:"Entry routine.")

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record telemetry (per-phase spans, counters and the \
                 optimizer decision journal) and write it to $(docv) on \
                 exit; the format is chosen by $(b,--trace-format).")

let trace_format =
  let parse = function
    | "chrome" -> Ok Trace_chrome
    | "jsonl" -> Ok Trace_jsonl
    | s -> Error (`Msg ("unknown trace format " ^ s))
  in
  let print ppf = function
    | Trace_chrome -> Fmt.string ppf "chrome"
    | Trace_jsonl -> Fmt.string ppf "jsonl"
  in
  Arg.(value
       & opt (conv (parse, print)) Trace_chrome
       & info [ "trace-format" ] ~docv:"FORMAT"
           ~doc:"Trace file format: $(b,chrome) (a chrome://tracing / \
                 Perfetto trace.json) or $(b,jsonl) (one JSON event per \
                 line).")

let telemetry_summary =
  Arg.(value & flag
       & info [ "telemetry-summary" ]
           ~doc:"Print a human-readable summary of phase timings, \
                 counters and optimizer decisions.")

let jobs =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Compile with $(docv) parallel domains (front end and \
                 scalar optimizer).  The output is bit-identical at any \
                 $(docv).  0 (the default) means: use the HLO_JOBS \
                 environment variable, else 1.")

let summary_cache =
  Arg.(value & opt (some string) None
       & info [ "summary-cache" ] ~docv:"PATH"
           ~doc:"Persist the content-hashed routine summary cache to \
                 $(docv): load it before compiling (if it exists) and \
                 save it back on exit, so repeated compiles of \
                 overlapping code skip recomputing summaries.")

let compile_only =
  Arg.(value & flag
       & info [ "c"; "compile-only" ]
           ~doc:"Compile each source module to an isom object file and stop \
                 (no link, no optimization, no run).  $(b,.isom) arguments \
                 contribute their exports but are not rewritten.")

let link_isoms =
  Arg.(value & flag
       & info [ "link" ]
           ~doc:"Link isom object files (compiling any $(b,.mc) arguments \
                 on the fly) and continue with the usual HLO pipeline.  \
                 Implied when any argument is a $(b,.isom) file.")

let incremental =
  Arg.(value & flag
       & info [ "incremental" ]
           ~doc:"Build the given source modules through the isom directory \
                 (see $(b,--isom-dir)): modules whose source and imported \
                 exports are unchanged since the last build are loaded from \
                 their isom instead of recompiled, then everything is \
                 linked and optimized as usual.  The result is bit-identical \
                 to a whole-program compile.")

let isom_dir =
  Arg.(value & opt string "_isom"
       & info [ "isom-dir" ] ~docv:"DIR"
           ~doc:"Directory holding isom object files and the build manifest \
                 for $(b,--incremental).")

let output =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path for $(b,-c) (requires exactly one source \
                 module; default: the source path with a $(b,.isom) \
                 extension).")

let write_profiles =
  Arg.(value & flag
       & info [ "write-profiles" ]
           ~doc:"After training, slice the profile per module and store \
                 each module's fragment into its isom file, so later links \
                 of the same isoms can skip training.")

let daemon =
  let parse = function
    | "off" -> Ok Daemon_off
    | "auto" -> Ok Daemon_auto
    | "require" -> Ok Daemon_require
    | s -> Error (`Msg ("unknown daemon mode " ^ s))
  in
  let print ppf = function
    | Daemon_off -> Fmt.string ppf "off"
    | Daemon_auto -> Fmt.string ppf "auto"
    | Daemon_require -> Fmt.string ppf "require"
  in
  Arg.(value
       & opt (conv (parse, print)) Daemon_off
       & info [ "daemon" ] ~docv:"MODE"
           ~doc:"Route eligible compiles through a running $(b,hlod): \
                 $(b,off) (never), $(b,auto) (use the daemon when one \
                 answers, else compile in-process), $(b,require) (fail if \
                 no daemon serves the request).  The output is identical \
                 either way.")

let daemon_socket =
  Arg.(value & opt (some string) None
       & info [ "daemon-socket" ] ~docv:"PATH"
           ~doc:"Socket of the $(b,hlod) daemon (default: \
                 $(b,HLOD_SOCKET), else the per-user temp path).")

let cmd =
  let doc = "profile-guided cross-module inlining and cloning for MiniC" in
  let info = Cmd.info "hloc" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(ret
            (const compile_and_run $ files $ scope $ budget $ passes $ no_inline
            $ no_clone $ max_ops $ inline_mode $ region_cold_fraction
            $ policy_file $ dump_policy
            $ dump_ir $ dump_asm $ dump_profile
            $ dump_journal $ stats $ runner $ entry_name $ trace $ trace_format
            $ telemetry_summary $ jobs $ summary_cache $ compile_only
            $ link_isoms $ incremental $ isom_dir $ output $ write_profiles
            $ daemon $ daemon_socket))

let () = exit (Cmd.eval cmd)
