(* Experiment runner: regenerates every table and figure of the
   paper's evaluation section.

     hlo-experiments fig5
     hlo-experiments table1 --input train
     hlo-experiments all --input ref   # the full reproduction *)

open Cmdliner

let input_conv =
  let parse = function
    | "train" -> Ok Workloads.Suite.Train
    | "ref" -> Ok Workloads.Suite.Ref
    | s -> Error (`Msg ("unknown input set " ^ s))
  in
  let print ppf = function
    | Workloads.Suite.Train -> Fmt.string ppf "train"
    | Workloads.Suite.Ref -> Fmt.string ppf "ref"
  in
  Arg.conv (parse, print)

let input_arg =
  Arg.(value
       & opt input_conv Workloads.Suite.Ref
       & info [ "input" ] ~docv:"SET"
           ~doc:"Input size for the timed runs: $(b,train) or $(b,ref).")

let section title = Fmt.pr "@.== %s ==@.@." title

let run_fig5 () =
  section "Figure 5: static characteristics of call sites";
  print_string (Experiments.Fig5_callsites.to_table (Experiments.Fig5_callsites.run ()))

let run_table1 input =
  section "Table 1: inline and clone information (scopes base/c/p/cp)";
  print_string
    (Experiments.Table1_transforms.to_table
       (Experiments.Table1_transforms.run ~input ()))

let run_fig6 input =
  section "Figure 6: relative speedup with inlining, cloning, or both";
  print_string (Experiments.Fig6_speedup.to_table (Experiments.Fig6_speedup.run ~input ()))

let run_fig7 () =
  section "Figure 7: simulation results (relative to neither)";
  print_string (Experiments.Fig7_simulation.to_table (Experiments.Fig7_simulation.run ()))

let run_fig8 input =
  section "Figure 8: incremental benefit of operations in 022.li, by budget";
  print_string (Experiments.Fig8_budget.to_table (Experiments.Fig8_budget.run ~input ()))

let run_cache_sweep input =
  section "I-cache sensitivity (abstract claim: large I-cache mitigates expansion)";
  print_string (Experiments.Cache_sweep.to_table (Experiments.Cache_sweep.run ~input ()))

let run_scaling () =
  section "Scaling study (paper 3.5): synthetic production-size programs";
  print_string (Experiments.Scaling.to_table (Experiments.Scaling.run ()))

let run_pareto input =
  section "Pareto fronts: tuned policies vs the 1997 default (hlo_tune)";
  print_string
    (Experiments.Policy_search.to_table
       (Experiments.Policy_search.run ~input ()))

let run_modes input budget json_path =
  section
    "Inline modes: whole vs region vs demand (oracle-gated, starved budget)";
  let study = Experiments.Inline_modes.run ~input ~budget () in
  print_string (Experiments.Inline_modes.to_table study);
  let wins = Experiments.Inline_modes.region_wins study in
  Fmt.pr "region wins (faster, no larger): %s@."
    (if wins = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun r -> r.Experiments.Inline_modes.im_benchmark)
            wins));
  match json_path with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        output_string oc
          (Telemetry.Json.to_string (Experiments.Inline_modes.to_json study));
        output_char oc '\n');
    Fmt.pr "wrote %s@." path

let run_ablations input =
  section "Ablations: staging / cold penalty / outlining / positioning";
  List.iter
    (fun s ->
      print_string (Experiments.Ablations.to_table s);
      print_newline ())
    (Experiments.Ablations.all ~input ())

let run what input budget json_path =
  (match what with
  | "fig5" -> run_fig5 ()
  | "table1" -> run_table1 input
  | "fig6" -> run_fig6 input
  | "fig7" -> run_fig7 ()
  | "fig8" -> run_fig8 input
  | "ablations" -> run_ablations input
  | "scaling" -> run_scaling ()
  | "cache" -> run_cache_sweep input
  | "pareto" -> run_pareto input
  | "modes" -> run_modes input budget json_path
  | "all" ->
    run_fig5 ();
    run_table1 input;
    run_fig6 input;
    run_fig7 ();
    run_fig8 input;
    run_ablations input;
    run_cache_sweep input;
    run_scaling ()
  | other -> Fmt.epr "unknown experiment %s@." other; exit 2);
  Fmt.pr "@."

let what =
  Arg.(value & pos 0 string "all"
       & info [] ~docv:"EXPERIMENT"
           ~doc:"One of $(b,fig5), $(b,table1), $(b,fig6), $(b,fig7), \
                 $(b,fig8), $(b,ablations), $(b,cache), $(b,scaling), \
                 $(b,pareto), $(b,modes) or $(b,all).  $(b,pareto) (the \
                 $(b,hlo_tune) search at default parameters) and \
                 $(b,modes) (the whole/region/demand inline-mode \
                 comparison) are not part of $(b,all).")

let budget_arg =
  Arg.(value & opt float 15.0
       & info [ "budget" ] ~docv:"PCT"
           ~doc:"Budget percentage for the $(b,modes) experiment.  The \
                 modes only diverge when callees are unaffordable whole, \
                 so the default starves the budget.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Where the $(b,modes) experiment writes its machine-readable \
                 results (e.g. BENCH_pr10.json).")

let cmd =
  let doc = "regenerate the evaluation tables and figures of the paper" in
  Cmd.v (Cmd.info "hlo-experiments" ~version:"1.0" ~doc)
    Term.(const run $ what $ input_arg $ budget_arg $ json_arg)

let () = exit (Cmd.eval cmd)
