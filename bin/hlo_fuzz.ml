(* hlo_fuzz: differential fuzzing of the HLO pipeline.

   Samples random multi-module MiniC programs (the shared generator in
   test/prog_gen.ml, with indirect calls, arity mismatches and trapping
   operations enabled), random HLO configurations and metamorphic
   profile perturbations, and asks the semantic oracle whether the
   transformed program still behaves like the original.  Failures are
   bucketed by a stable hash of their failure class; the first
   manifestation of each bucket is delta-debugged to a minimal repro
   and written under --out:

     _build/fuzz/<bucket>/repro.mc       original failing program
     _build/fuzz/<bucket>/repro.cmd      replay command line
     _build/fuzz/<bucket>/reduced/...    minimized repro

   Replay re-runs one saved case:

     hlo_fuzz --replay repro.mc [config flags from repro.cmd]

   The corpus directory seeds every campaign with hand-written programs
   covering the generator's feature corners before random search
   starts. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Generous limits so that legitimate slowdowns (e.g. de-inlined deep
   call chains) don't read as divergence. *)
let interp_config =
  { Interp.default_config with Interp.fuel = 3_000_000; max_call_depth = 2_000 }

(* ------------------------------------------------------------------ *)
(* Case generation.                                                    *)

let list_corpus dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
    |> List.map (fun f ->
           ( Filename.remove_extension f,
             Oracle.Fuzz.parse_combined (read_file (Filename.concat dir f)) ))
  else []

let gen_mutation st =
  match QCheck.Gen.int_range 0 5 st with
  | 0 | 1 -> Oracle.Keep
  | 2 -> Oracle.Scale (QCheck.Gen.oneofl [ 0.0; 0.5; 2.0; 1000.0 ] st)
  | 3 -> Oracle.Zero
  | _ -> Oracle.Stale (QCheck.Gen.int_range 0 1_000_000 st)

(* [force_mode] restricts a campaign to one inline mode (--inline-mode);
   without it the random configurations sample all three. *)
let force check force_mode =
  match force_mode with
  | None -> check
  | Some m ->
    { check with
      Oracle.ck_config =
        { check.Oracle.ck_config with Hlo.Config.inline_mode = m } }

let gen_check ?force_mode st =
  force
    { Oracle.ck_config = Prog_gen.gen_hlo_config st;
      ck_mutation = gen_mutation st;
      ck_jobs = QCheck.Gen.oneofl [ 1; 1; 1; 2 ] st }
    force_mode

(* Case [i] is a pure function of (seed, i): campaigns are reproducible
   and a crash report's label pins the case exactly. *)
let case_gen ~seed ~corpus ?force_mode i =
  let st = Random.State.make [| 0x9e3779; seed; i |] in
  let n = List.length corpus in
  if i < n then
    let name, sources = List.nth corpus i in
    { Oracle.Fuzz.c_label = "corpus:" ^ name; c_sources = sources;
      c_check = force Oracle.default_check force_mode }
  else
    match if n > 0 then QCheck.Gen.int_range 0 3 st else 1 + QCheck.Gen.int_range 0 2 st with
    | 0 ->
      (* Corpus programs under random configs and profile mutations. *)
      let name, sources = QCheck.Gen.oneofl corpus st in
      { Oracle.Fuzz.c_label =
          Printf.sprintf "corpus:%s/seed=%d/i=%d" name seed i;
        c_sources = sources; c_check = gen_check ?force_mode st }
    | 1 ->
      (* Hot/cold-skewed programs: one dominant path plus cold
         branches, the shape region/demand splitting exists for. *)
      { Oracle.Fuzz.c_label = Printf.sprintf "skew:seed=%d/i=%d" seed i;
        c_sources =
          Prog_gen.render_shape (Prog_gen.gen_skewed_shape st);
        c_check = gen_check ?force_mode st }
    | _ ->
      { Oracle.Fuzz.c_label = Printf.sprintf "gen:seed=%d/i=%d" seed i;
        c_sources =
          Prog_gen.render_shape (Prog_gen.gen_shape Prog_gen.wild_opts st);
        c_check = gen_check ?force_mode st }

(* ------------------------------------------------------------------ *)
(* Modes.                                                              *)

let replay_case file config mutation jobs =
  let case =
    { Oracle.Fuzz.c_label = "replay:" ^ file;
      c_sources = Oracle.Fuzz.parse_combined (read_file file);
      c_check =
        { Oracle.ck_config = config; ck_mutation = mutation; ck_jobs = jobs } }
  in
  match Oracle.Fuzz.run_case ~interp_config case with
  | Oracle.Fuzz.Passed ->
    Fmt.pr "PASS: %s@." file;
    0
  | Oracle.Fuzz.Skipped reason ->
    Fmt.epr "SKIP: %s does not compile: %s@." file reason;
    2
  | Oracle.Fuzz.Failed f ->
    Fmt.pr "FAIL [bucket %s]: %s@." f.Oracle.Fuzz.f_bucket
      (match f.Oracle.Fuzz.f_kind with
      | Oracle.Fuzz.Mismatch { cls; detail } -> cls ^ "\n" ^ detail
      | Oracle.Fuzz.Crash { exn_class; detail } -> exn_class ^ "\n" ^ detail);
    1

let campaign seed iters time_budget out corpus_dir no_reduce force_mode =
  let corpus = list_corpus corpus_dir in
  Fmt.pr "hlo_fuzz: seed=%d corpus=%d programs (%s)%s@." seed
    (List.length corpus) corpus_dir
    (match force_mode with
    | None -> ""
    | Some m -> " mode=" ^ Policy.inline_mode_name m);
  let on_failure (f : Oracle.Fuzz.failure) =
    let dir = Filename.concat out f.Oracle.Fuzz.f_bucket in
    if not (Sys.file_exists dir) then begin
      Oracle.Fuzz.write_repro ~dir f;
      Fmt.pr "new bucket %s (%s); repro in %s@." f.Oracle.Fuzz.f_bucket
        f.Oracle.Fuzz.f_case.Oracle.Fuzz.c_label dir;
      if not no_reduce then begin
        let r = Oracle.Reduce.reduce ~interp_config f in
        Oracle.Fuzz.write_repro ~dir:(Filename.concat dir "reduced")
          r.Oracle.Reduce.r_failure;
        Fmt.pr "  reduced to %d statements in %d oracle runs@."
          r.Oracle.Reduce.r_lines r.Oracle.Reduce.r_tests
      end
    end
  in
  let stats =
    Oracle.Fuzz.campaign ~interp_config ~max_runs:iters ?time_budget
      ~on_failure
      ~gen:(case_gen ~seed ~corpus ?force_mode)
      ()
  in
  Fmt.pr "%a@." Oracle.Fuzz.pp_stats stats;
  if stats.Oracle.Fuzz.st_failures > 0 then 1 else 0

let main seed iters time_budget out corpus_dir chaos replay scope budget
    passes staging no_inline no_clone outline inline_mode
    region_cold_fraction max_ops no_reopt validate mutation jobs no_reduce =
  match
    match chaos with
    | None -> Ok ()
    | Some name -> (
      match Hlo.Chaos.of_name name with
      | Some bug ->
        Hlo.Chaos.arm (Some bug);
        Ok ()
      | None ->
        Error
          (Printf.sprintf "unknown chaos bug %s (known: %s)" name
             (String.concat ", " (List.map Hlo.Chaos.name Hlo.Chaos.all))))
  with
  | Error msg -> `Error (false, msg)
  | Ok () -> (
    match replay with
    | Some file ->
      let config =
        { (Hlo.Config.with_scope Hlo.Config.default scope) with
          Hlo.Config.budget_percent = budget; pass_limit = passes;
          staging =
            (match staging with
            | Some s -> s
            | None -> Hlo.Config.default.Hlo.Config.staging);
          enable_inlining = not no_inline; enable_cloning = not no_clone;
          enable_outlining = outline; max_operations = max_ops;
          optimize_between_passes = not no_reopt;
          inline_mode =
            Option.value inline_mode
              ~default:Hlo.Config.default.Hlo.Config.inline_mode;
          region_cold_fraction =
            Option.value region_cold_fraction
              ~default:Hlo.Config.default.Hlo.Config.region_cold_fraction;
          validate }
      in
      `Ok (replay_case file config mutation jobs)
    | None ->
      `Ok (campaign seed iters time_budget out corpus_dir no_reduce inline_mode))

(* ------------------------------------------------------------------ *)
(* Command line.                                                       *)

let seed =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed; case $(i,i) is a \
                pure function of (seed, $(i,i)).")

let iters =
  Arg.(value & opt int 500
       & info [ "iters" ] ~docv:"N" ~doc:"Maximum number of cases to run.")

let time_budget =
  Arg.(value & opt (some float) None
       & info [ "time-budget" ] ~docv:"SECONDS"
           ~doc:"Stop starting new cases after $(docv) seconds.")

let out =
  Arg.(value & opt string "_build/fuzz"
       & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for per-bucket repro artifacts.")

let corpus_dir =
  Arg.(value & opt string "test/corpus"
       & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Seed corpus of $(b,.mc) programs (combined // module \
                 format); each runs first under the default check, then \
                 again under random configs.")

let chaos =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"BUG"
           ~doc:"Testing only: arm a deliberately seeded miscompilation \
                 bug in the transformation pipeline, to validate that the \
                 fuzzer catches it and the reducer shrinks it.")

let replay =
  Arg.(value & opt (some file) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay one saved case instead of fuzzing: run $(docv) \
                 through the oracle under the configuration given by the \
                 remaining flags (see the generated repro.cmd).")

let scope =
  let parse = function
    | "base" -> Ok Hlo.Config.Base
    | "c" -> Ok Hlo.Config.C
    | "p" -> Ok Hlo.Config.P
    | "cp" -> Ok Hlo.Config.CP
    | s -> Error (`Msg ("unknown scope " ^ s))
  in
  let print ppf s = Fmt.string ppf (Hlo.Config.scope_name s) in
  Arg.(value
       & opt (conv (parse, print)) Hlo.Config.CP
       & info [ "scope" ] ~docv:"SCOPE"
           ~doc:"(replay) Optimization scope: $(b,base), $(b,c), $(b,p), \
                 $(b,cp).")

let budget =
  Arg.(value & opt float 100.0
       & info [ "budget" ] ~docv:"PERCENT" ~doc:"(replay) Growth budget.")

let passes =
  Arg.(value & opt int 4
       & info [ "passes" ] ~docv:"N" ~doc:"(replay) Maximum pass pairs.")

let staging =
  let parse s =
    match Hlo.Config.staging_of_string s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  let print ppf s = Fmt.string ppf (Hlo.Config.staging_to_string s) in
  Arg.(value
       & opt (some (conv (parse, print))) None
       & info [ "staging" ] ~docv:"FRACTIONS"
           ~doc:"(replay) Comma-separated cumulative budget fractions.")

let no_inline =
  Arg.(value & flag & info [ "no-inline" ] ~doc:"(replay) Disable inlining.")

let no_clone =
  Arg.(value & flag & info [ "no-clone" ] ~doc:"(replay) Disable cloning.")

let outline =
  Arg.(value & flag & info [ "outline" ] ~doc:"(replay) Enable outlining.")

let inline_mode =
  let parse s =
    match Policy.inline_mode_of_name s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Fmt.string ppf (Policy.inline_mode_name m) in
  Arg.(value
       & opt (some (conv (parse, print))) None
       & info [ "inline-mode" ] ~docv:"MODE"
           ~doc:"Inlining mode: $(b,whole), $(b,region) or $(b,demand).  \
                 In a campaign, restrict every case (corpus and \
                 generated) to $(docv); by default random configurations \
                 sample all three.  In replay, pin the saved case's \
                 mode.")

let region_cold_fraction =
  Arg.(value
       & opt (some float) None
       & info [ "region-cold-fraction" ] ~docv:"F"
           ~doc:"(replay) Region/demand coldness cut relative to the \
                 hottest block.")

let max_ops =
  Arg.(value & opt (some int) None
       & info [ "max-operations" ] ~docv:"N"
           ~doc:"(replay) Stop after N transformation operations.")

let no_reopt =
  Arg.(value & flag
       & info [ "no-reopt" ]
           ~doc:"(replay) Skip between-pass scalar re-optimization.")

(* Both spellings exist because repro.cmd lines are generated relative
   to Hlo.Config.default (validation off) while the fuzzer's own
   default is validation on. *)
let validate =
  Arg.(value
       & vflag true
           [ ( true,
               info [ "validate" ]
                 ~doc:"(replay) Re-validate IR after every stage (the \
                       default under the fuzzer, unlike in hloc)." );
             ( false,
               info [ "no-validate" ]
                 ~doc:"(replay) Skip per-stage IR validation." ) ])

let mutation =
  let parse s =
    match Oracle.mutation_of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Fmt.string ppf (Oracle.mutation_to_string m) in
  Arg.(value
       & opt (conv (parse, print)) Oracle.Keep
       & info [ "mutation" ] ~docv:"MUT"
           ~doc:"(replay) Profile perturbation: $(b,keep), $(b,zero), \
                 $(b,scale:F), $(b,stale:N).  All are semantics-neutral; \
                 a behavior change under any of them is a bug.")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"(replay) Parallel domains during compilation.")

let no_reduce =
  Arg.(value & flag
       & info [ "no-reduce" ]
           ~doc:"Write raw repros only; skip delta-debugging new buckets.")

let cmd =
  let doc = "differential fuzzer for the HLO inlining/cloning pipeline" in
  let info = Cmd.info "hlo_fuzz" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(ret
            (const main $ seed $ iters $ time_budget $ out $ corpus_dir
            $ chaos $ replay $ scope $ budget $ passes $ staging $ no_inline
            $ no_clone $ outline $ inline_mode $ region_cold_fraction
            $ max_ops $ no_reopt $ validate $ mutation $ jobs $ no_reduce))

let () = exit (Cmd.eval' cmd)
