(* hlo_tune — multi-objective search over the HLO policy space.

     hlo_tune                                # full search, table to stdout
     hlo_tune --seed 7 --samples 32          # bigger, different search
     hlo_tune --json BENCH_pr9.json \
              --policies policies/           # persist results
     hlo_tune --bench compress --bench go \
              --samples 4 --rounds 1 --input train   # smoke

   Same seed (and parameters) ⇒ same fronts, winners, and files,
   whatever --jobs is. *)

open Cmdliner

let tune seed samples rounds mutations stale_rounds input benches jobs json_out
    policy_dir =
  Parallel.Pool.set_jobs jobs;
  let benchmarks = match benches with [] -> None | names -> Some names in
  match
    Experiments.Policy_search.run ~seed ~samples ~rounds ~mutations
      ~stale_rounds ~input ?benchmarks ()
  with
  | exception Failure msg -> `Error (false, msg)
  | exception Invalid_argument msg -> `Error (true, msg)
  | result ->
    print_string (Experiments.Policy_search.to_table result);
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Telemetry.Json.to_string (Experiments.Policy_search.to_json result));
      output_char oc '\n';
      close_out oc;
      Fmt.pr "wrote %s@." path);
    let save_errors =
      match policy_dir with
      | None -> []
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        List.filter_map
          (fun cr ->
            let path =
              Filename.concat dir
                (String.lowercase_ascii
                   (Workloads.Suite.suite_name
                      cr.Experiments.Policy_search.cr_suite)
                ^ ".policy")
            in
            match
              Policy.save ~path cr.Experiments.Policy_search.cr_winner
            with
            | Ok () ->
              Fmt.pr "wrote %s@." path;
              None
            | Error msg -> Some (path ^ ": " ^ msg))
          result.Experiments.Policy_search.t_classes
    in
    (match save_errors with
    | [] -> `Ok ()
    | errs -> `Error (false, String.concat "; " errs))

module Args = struct
  let seed =
    Arg.(value & opt int 1997
         & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the search.")

  let samples =
    Arg.(value & opt int 16
         & info [ "samples" ] ~docv:"N"
             ~doc:"Random policies drawn per class before local search.")

  let rounds =
    Arg.(value & opt int 3
         & info [ "rounds" ] ~docv:"N"
             ~doc:"Rounds of mutation/local search over the Pareto front.")

  let mutations =
    Arg.(value & opt int 3
         & info [ "mutations" ] ~docv:"N"
             ~doc:"Mutants drawn per front member per round.")

  let stale_rounds =
    Arg.(value & opt int 3
         & info [ "stale-rounds" ] ~docv:"N"
             ~doc:"Stale-profile mutations in the robustness score \
                   (0 skips it).")

  let input_conv =
    let parse = function
      | "train" -> Ok Workloads.Suite.Train
      | "ref" -> Ok Workloads.Suite.Ref
      | s -> Error (`Msg ("unknown input set " ^ s))
    in
    let print ppf = function
      | Workloads.Suite.Train -> Fmt.string ppf "train"
      | Workloads.Suite.Ref -> Fmt.string ppf "ref"
    in
    Arg.conv (parse, print)

  let input =
    Arg.(value & opt input_conv Workloads.Suite.Ref
         & info [ "input" ] ~docv:"SET"
             ~doc:"Input size for the timed runs: $(b,train) or $(b,ref).")

  let benches =
    Arg.(value & opt_all string []
         & info [ "bench" ] ~docv:"NAME"
             ~doc:"Restrict the suite to this benchmark (repeatable).")

  let jobs =
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for candidate evaluation.")

  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the machine-readable results (fronts, winners, \
                   per-benchmark numbers) to $(docv).")

  let policy_dir =
    Arg.(value & opt (some string) None
         & info [ "policies" ] ~docv:"DIR"
             ~doc:"Write each class's winning policy to \
                   $(docv)/CLASS.policy (loadable with hloc --policy).")
end

let cmd =
  let doc = "search the HLO policy space for Pareto-better settings" in
  Cmd.v (Cmd.info "hlo_tune" ~version:"1.0" ~doc)
    Term.(ret
            (const tune $ Args.seed $ Args.samples $ Args.rounds
             $ Args.mutations $ Args.stale_rounds $ Args.input $ Args.benches
             $ Args.jobs $ Args.json_out $ Args.policy_dir))

let () = exit (Cmd.eval cmd)
