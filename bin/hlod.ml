(* hlod: the compile/optimize daemon.

   Binds a Unix-domain socket and serves the hlod1 protocol: compile
   requests (bit-identical to `hloc` whole-program mode), stats, ping
   and graceful shutdown.  The process owns the warm work-stealing
   pool, the cross-request summary cache and clone database, and a
   content-addressed artifact store, so repeated compiles of the same
   modules are served without compiling at all.

     hlod --socket /tmp/hlod.sock --jobs 4 --server-budget 4e9 &
     hlo_client compile a.mc b.mc --stats
     hlo_client shutdown *)

open Cmdliner

let serve socket jobs server_budget request_budget queue_limit artifact_dir
    artifact_cap summary_cache max_frame verbose =
  let socket =
    match socket with Some s -> s | None -> Serve.Client.default_socket ()
  in
  let jobs = if jobs > 0 then jobs else Parallel.Pool.get_jobs () in
  let config =
    { Serve.Service.jobs; server_budget; request_budget; queue_limit;
      artifact_dir; artifact_cap; summary_cache; max_frame }
  in
  match Serve.Server.start ~socket config with
  | exception Unix.Unix_error (e, _, _) ->
    `Error
      (false,
       Printf.sprintf "cannot listen on %s: %s" socket (Unix.error_message e))
  | server ->
    if verbose then
      Fmt.epr "[hlod] listening on %s (jobs=%d budget=%g)@." socket jobs
        server_budget;
    let graceful _ = Serve.Server.stop server in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful)
     with Invalid_argument _ -> ());
    Serve.Server.wait server;
    if verbose then Fmt.epr "[hlod] shut down@.";
    `Ok ()

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (default: \
                 $(b,HLOD_SOCKET), else a per-user path in the temp \
                 directory).")

let jobs =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Compile with $(docv) parallel domains.  0 (the default) \
                 means: use the HLO_JOBS environment variable, else 1.")

let server_budget =
  Arg.(value & opt float Serve.Service.default_config.Serve.Service.server_budget
       & info [ "server-budget" ] ~docv:"UNITS"
           ~doc:"Total Σ size² capacity granted to concurrently admitted \
                 requests; further requests queue.")

let request_budget =
  Arg.(value
       & opt float Serve.Service.default_config.Serve.Service.request_budget
       & info [ "request-budget" ] ~docv:"UNITS"
           ~doc:"Largest Σ size² estimate a single request may carry; \
                 bigger requests are rejected, not queued.")

let queue_limit =
  Arg.(value & opt int Serve.Service.default_config.Serve.Service.queue_limit
       & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Admission queue bound; requests beyond it are rejected \
                 with $(b,queue_full).")

let artifact_dir =
  Arg.(value & opt (some string) None
       & info [ "artifact-dir" ] ~docv:"DIR"
           ~doc:"Persist compile artifacts (content-addressed) under \
                 $(docv), surviving daemon restarts.")

let artifact_cap =
  Arg.(value & opt (some int) None
       & info [ "artifact-cap" ] ~docv:"N"
           ~doc:"Keep at most $(docv) artifacts per tier: the in-memory \
                 table evicts least-recently-used entries and the \
                 $(b,--artifact-dir) directory drops its oldest files.  \
                 Unset means unbounded.")

let summary_cache =
  Arg.(value & opt (some string) None
       & info [ "summary-cache" ] ~docv:"PATH"
           ~doc:"Warm the routine summary cache from $(docv) on start and \
                 persist it on shutdown.")

let max_frame =
  Arg.(value & opt int Serve.Protocol.default_max_frame
       & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Largest accepted request payload.")

let verbose =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Log lifecycle to stderr.")

let cmd =
  let doc = "compile-as-a-service daemon for MiniC (the hloc pipeline)" in
  let info = Cmd.info "hlod" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(ret
            (const serve $ socket $ jobs $ server_budget $ request_budget
            $ queue_limit $ artifact_dir $ artifact_cap $ summary_cache
            $ max_frame $ verbose))

let () = exit (Cmd.eval cmd)
