(* hlo_client: command-line client for a running hlod daemon.

     hlo_client compile a.mc b.mc --stats         # hloc-compatible output
     hlo_client stats                             # server statistics JSON
     hlo_client ping
     hlo_client shutdown                          # graceful drain

   A compile served here prints exactly what `hloc` would print for
   the same flags — the daemon renders through the same code. *)

open Cmdliner

module P = Serve.Protocol

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_name_of_path path = Filename.remove_extension (Filename.basename path)

let resolve_socket = function
  | Some s -> s
  | None -> Serve.Client.default_socket ()

let with_client socket f =
  match Serve.Client.connect (resolve_socket socket) with
  | Error msg -> `Error (false, msg)
  | Ok client ->
    Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () ->
        f client)

(* Replay the daemon's output pieces exactly as `hloc` would have
   printed them: "diag" to stderr, everything else to stdout in
   order. *)
let print_outputs outputs =
  List.iter
    (fun (channel, text) ->
      if channel = "diag" then prerr_string text else print_string text)
    outputs;
  flush stdout;
  flush stderr

let compile files scope budget passes no_inline no_clone max_ops
    inline_mode policy dump_ir dump_asm dump_profile dump_journal stats
    runner main socket verbose =
  let modules =
    List.map (fun path -> (module_name_of_path path, read_file path)) files
  in
  match
    match policy with
    | None -> Ok None
    | Some path -> (
      match Policy.load ~path with
      | Ok (Some p) -> Ok (Some (Policy.to_string p))
      | Ok None -> Error (Printf.sprintf "policy file %s does not exist" path)
      | Error msg -> Error msg)
  with
  | Error msg -> `Error (false, msg)
  | Ok co_policy ->
  let options =
    { P.co_scope = scope; co_budget = budget; co_passes = passes;
      co_inline = not no_inline; co_clone = not no_clone;
      co_max_ops = max_ops; co_policy;
      co_inline_mode = Policy.inline_mode_name inline_mode;
      co_main = main; co_runner = runner;
      co_stats = stats; co_dump_ir = dump_ir; co_dump_profile = dump_profile;
      co_dump_asm = dump_asm; co_dump_journal = dump_journal }
  in
  with_client socket @@ fun client ->
  match Serve.Client.roundtrip client (P.Compile { modules; options }) with
  | Error msg -> `Error (false, msg)
  | Ok (P.Compiled { outputs; cache; key; queued; elapsed_us }) ->
    if verbose then
      Fmt.epr "[serve] cache=%s key=%s queued=%b elapsed_us=%.0f@." cache key
        queued elapsed_us;
    print_outputs outputs;
    `Ok ()
  | Ok (P.Failed { reason; outputs; _ }) ->
    print_outputs outputs;
    `Error (false, reason)
  | Ok (P.Rejected rj) ->
    `Error
      (false,
       Printf.sprintf "rejected (%s): %s" rj.P.rj_kind rj.P.rj_reason)
  | Ok _ -> `Error (false, "unexpected response")

let stats socket =
  with_client socket @@ fun client ->
  match Serve.Client.roundtrip client P.Stats with
  | Ok (P.Stats_reply json) ->
    print_endline (Telemetry.Json.to_string json);
    `Ok ()
  | Ok _ -> `Error (false, "unexpected response")
  | Error msg -> `Error (false, msg)

let ping socket =
  with_client socket @@ fun client ->
  match Serve.Client.roundtrip client P.Ping with
  | Ok P.Pong ->
    print_endline "pong";
    `Ok ()
  | Ok _ -> `Error (false, "unexpected response")
  | Error msg -> `Error (false, msg)

let shutdown socket =
  with_client socket @@ fun client ->
  match Serve.Client.roundtrip client P.Shutdown with
  | Ok P.Shutting_down ->
    print_endline "shutting down";
    `Ok ()
  | Ok _ -> `Error (false, "unexpected response")
  | Error msg -> `Error (false, msg)

(* ------------------------------------------------------------------ *)

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Daemon socket (default: $(b,HLOD_SOCKET), else the \
                 per-user temp path `hlod` also defaults to).")

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"MiniC source modules; the module name is the file basename.")

let scope =
  Arg.(value & opt string "cp"
       & info [ "scope" ] ~docv:"SCOPE"
           ~doc:"Optimization scope: $(b,base), $(b,c), $(b,p) or $(b,cp).")

let budget =
  Arg.(value & opt float 100.0
       & info [ "budget" ] ~docv:"PERCENT" ~doc:"Compile-time growth budget.")

let passes =
  Arg.(value & opt int 4
       & info [ "passes" ] ~docv:"N" ~doc:"Maximum clone+inline pass pairs.")

let no_inline =
  Arg.(value & flag & info [ "no-inline" ] ~doc:"Disable inlining.")

let no_clone = Arg.(value & flag & info [ "no-clone" ] ~doc:"Disable cloning.")

let max_ops =
  Arg.(value & opt (some int) None
       & info [ "max-operations" ] ~docv:"N"
           ~doc:"Stop after N inline/clone operations.")

let inline_mode =
  let parse s =
    match Policy.inline_mode_of_name s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Fmt.string ppf (Policy.inline_mode_name m) in
  Arg.(value & opt (conv (parse, print)) Policy.Whole
       & info [ "inline-mode" ] ~docv:"MODE"
           ~doc:"Inlining mode: $(b,whole), $(b,region) or $(b,demand); \
                 forwarded to the daemon as `hloc --inline-mode` would \
                 apply it in-process.")

let policy =
  Arg.(value & opt (some file) None
       & info [ "policy" ] ~docv:"FILE"
           ~doc:"Send a tuned HLO policy with the request ($(docv) as for \
                 `hloc --policy`); the daemon overlays it exactly as \
                 `hloc --policy` does.")

let dump_ir =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the optimized ucode.")

let dump_asm =
  Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the VR32 disassembly.")

let dump_profile =
  Arg.(value & flag
       & info [ "dump-profile" ] ~doc:"Print the training profile database.")

let dump_journal =
  Arg.(value & flag
       & info [ "dump-journal" ]
           ~doc:"Print the optimizer decision journal (one line per \
                 decision, deterministic).")

let stats_flag =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print transformation and run statistics.")

let runner =
  Arg.(value & opt string "sim"
       & info [ "run" ] ~docv:"ENGINE"
           ~doc:"Execute the result: $(b,interp), $(b,sim) or $(b,none).")

let entry_name =
  Arg.(value & opt string "main"
       & info [ "main" ] ~docv:"NAME" ~doc:"Entry routine.")

let verbose =
  Arg.(value & flag
       & info [ "verbose" ]
           ~doc:"Print a $(b,[serve]) line (cache verdict, key, queueing) \
                 to stderr.")

let compile_cmd =
  let doc = "compile MiniC modules through the daemon" in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(ret
            (const compile $ files $ scope $ budget $ passes $ no_inline
            $ no_clone $ max_ops $ inline_mode $ policy $ dump_ir $ dump_asm
            $ dump_profile $ dump_journal $ stats_flag $ runner $ entry_name
            $ socket $ verbose))

let stats_cmd =
  let doc = "print server statistics as JSON" in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const stats $ socket))

let ping_cmd =
  let doc = "check that the daemon is alive" in
  Cmd.v (Cmd.info "ping" ~doc) Term.(ret (const ping $ socket))

let shutdown_cmd =
  let doc = "drain in-flight requests and stop the daemon" in
  Cmd.v (Cmd.info "shutdown" ~doc) Term.(ret (const shutdown $ socket))

let cmd =
  let doc = "client for the hlod compile daemon" in
  Cmd.group
    (Cmd.info "hlo_client" ~version:"1.0" ~doc)
    [ compile_cmd; stats_cmd; ping_cmd; shutdown_cmd ]

let () = exit (Cmd.eval cmd)
