(** The scalar optimization pipeline — the stand-in for the paper's
    "aggressive, state-of-the-art global optimizer".

    One round is: CFG simplify, constant propagation (with
    devirtualization), copy propagation, loop-invariant code motion,
    strength reduction, local CSE, DCE, simplify again; rounds repeat
    to quiescence (bounded). *)

type stats = {
  mutable rounds : int;
  passes_changed : (string, int) Hashtbl.t;
      (** pass name -> number of rounds in which it changed the routine *)
}

val make_stats : unit -> stats

(** [changed_counts s] as a sorted association list (for reports). *)
val changed_counts : stats -> (string * int) list

(** Optimize one routine.  [removable name] permits deleting unused
    calls to [name] (see {!Ipa}); [arity_of] enables devirtualization
    of indirect calls whose target and arity are provably known. *)
val optimize_routine :
  ?removable:(string -> bool) ->
  ?arity_of:(string -> int option) ->
  ?max_rounds:int ->
  ?stats:stats ->
  Ucode.Types.routine ->
  Ucode.Types.routine

(** Optimize every routine; computes the {!Ipa} deletable set and the
    arity environment from the program itself. *)
val optimize_program :
  ?max_rounds:int -> Ucode.Types.program -> Ucode.Types.program

(** Optimize only the named routines (used by HLO between passes). *)
val optimize_selected :
  ?max_rounds:int -> Ucode.Types.program -> string list -> Ucode.Types.program
