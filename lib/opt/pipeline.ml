(** The optimization pipeline.

    This is the stand-in for the paper's "aggressive, state-of-the-art
    global optimizer": the set of scalar transformations the back end
    applies to each routine.  HLO runs it (a) once after input to
    shrink the IR, (b) on every routine it inlines into or clones (the
    "optimize and recalibrate" steps of Figures 3 and 4), and (c) the
    back end conceptually runs it again before code generation.

    Each pass returns a changed flag; the pipeline iterates until quiet
    or until the round bound is hit. *)

module U = Ucode.Types

type stats = {
  mutable rounds : int;
  passes_changed : (string, int) Hashtbl.t;
}

let make_stats () = { rounds = 0; passes_changed = Hashtbl.create 16 }

let changed_counts stats =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.passes_changed []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let note stats name =
  Hashtbl.replace stats.passes_changed name
    (1 + Option.value ~default:0 (Hashtbl.find_opt stats.passes_changed name))

(** Optimize one routine.  [removable] enables deletion of unused calls
    proven harmless by {!Ipa}; [arity_of] enables devirtualization of
    indirect calls whose target and arity are provably known. *)
let optimize_routine ?(removable = fun _ -> false)
    ?(arity_of = fun (_ : string) -> (None : int option)) ?(max_rounds = 4)
    ?stats (r : U.routine) : U.routine =
  let stats = match stats with Some s -> s | None -> make_stats () in
  (* Convergence: a quiet round (no pass flagged a change) stops with no
     structural comparison at all.  A noisy round still compares input
     to output, because two passes can oscillate — one rewrites, a later
     one undoes it — leaving the round a structural no-op while flags
     fired; without the compare such a routine burns every remaining
     round.  Net: at most one compare per *changed* round, none on the
     final quiet round. *)
  let any = ref false in
  let run_pass name f r =
    let r', changed = f r in
    if changed then begin
      any := true;
      note stats name
    end;
    r'
  in
  let round r =
    r
    |> run_pass "simplify" Simplify.run
    |> run_pass "constprop" (Constprop.run ~arity_of)
    |> run_pass "copyprop" Copyprop.run
    |> run_pass "licm" Licm.run
    |> run_pass "strength" Strength.run
    |> run_pass "cse" Cse.run
    |> run_pass "dce" (Dce.run ~removable)
    |> run_pass "simplify" Simplify.run
  in
  let rec loop r n =
    if n = 0 then r
    else begin
      stats.rounds <- stats.rounds + 1;
      any := false;
      let r' = round r in
      if !any && r' <> r then loop r' (n - 1) else r'
    end
  in
  loop r max_rounds

(* Scheduling priority for the parallel map: a routine's rank in the
   bottom-up SCC order.  Leaf callees are optimized first, mirroring
   the sequential optimizer's natural order of usefulness — the
   priority biases which shard a worker picks up next but never what
   any shard computes, so results are independent of it. *)
let scc_priority (p : U.program) : int array option =
  if Parallel.Pool.get_jobs () <= 1 then None
  else begin
    let ids = Ucode.Callgraph.(scc_ids (build p)) in
    Some
      (Array.of_list
         (List.map
            (fun (r : U.routine) ->
              Option.value ~default:0 (U.String_map.find_opt r.U.r_name ids))
            p.U.p_routines))
  end

(** Optimize every routine of a program.  Computes the deletable-call
    set once (the "limited interprocedural analysis" of the paper) and
    feeds it to per-routine DCE.  Routines are independent given those
    read-only program facts, so they are sharded across the ambient
    domain pool; the order-preserving map keeps the routine list — and
    with it every downstream decision — identical to a sequential
    run. *)
let optimize_program ?(max_rounds = 4) (p : U.program) : U.program =
  Telemetry.Collector.with_span "opt.program" @@ fun () ->
  if Telemetry.Collector.enabled () then begin
    let n = List.length p.U.p_routines in
    Telemetry.Collector.annotate "routines" (Telemetry.Event.Int n);
    Telemetry.Collector.count "opt.routines_optimized" n
  end;
  let deletable = Ipa.deletable_routines p in
  let removable n = U.String_set.mem n deletable in
  let arity_of n = U.arity_in_program p n in
  { p with
    U.p_routines =
      Parallel.Pool.map_list ?priority:(scc_priority p)
        (fun (r : U.routine) ->
          Telemetry.Collector.with_span "opt.routine" @@ fun () ->
          if Telemetry.Collector.enabled () then
            Telemetry.Collector.annotate "name"
              (Telemetry.Event.Str r.U.r_name);
          optimize_routine ~removable ~arity_of ~max_rounds r)
        p.U.p_routines }

(** Optimize only the named routines (used by HLO after a pass touched
    a subset of the program).  Untouched routines are passed through by
    the same order-preserving map. *)
let optimize_selected ?(max_rounds = 4) (p : U.program) names : U.program =
  Telemetry.Collector.with_span "opt.selected" @@ fun () ->
  if Telemetry.Collector.enabled () then begin
    let n = List.length names in
    Telemetry.Collector.annotate "routines" (Telemetry.Event.Int n);
    Telemetry.Collector.count "opt.routines_optimized" n
  end;
  let deletable = Ipa.deletable_routines p in
  let removable n = U.String_set.mem n deletable in
  let arity_of n = U.arity_in_program p n in
  let target = U.String_set.of_list names in
  { p with
    U.p_routines =
      Parallel.Pool.map_list ?priority:(scc_priority p)
        (fun (r : U.routine) ->
          if U.String_set.mem r.U.r_name target then begin
            Telemetry.Collector.with_span "opt.routine" @@ fun () ->
            if Telemetry.Collector.enabled () then
              Telemetry.Collector.annotate "name"
                (Telemetry.Event.Str r.U.r_name);
            optimize_routine ~removable ~arity_of ~max_rounds r
          end
          else r)
        p.U.p_routines }
