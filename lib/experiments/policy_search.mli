(** Multi-objective policy search (the [hlo_tune] engine).

    The 1997 paper hand-set every HLO knob; this experiment searches
    {!Policy.Space} for better settings.  Candidates are evaluated on
    whole workload classes (the SPEC92-style and SPEC95-style halves of
    the suite), scored on three minimized objectives — simulated run
    cycles, final code size, and compile cost — and {e oracle-gated}: a
    candidate whose transformed program the semantic oracle cannot
    prove behavior-preserving is rejected outright, whatever its
    numbers say.  The survivors form a Pareto front per class; the
    winner is the front member with the fewest cycles among those no
    larger than the default's code size.

    Determinism contract: same [seed] (and same parameters) ⇒ same
    candidates, same front, same winner.  All random draws happen
    sequentially before each parallel evaluation batch, and the
    parallel map preserves order, so the degree of parallelism cannot
    change the result. *)

(** The three objectives measured on one benchmark (or summed over a
    class). *)
type objectives = {
  o_cycles : float;  (** simulated run cycles *)
  o_size : float;  (** final program size, instructions *)
  o_cost : float;  (** compile cost spent, Σ size² units *)
}

(** Per-benchmark precomputation shared by every candidate: the
    compiled (ref or train) program, its training profile, and the
    pre-transformation oracle observation. *)
type ctx

val prepare : ?input:Workloads.Suite.input -> Workloads.Suite.benchmark -> ctx

val ctx_benchmark : ctx -> Workloads.Suite.benchmark

(** Run HLO under [policy] (optionally with a metamorphically mutated
    profile) and measure.  [Error reason] when the driver traps, the
    semantic oracle refuses the transformed program, or the simulator
    output diverges from the oracle's observation — the candidate is
    rejected, never scored. *)
val evaluate :
  ?mutation:Oracle.profile_mutation ->
  ctx ->
  Policy.t ->
  (objectives, string) result

type class_result = {
  cr_suite : Workloads.Suite.spec_suite;
  cr_default : Policy.Pareto.point;
  cr_front : (Policy.t * Policy.Pareto.point) list;
      (** non-dominated candidates, discovery order *)
  cr_winner : Policy.t;
  cr_winner_point : Policy.Pareto.point;
  cr_candidates : int;  (** distinct candidates evaluated *)
  cr_rejected : int;  (** rejected by the oracle gate (or a trap) *)
}

type bench_row = {
  br_name : string;
  br_suite : Workloads.Suite.spec_suite;
  br_default : objectives;
  br_tuned : objectives;  (** under the class winner *)
  br_best : objectives;
      (** under the best oracle-clean candidate the search found for
          {e this} benchmark: fewest cycles among those no worse than
          the default on either axis here (the default itself always
          qualifies, so "best" never loses to it) *)
  br_best_policy : Policy.t;
}

type t = {
  t_seed : int;
  t_input : Workloads.Suite.input;
  t_classes : class_result list;
  t_rows : bench_row list;
  t_stale : (Workloads.Suite.spec_suite * float) list;
      (** stale-profile robustness: geomean over [Stale 1..k] mutations
          and class benchmarks of default-cycles / tuned-cycles — above
          1.0 the tuned policy still beats the default on profiles that
          no longer match reality *)
}

(** [run ()] searches each class: the default policy plus [samples]
    random policies, then [rounds] rounds of [mutations] local moves
    per front member.  [benchmarks] restricts the suite by name
    (smoke tests); [stale_rounds] is the number of [Stale k] profile
    mutations in the robustness score (0 skips it). *)
val run :
  ?seed:int ->
  ?samples:int ->
  ?rounds:int ->
  ?mutations:int ->
  ?stale_rounds:int ->
  ?input:Workloads.Suite.input ->
  ?benchmarks:string list ->
  unit ->
  t

val to_table : t -> string

(** The [BENCH_pr9.json] payload: winners (canonical text + hash),
    fronts, per-benchmark tuned-vs-default numbers, robustness. *)
val to_json : t -> Telemetry.Json.t
