(** Multi-objective policy search.  See the interface for the
    contract; the shape of the search is:

    per class:  default + N samples ──eval──▶ front ──mutate──▶ eval ─▶ front ─▶ ...
                       (all draws sequential, all evals parallel)

    Every evaluation is oracle-gated: the transformed program must be
    provably behavior-equal to the original before its numbers count.
    The search never trusts a fast-but-wrong candidate. *)

module U = Ucode.Types

type objectives = {
  o_cycles : float;
  o_size : float;
  o_cost : float;
}

let zero = { o_cycles = 0.0; o_size = 0.0; o_cost = 0.0 }

let add a b =
  { o_cycles = a.o_cycles +. b.o_cycles; o_size = a.o_size +. b.o_size;
    o_cost = a.o_cost +. b.o_cost }

let point_of (o : objectives) : Policy.Pareto.point =
  { Policy.Pareto.cycles = o.o_cycles; size = o.o_size; cost = o.o_cost }

(* ------------------------------------------------------------------ *)
(* Per-benchmark evaluation.                                           *)

type ctx = {
  cx_benchmark : Workloads.Suite.benchmark;
  cx_program : U.program;
  cx_profile : Ucode.Profile.t;
  cx_pre : Oracle.outcome;
}

let prepare ?(input = Workloads.Suite.Ref) b =
  let program = Workloads.Suite.compile b ~input in
  { cx_benchmark = b; cx_program = program;
    cx_profile = Pipeline.train_profile b;
    cx_pre = Oracle.observe program }

let ctx_benchmark cx = cx.cx_benchmark

let evaluate ?(mutation = Oracle.Keep) cx (policy : Policy.t) :
    (objectives, string) result =
  let config = Hlo.Config.of_policy policy in
  let profile = Oracle.mutate_profile mutation cx.cx_profile in
  match Hlo.Driver.run ~config ~profile cx.cx_program with
  | exception e -> Error ("driver: " ^ Printexc.to_string e)
  | result -> (
    let optimized = result.Hlo.Driver.program in
    let post = Oracle.observe optimized in
    match Oracle.compare_outcomes ~pre:cx.cx_pre ~post with
    | Some (cls, detail) -> Error (Printf.sprintf "oracle:%s (%s)" cls detail)
    | None -> (
      let sim = Machine.Sim.run_program optimized in
      match post with
      | Oracle.Finished ob
        when not (String.equal ob.Oracle.ob_output sim.Machine.Sim.output)
        ->
        Error "sim: output diverges from the interpreter's"
      | _ ->
        Ok
          { o_cycles =
              float_of_int sim.Machine.Sim.metrics.Machine.Metrics.cycles;
            o_size = float_of_int (Ucode.Size.program_size optimized);
            o_cost = result.Hlo.Driver.report.Hlo.Report.cost_after }))

(* Evaluate a candidate on every benchmark of a class; the first
   rejection rejects the candidate.  Ok carries the per-benchmark
   breakdown, aligned with [ctxs]. *)
let eval_class ctxs policy : (objectives list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | cx :: rest -> (
      match evaluate cx policy with
      | Ok o -> go (o :: acc) rest
      | Error e ->
        Error (cx.cx_benchmark.Workloads.Suite.b_name ^ ": " ^ e))
  in
  go [] ctxs

let class_sum breakdown = List.fold_left add zero breakdown

(* ------------------------------------------------------------------ *)
(* The search.                                                         *)

type class_result = {
  cr_suite : Workloads.Suite.spec_suite;
  cr_default : Policy.Pareto.point;
  cr_front : (Policy.t * Policy.Pareto.point) list;
  cr_winner : Policy.t;
  cr_winner_point : Policy.Pareto.point;
  cr_candidates : int;
  cr_rejected : int;
}

(* [init_seq n f] — like [List.init] but with a guaranteed left-to-right
   evaluation order, so RNG draws replay identically everywhere. *)
let init_seq n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

(* One surviving candidate: its policy, class-summed point, and the
   per-benchmark breakdown behind it. *)
type candidate = {
  cd_policy : Policy.t;
  cd_point : Policy.Pareto.point;
  cd_breakdown : objectives list;
}

let search_class ~rng ~samples ~rounds ~mutations suite ctxs :
    class_result * candidate list =
  let seen = Hashtbl.create 64 in
  let clean = ref [] (* candidates, newest first *) in
  let rejected = ref 0 in
  let evaluated = ref 0 in
  let eval_batch policies =
    let fresh =
      List.filter
        (fun p ->
          let key = Policy.to_string p in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        policies
    in
    let results = Parallel.Pool.map_list (eval_class ctxs) fresh in
    List.iter2
      (fun p r ->
        incr evaluated;
        match r with
        | Ok breakdown ->
          clean :=
            { cd_policy = p; cd_point = point_of (class_sum breakdown);
              cd_breakdown = breakdown }
            :: !clean
        | Error _ -> incr rejected)
      fresh results
  in
  let pairs () = List.map (fun c -> (c.cd_policy, c.cd_point)) (List.rev !clean) in
  eval_batch (Policy.default :: init_seq samples (fun _ -> Policy.Space.sample rng));
  let default_point =
    match
      List.find_opt (fun c -> Policy.equal c.cd_policy Policy.default) !clean
    with
    | Some c -> c.cd_point
    | None ->
      (* The default policy must evaluate cleanly — it is the shipped
         compiler.  A failure here is a real bug, not a candidate to
         skip. *)
      failwith
        (Printf.sprintf "policy search: default policy rejected on %s"
           (Workloads.Suite.suite_name suite))
  in
  for _ = 1 to rounds do
    let front = Policy.Pareto.front (pairs ()) in
    let moves =
      List.concat_map
        (fun (p, _) -> init_seq mutations (fun _ -> Policy.Space.mutate rng p))
        front
    in
    eval_batch moves
  done;
  let front = Policy.Pareto.front (pairs ()) in
  (* Winner: fewest cycles among candidates no larger than the default;
     ties break toward smaller size, then lower cost, then the
     lexicographically first policy text — total, so deterministic. *)
  let winner, winner_point =
    let eligible =
      List.filter
        (fun c ->
          c.cd_point.Policy.Pareto.size <= default_point.Policy.Pareto.size
          && c.cd_point.Policy.Pareto.cycles
             <= default_point.Policy.Pareto.cycles)
        (List.rev !clean)
    in
    let keyed =
      List.map
        (fun c ->
          ( ( c.cd_point.Policy.Pareto.cycles, c.cd_point.Policy.Pareto.size,
              c.cd_point.Policy.Pareto.cost, Policy.to_string c.cd_policy ),
            (c.cd_policy, c.cd_point) ))
        eligible
    in
    match List.sort (fun (a, _) (b, _) -> compare a b) keyed with
    | (_, best) :: _ -> best
    | [] -> (Policy.default, default_point)
  in
  ( { cr_suite = suite; cr_default = default_point; cr_front = front;
      cr_winner = winner; cr_winner_point = winner_point;
      cr_candidates = !evaluated; cr_rejected = !rejected },
    List.rev !clean )

(* ------------------------------------------------------------------ *)

type bench_row = {
  br_name : string;
  br_suite : Workloads.Suite.spec_suite;
  br_default : objectives;
  br_tuned : objectives;
  br_best : objectives;
  br_best_policy : Policy.t;
}

type t = {
  t_seed : int;
  t_input : Workloads.Suite.input;
  t_classes : class_result list;
  t_rows : bench_row list;
  t_stale : (Workloads.Suite.spec_suite * float) list;
}

(* Stale-profile robustness: rerun default and winner under [Stale k]
   profiles and geomean default/tuned cycle ratios.  A tuned policy
   that only wins on the exact training profile scores below 1. *)
let stale_score ~stale_rounds ctxs winner =
  let ratios =
    List.concat_map
      (fun cx ->
        init_seq stale_rounds (fun i ->
            let mutation = Oracle.Stale (i + 1) in
            match
              ( evaluate ~mutation cx Policy.default,
                evaluate ~mutation cx winner )
            with
            | Ok d, Ok w -> d.o_cycles /. w.o_cycles
            | Ok _, Error _ ->
              0.0 (* tuned breaks under a stale profile: worst score *)
            | Error _, _ -> 1.0 (* default itself broke: uninformative *)))
      ctxs
  in
  Tables.geomean ratios

let run ?(seed = 1997) ?(samples = 16) ?(rounds = 3) ?(mutations = 3)
    ?(stale_rounds = 3) ?(input = Workloads.Suite.Ref) ?benchmarks () : t =
  let picked =
    match benchmarks with
    | None -> Workloads.Suite.all
    | Some names -> List.map Workloads.Suite.find names
  in
  let classes =
    List.filter
      (fun suite ->
        List.exists (fun b -> b.Workloads.Suite.b_suite = suite) picked)
      [ Workloads.Suite.Spec92; Workloads.Suite.Spec95 ]
  in
  let per_class =
    List.map
      (fun suite ->
        let bs =
          List.filter (fun b -> b.Workloads.Suite.b_suite = suite) picked
        in
        let ctxs = Parallel.Pool.map_list (prepare ~input) bs in
        (suite, ctxs))
      classes
  in
  let results =
    List.mapi
      (fun i (suite, ctxs) ->
        (* One independent stream per class, derived from the seed —
           classes can be added without reshuffling earlier ones. *)
        let rng = Random.State.make [| seed; i |] in
        let cr, clean =
          search_class ~rng ~samples ~rounds ~mutations suite ctxs
        in
        (suite, ctxs, cr, clean))
      per_class
  in
  let rows =
    List.concat_map
      (fun (_, ctxs, cr, clean) ->
        let breakdown_of p =
          match
            List.find_opt (fun c -> Policy.equal c.cd_policy p) clean
          with
          | Some c -> c.cd_breakdown
          | None -> failwith "policy search: winner not among candidates"
        in
        let default_bd = breakdown_of Policy.default in
        let tuned_bd = breakdown_of cr.cr_winner in
        List.mapi
          (fun i cx ->
            let d = List.nth default_bd i in
            (* Best oracle-clean candidate for THIS benchmark: fewest
               cycles among those no worse than the default on either
               axis here.  The default itself always qualifies, so the
               fallback is unreachable on a nonempty clean list. *)
            let best_o, best_p =
              let keyed =
                List.filter_map
                  (fun c ->
                    let o = List.nth c.cd_breakdown i in
                    if o.o_cycles <= d.o_cycles && o.o_size <= d.o_size then
                      Some
                        ( ( o.o_cycles, o.o_size, o.o_cost,
                            Policy.to_string c.cd_policy ),
                          (o, c.cd_policy) )
                    else None)
                  clean
              in
              match List.sort (fun (a, _) (b, _) -> compare a b) keyed with
              | (_, best) :: _ -> best
              | [] -> (d, Policy.default)
            in
            { br_name = cx.cx_benchmark.Workloads.Suite.b_name;
              br_suite = cx.cx_benchmark.Workloads.Suite.b_suite;
              br_default = d; br_tuned = List.nth tuned_bd i;
              br_best = best_o; br_best_policy = best_p })
          ctxs)
      results
  in
  let stale =
    if stale_rounds = 0 then []
    else
      List.map
        (fun (suite, ctxs, cr, _) ->
          (suite, stale_score ~stale_rounds ctxs cr.cr_winner))
        results
  in
  { t_seed = seed; t_input = input;
    t_classes = List.map (fun (_, _, cr, _) -> cr) results; t_rows = rows;
    t_stale = stale }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let brief (p : Policy.t) =
  Printf.sprintf "budget=%g passes=%d stages=%s%s"
    p.Policy.budget_percent p.Policy.pass_limit
    (String.concat ","
       (List.map Policy.stage_name p.Policy.stages))
    (if p.Policy.outline then " outline" else "")

let to_table (t : t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun cr ->
      Buffer.add_string buf
        (Printf.sprintf
           "-- %s Pareto front (seed %d, %d candidates, %d rejected) --\n"
           (Workloads.Suite.suite_name cr.cr_suite)
           t.t_seed cr.cr_candidates cr.cr_rejected);
      Buffer.add_string buf
        (Tables.render
           ~aligns:[ Tables.Left ]
           ~headers:[ "policy"; "cycles"; "size"; "cost" ]
           (List.map
              (fun ((p, pt) : _ * Policy.Pareto.point) ->
                [ (let name =
                     if Policy.equal p Policy.default then "1997 default"
                     else brief p
                   in
                   if Policy.equal p cr.cr_winner then "* " ^ name else name);
                  Printf.sprintf "%.0f" pt.Policy.Pareto.cycles;
                  Printf.sprintf "%.0f" pt.Policy.Pareto.size;
                  Printf.sprintf "%.0f" pt.Policy.Pareto.cost ])
              cr.cr_front));
      Buffer.add_char buf '\n')
    t.t_classes;
  Buffer.add_string buf
    "-- tuned (class winner) and best-found vs default (per benchmark) --\n";
  Buffer.add_string buf
    (Tables.render
       ~aligns:[ Tables.Left ]
       ~headers:
         [ "benchmark"; "cycles"; "tuned"; "ratio"; "size"; "tuned"; "ratio";
           "best-cyc"; "best-size" ]
       (List.map
          (fun r ->
            [ r.br_name;
              Printf.sprintf "%.0f" r.br_default.o_cycles;
              Printf.sprintf "%.0f" r.br_tuned.o_cycles;
              Tables.f3 (r.br_tuned.o_cycles /. r.br_default.o_cycles);
              Printf.sprintf "%.0f" r.br_default.o_size;
              Printf.sprintf "%.0f" r.br_tuned.o_size;
              Tables.f3 (r.br_tuned.o_size /. r.br_default.o_size);
              Tables.f3 (r.br_best.o_cycles /. r.br_default.o_cycles);
              Tables.f3 (r.br_best.o_size /. r.br_default.o_size) ])
          t.t_rows));
  List.iter
    (fun (suite, score) ->
      Buffer.add_string buf
        (Printf.sprintf "stale-profile robustness (%s): %s\n"
           (Workloads.Suite.suite_name suite)
           (Tables.f3 score)))
    t.t_stale;
  Buffer.contents buf

module J = Telemetry.Json

let json_of_objectives (o : objectives) =
  J.Assoc
    [ ("cycles", J.Float o.o_cycles); ("size", J.Float o.o_size);
      ("cost", J.Float o.o_cost) ]

let json_of_point (pt : Policy.Pareto.point) =
  J.Assoc
    [ ("cycles", J.Float pt.Policy.Pareto.cycles);
      ("size", J.Float pt.Policy.Pareto.size);
      ("cost", J.Float pt.Policy.Pareto.cost) ]

let to_json (t : t) =
  let count pred = List.length (List.filter pred t.t_rows) in
  (* tuned: the class winner holds the line on this benchmark.
     best: some oracle-clean candidate strictly improves it. *)
  let tuned_wins =
    count (fun r ->
        r.br_tuned.o_cycles <= r.br_default.o_cycles
        && r.br_tuned.o_size <= r.br_default.o_size)
  in
  let best_wins =
    count (fun r ->
        r.br_best.o_cycles <= r.br_default.o_cycles
        && r.br_best.o_size <= r.br_default.o_size
        && (r.br_best.o_cycles < r.br_default.o_cycles
           || r.br_best.o_size < r.br_default.o_size))
  in
  J.Assoc
    [ ("experiment", J.String "hlo_tune");
      ("seed", J.Int t.t_seed);
      ( "input",
        J.String
          (match t.t_input with
          | Workloads.Suite.Train -> "train"
          | Workloads.Suite.Ref -> "ref") );
      ( "classes",
        J.List
          (List.map
             (fun cr ->
               J.Assoc
                 [ ( "class",
                     J.String (Workloads.Suite.suite_name cr.cr_suite) );
                   ("default", json_of_point cr.cr_default);
                   ("winner", json_of_point cr.cr_winner_point);
                   ("winner_policy", J.String (Policy.to_string cr.cr_winner));
                   ("winner_hash", J.String (Policy.hash cr.cr_winner));
                   ("candidates", J.Int cr.cr_candidates);
                   ("rejected", J.Int cr.cr_rejected);
                   ( "front",
                     J.List
                       (List.map
                          (fun (p, pt) ->
                            J.Assoc
                              [ ("policy_hash", J.String (Policy.hash p));
                                ("point", json_of_point pt) ])
                          cr.cr_front) ) ])
             t.t_classes) );
      ( "benchmarks",
        J.List
          (List.map
             (fun r ->
               J.Assoc
                 [ ("name", J.String r.br_name);
                   ( "class",
                     J.String (Workloads.Suite.suite_name r.br_suite) );
                   ("default", json_of_objectives r.br_default);
                   ("tuned", json_of_objectives r.br_tuned);
                   ( "cycles_ratio",
                     J.Float (r.br_tuned.o_cycles /. r.br_default.o_cycles) );
                   ( "size_ratio",
                     J.Float (r.br_tuned.o_size /. r.br_default.o_size) );
                   ("best", json_of_objectives r.br_best);
                   ("best_policy", J.String (Policy.to_string r.br_best_policy));
                   ("best_policy_hash", J.String (Policy.hash r.br_best_policy));
                   ( "best_cycles_ratio",
                     J.Float (r.br_best.o_cycles /. r.br_default.o_cycles) );
                   ( "best_size_ratio",
                     J.Float (r.br_best.o_size /. r.br_default.o_size) ) ])
             t.t_rows) );
      ( "stale_robustness",
        J.Assoc
          (List.map
             (fun (suite, score) ->
               (Workloads.Suite.suite_name suite, J.Float score))
             t.t_stale) );
      ( "wins",
        J.Assoc
          [ ("tuned", J.Int tuned_wins); ("best", J.Int best_wins);
            ("total", J.Int (List.length t.t_rows)) ] ) ]
