(** Three-way inline-mode comparison (whole / region / demand).

    Every row is produced by {!Pipeline.run_benchmark}, whose
    output-equality guard doubles as the oracle: a row only exists
    because the transformed program printed byte-for-byte the
    untransformed program's output.  Running this experiment therefore
    *is* the suite-wide equivalence check for the three modes.

    The modes only diverge when some hot callee fails the whole-body
    budget check — at the paper-default 100% allowance that is rare on
    the suite, so the headline comparison runs at a deliberately
    starved budget where splitting is the only way to keep inlining.
    Region mode then outlines the cold half of an unaffordable callee
    and inlines the hot residue; the size column shows what that costs
    and the cycles column what it buys. *)

type point = {
  m_cycles : float;
  m_size : float;
  m_cost : float;  (** quadratic compile-space cost, the budget metric *)
  m_inlines : int;
  m_residues : int;  (** residue routines created by splitting *)
}

type row = {
  im_benchmark : string;
  im_whole : point;
  im_region : point;
  im_demand : point;
}

type study = {
  im_input : Workloads.Suite.input;
  im_budget : float;
  im_cold_fraction : float;
  im_rows : row list;
}

let all_benchmarks () =
  List.map
    (fun (b : Workloads.Suite.benchmark) -> b.Workloads.Suite.b_name)
    Workloads.Suite.all

let point_of_run (r : Pipeline.run) =
  { m_cycles = float_of_int r.Pipeline.r_metrics.Machine.Metrics.cycles;
    m_size = float_of_int (Ucode.Size.program_size r.Pipeline.r_program);
    m_cost = r.Pipeline.r_report.Hlo.Report.cost_after;
    m_inlines = r.Pipeline.r_report.Hlo.Report.inlines;
    m_residues = r.Pipeline.r_report.Hlo.Report.residue_outlined }

let run ?(input = Workloads.Suite.Train) ?(budget = 15.0)
    ?(cold_fraction = 0.5) ?benchmarks () : study =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> all_benchmarks ()
  in
  let rows =
    List.map
      (fun name ->
        let b = Workloads.Suite.find name in
        let at mode =
          let config =
            { Hlo.Config.default with
              Hlo.Config.budget_percent = budget; inline_mode = mode;
              region_cold_fraction = cold_fraction }
          in
          point_of_run (Pipeline.run_benchmark ~input ~config b)
        in
        { im_benchmark = name; im_whole = at Policy.Whole;
          im_region = at Policy.Region; im_demand = at Policy.Demand })
      benchmarks
  in
  { im_input = input; im_budget = budget; im_cold_fraction = cold_fraction;
    im_rows = rows }

(** Benchmarks where region strictly beats whole on cycles without
    costing any linear size. *)
let region_wins (s : study) : row list =
  List.filter
    (fun r ->
      r.im_region.m_cycles < r.im_whole.m_cycles
      && r.im_region.m_size <= r.im_whole.m_size)
    s.im_rows

let to_table (s : study) : string =
  let f0 v = Printf.sprintf "%.0f" v in
  Printf.sprintf
    "-- inline modes @ budget %.0f%%, cold fraction %.2f --\n%s"
    s.im_budget s.im_cold_fraction
    (Tables.render
       ~aligns:[ Tables.Left ]
       ~headers:
         [ "benchmark"; "whole(cyc)"; "region(cyc)"; "demand(cyc)";
           "whole(sz)"; "region(sz)"; "demand(sz)"; "splits" ]
       (List.map
          (fun r ->
            [ r.im_benchmark; f0 r.im_whole.m_cycles; f0 r.im_region.m_cycles;
              f0 r.im_demand.m_cycles; f0 r.im_whole.m_size;
              f0 r.im_region.m_size; f0 r.im_demand.m_size;
              string_of_int r.im_region.m_residues ])
          s.im_rows))

(* ------------------------------------------------------------------ *)
(* JSON (BENCH_pr10.json).                                             *)

module J = Telemetry.Json

let json_of_point (p : point) =
  J.Assoc
    [ ("cycles", J.Float p.m_cycles); ("size", J.Float p.m_size);
      ("cost", J.Float p.m_cost); ("inlines", J.Int p.m_inlines);
      ("residues", J.Int p.m_residues) ]

let to_json (s : study) : J.t =
  J.Assoc
    [ ("experiment", J.String "inline_modes");
      ( "input",
        J.String
          (match s.im_input with
          | Workloads.Suite.Train -> "train"
          | Workloads.Suite.Ref -> "ref") );
      ("budget_percent", J.Float s.im_budget);
      ("region_cold_fraction", J.Float s.im_cold_fraction);
      ( "benchmarks",
        J.List
          (List.map
             (fun r ->
               J.Assoc
                 [ ("name", J.String r.im_benchmark);
                   ("whole", json_of_point r.im_whole);
                   ("region", json_of_point r.im_region);
                   ("demand", json_of_point r.im_demand) ])
             s.im_rows) );
      ( "region_wins",
        J.List
          (List.map (fun r -> J.String r.im_benchmark) (region_wins s)) ) ]
