(** Shared conventions for hloc's versioned on-disk stores.

    Every store the compiler persists — the summary cache, isom object
    files, the incremental-build manifest — shares one container
    discipline: a single header line carrying a magic string, a format
    version and a checksum of the payload, followed by the raw payload
    bytes.  Loading is fail-safe: a missing file, a foreign file, a
    version from another release or a corrupted payload all come back
    as ordinary values ([Ok None] / [Error _]), never an exception, so
    callers can always fall back to recomputing.

    The payload is opaque here: text stores (summary cache, manifest)
    and binary stores (isoms) both fit, because the header records the
    payload's exact byte length and MD5. *)

(** [save ~path ~magic ~version payload] writes the container
    atomically (temp file + rename), so a crash mid-write cannot leave
    a torn store behind.  [magic] must not contain spaces or
    newlines. *)
val save :
  path:string -> magic:string -> version:int -> string ->
  (unit, string) result

(** [load ~path ~magic ~version] returns the verified payload.
    [Ok None] when the file does not exist; [Error _] (naming [path]
    and the failing check) on bad magic, wrong version, length or
    checksum mismatch, or an unreadable file. *)
val load :
  path:string -> magic:string -> version:int ->
  (string option, string) result
