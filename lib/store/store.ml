(** Versioned, checksummed on-disk container shared by every store the
    compiler persists (summary cache, isom object files, build
    manifest).  See the interface for the contract; the layout is one
    header line

      <magic> <version> <md5-hex-of-payload> <payload-length>

    followed by the payload bytes verbatim. *)

let header ~magic ~version payload =
  Printf.sprintf "%s %d %s %d\n" magic version
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

let save ~path ~magic ~version payload =
  if String.exists (fun c -> c = ' ' || c = '\n') magic then
    invalid_arg ("Store.save: magic contains a separator: " ^ magic);
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc (header ~magic ~version payload);
       output_string oc payload;
       close_out oc
     with e -> close_out_noerr oc; raise e);
    Sys.rename tmp path;
    Ok ()
  with Sys_error msg -> Error msg

let load ~path ~magic ~version =
  if not (Sys.file_exists path) then Ok None
  else
    try
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      match In_channel.input_line ic with
      | None -> Error (path ^ ": empty store")
      | Some line -> (
        match String.split_on_char ' ' line with
        | [ m; v; digest; len ] -> (
          if m <> magic then
            Error (Printf.sprintf "%s: not a %s store (found %s)" path magic m)
          else
            match (int_of_string_opt v, int_of_string_opt len) with
            | Some v, _ when v <> version ->
              Error
                (Printf.sprintf "%s: %s version %d (this build reads %d)" path
                   magic v version)
            | Some _, Some len when len >= 0 -> (
              match In_channel.really_input_string ic len with
              | None -> Error (path ^ ": truncated payload")
              | Some payload ->
                if In_channel.input_char ic <> None then
                  Error (path ^ ": trailing bytes after payload")
                else if Digest.to_hex (Digest.string payload) <> digest then
                  Error (path ^ ": checksum mismatch")
                else Ok (Some payload))
            | _ -> Error (path ^ ": malformed header"))
        | _ -> Error (path ^ ": malformed header"))
    with Sys_error msg -> Error msg
