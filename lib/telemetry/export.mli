(** Telemetry sinks: JSON-lines event stream and Chrome-trace export.

    The JSONL stream carries one JSON object per line — every span
    (type ["span"]), every decision-journal entry (type ["decision"]),
    then the final counter values (type ["counter"]).

    The Chrome trace is the [chrome://tracing] / Perfetto JSON object
    format: spans become complete ([ph = "X"]) events, decisions
    become instant ([ph = "i"]) events, counters become one trailing
    counter ([ph = "C"]) sample each.  Load the file at
    [ui.perfetto.dev] or [chrome://tracing]. *)

(** One JSON document per line, trailing newline included. *)
val jsonl : Collector.t -> string

(** The trace as a JSON value ([{"traceEvents": [...]}]). *)
val chrome : Collector.t -> Json.t

val chrome_string : Collector.t -> string

(** Write [contents] to [path] (truncating). *)
val write_file : path:string -> string -> unit
