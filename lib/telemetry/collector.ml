(* The collector: an append-only event list (newest first), per-domain
   stacks of open spans, and a counter table.  Spans are recorded when
   they close, so [events] is ordered by completion; [sp_depth]
   preserves the nesting each domain's stack saw and [sp_domain] says
   which domain ran the span.

   Domain safety: the event list and the counters are shared and
   guarded by [lock]; the open-span stack is domain-local state (a
   span opened on one domain cannot close on another), kept in
   domain-local storage so concurrent spans never interleave their
   nesting.  Each collector gets its own DLS key, so independent
   collectors on the same domain do not share stacks. *)

type open_span = {
  os_name : string;
  os_start_us : float;
  os_depth : int;
  mutable os_attrs : Event.attrs;
}

type t = {
  lock : Mutex.t;
  mutable evs : Event.t list;  (* newest first *)
  stack_key : open_span list ref Domain.DLS.key;  (* innermost first *)
  ctrs : Counters.t;
}

let create () =
  { lock = Mutex.create (); evs = [];
    stack_key = Domain.DLS.new_key (fun () -> ref []);
    ctrs = Counters.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let events t = locked t (fun () -> List.rev t.evs)

let spans t =
  List.filter_map (function Event.Span s -> Some s | _ -> None) (events t)

let decisions t =
  List.filter_map (function Event.Decision d -> Some d | _ -> None) (events t)

let counters t = t.ctrs

let journal_count t ~kind ~accepted =
  List.length
    (List.filter
       (fun (d : Event.decision) ->
         d.Event.d_kind = kind
         &&
         match d.Event.d_verdict with
         | Event.Accepted -> accepted
         | Event.Rejected _ -> not accepted)
       (decisions t))

(* ------------------------------------------------------------------ *)
(* Per-instance operations.                                            *)

let stack t = Domain.DLS.get t.stack_key

let begin_span_in t ?(attrs = []) name =
  let st = stack t in
  st :=
    { os_name = name; os_start_us = Clock.now_us ();
      os_depth = List.length !st; os_attrs = attrs }
    :: !st

let end_span_in t =
  let st = stack t in
  match !st with
  | [] -> ()  (* unbalanced end: drop rather than corrupt *)
  | os :: rest ->
    st := rest;
    let now = Clock.now_us () in
    let span =
      Event.Span
        { Event.sp_name = os.os_name; sp_start_us = os.os_start_us;
          sp_dur_us = now -. os.os_start_us; sp_depth = os.os_depth;
          sp_domain = (Domain.self () :> int);
          sp_attrs = List.rev os.os_attrs }
    in
    locked t (fun () -> t.evs <- span :: t.evs)

let with_span_in t ?attrs name f =
  begin_span_in t ?attrs name;
  Fun.protect ~finally:(fun () -> end_span_in t) f

let annotate_in t key value =
  match !(stack t) with
  | [] -> ()
  | os :: _ -> os.os_attrs <- (key, value) :: os.os_attrs

let count_in t name v = locked t (fun () -> Counters.add t.ctrs name v)
let gauge_in t name v = locked t (fun () -> Counters.set t.ctrs name v)

let decision_in t ~kind ~verdict ?(context = "") ?(site = -1) ?(score = 0.0)
    ?(pass = -1) subject =
  let d =
    Event.Decision
      { Event.d_kind = kind; d_verdict = verdict; d_subject = subject;
        d_context = context; d_site = site; d_score = score; d_pass = pass;
        d_time_us = Clock.now_us () }
  in
  locked t (fun () -> t.evs <- d :: t.evs)

(* ------------------------------------------------------------------ *)
(* The ambient collector.                                              *)

let ambient : t option ref = ref None

let install t = ambient := Some t
let uninstall () = ambient := None
let active () = !ambient
let enabled () = Option.is_some !ambient

let with_span ?attrs name f =
  match !ambient with
  | None -> f ()
  | Some t -> with_span_in t ?attrs name f

let annotate key value =
  match !ambient with None -> () | Some t -> annotate_in t key value

let count name v =
  match !ambient with
  | None -> ()
  | Some t -> count_in t name (float_of_int v)

let countf name v =
  match !ambient with None -> () | Some t -> count_in t name v

let gauge name v =
  match !ambient with None -> () | Some t -> gauge_in t name v

let decision ~kind ~verdict ?context ?site ?score ?pass subject =
  match !ambient with
  | None -> ()
  | Some t -> decision_in t ~kind ~verdict ?context ?site ?score ?pass subject
