(* The collector: an append-only event list (newest first), a stack of
   open spans, and a counter table.  Spans are recorded when they
   close, so [events] is ordered by completion; [sp_depth] preserves
   the nesting the stack saw. *)

type open_span = {
  os_name : string;
  os_start_us : float;
  os_depth : int;
  mutable os_attrs : Event.attrs;
}

type t = {
  mutable evs : Event.t list;  (* newest first *)
  mutable stack : open_span list;  (* innermost first *)
  ctrs : Counters.t;
}

let create () = { evs = []; stack = []; ctrs = Counters.create () }

let events t = List.rev t.evs

let spans t =
  List.rev
    (List.filter_map (function Event.Span s -> Some s | _ -> None) t.evs)

let decisions t =
  List.rev
    (List.filter_map (function Event.Decision d -> Some d | _ -> None) t.evs)

let counters t = t.ctrs

let journal_count t ~kind ~accepted =
  List.length
    (List.filter
       (fun (d : Event.decision) ->
         d.Event.d_kind = kind
         &&
         match d.Event.d_verdict with
         | Event.Accepted -> accepted
         | Event.Rejected _ -> not accepted)
       (decisions t))

(* ------------------------------------------------------------------ *)
(* Per-instance operations.                                            *)

let begin_span_in t ?(attrs = []) name =
  t.stack <-
    { os_name = name; os_start_us = Clock.now_us ();
      os_depth = List.length t.stack; os_attrs = attrs }
    :: t.stack

let end_span_in t =
  match t.stack with
  | [] -> ()  (* unbalanced end: drop rather than corrupt *)
  | os :: rest ->
    t.stack <- rest;
    let now = Clock.now_us () in
    t.evs <-
      Event.Span
        { Event.sp_name = os.os_name; sp_start_us = os.os_start_us;
          sp_dur_us = now -. os.os_start_us; sp_depth = os.os_depth;
          sp_attrs = List.rev os.os_attrs }
      :: t.evs

let with_span_in t ?attrs name f =
  begin_span_in t ?attrs name;
  Fun.protect ~finally:(fun () -> end_span_in t) f

let annotate_in t key value =
  match t.stack with
  | [] -> ()
  | os :: _ -> os.os_attrs <- (key, value) :: os.os_attrs

let count_in t name v = Counters.add t.ctrs name v
let gauge_in t name v = Counters.set t.ctrs name v

let decision_in t ~kind ~verdict ?(context = "") ?(site = -1) ?(score = 0.0)
    ?(pass = -1) subject =
  t.evs <-
    Event.Decision
      { Event.d_kind = kind; d_verdict = verdict; d_subject = subject;
        d_context = context; d_site = site; d_score = score; d_pass = pass;
        d_time_us = Clock.now_us () }
    :: t.evs

(* ------------------------------------------------------------------ *)
(* The ambient collector.                                              *)

let ambient : t option ref = ref None

let install t = ambient := Some t
let uninstall () = ambient := None
let active () = !ambient
let enabled () = Option.is_some !ambient

let with_span ?attrs name f =
  match !ambient with
  | None -> f ()
  | Some t -> with_span_in t ?attrs name f

let annotate key value =
  match !ambient with None -> () | Some t -> annotate_in t key value

let count name v =
  match !ambient with
  | None -> ()
  | Some t -> count_in t name (float_of_int v)

let countf name v =
  match !ambient with None -> () | Some t -> count_in t name v

let gauge name v =
  match !ambient with None -> () | Some t -> gauge_in t name v

let decision ~kind ~verdict ?context ?site ?score ?pass subject =
  match !ambient with
  | None -> ()
  | Some t -> decision_in t ~kind ~verdict ?context ?site ?score ?pass subject
