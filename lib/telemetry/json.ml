(* Minimal JSON: just enough for the telemetry sinks to emit event
   streams and for the tests to parse them back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Fixed-point with enough digits for nanosecond-resolution timestamps
   in microseconds; always a valid JSON number (never nan/inf/hex). *)
let float_repr x =
  if not (Float.is_finite x) then "0"
  else
    let s = Printf.sprintf "%.3f" x in
    (* Trim trailing zeros but keep one digit after the point so the
       value round-trips as a float. *)
    if String.contains s '.' then begin
      let n = ref (String.length s) in
      while !n > 1 && s.[!n - 1] = '0' && s.[!n - 2] <> '.' do decr n done;
      String.sub s 0 !n
    end
    else s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the input string.             *)

exception Parse_error of int * string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* Encode the code point as UTF-8 (surrogates untreated:
             the printer never emits them). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
    then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Assoc [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Assoc (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
