(* Aggregated, human-readable view of one collector. *)

type span_agg = {
  mutable sa_count : int;
  mutable sa_total_us : float;
  mutable sa_max_us : float;
}

let aggregate_spans spans =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : Event.span) ->
      let agg =
        match Hashtbl.find_opt tbl s.Event.sp_name with
        | Some a -> a
        | None ->
          let a = { sa_count = 0; sa_total_us = 0.0; sa_max_us = 0.0 } in
          Hashtbl.replace tbl s.Event.sp_name a;
          a
      in
      agg.sa_count <- agg.sa_count + 1;
      agg.sa_total_us <- agg.sa_total_us +. s.Event.sp_dur_us;
      agg.sa_max_us <- Float.max agg.sa_max_us s.Event.sp_dur_us)
    spans;
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b.sa_total_us a.sa_total_us)

(* Decisions tallied as (kind, verdict-or-reason) -> count. *)
let aggregate_decisions decisions =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (d : Event.decision) ->
      let label =
        match d.Event.d_verdict with
        | Event.Accepted -> "accepted"
        | Event.Rejected reason -> "rejected:" ^ reason
      in
      let key = (Event.kind_name d.Event.d_kind, label) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    decisions;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let pp_time ppf us =
  if us >= 1e6 then Fmt.pf ppf "%8.3f s " (us /. 1e6)
  else if us >= 1e3 then Fmt.pf ppf "%8.3f ms" (us /. 1e3)
  else Fmt.pf ppf "%8.1f us" us

let pp ppf c =
  let spans = Collector.spans c in
  let decisions = Collector.decisions c in
  let counters = Counters.to_sorted_list (Collector.counters c) in
  Fmt.pf ppf "== telemetry summary ==@.";
  if spans <> [] then begin
    Fmt.pf ppf "@.spans (by name, inclusive time):@.";
    Fmt.pf ppf "  %-32s %7s %11s %11s@." "name" "count" "total" "max";
    List.iter
      (fun (name, agg) ->
        Fmt.pf ppf "  %-32s %7d  %a  %a@." name agg.sa_count pp_time
          agg.sa_total_us pp_time agg.sa_max_us)
      (aggregate_spans spans)
  end;
  if decisions <> [] then begin
    Fmt.pf ppf "@.decision journal (%d entries):@." (List.length decisions);
    List.iter
      (fun ((kind, label), n) -> Fmt.pf ppf "  %-16s %-28s %7d@." kind label n)
      (aggregate_decisions decisions)
  end;
  if counters <> [] then begin
    Fmt.pf ppf "@.counters:@.";
    List.iter
      (fun (name, v) ->
        if Float.is_integer v && Float.abs v < 1e15 then
          Fmt.pf ppf "  %-44s %12.0f@." name v
        else Fmt.pf ppf "  %-44s %12.2f@." name v)
      counters
  end;
  if spans = [] && decisions = [] && counters = [] then
    Fmt.pf ppf "  (no events recorded)@."

let to_string c = Fmt.str "%a" pp c
