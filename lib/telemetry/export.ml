let span_fields (s : Event.span) =
  [ ("type", Json.String "span"); ("name", Json.String s.Event.sp_name);
    ("ts_us", Json.Float s.Event.sp_start_us);
    ("dur_us", Json.Float s.Event.sp_dur_us);
    ("depth", Json.Int s.Event.sp_depth);
    ("domain", Json.Int s.Event.sp_domain);
    ("attrs", Event.attrs_to_json s.Event.sp_attrs) ]

let decision_fields (d : Event.decision) =
  [ ("type", Json.String "decision");
    ("kind", Json.String (Event.kind_name d.Event.d_kind));
    ("verdict", Json.String (Event.verdict_name d.Event.d_verdict)) ]
  @ (match d.Event.d_verdict with
    | Event.Accepted -> []
    | Event.Rejected reason -> [ ("reason", Json.String reason) ])
  @ [ ("subject", Json.String d.Event.d_subject);
      ("context", Json.String d.Event.d_context);
      ("site", Json.Int d.Event.d_site);
      ("score", Json.Float d.Event.d_score);
      ("pass", Json.Int d.Event.d_pass);
      ("ts_us", Json.Float d.Event.d_time_us) ]

(* ------------------------------------------------------------------ *)
(* JSONL.                                                              *)

let jsonl c =
  let buf = Buffer.create 4096 in
  let line fields =
    Buffer.add_string buf (Json.to_string (Json.Assoc fields));
    Buffer.add_char buf '\n'
  in
  List.iter
    (function
      | Event.Span s -> line (span_fields s)
      | Event.Decision d -> line (decision_fields d))
    (Collector.events c);
  List.iter
    (fun (name, v) ->
      line
        [ ("type", Json.String "counter"); ("name", Json.String name);
          ("value", Json.Float v) ])
    (Counters.to_sorted_list (Collector.counters c));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace.                                                       *)

let chrome c =
  (* Chrome/Perfetto lay events out on one track per (pid, tid); using
     the domain id as tid puts each compilation shard on its own row. *)
  let pid_tid = [ ("pid", Json.Int 0); ("tid", Json.Int 0) ] in
  let span_event (s : Event.span) =
    Json.Assoc
      ([ ("name", Json.String s.Event.sp_name); ("cat", Json.String "span");
         ("ph", Json.String "X"); ("ts", Json.Float s.Event.sp_start_us);
         ("dur", Json.Float s.Event.sp_dur_us);
         ("pid", Json.Int 0); ("tid", Json.Int s.Event.sp_domain) ]
      @ [ ("args", Event.attrs_to_json s.Event.sp_attrs) ])
  in
  let decision_event (d : Event.decision) =
    let name =
      Printf.sprintf "%s %s: %s"
        (Event.kind_name d.Event.d_kind)
        (Event.verdict_name d.Event.d_verdict)
        d.Event.d_subject
    in
    let args =
      [ ("subject", Json.String d.Event.d_subject);
        ("context", Json.String d.Event.d_context);
        ("site", Json.Int d.Event.d_site);
        ("score", Json.Float d.Event.d_score);
        ("pass", Json.Int d.Event.d_pass) ]
      @
      match d.Event.d_verdict with
      | Event.Accepted -> []
      | Event.Rejected reason -> [ ("reason", Json.String reason) ]
    in
    Json.Assoc
      ([ ("name", Json.String name); ("cat", Json.String "decision");
         ("ph", Json.String "i"); ("s", Json.String "t");
         ("ts", Json.Float d.Event.d_time_us) ]
      @ pid_tid
      @ [ ("args", Json.Assoc args) ])
  in
  let events = Collector.events c in
  let end_ts =
    List.fold_left
      (fun acc -> function
        | Event.Span s -> Float.max acc (s.Event.sp_start_us +. s.Event.sp_dur_us)
        | Event.Decision d -> Float.max acc d.Event.d_time_us)
      0.0 events
  in
  let counter_event (name, v) =
    Json.Assoc
      ([ ("name", Json.String name); ("cat", Json.String "counter");
         ("ph", Json.String "C"); ("ts", Json.Float end_ts) ]
      @ pid_tid
      @ [ ("args", Json.Assoc [ ("value", Json.Float v) ]) ])
  in
  let trace_events =
    List.map
      (function
        | Event.Span s -> span_event s
        | Event.Decision d -> decision_event d)
      events
    @ List.map counter_event (Counters.to_sorted_list (Collector.counters c))
  in
  Json.Assoc
    [ ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.String "ms") ]

let chrome_string c = Json.to_string (chrome c)

let write_file ~path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
