(** Human-readable telemetry summary: spans aggregated by name,
    decision tallies by kind/verdict/reason, and all counters — the
    [--telemetry-summary] output of [hloc]. *)

val pp : Format.formatter -> Collector.t -> unit

val to_string : Collector.t -> string
