(** Named counters and gauges.

    Counters accumulate ([add]); gauges record the latest value
    ([set]).  Both live in one namespace — by convention counter names
    are dotted paths ([hlo.inline.accepted]) and gauges describe a
    level rather than a flow ([hlo.budget.spent]). *)

type t

val create : unit -> t

(** [add t name v] adds [v] to counter [name] (creating it at 0). *)
val add : t -> string -> float -> unit

(** [incr t name] = [add t name 1.0]. *)
val incr : t -> string -> unit

(** [set t name v] overwrites [name] with [v] (gauge semantics). *)
val set : t -> string -> float -> unit

(** Current value; [0.0] for names never touched. *)
val get : t -> string -> float

val is_empty : t -> bool

(** All counters, sorted by name. *)
val to_sorted_list : t -> (string * float) list
