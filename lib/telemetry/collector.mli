(** The telemetry collector and its ambient (process-global) API.

    A collector gathers spans, decision-journal entries and counters.
    Instrumented code does not thread a collector value around —
    it calls the ambient functions ({!with_span}, {!count},
    {!decision}, …), which act on the currently installed collector
    and are a single branch ([None] check) when none is installed.
    This keeps the instrumentation free in production: the disabled
    cost of every event is one match on a [ref], verified by the bench
    guard in [bench/main.ml].

    Domain-safe: the event list and counters are mutex-guarded, and
    each domain keeps its own open-span stack (a span opened on one
    domain closes on that domain), so parallel compilation shards can
    emit spans and counters concurrently without losing events.
    [install]/[uninstall] are expected from the main domain only. *)

type t

val create : unit -> t

(** {1 Reading out} *)

(** All finished events, oldest (earliest span end / decision time)
    first. *)
val events : t -> Event.t list

(** Finished spans only, oldest end first. *)
val spans : t -> Event.span list

(** The decision journal, oldest first. *)
val decisions : t -> Event.decision list

val counters : t -> Counters.t

(** Decision-journal entries matching kind and verdict, e.g.
    [journal_count t ~kind:Event.Inline ~accepted:true]. *)
val journal_count : t -> kind:Event.decision_kind -> accepted:bool -> int

(** {1 The ambient collector} *)

(** Install [t] as the process-global collector.  Replaces any
    previously installed one. *)
val install : t -> unit

(** Remove the ambient collector; all ambient calls become no-ops. *)
val uninstall : unit -> unit

val active : unit -> t option
val enabled : unit -> bool

(** {1 Ambient instrumentation API}

    All of these are no-ops (one branch) when no collector is
    installed. *)

(** [with_span name f] times [f] as a span nested under the innermost
    open span.  The span is recorded even if [f] raises. *)
val with_span : ?attrs:Event.attrs -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span. *)
val annotate : string -> Event.value -> unit

(** Bump a counter by an integer amount. *)
val count : string -> int -> unit

val countf : string -> float -> unit

(** Set a gauge. *)
val gauge : string -> float -> unit

(** Append one decision-journal entry. *)
val decision :
  kind:Event.decision_kind ->
  verdict:Event.verdict ->
  ?context:string ->
  ?site:int ->
  ?score:float ->
  ?pass:int ->
  string ->
  unit

(** {1 Direct (per-instance) API — used by tests and the sinks} *)

val with_span_in : t -> ?attrs:Event.attrs -> string -> (unit -> 'a) -> 'a
val count_in : t -> string -> float -> unit
val gauge_in : t -> string -> float -> unit

val decision_in :
  t ->
  kind:Event.decision_kind ->
  verdict:Event.verdict ->
  ?context:string ->
  ?site:int ->
  ?score:float ->
  ?pass:int ->
  string ->
  unit
