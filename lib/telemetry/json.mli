(** A minimal JSON value type with a printer and a parser.

    The telemetry sinks need to *emit* JSON (JSONL event streams and
    Chrome trace files) and the test suite needs to *parse* what was
    emitted back, so both directions live here.  This is deliberately
    not a general-purpose JSON library: numbers are [int] or [float],
    strings are assumed UTF-8, and the parser accepts exactly the
    subset the printer produces plus ordinary hand-written JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parse one JSON document.  [Error msg] carries the byte offset of
    the failure. *)
val of_string : string -> (t, string) result

(** [member key json] looks up [key] in an [Assoc]; [None] for missing
    keys and non-objects. *)
val member : string -> t -> t option

(** Numeric accessor accepting both [Int] and [Float]. *)
val to_number : t -> float option

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
