(** The telemetry time source: microseconds since the process's first
    observation, strictly increasing.

    The raw source is [Unix.gettimeofday] (wall clock).  Successive
    calls are clamped to be strictly increasing, so span timestamps
    are monotonic even if the system clock steps backwards — which is
    what the trace viewers and the nesting invariants require. *)

(** Current time in microseconds, strictly greater than any value
    returned before. *)
val now_us : unit -> float

(** Reset the epoch and the monotonic floor (tests only). *)
val reset : unit -> unit
