(** Telemetry event model.

    Three kinds of data flow through a collector:

    - {e spans}: named, timed, nestable intervals ("the inline stage of
      HLO pass 2 took 840us"), each with key/value attributes;
    - {e decisions}: one structured journal entry per inline / clone /
      outline / delete decision the optimizer takes — including the
      rejected candidates, with their reason and rank score;
    - {e counters} (kept aggregated in {!Counters}, not per-event).

    Spans are recorded on completion, so the event list is ordered by
    span {e end} time; nesting is recovered from the [sp_depth] field
    or from interval containment. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attrs = (string * value) list

type span = {
  sp_name : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_depth : int;  (** 0 = top level; children are parent depth + 1 *)
  sp_domain : int;  (** id of the domain that ran the span; 0 = main *)
  sp_attrs : attrs;
}

(** What kind of optimizer decision a journal entry records. *)
type decision_kind =
  | Inline          (** inline a callee body at one call site *)
  | Clone_create    (** materialize (or reject) a clone group *)
  | Clone_replace   (** retarget one call site to a clone *)
  | Outline         (** extract a cold region into a new routine *)
  | Delete          (** remove an unreachable routine *)

type verdict =
  | Accepted
  | Rejected of string  (** the reason, e.g. ["budget"], ["callee_varargs"] *)

type decision = {
  d_kind : decision_kind;
  d_verdict : verdict;
  d_subject : string;  (** the callee / clone / routine acted on *)
  d_context : string;  (** the caller or host routine; [""] if n/a *)
  d_site : int;        (** call-site id; [-1] if not site-specific *)
  d_score : float;     (** rank / benefit figure of merit; 0 if unranked *)
  d_pass : int;        (** HLO pass index; [-1] outside the pass loop *)
  d_time_us : float;
}

type t =
  | Span of span
  | Decision of decision

let kind_name = function
  | Inline -> "inline"
  | Clone_create -> "clone_create"
  | Clone_replace -> "clone_replace"
  | Outline -> "outline"
  | Delete -> "delete"

let verdict_name = function Accepted -> "accepted" | Rejected _ -> "rejected"

let value_to_json : value -> Json.t = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float x -> Json.Float x
  | Bool b -> Json.Bool b

let attrs_to_json (attrs : attrs) : Json.t =
  Json.Assoc (List.map (fun (k, v) -> (k, value_to_json v)) attrs)
