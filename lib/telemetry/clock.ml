(* Microsecond clock, strictly increasing.  Wall-clock readings that
   repeat (or step backwards) are bumped by 10ns, so every event gets a
   distinct, ordered timestamp. *)

let epoch = ref (Unix.gettimeofday ())
let floor_us = ref 0.0

let now_us () =
  let raw = (Unix.gettimeofday () -. !epoch) *. 1e6 in
  let v = if raw > !floor_us then raw else !floor_us +. 0.01 in
  floor_us := v;
  v

let reset () =
  epoch := Unix.gettimeofday ();
  floor_us := 0.0
