(* Microsecond clock, strictly increasing.  Wall-clock readings that
   repeat (or step backwards) are bumped by 10ns, so every event gets a
   distinct, ordered timestamp.  The floor is shared by all domains, so
   the bump runs under a lock — timestamps stay globally unique when
   spans close concurrently. *)

let lock = Mutex.create ()
let epoch = ref (Unix.gettimeofday ())
let floor_us = ref 0.0

let now_us () =
  let raw = (Unix.gettimeofday () -. !epoch) *. 1e6 in
  Mutex.lock lock;
  let v = if raw > !floor_us then raw else !floor_us +. 0.01 in
  floor_us := v;
  Mutex.unlock lock;
  v

let reset () =
  Mutex.lock lock;
  epoch := Unix.gettimeofday ();
  floor_us := 0.0;
  Mutex.unlock lock
