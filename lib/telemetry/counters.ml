type t = (string, float ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell (t : t) name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t name r;
    r

let add t name v =
  let r = cell t name in
  r := !r +. v

let incr t name = add t name 1.0
let set t name v = cell t name := v
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0.0
let is_empty t = Hashtbl.length t = 0

let to_sorted_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
