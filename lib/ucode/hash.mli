(** Content hashing of routine bodies for the summary cache.

    The hash covers what a routine computes — params, attributes,
    blocks, instructions, terminators — and excludes its identity:
    name, module, origin, linkage, and call-site ids.  Clones therefore
    hash like their originals, and hashes are stable across `hloc`
    runs even though site ids are assigned in program order.  Computed
    over the packed {!Flat} view in one body walk. *)

type t = string
(** An MD5 hex digest (32 lowercase hex characters). *)

val routine_body_hash : Types.routine -> t

(** Digest of arbitrary bytes in the same hex format — the
    source-content and export-environment hashes of the isom layer. *)
val string_hash : string -> t

val pp : Format.formatter -> t -> unit
