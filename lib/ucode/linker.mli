(** Linking separately produced modules into one program — the paper's
    *isom* path that makes cross-module optimization possible.

    Mangles module-local ([static]) names to [module$name], resolves
    every direct reference (same module first, then exports, then
    builtins), and renumbers call sites to be program-unique. *)

type module_ir = {
  m_name : string;
  m_routines : Types.routine list;
  m_globals : Types.global list;
}

exception Link_error of string

(** How the linker renamed each module's pieces, for consumers that
    must translate module-local identifiers into whole-program ones —
    notably the isom layer, which stores per-module profile fragments
    keyed by module-local call-site ids and rebases them through
    [lm_sites] when the modules are relinked. *)
type maps = {
  lm_routines : (string * string) list Types.String_map.t;
      (** module -> (source-level name, final linked name), in module
          order *)
  lm_sites : (Types.site * Types.site) list Types.String_map.t;
      (** module -> (module-local site id, program-unique site id) *)
}

(** [link ~main modules] produces a validated whole program.  [main]
    (default ["main"]) must be exported by some module.  Raises
    {!Link_error} on duplicate exports, duplicate in-module
    definitions, unresolved references or a missing entry point; every
    message names the offending module(s) and symbol. *)
val link : ?main:string -> module_ir list -> Types.program

(** [link] plus the renaming maps it applied. *)
val link_with_maps : ?main:string -> module_ir list -> Types.program * maps

(** [mangle m n] is the final name of module [m]'s static [n]. *)
val mangle : string -> string -> string
