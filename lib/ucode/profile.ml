(** The profile database (the paper's "PBO data").

    A training run records, for each routine, how many times each basic
    block executed, and for each call site, how many times it fired —
    and, for indirect sites, a histogram of the routines actually
    invoked.  HLO consults these to rank inline sites, to weigh the
    uses of cloned-in constants, and to penalize sites that sit on
    paths colder than their routine's entry.

    Counts are [float] because inlining and cloning *scale* copied
    counts by the fraction of the callee's executions attributable to
    the transformed sites; conservation of flow matters more than
    integrality. *)

open Types

type t = {
  blocks : float Int_map.t String_map.t;
      (** routine -> block label -> execution count *)
  sites : float Int_map.t;  (** call site -> execution count *)
  targets : (string * float) list Int_map.t;
      (** indirect call site -> (callee, count) histogram *)
}

let empty =
  { blocks = String_map.empty; sites = Int_map.empty; targets = Int_map.empty }

let is_empty t = String_map.is_empty t.blocks && Int_map.is_empty t.sites

let block_count t ~routine ~block =
  match String_map.find_opt routine t.blocks with
  | None -> 0.0
  | Some m -> Option.value ~default:0.0 (Int_map.find_opt block m)

let site_count t site = Option.value ~default:0.0 (Int_map.find_opt site t.sites)

let site_targets t site =
  Option.value ~default:[] (Int_map.find_opt site t.targets)

(** All recorded block counts of one routine, sorted by label; the
    shape the isom layer stores per-module profile fragments in. *)
let blocks_of_routine t routine =
  match String_map.find_opt routine t.blocks with
  | None -> []
  | Some m -> Int_map.bindings m

let entry_count t (r : routine) =
  block_count t ~routine:r.r_name ~block:(entry_block r).b_id

let add_block t ~routine ~block delta =
  let m = Option.value ~default:Int_map.empty (String_map.find_opt routine t.blocks) in
  let v = Option.value ~default:0.0 (Int_map.find_opt block m) +. delta in
  { t with blocks = String_map.add routine (Int_map.add block v m) t.blocks }

let add_site t site delta =
  let v = Option.value ~default:0.0 (Int_map.find_opt site t.sites) +. delta in
  { t with sites = Int_map.add site v t.sites }

let add_target t site callee delta =
  let hist = site_targets t site in
  let hist =
    if List.mem_assoc callee hist then
      List.map
        (fun (n, c) -> if n = callee then (n, c +. delta) else (n, c))
        hist
    else (callee, delta) :: hist
  in
  { t with targets = Int_map.add site hist t.targets }

(** Total dynamic calls of a routine = its entry-block count. *)
let routine_calls = entry_count

(* ------------------------------------------------------------------ *)
(* Transferring counts onto copied code.                               *)

(** [transfer_copy t ~from_routine ~into_routine ~block_map ~site_map
    ~factor] credits the copy (described by the renaming maps) with
    [factor] times the counts of the original.  Used when a body is
    inlined at a site that accounts for [factor] of the callee's
    executions, and when a clone captures that fraction of calls. *)
let transfer_copy t ~from_routine ~into_routine ~block_map ~site_map ~factor =
  let t =
    List.fold_left
      (fun t (old_block, new_block) ->
        let c = block_count t ~routine:from_routine ~block:old_block in
        if c = 0.0 then t
        else add_block t ~routine:into_routine ~block:new_block (c *. factor))
      t block_map
  in
  List.fold_left
    (fun t (old_site, new_site) ->
      let c = site_count t old_site in
      let t = if c = 0.0 then t else add_site t new_site (c *. factor) in
      match site_targets t old_site with
      | [] -> t
      | hist ->
        List.fold_left
          (fun t (callee, c) ->
            if c = 0.0 then t else add_target t new_site callee (c *. factor))
          t hist)
    t site_map

(** Scale every count attributed to [routine] (blocks and the sites its
    blocks contain) by [factor]; used on the residual original after a
    clone captured part of its traffic. *)
let scale_routine t (r : routine) factor =
  let blocks =
    String_map.update r.r_name
      (Option.map (Int_map.map (fun c -> c *. factor)))
      t.blocks
  in
  let site_ids =
    List.concat_map
      (fun b ->
        List.filter_map
          (function Call c -> Some c.c_site | _ -> None)
          b.b_instrs)
      r.r_blocks
  in
  let scale_site acc site =
    let acc =
      { acc with
        sites =
          Int_map.update site (Option.map (fun c -> c *. factor)) acc.sites }
    in
    { acc with
      targets =
        Int_map.update site
          (Option.map (List.map (fun (n, c) -> (n, c *. factor))))
          acc.targets }
  in
  List.fold_left scale_site { t with blocks } site_ids

(** Rename profile entries when a routine is duplicated wholesale under
    a new name (cloning): the clone receives [factor] of the original's
    counts and the original keeps the rest. *)
let split_for_clone t ~original ~clone_name ~site_map ~factor
    (original_routine : routine) =
  let block_map =
    List.map (fun b -> (b.b_id, b.b_id)) original_routine.r_blocks
  in
  let t =
    transfer_copy t ~from_routine:original ~into_routine:clone_name ~block_map
      ~site_map ~factor
  in
  scale_routine t original_routine (1.0 -. factor)

(* ------------------------------------------------------------------ *)
(* Rendering, for debugging and the profile-dump CLI option.           *)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  String_map.iter
    (fun routine m ->
      Fmt.pf ppf "%s:@," routine;
      Int_map.iter (fun b c -> Fmt.pf ppf "  block %d: %.0f@," b c) m)
    t.blocks;
  Int_map.iter (fun s c -> Fmt.pf ppf "site %d: %.0f@," s c) t.sites;
  Fmt.pf ppf "@]"
