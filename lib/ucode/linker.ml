(** Linking separately produced modules into one program.

    This models the paper's *isom* path: front ends emit unoptimized
    intermediate code per module; at link time the whole collection is
    handed to HLO at once, which is what makes cross-module inlining
    and cloning possible.

    The linker (1) mangles module-local ([static]) routine and global
    names to [module$name] so they cannot collide, (2) resolves every
    direct reference — a name resolves to the same module's definition
    first, then to an exported definition of any module, then to a
    builtin — and (3) renumbers call sites so they are unique across
    the program. *)

open Types

type module_ir = {
  m_name : string;
  m_routines : routine list;
  m_globals : global list;
}

exception Link_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let mangle module_name name = module_name ^ "$" ^ name

type maps = {
  lm_routines : (string * string) list String_map.t;
  lm_sites : (site * site) list String_map.t;
}

(** [link_with_maps ~main modules] produces a whole program plus the
    renaming maps applied.  [main] is the source-level name of the
    entry routine, which must be exported. *)
let link_with_maps ?(main = "main") (modules : module_ir list) :
    program * maps =
  (* Detect duplicate module names early. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem seen m.m_name then fail "duplicate module name %s" m.m_name;
      Hashtbl.replace seen m.m_name ())
    modules;
  (* Pass 1: global rename maps.  [exported_*] map a source name to its
     final name (remembering the exporting module for error messages);
     [local_*] are per-module. *)
  let exported_routines = Hashtbl.create 64 in (* name -> (final, module) *)
  let exported_globals = Hashtbl.create 64 in
  let local_routines = Hashtbl.create 64 in (* (module, name) -> final *)
  let local_globals = Hashtbl.create 64 in
  List.iter
    (fun m ->
      List.iter
        (fun (r : routine) ->
          (* In-module duplicates first, so two exported copies inside
             one module read "defined twice", not "exported by both
             module m and module m". *)
          if Hashtbl.mem local_routines (m.m_name, r.r_name) then
            fail "routine %s defined twice in module %s" r.r_name m.m_name;
          let final =
            match r.r_linkage with
            | Exported ->
              (match Hashtbl.find_opt exported_routines r.r_name with
              | Some (_, first) ->
                fail "routine %s exported by both module %s and module %s"
                  r.r_name first m.m_name
              | None -> ());
              Hashtbl.replace exported_routines r.r_name (r.r_name, m.m_name);
              r.r_name
            | Module_local -> mangle m.m_name r.r_name
          in
          Hashtbl.replace local_routines (m.m_name, r.r_name) final)
        m.m_routines;
      List.iter
        (fun (g : global) ->
          if Hashtbl.mem local_globals (m.m_name, g.g_name) then
            fail "global %s defined twice in module %s" g.g_name m.m_name;
          let final =
            match g.g_linkage with
            | Exported ->
              (match Hashtbl.find_opt exported_globals g.g_name with
              | Some (_, first) ->
                fail "global %s exported by both module %s and module %s"
                  g.g_name first m.m_name
              | None -> ());
              Hashtbl.replace exported_globals g.g_name (g.g_name, m.m_name);
              g.g_name
            | Module_local -> mangle m.m_name g.g_name
          in
          Hashtbl.replace local_globals (m.m_name, g.g_name) final)
        m.m_globals)
    modules;
  (* Pass 2: rewrite bodies, recording the (local site -> final site)
     pairs per module as sites are renumbered. *)
  let next_site = ref 0 in
  let site_pairs = ref [] in (* current module's pairs, newest first *)
  let fresh_site local =
    let s = !next_site in
    incr next_site;
    site_pairs := (local, s) :: !site_pairs;
    s
  in
  let resolve_routine m name =
    match Hashtbl.find_opt local_routines (m, name) with
    | Some final -> final
    | None -> (
      match Hashtbl.find_opt exported_routines name with
      | Some (final, _) -> final
      | None ->
        if is_builtin name then name
        else fail "module %s: reference to undefined routine %s" m name)
  in
  let resolve_global m name =
    match Hashtbl.find_opt local_globals (m, name) with
    | Some final -> final
    | None -> (
      match Hashtbl.find_opt exported_globals name with
      | Some (final, _) -> final
      | None -> fail "module %s: reference to undefined global %s" m name)
  in
  let rewrite_instr m = function
    | Call c ->
      let c_callee =
        match c.c_callee with
        | Direct n -> Direct (resolve_routine m n)
        | Indirect r -> Indirect r
      in
      Call { c with c_callee; c_site = fresh_site c.c_site }
    | Faddr (d, n) -> Faddr (d, resolve_routine m n)
    | Gaddr (d, n) -> Gaddr (d, resolve_global m n)
    | other -> other
  in
  let rewrite_routine m (r : routine) =
    let blocks =
      List.map
        (fun b -> { b with b_instrs = List.map (rewrite_instr m) b.b_instrs })
        r.r_blocks
    in
    { r with r_name = Hashtbl.find local_routines (m, r.r_name);
             r_blocks = blocks }
  in
  let routine_maps = ref String_map.empty in
  let site_maps = ref String_map.empty in
  let routines =
    List.concat_map
      (fun m ->
        site_pairs := [];
        let rs = List.map (rewrite_routine m.m_name) m.m_routines in
        routine_maps :=
          String_map.add m.m_name
            (List.map
               (fun (r : routine) ->
                 (r.r_name, Hashtbl.find local_routines (m.m_name, r.r_name)))
               m.m_routines)
            !routine_maps;
        site_maps := String_map.add m.m_name (List.rev !site_pairs) !site_maps;
        rs)
      modules
  in
  let globals =
    List.concat_map
      (fun m ->
        List.map
          (fun (g : global) ->
            { g with g_name = Hashtbl.find local_globals (m.m_name, g.g_name) })
          m.m_globals)
      modules
  in
  let main_final =
    match Hashtbl.find_opt exported_routines main with
    | Some (f, _) -> f
    | None -> fail "no exported routine named %s" main
  in
  let program =
    { p_routines = routines; p_globals = globals; p_main = main_final;
      p_next_site = !next_site }
  in
  (match Validate.check_program program with
  | [] -> ()
  | errors -> fail "linked program is malformed:\n%s"
                (Validate.errors_to_string errors));
  (program, { lm_routines = !routine_maps; lm_sites = !site_maps })

let link ?main modules = fst (link_with_maps ?main modules)
