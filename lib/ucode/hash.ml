(** Content hashing of routine bodies.

    The summary cache (lib/hlo/summary_cache.ml) memoizes per-routine
    analyses — size, loop structure — under a key that identifies the
    routine by *what it computes*, not what it is called.  Two bodies
    that differ only in their name, home module, origin or call-site
    ids hash identically, so a clone shares its original's cache entry
    and a routine keeps its entry across `hloc` runs even though site
    ids are assigned in program order.

    The serialization is a flat byte stream with one tag byte per
    constructor and explicit lengths for every list, so distinct bodies
    cannot collide by concatenation ambiguity. *)

open Types

let add_int buf n =
  Buffer.add_char buf 'i';
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_int64 buf n =
  Buffer.add_char buf 'I';
  Buffer.add_string buf (Int64.to_string n);
  Buffer.add_char buf ';'

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_list buf add xs =
  add_int buf (List.length xs);
  List.iter (add buf) xs

let binop_tag = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9
  | Eq -> 10 | Ne -> 11 | Lt -> 12 | Le -> 13 | Gt -> 14 | Ge -> 15

let unop_tag = function Neg -> 0 | Not -> 1

let add_instr buf = function
  | Const (d, k) -> Buffer.add_char buf 'C'; add_int buf d; add_int64 buf k
  | Faddr (d, n) -> Buffer.add_char buf 'F'; add_int buf d; add_string buf n
  | Gaddr (d, n) -> Buffer.add_char buf 'G'; add_int buf d; add_string buf n
  | Unop (d, op, a) ->
    Buffer.add_char buf 'U'; add_int buf d; add_int buf (unop_tag op);
    add_int buf a
  | Binop (d, op, a, b) ->
    Buffer.add_char buf 'B'; add_int buf d; add_int buf (binop_tag op);
    add_int buf a; add_int buf b
  | Move (d, a) -> Buffer.add_char buf 'M'; add_int buf d; add_int buf a
  | Load (d, a) -> Buffer.add_char buf 'L'; add_int buf d; add_int buf a
  | Store (a, v) -> Buffer.add_char buf 'S'; add_int buf a; add_int buf v
  | Call { c_dst; c_callee; c_args; c_site = _ } ->
    (* c_site deliberately omitted: site ids are program-unique serial
       numbers, so including them would make every copy of a body —
       every clone, every relink — a cache miss. *)
    Buffer.add_char buf 'K';
    (match c_dst with
    | None -> Buffer.add_char buf '0'
    | Some d -> Buffer.add_char buf '1'; add_int buf d);
    (match c_callee with
    | Direct n -> Buffer.add_char buf 'd'; add_string buf n
    | Indirect r -> Buffer.add_char buf 'x'; add_int buf r);
    add_list buf add_int c_args

let add_term buf = function
  | Jump l -> Buffer.add_char buf 'j'; add_int buf l
  | Branch (r, l1, l2) ->
    Buffer.add_char buf 'b'; add_int buf r; add_int buf l1; add_int buf l2
  | Return None -> Buffer.add_char buf 'r'
  | Return (Some r) -> Buffer.add_char buf 'R'; add_int buf r

let add_block buf (b : block) =
  add_int buf b.b_id;
  add_list buf add_instr b.b_instrs;
  add_term buf b.b_term

let add_attrs buf (a : attrs) =
  Buffer.add_char buf (if a.a_varargs then 'v' else '-');
  Buffer.add_char buf (if a.a_alloca then 'a' else '-');
  Buffer.add_char buf (match a.a_fp_model with Strict -> 's' | Relaxed -> 'r');
  Buffer.add_char buf (if a.a_no_inline then 'n' else '-');
  Buffer.add_char buf (if a.a_no_clone then 'c' else '-')

(** Serialize everything about [r] except its identity: name, module,
    origin, linkage and call-site ids are excluded; params, attributes,
    blocks, instructions and terminators are included. *)
let routine_body_bytes (r : routine) : string =
  let buf = Buffer.create 256 in
  add_list buf add_int r.r_params;
  add_attrs buf r.r_attrs;
  add_list buf add_block r.r_blocks;
  Buffer.contents buf

type t = string
(** Hex digest. *)

let routine_body_hash (r : routine) : t =
  Digest.to_hex (Digest.string (routine_body_bytes r))

(** Digest of arbitrary bytes in the same hex format as routine
    hashes; used for source-content and export-environment hashes in
    the isom layer. *)
let string_hash (s : string) : t = Digest.to_hex (Digest.string s)

let pp = Fmt.string
