(** Content hashing of routine bodies.

    The summary cache (lib/hlo/summary_cache.ml) memoizes per-routine
    analyses — size, loop structure — under a key that identifies the
    routine by *what it computes*, not what it is called.  Two bodies
    that differ only in their name, home module, origin or call-site
    ids hash identically, so a clone shares its original's cache entry
    and a routine keeps its entry across `hloc` runs even though site
    ids are assigned in program order.

    The digest is computed over the packed flat view ({!Flat}): one
    walk flattens the body into int arrays, and the hash is an MD5 of
    their fixed-width binary serialization — no per-constructor
    buffer-and-string traffic.  Call-site ids are deliberately
    excluded: they are program-unique serial numbers, so including
    them would make every copy of a body — every clone, every relink —
    a cache miss. *)

open Types

type t = string
(** Hex digest. *)

let routine_body_hash (r : routine) : t = Flat.routine_hash r

(** Digest of arbitrary bytes in the same hex format as routine
    hashes; used for source-content and export-environment hashes in
    the isom layer. *)
let string_hash (s : string) : t = Digest.to_hex (Digest.string s)

let pp = Fmt.string
