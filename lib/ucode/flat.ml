(** A packed, int-indexed, read-only view of a routine body.

    The block-list IR ({!Types.routine}) is pleasant to transform but
    expensive to *query*: every size, hash or loop-structure question
    walks a pointer-chasing list-of-lists, allocating as it goes, and
    the GC pays for it on every domain of a parallel compile.  This
    module flattens one routine version into a handful of immutable
    int arrays — one row per instruction, side pools for call
    arguments, constants and interned names — built in a single walk.
    The hot consumers ({!Size}-style instruction counts, the
    identity-excluding body digest behind the summary cache, the CFG
    cycle analysis feeding the loop heuristics) then run over dense
    arrays with no further allocation, and the arrays are plain
    immutable data that domains can share without copying.

    The digest has the same identity-excluding contract as
    {!Hash.routine_body_hash} (and is what that function now computes):
    the routine's own name, module, origin, linkage and call-site ids
    are excluded; params, attributes, block structure, instructions
    (including callee and global names) and terminators are
    included.  Two bodies that differ only in identity hash alike; any
    body edit changes the hash. *)

open Types

(* Opcode tags, one per instruction row. *)
let op_const = 0   (* o1 = dst, o2 = consts index *)
let op_faddr = 1   (* o1 = dst, o2 = names index *)
let op_gaddr = 2   (* o1 = dst, o2 = names index *)
let op_unop = 3    (* o1 = dst, o2 = unop tag, o3 = src *)
let op_binop = 4   (* o1 = dst, o2 = binop tag, o3 = a, o4 = b *)
let op_move = 5    (* o1 = dst, o2 = src *)
let op_load = 6    (* o1 = dst, o2 = addr *)
let op_store = 7   (* o1 = addr, o2 = value *)
let op_call_direct = 8    (* o1 = dst or -1, o2 = names ix, o3 = args start, o4 = nargs *)
let op_call_indirect = 9  (* o1 = dst or -1, o2 = handle reg, o3 = args start, o4 = nargs *)

(* Terminator tags, one per block. *)
let term_jump = 0     (* a = target *)
let term_branch = 1   (* a = reg, b = then, c = else *)
let term_ret_none = 2
let term_ret_some = 3 (* a = reg *)

let binop_tag = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9
  | Eq -> 10 | Ne -> 11 | Lt -> 12 | Le -> 13 | Gt -> 14 | Ge -> 15

let unop_tag = function Neg -> 0 | Not -> 1

type t = {
  params : int array;
  attr_bits : int;          (** varargs/alloca/fp/no_inline/no_clone packed *)
  block_id : int array;     (** label of block [b] *)
  block_start : int array;  (** first instruction row of block [b] *)
  block_len : int array;    (** instruction rows of block [b] *)
  term_kind : int array;
  term_a : int array;
  term_b : int array;
  term_c : int array;
  opcode : int array;
  o1 : int array;
  o2 : int array;
  o3 : int array;
  o4 : int array;
  args : int array;         (** pooled call-argument registers *)
  consts : int64 array;     (** pooled [Const] payloads *)
  names : string array;     (** interned names, first-occurrence order *)
  call_sites : int array;   (** site id per call row, in row order *)
  n_instrs : int;           (** rows + one per terminator: the Size model *)
  hash : string;            (** identity-excluding digest (hex) *)
}

let n_blocks t = Array.length t.block_id
let n_instrs t = t.n_instrs
let body_hash t = t.hash

let attr_bits (a : attrs) =
  (if a.a_varargs then 1 else 0)
  lor (if a.a_alloca then 2 else 0)
  lor (match a.a_fp_model with Strict -> 0 | Relaxed -> 4)
  lor (if a.a_no_inline then 8 else 0)
  lor (if a.a_no_clone then 16 else 0)

(* ------------------------------------------------------------------ *)
(* Building.                                                           *)

let build (r : routine) : t =
  let nb = List.length r.r_blocks in
  let rows =
    List.fold_left (fun acc b -> acc + List.length b.b_instrs) 0 r.r_blocks
  in
  let block_id = Array.make nb 0 in
  let block_start = Array.make nb 0 in
  let block_len = Array.make nb 0 in
  let term_kind = Array.make nb 0 in
  let term_a = Array.make nb (-1) in
  let term_b = Array.make nb (-1) in
  let term_c = Array.make nb (-1) in
  let opcode = Array.make rows 0 in
  let o1 = Array.make rows (-1) in
  let o2 = Array.make rows (-1) in
  let o3 = Array.make rows (-1) in
  let o4 = Array.make rows (-1) in
  (* Pools grow append-only; sized generously enough to avoid most
     resizes without a pre-scan. *)
  let args = ref (Array.make (max 4 rows) 0) in
  let n_args = ref 0 in
  let consts = ref (Array.make (max 4 (rows / 2)) 0L) in
  let n_consts = ref 0 in
  let names = ref [] in            (* reversed intern list *)
  let n_names = ref 0 in
  let name_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let sites = ref [] in            (* reversed call-site list *)
  let n_sites = ref 0 in
  let intern s =
    match Hashtbl.find_opt name_ids s with
    | Some i -> i
    | None ->
      let i = !n_names in
      Hashtbl.add name_ids s i;
      names := s :: !names;
      incr n_names;
      i
  in
  let push_arg v =
    if !n_args >= Array.length !args then begin
      let bigger = Array.make (2 * Array.length !args) 0 in
      Array.blit !args 0 bigger 0 !n_args;
      args := bigger
    end;
    !args.(!n_args) <- v;
    incr n_args
  in
  let push_const k =
    if !n_consts >= Array.length !consts then begin
      let bigger = Array.make (2 * Array.length !consts) 0L in
      Array.blit !consts 0 bigger 0 !n_consts;
      consts := bigger
    end;
    !consts.(!n_consts) <- k;
    incr n_consts;
    !n_consts - 1
  in
  let row = ref 0 in
  List.iteri
    (fun bi (b : block) ->
      block_id.(bi) <- b.b_id;
      block_start.(bi) <- !row;
      List.iter
        (fun i ->
          let k = !row in
          (match i with
          | Const (d, c) ->
            opcode.(k) <- op_const;
            o1.(k) <- d;
            o2.(k) <- push_const c
          | Faddr (d, n) ->
            opcode.(k) <- op_faddr;
            o1.(k) <- d;
            o2.(k) <- intern n
          | Gaddr (d, n) ->
            opcode.(k) <- op_gaddr;
            o1.(k) <- d;
            o2.(k) <- intern n
          | Unop (d, op, a) ->
            opcode.(k) <- op_unop;
            o1.(k) <- d;
            o2.(k) <- unop_tag op;
            o3.(k) <- a
          | Binop (d, op, a, b') ->
            opcode.(k) <- op_binop;
            o1.(k) <- d;
            o2.(k) <- binop_tag op;
            o3.(k) <- a;
            o4.(k) <- b'
          | Move (d, s) ->
            opcode.(k) <- op_move;
            o1.(k) <- d;
            o2.(k) <- s
          | Load (d, a) ->
            opcode.(k) <- op_load;
            o1.(k) <- d;
            o2.(k) <- a
          | Store (a, v) ->
            opcode.(k) <- op_store;
            o1.(k) <- a;
            o2.(k) <- v
          | Call { c_dst; c_callee; c_args; c_site } ->
            let start = !n_args in
            List.iter push_arg c_args;
            o1.(k) <- (match c_dst with Some d -> d | None -> -1);
            o3.(k) <- start;
            o4.(k) <- !n_args - start;
            (match c_callee with
            | Direct n ->
              opcode.(k) <- op_call_direct;
              o2.(k) <- intern n
            | Indirect h ->
              opcode.(k) <- op_call_indirect;
              o2.(k) <- h);
            sites := c_site :: !sites;
            incr n_sites);
          incr row)
        b.b_instrs;
      block_len.(bi) <- !row - block_start.(bi);
      match b.b_term with
      | Jump l ->
        term_kind.(bi) <- term_jump;
        term_a.(bi) <- l
      | Branch (c, l1, l2) ->
        term_kind.(bi) <- term_branch;
        term_a.(bi) <- c;
        term_b.(bi) <- l1;
        term_c.(bi) <- l2
      | Return None -> term_kind.(bi) <- term_ret_none
      | Return (Some v) ->
        term_kind.(bi) <- term_ret_some;
        term_a.(bi) <- v)
    r.r_blocks;
  let args = Array.sub !args 0 !n_args in
  let consts = Array.sub !consts 0 !n_consts in
  let names = Array.of_list (List.rev !names) in
  let call_sites = Array.of_list (List.rev !sites) in
  let params = Array.of_list r.r_params in
  let attr_bits = attr_bits r.r_attrs in
  (* The digest: a fixed-width binary serialization of everything
     above except [call_sites].  Name *indices* appear in the rows and
     the interned table contents are appended, so equal bodies (equal
     first-occurrence interning) digest alike and any referenced-name
     change reaches the digest through the table. *)
  let buf = Buffer.create (64 + (rows * 24)) in
  let add_i n = Buffer.add_int64_le buf (Int64.of_int n) in
  add_i (Array.length params);
  Array.iter add_i params;
  add_i attr_bits;
  add_i nb;
  for bi = 0 to nb - 1 do
    add_i block_id.(bi);
    add_i block_len.(bi);
    add_i term_kind.(bi);
    add_i term_a.(bi);
    add_i term_b.(bi);
    add_i term_c.(bi)
  done;
  add_i rows;
  for k = 0 to rows - 1 do
    add_i opcode.(k);
    add_i o1.(k);
    add_i o2.(k);
    add_i o3.(k);
    add_i o4.(k)
  done;
  add_i (Array.length args);
  Array.iter add_i args;
  add_i (Array.length consts);
  Array.iter (Buffer.add_int64_le buf) consts;
  add_i (Array.length names);
  Array.iter
    (fun s ->
      add_i (String.length s);
      Buffer.add_string buf s)
    names;
  let hash = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  { params; attr_bits; block_id; block_start; block_len; term_kind; term_a;
    term_b; term_c; opcode; o1; o2; o3; o4; args; consts; names; call_sites;
    n_instrs = rows + nb; hash }

(* ------------------------------------------------------------------ *)
(* One view per routine version.                                       *)

(* Routines are immutable records and every transform builds a fresh
   one, so physical identity *is* the version: the memo makes repeated
   queries against an unchanged body (the inliner re-scoring a callee,
   the cache re-keying it per pass) reuse one build.  Keys are held
   weakly — an entry dies with its routine version — and the table is
   shared across domains behind a mutex; racing builders of the same
   version insert identical views, either wins. *)
module Memo = Ephemeron.K1.Make (struct
  type nonrec t = routine

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let memo : t Memo.t = Memo.create 1024
let memo_lock = Mutex.create ()

let of_routine (r : routine) : t =
  Mutex.lock memo_lock;
  let hit = Memo.find_opt memo r in
  Mutex.unlock memo_lock;
  match hit with
  | Some fl -> fl
  | None ->
    let fl = build r in
    Mutex.lock memo_lock;
    Memo.replace memo r fl;
    Mutex.unlock memo_lock;
    fl

(** Convenience: flatten and digest in one call. *)
let routine_hash (r : routine) : string = (of_routine r).hash

(* ------------------------------------------------------------------ *)
(* CFG queries over the flat arrays.                                   *)

(** Successor *block indices* of block [bi] (targets that name no
    block — impossible in validated IR — are skipped). *)
let successors_of (t : t) (idx_of_label : (int, int) Hashtbl.t) bi =
  let tgt l =
    match Hashtbl.find_opt idx_of_label l with Some i -> [ i ] | None -> []
  in
  match t.term_kind.(bi) with
  | k when k = term_jump -> tgt t.term_a.(bi)
  | k when k = term_branch -> tgt t.term_b.(bi) @ tgt t.term_c.(bi)
  | _ -> []

(** Labels of blocks on a CFG cycle (including self-loops): Tarjan
    over the flat terminator arrays, no intermediate maps. *)
let cycles (t : t) : Int_set.t =
  let nb = n_blocks t in
  let idx_of_label = Hashtbl.create (2 * nb) in
  Array.iteri (fun i l -> Hashtbl.replace idx_of_label l i) t.block_id;
  let index = Array.make nb (-1) in
  let lowlink = Array.make nb 0 in
  let on_stack = Array.make nb false in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref Int_set.empty in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (successors_of t idx_of_label v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      let cyclic =
        match comp with
        | [ single ] ->
          List.mem single (successors_of t idx_of_label single)
        | _ -> true
      in
      if cyclic then
        result :=
          List.fold_left
            (fun s i -> Int_set.add t.block_id.(i) s)
            !result comp
    end
  in
  for v = 0 to nb - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !result
