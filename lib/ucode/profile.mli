(** The profile database (the paper's PBO data): basic-block execution
    counts, call-site counts and indirect-call target histograms from a
    training run, kept coherent under inlining and cloning by scaled
    transfers.

    Counts are floats because transformations attribute *fractions* of
    a routine's executions to copies; conservation of flow is the
    invariant the property tests check. *)

type t = {
  blocks : float Types.Int_map.t Types.String_map.t;
      (** routine -> block label -> execution count *)
  sites : float Types.Int_map.t;  (** call site -> execution count *)
  targets : (string * float) list Types.Int_map.t;
      (** indirect call site -> (callee, count) histogram *)
}

val empty : t
val is_empty : t -> bool

val block_count : t -> routine:string -> block:Types.label -> float
val site_count : t -> Types.site -> float
val site_targets : t -> Types.site -> (string * float) list

(** All recorded block counts of one routine, sorted by label. *)
val blocks_of_routine : t -> string -> (Types.label * float) list

(** Count of the routine's entry block = its dynamic invocations. *)
val entry_count : t -> Types.routine -> float

val routine_calls : t -> Types.routine -> float

val add_block : t -> routine:string -> block:Types.label -> float -> t
val add_site : t -> Types.site -> float -> t
val add_target : t -> Types.site -> string -> float -> t

(** Credit a copy (described by the renaming maps of {!Rename}) with
    [factor] times the original's counts. *)
val transfer_copy :
  t ->
  from_routine:string ->
  into_routine:string ->
  block_map:(Types.label * Types.label) list ->
  site_map:(Types.site * Types.site) list ->
  factor:float ->
  t

(** Scale every count attributed to the routine (blocks and the sites
    its blocks contain) by [factor]. *)
val scale_routine : t -> Types.routine -> float -> t

(** Give a whole-routine clone [factor] of the original's counts and
    leave the original with the remainder. *)
val split_for_clone :
  t ->
  original:string ->
  clone_name:string ->
  site_map:(Types.site * Types.site) list ->
  factor:float ->
  Types.routine ->
  t

val pp : Format.formatter -> t -> unit
