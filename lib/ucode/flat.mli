(** A packed, int-indexed, read-only view of one routine body, built in
    a single walk over the block list.  Serves the hot body queries —
    instruction count, the identity-excluding digest, CFG cycles —
    over dense immutable arrays instead of re-walking the
    pointer-chasing IR, and shares freely across domains. *)

type t = {
  params : int array;
  attr_bits : int;
  block_id : int array;
  block_start : int array;
  block_len : int array;
  term_kind : int array;
  term_a : int array;
  term_b : int array;
  term_c : int array;
  opcode : int array;
  o1 : int array;
  o2 : int array;
  o3 : int array;
  o4 : int array;
  args : int array;
  consts : int64 array;
  names : string array;
  call_sites : int array;
  n_instrs : int;
  hash : string;
}

(** Opcode tags for the [opcode] column. *)
val op_const : int
val op_faddr : int
val op_gaddr : int
val op_unop : int
val op_binop : int
val op_move : int
val op_load : int
val op_store : int
val op_call_direct : int
val op_call_indirect : int

(** Terminator tags for the [term_kind] column. *)
val term_jump : int
val term_branch : int
val term_ret_none : int
val term_ret_some : int

(** The flat view of one routine version: built in one walk, then
    memoized on the version's physical identity (routine records are
    immutable; every transform builds a fresh one), so repeated
    queries against an unchanged body reuse the same arrays.  Entries
    are ephemeron-weak — they die with their routine. *)
val of_routine : Types.routine -> t

val n_blocks : t -> int

(** Instructions + one per terminator — the {!Size.routine_size}
    model. *)
val n_instrs : t -> int

(** The identity-excluding digest (hex).  Excludes the routine's own
    name, module, origin, linkage and call-site ids; includes params,
    attributes, blocks, instructions (with callee/global names) and
    terminators — the {!Hash.routine_body_hash} contract. *)
val body_hash : t -> string

(** [of_routine] + [body_hash] in one call. *)
val routine_hash : Types.routine -> string

(** Labels of blocks on a CFG cycle (including self-loops); array
    Tarjan over the flat terminators. *)
val cycles : t -> Types.Int_set.t
