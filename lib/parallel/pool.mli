(** A fixed-size pool of OCaml 5 domains with a *deterministic*
    parallel map: results land by input index, the first failing item
    (by index) is the one re-raised, and scheduling order is a
    performance hint only.  With one job, or when called from inside a
    pool worker, the map runs inline — nested maps cannot deadlock and
    the sequential path is exactly [Array.map]. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains (the caller of a
    map participates).  [jobs <= 1] spawns nothing. *)
val create : jobs:int -> t

val jobs : t -> int

(** Order-preserving parallel map.  [priority.(i)] (lower runs
    earlier) biases scheduling — e.g. bottom-up over call-graph SCCs —
    without affecting results. *)
val map_array_in : t -> ?priority:int array -> ('a -> 'b) -> 'a array -> 'b array

val map_list_in : t -> ?priority:int array -> ('a -> 'b) -> 'a list -> 'b list

(** Stop the workers and join them.  Idempotent. *)
val shutdown : t -> unit

(** True inside a pool worker (where maps run inline). *)
val in_worker : unit -> bool

(** {1 The ambient pool}

    The front end and the scalar optimizer use a process-wide pool so
    compilation entry points need no pool argument.  Its degree
    defaults to the [HLO_JOBS] environment variable (else 1) and is
    overridden by [set_jobs] (e.g. from [hloc --jobs]). *)

(** Set the ambient parallelism degree.  Tears down a live pool of a
    different size; the next map builds a fresh one lazily. *)
val set_jobs : int -> unit

val get_jobs : unit -> int

(** The ambient pool, created on first use. *)
val the : unit -> t

(** [map_array f xs] on the ambient pool (inline when jobs = 1). *)
val map_array : ?priority:int array -> ('a -> 'b) -> 'a array -> 'b array

val map_list : ?priority:int array -> ('a -> 'b) -> 'a list -> 'b list
