(** A warm pool of OCaml 5 domains with a *deterministic* parallel map
    built on per-executor work-stealing deques: results land by input
    index, the first failing item (by index) is the one re-raised, and
    scheduling order is a performance hint only.  Items are grouped
    into chunks of ~[n / (4 * jobs)] so a task amortizes its
    scheduling cost; an executor whose deque runs dry steals chunks
    from the others (claims are a single [Atomic.fetch_and_add] — no
    lock on the fast path).  With one job, or when called from inside
    a pool worker, the map runs inline — nested maps cannot deadlock
    and the sequential path is exactly [Array.map]. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains (the caller of a
    map participates).  [jobs <= 1] spawns nothing. *)
val create : jobs:int -> t

val jobs : t -> int

(** Lifetime count of domains this pool has spawned.  Consecutive maps
    at an unchanged degree must not move it — the resize-reuse tests
    pin that down. *)
val spawned : t -> int

(** Resize the pool in place: spawns or joins only the delta workers,
    keeps the rest warm.  No-op at the current degree. *)
val resize : t -> int -> unit

(** Order-preserving parallel map.  [priority.(i)] (lower runs
    earlier) biases scheduling — e.g. bottom-up over call-graph SCCs —
    without affecting results.  [chunk_size] overrides the automatic
    ~[n / (4 * jobs)] chunking (tests sweep it; results are identical
    for any value). *)
val map_array_in :
  t -> ?priority:int array -> ?chunk_size:int -> ('a -> 'b) -> 'a array ->
  'b array

val map_list_in :
  t -> ?priority:int array -> ?chunk_size:int -> ('a -> 'b) -> 'a list ->
  'b list

(** Stop the workers and join them.  Idempotent. *)
val shutdown : t -> unit

(** True inside a pool worker (where maps run inline). *)
val in_worker : unit -> bool

(** {1 The ambient pool}

    The front end and the scalar optimizer use a process-wide pool so
    compilation entry points need no pool argument.  Its degree
    defaults to the [HLO_JOBS] environment variable (else 1) and is
    overridden by [set_jobs] (e.g. from [hloc --jobs]). *)

(** Set the ambient parallelism degree.  Resizes a live pool in place
    (the warm workers survive); a pool not yet created stays lazy. *)
val set_jobs : int -> unit

val get_jobs : unit -> int

(** The ambient pool, created on first use. *)
val the : unit -> t

(** [map_array f xs] on the ambient pool (inline when jobs = 1). *)
val map_array :
  ?priority:int array -> ?chunk_size:int -> ('a -> 'b) -> 'a array -> 'b array

val map_list :
  ?priority:int array -> ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list
