(** A warm pool of OCaml 5 domains with a deterministic parallel map
    built on per-executor work-stealing deques.

    The contract that makes the pool safe to use inside a compiler is
    *determinism*: [map_array pool f xs] returns exactly what
    [Array.map f xs] returns — every result lands in the slot of its
    input, whatever order the items were executed in, and the first
    failing item (by index, not by completion time) is the one whose
    exception is re-raised.  Scheduling order (the [priority] argument,
    used by the optimizer to walk call-graph SCCs bottom-up) affects
    wall-clock behavior only, never results.

    Execution model, built for millisecond compiles where the fixed
    costs dominate:

    - Items are grouped into *chunks* of ~[n / (4 * jobs)] items so a
      task is worth its scheduling overhead; a chunk is the unit of
      claiming and stealing.
    - Chunks are dealt round-robin into one deque per executor (the
      caller is executor 0 and participates fully).  Claiming from the
      own deque is a single [Atomic.fetch_and_add] — no lock, no
      syscall.  An executor whose deque runs dry *steals* from the
      other deques, so a straggling chunk never idles the rest of the
      pool.
    - The pool is *warm*: one pool per process, kept alive across
      maps.  [set_jobs] resizes it in place (spawning or joining only
      the delta) instead of tearing it down, so consecutive maps at
      the same degree spawn no domains at all.  Workers sleep on a
      condition variable between maps.

    A pool with [jobs = 1] spawns no domains and runs everything
    inline, so the sequential path is byte-for-byte the code that ran
    before the pool existed.  Calls from inside a worker run inline
    too, which makes nested maps (a batched compile whose per-workload
    compiles themselves shard their routines) deadlock-free. *)

(* Set in each worker so re-entrant maps degrade to sequential
   execution instead of deadlocking the pool. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* One parallel map in flight.  [deques.(e)] holds the chunk ids dealt
   to executor [e] in scheduling order; [heads.(e)] is the next
   unclaimed position.  Claims are [fetch_and_add] tickets: a ticket
   past the end of the deque means "drained", and over-claimed tickets
   are simply discarded, so no claim needs a lock.  [remaining] counts
   chunks not yet *finished* (claimed is not enough — the caller must
   not return while a stolen chunk is still running). *)
type batch = {
  deques : int array array;
  heads : int Atomic.t array;
  run_chunk : int -> unit;
  remaining : int Atomic.t;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;      (* a new batch was submitted / pool resized *)
  finished : Condition.t;  (* a batch completed *)
  mutable batch : batch option;
  mutable batch_id : int;
  mutable stop : bool;
  mutable jobs : int;
  mutable workers : (int * unit Domain.t) list;  (* executor index >= 1 *)
  mutable spawned : int;   (* lifetime Domain.spawn count, for tests *)
}

(* ------------------------------------------------------------------ *)
(* Claiming and stealing.                                              *)

(* Try to claim and run one chunk from deque [q]; false if drained or
   the claim lost the race. *)
let claim (b : batch) q =
  let dq = b.deques.(q) in
  let h = Atomic.fetch_and_add b.heads.(q) 1 in
  if h < Array.length dq then begin
    b.run_chunk dq.(h);
    true
  end
  else false

(* Work through the batch as executor [me]: drain the own deque with
   the lock-free fast path, then sweep the other deques for work to
   steal, until every deque is drained. *)
let participate (b : batch) ~me =
  let nq = Array.length b.deques in
  let my = me mod nq in
  let steals = ref 0 in
  let rec sweep k =
    if k >= nq then false
    else
      let q = (my + k) mod nq in
      (* Peek before claiming so drained deques are not bumped on
         every sweep. *)
      if Atomic.get b.heads.(q) < Array.length b.deques.(q) && claim b q
      then begin
        incr steals;
        true
      end
      else sweep (k + 1)
  in
  let rec go () =
    if claim b my then go () else if sweep 1 then go () else ()
  in
  go ();
  if !steals > 0 && Telemetry.Collector.enabled () then
    Telemetry.Collector.count "pool.steal" !steals

(* ------------------------------------------------------------------ *)
(* Workers.                                                            *)

let worker (t : t) ~me () =
  Domain.DLS.set in_worker_key true;
  let last_id = ref (-1) in
  let idle_us = ref 0.0 in
  let rec loop () =
    Mutex.lock t.lock;
    let waited = ref false in
    let t0 =
      if Telemetry.Collector.enabled () then Telemetry.Clock.now_us ()
      else 0.0
    in
    while
      (not t.stop) && me < t.jobs
      && (t.batch = None || t.batch_id = !last_id)
    do
      waited := true;
      Condition.wait t.work t.lock
    done;
    if !waited && Telemetry.Collector.enabled () then begin
      idle_us := !idle_us +. (Telemetry.Clock.now_us () -. t0);
      Telemetry.Collector.gauge
        (Printf.sprintf "pool.idle_us.worker%d" me)
        !idle_us
    end;
    if t.stop || me >= t.jobs then Mutex.unlock t.lock
    else begin
      let b = Option.get t.batch in
      last_id := t.batch_id;
      Mutex.unlock t.lock;
      participate b ~me;
      loop ()
    end
  in
  loop ()

(* Callers hold [t.lock]. *)
let spawn_locked t ~me =
  t.spawned <- t.spawned + 1;
  t.workers <- (me, Domain.spawn (worker t ~me)) :: t.workers

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    { lock = Mutex.create (); work = Condition.create ();
      finished = Condition.create (); batch = None; batch_id = 0;
      stop = false; jobs; workers = []; spawned = 0 }
  in
  (* The caller participates in every map, so [jobs] total executors
     means [jobs - 1] spawned domains. *)
  Mutex.lock t.lock;
  for me = 1 to jobs - 1 do
    spawn_locked t ~me
  done;
  Mutex.unlock t.lock;
  t

let jobs t = t.jobs
let spawned t = t.spawned

(** Resize the pool in place: spawn or join only the delta.  A no-op
    at the current degree — consecutive maps at one level reuse the
    warm workers. *)
let resize t n =
  let n = max 1 n in
  Mutex.lock t.lock;
  if n = t.jobs then Mutex.unlock t.lock
  else begin
    t.jobs <- n;
    if n > List.length t.workers + 1 then begin
      let have = List.map fst t.workers in
      for me = 1 to n - 1 do
        if not (List.mem me have) then spawn_locked t ~me
      done;
      Mutex.unlock t.lock
    end
    else begin
      (* Shrinking: wake everyone; workers with an index past the new
         degree exit their loop and can be joined. *)
      Condition.broadcast t.work;
      let surplus, kept = List.partition (fun (me, _) -> me >= n) t.workers in
      t.workers <- kept;
      Mutex.unlock t.lock;
      List.iter (fun (_, d) -> Domain.join d) surplus
    end
  end

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter (fun (_, d) -> Domain.join d) ws

(* ------------------------------------------------------------------ *)
(* The deterministic map.                                              *)

let default_chunk_size ~jobs n = max 1 (n / (4 * jobs))

let map_array_in (t : t) ?priority ?chunk_size (f : 'a -> 'b) (xs : 'a array)
    : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.jobs <= 1 || n = 1 || in_worker () then Array.map f xs
  else begin
    let jobs = t.jobs in
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let has_error = Atomic.make false in
    (* Scheduling order; results still land by index. *)
    let order =
      match priority with
      | None -> Array.init n Fun.id
      | Some pr ->
        if Array.length pr <> n then
          invalid_arg "Pool.map_array: priority length mismatch";
        let idx = Array.init n Fun.id in
        Array.stable_sort (fun a b -> compare pr.(a) pr.(b)) idx;
        idx
    in
    let csize =
      match chunk_size with
      | Some c -> max 1 c
      | None -> default_chunk_size ~jobs n
    in
    let nchunks = (n + csize - 1) / csize in
    if Telemetry.Collector.enabled () then begin
      Telemetry.Collector.count "pool.maps" 1;
      Telemetry.Collector.count "pool.chunks" nchunks;
      Telemetry.Collector.gauge "pool.chunk_size" (float_of_int csize);
      Telemetry.Collector.gauge "pool.queue_depth" (float_of_int nchunks)
    end;
    let run_item i =
      match f xs.(i) with
      | y -> results.(i) <- Some y
      | exception e ->
        errors.(i) <- Some e;
        Atomic.set has_error true
    in
    let remaining = Atomic.make nchunks in
    let b_cell = ref None in
    let run_chunk c =
      let lo = c * csize in
      let hi = min n (lo + csize) in
      for k = lo to hi - 1 do
        run_item order.(k)
      done;
      (* The last finisher clears the batch slot and wakes the caller;
         the broadcast is taken under the pool lock so the caller
         cannot miss it between its check of [remaining] and its
         wait. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.lock;
        (match (t.batch, !b_cell) with
        | Some cur, Some mine when cur == mine -> t.batch <- None
        | _ -> ());
        Condition.broadcast t.finished;
        Mutex.unlock t.lock
      end
    in
    (* Deal chunks round-robin: executor [e] owns chunks e, e + jobs,
       e + 2*jobs, …  Low chunk ids — the head of the scheduling
       order — sit at the head of every deque. *)
    let deques =
      Array.init jobs (fun e ->
          Array.init
            ((nchunks - e + jobs - 1) / jobs)
            (fun k -> e + (k * jobs)))
    in
    let heads = Array.init jobs (fun _ -> Atomic.make 0) in
    let b = { deques; heads; run_chunk; remaining } in
    b_cell := Some b;
    Mutex.lock t.lock;
    t.batch <- Some b;
    t.batch_id <- t.batch_id + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* The caller is executor 0; it works alongside the workers... *)
    participate b ~me:0;
    (* ...then waits for stragglers still executing stolen chunks. *)
    Mutex.lock t.lock;
    while Atomic.get remaining > 0 do
      Condition.wait t.finished t.lock
    done;
    Mutex.unlock t.lock;
    if Atomic.get has_error then
      Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some y -> y | None -> assert false) results
  end

let map_list_in t ?priority ?chunk_size f xs =
  Array.to_list (map_array_in t ?priority ?chunk_size f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* The ambient pool.                                                   *)

(* Compilation entry points (the front end, the scalar optimizer) take
   no pool argument; they use the process-wide pool configured here.
   The default degree comes from the HLO_JOBS environment variable so
   an unmodified test binary or dune rule can be re-run parallel
   (`HLO_JOBS=4 dune runtest --force`) — the determinism suite holds
   the results to be identical either way. *)

let env_default_jobs () =
  match Sys.getenv_opt "HLO_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let requested_jobs = ref (env_default_jobs ())
let current : t option ref = ref None

let shutdown_current () =
  match !current with
  | Some p ->
    current := None;
    shutdown p
  | None -> ()

(* Worker domains still blocked between maps at process exit would die
   with the runtime mid-wait; drain them instead. *)
let () = at_exit shutdown_current

let get_jobs () = !requested_jobs

let set_jobs n =
  let n = max 1 n in
  requested_jobs := n;
  (* Resize the warm pool in place rather than tearing it down; the
     delta workers are spawned or joined, everyone else keeps
     sleeping. *)
  match !current with Some p -> resize p n | None -> ()

let the () =
  match !current with
  | Some p -> p
  | None ->
    let p = create ~jobs:!requested_jobs in
    current := Some p;
    p

let map_array ?priority ?chunk_size f xs =
  if !requested_jobs <= 1 then Array.map f xs
  else map_array_in (the ()) ?priority ?chunk_size f xs

let map_list ?priority ?chunk_size f xs =
  if !requested_jobs <= 1 then List.map f xs
  else map_list_in (the ()) ?priority ?chunk_size f xs
