(** A fixed-size pool of OCaml 5 domains with a deterministic parallel
    map.

    The contract that makes the pool safe to use inside a compiler is
    *determinism*: [map_array pool f xs] returns exactly what
    [Array.map f xs] returns — every result lands in the slot of its
    input, whatever order the items were executed in, and the first
    failing item (by index, not by completion time) is the one whose
    exception is re-raised.  Scheduling order (the [priority] argument,
    used by the optimizer to walk call-graph SCCs bottom-up) affects
    wall-clock behavior only, never results.

    A pool with [jobs = 1] spawns no domains and runs everything
    inline, so the sequential path is byte-for-byte the code that ran
    before the pool existed.  Calls from inside a worker run inline
    too, which makes nested maps (a batched compile whose per-workload
    compiles themselves shard their routines) deadlock-free. *)

type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Set in each worker so re-entrant maps degrade to sequential
   execution instead of deadlocking on the shared queue. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let worker (t : t) () =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stop) && Queue.is_empty t.queue do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      task ();
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    { jobs; queue = Queue.create (); lock = Mutex.create ();
      nonempty = Condition.create (); stop = false; workers = [] }
  in
  (* The caller participates in every map, so [jobs] total executors
     means [jobs - 1] spawned domains. *)
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let map_array_in (t : t) ?priority (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.jobs <= 1 || n = 1 || in_worker () then Array.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let remaining = Atomic.make n in
    let all_done = Condition.create () in
    let run_item i =
      (match f xs.(i) with
      | y -> results.(i) <- Some y
      | exception e -> errors.(i) <- Some e);
      (* The last finisher wakes the caller; the broadcast is taken
         under the pool lock so the caller cannot miss it between its
         check of [remaining] and its wait. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast all_done;
        Mutex.unlock t.lock
      end
    in
    (* Enqueue in scheduling order; results still land by index. *)
    let order =
      match priority with
      | None -> Array.init n Fun.id
      | Some pr ->
        if Array.length pr <> n then
          invalid_arg "Pool.map_array: priority length mismatch";
        let idx = Array.init n Fun.id in
        Array.stable_sort (fun a b -> compare pr.(a) pr.(b)) idx;
        idx
    in
    Mutex.lock t.lock;
    Array.iter (fun i -> Queue.push (fun () -> run_item i) t.queue) order;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    (* The caller works through the queue alongside the workers... *)
    let rec drain () =
      Mutex.lock t.lock;
      let task =
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
      in
      Mutex.unlock t.lock;
      match task with
      | Some task -> task (); drain ()
      | None -> ()
    in
    drain ();
    (* ...then waits for stragglers still executing in workers. *)
    Mutex.lock t.lock;
    while Atomic.get remaining > 0 do
      Condition.wait all_done t.lock
    done;
    Mutex.unlock t.lock;
    Array.iteri
      (fun i -> function Some e -> (ignore i; raise e) | None -> ())
      errors;
    Array.map (function Some y -> y | None -> assert false) results
  end

let map_list_in t ?priority f xs =
  Array.to_list (map_array_in t ?priority f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* The ambient pool.                                                   *)

(* Compilation entry points (the front end, the scalar optimizer) take
   no pool argument; they use the process-wide pool configured here.
   The default degree comes from the HLO_JOBS environment variable so
   an unmodified test binary or dune rule can be re-run parallel
   (`HLO_JOBS=4 dune runtest --force`) — the determinism suite holds
   the results to be identical either way. *)

let env_default_jobs () =
  match Sys.getenv_opt "HLO_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let requested_jobs = ref (env_default_jobs ())
let current : t option ref = ref None

let shutdown_current () =
  match !current with
  | Some p -> current := None; shutdown p
  | None -> ()

(* Worker domains still blocked on the queue at process exit would die
   with the runtime mid-wait; drain them instead. *)
let () = at_exit shutdown_current

let get_jobs () = !requested_jobs

let set_jobs n =
  let n = max 1 n in
  if n <> !requested_jobs then begin
    shutdown_current ();
    requested_jobs := n
  end

let the () =
  match !current with
  | Some p -> p
  | None ->
    let p = create ~jobs:!requested_jobs in
    current := Some p;
    p

let map_array ?priority f xs =
  if !requested_jobs <= 1 then Array.map f xs
  else map_array_in (the ()) ?priority f xs

let map_list ?priority f xs =
  if !requested_jobs <= 1 then List.map f xs
  else map_list_in (the ()) ?priority f xs
