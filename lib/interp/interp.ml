(** Definitional interpreter for ucode.

    Two jobs:
    - it defines the *semantics* of the IR, against which every
      transformation (optimizations, inlining, cloning, machine
      lowering) is differentially tested;
    - run with [~profile:true] it is the paper's *instrumented training
      run*: it fills a {!Ucode.Profile} database with basic-block
      execution counts, call-site counts and indirect-call target
      histograms.

    Memory is a flat array of 64-bit cells.  Cell 0 is reserved so
    that 0 can serve as a null address; globals are laid out from cell
    1, and [alloc] bumps a pointer past them.  Function values are
    dense positive handles assigned per run. *)

module U = Ucode.Types

type trap =
  | Division_by_zero
  | Out_of_bounds of int64
  | Bad_function_handle of int64
  | Call_to_external of string
  | Aborted
  | Out_of_fuel
  | Out_of_memory
  | Call_depth_exceeded
  | Indirect_arity_mismatch of string

exception Trap of trap * string  (* routine where it happened *)

let trap_message = function
  | Division_by_zero -> "division by zero"
  | Out_of_bounds a -> Printf.sprintf "memory access out of bounds (%Ld)" a
  | Bad_function_handle h -> Printf.sprintf "bad function handle %Ld" h
  | Call_to_external n -> Printf.sprintf "call to external routine %s" n
  | Aborted -> "abort() called"
  | Out_of_fuel -> "out of fuel (possible infinite loop)"
  | Out_of_memory -> "allocator exhausted memory"
  | Call_depth_exceeded -> "call depth exceeded (runaway recursion)"
  | Indirect_arity_mismatch n ->
    Printf.sprintf "indirect call to %s with the wrong argument count" n

type result = {
  exit_code : int64;
  output : string;
  steps : int;  (** IR instructions executed *)
  profile : Ucode.Profile.t;  (** empty unless [~profile:true] *)
  globals : (string * int64 array) list;  (** final values, program order *)
}

type config = {
  memory_cells : int;
  fuel : int;          (** max IR instructions to execute *)
  max_call_depth : int;
  profile : bool;
}

let default_config =
  { memory_cells = 1 lsl 20; fuel = 200_000_000; max_call_depth = 100_000;
    profile = false }

(* Per-run execution state. *)
type state = {
  program : U.program;
  memory : int64 array;
  mutable brk : int;  (** first cell not yet given out by [alloc] *)
  output : Buffer.t;
  mutable steps : int;
  mutable depth : int;
  cfg : config;
  (* Routine name -> (routine, label -> block). *)
  routines : (string, U.routine * (int, U.block) Hashtbl.t) Hashtbl.t;
  handle_of_name : (string, int64) Hashtbl.t;
  name_of_handle : (int64, string) Hashtbl.t;
  global_base : (string, int) Hashtbl.t;
  mutable prof : Ucode.Profile.t;
}

let make_state (p : U.program) (cfg : config) : state =
  let routines = Hashtbl.create 64 in
  let handle_of_name = Hashtbl.create 64 in
  let name_of_handle = Hashtbl.create 64 in
  List.iteri
    (fun i (r : U.routine) ->
      let blocks = Hashtbl.create 16 in
      List.iter (fun (b : U.block) -> Hashtbl.replace blocks b.U.b_id b) r.U.r_blocks;
      Hashtbl.replace routines r.U.r_name (r, blocks);
      let h = Int64.of_int (i + 1) in
      Hashtbl.replace handle_of_name r.U.r_name h;
      Hashtbl.replace name_of_handle h r.U.r_name)
    p.U.p_routines;
  let memory = Array.make cfg.memory_cells 0L in
  let global_base = Hashtbl.create 64 in
  let next = ref 1 (* cell 0 is the null page *) in
  List.iter
    (fun (g : U.global) ->
      Hashtbl.replace global_base g.U.g_name !next;
      List.iteri (fun i v -> memory.(!next + i) <- v) g.U.g_init;
      next := !next + g.U.g_size)
    p.U.p_globals;
  { program = p; memory; brk = !next; output = Buffer.create 256; steps = 0;
    depth = 0; cfg; routines; handle_of_name; name_of_handle; global_base;
    prof = Ucode.Profile.empty }

let check_addr st routine_name (a : int64) =
  if Int64.compare a 1L < 0
     || Int64.compare a (Int64.of_int (Array.length st.memory)) >= 0
  then raise (Trap (Out_of_bounds a, routine_name))

let truthy v = not (Int64.equal v 0L)
let of_bool b = if b then 1L else 0L

let eval_binop op a b routine_name =
  match op with
  | U.Add -> Int64.add a b
  | U.Sub -> Int64.sub a b
  | U.Mul -> Int64.mul a b
  | U.Div ->
    if Int64.equal b 0L then raise (Trap (Division_by_zero, routine_name));
    Int64.div a b
  | U.Rem ->
    if Int64.equal b 0L then raise (Trap (Division_by_zero, routine_name));
    Int64.rem a b
  | U.And -> Int64.logand a b
  | U.Or -> Int64.logor a b
  | U.Xor -> Int64.logxor a b
  | U.Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | U.Shr -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | U.Eq -> of_bool (Int64.equal a b)
  | U.Ne -> of_bool (not (Int64.equal a b))
  | U.Lt -> of_bool (Int64.compare a b < 0)
  | U.Le -> of_bool (Int64.compare a b <= 0)
  | U.Gt -> of_bool (Int64.compare a b > 0)
  | U.Ge -> of_bool (Int64.compare a b >= 0)

let eval_unop op a =
  match op with
  | U.Neg -> Int64.neg a
  | U.Not -> if Int64.equal a 0L then 1L else 0L

(** Execute a builtin; returns its result value. *)
let run_builtin st routine_name name (args : int64 list) : int64 =
  let arg i = match List.nth_opt args i with Some v -> v | None -> 0L in
  match name with
  | "print_int" ->
    Buffer.add_string st.output (Int64.to_string (arg 0));
    Buffer.add_char st.output '\n';
    0L
  | "print_char" ->
    Buffer.add_char st.output (Char.chr (Int64.to_int (Int64.logand (arg 0) 255L)));
    0L
  | "alloc" ->
    let n = Int64.to_int (arg 0) in
    if n < 0 || st.brk + n > Array.length st.memory then
      raise (Trap (Out_of_memory, routine_name));
    let a = st.brk in
    st.brk <- st.brk + n;
    Int64.of_int a
  | "abort" -> raise (Trap (Aborted, routine_name))
  | _ -> raise (Trap (Call_to_external name, routine_name))

let rec run_routine st (r : U.routine) (blocks : (int, U.block) Hashtbl.t)
    (args : int64 list) : int64 =
  st.depth <- st.depth + 1;
  if st.depth > st.cfg.max_call_depth then
    raise (Trap (Call_depth_exceeded, r.U.r_name));
  let regs = Array.make (max r.U.r_next_reg 1) 0L in
  (* Missing arguments read as 0, extra arguments are dropped — the
     dusty-deck C convention that makes arity-mismatched calls run. *)
  List.iteri
    (fun i p -> regs.(p) <- (match List.nth_opt args i with Some v -> v | None -> 0L))
    r.U.r_params;
  let note_block label =
    if st.cfg.profile then
      st.prof <- Ucode.Profile.add_block st.prof ~routine:r.U.r_name ~block:label 1.0
  in
  let rec exec_block (b : U.block) : int64 =
    note_block b.U.b_id;
    List.iter (exec_instr) b.U.b_instrs;
    st.steps <- st.steps + List.length b.U.b_instrs + 1;
    if st.steps > st.cfg.fuel then raise (Trap (Out_of_fuel, r.U.r_name));
    match b.U.b_term with
    | U.Jump l -> exec_block (Hashtbl.find blocks l)
    | U.Branch (c, l1, l2) ->
      exec_block (Hashtbl.find blocks (if truthy regs.(c) then l1 else l2))
    | U.Return (Some v) -> regs.(v)
    | U.Return None -> 0L
  and exec_instr (i : U.instr) : unit =
    match i with
    | U.Const (d, k) -> regs.(d) <- k
    | U.Faddr (d, n) -> (
      match Hashtbl.find_opt st.handle_of_name n with
      | Some h -> regs.(d) <- h
      | None -> raise (Trap (Call_to_external n, r.U.r_name)))
    | U.Gaddr (d, n) -> (
      match Hashtbl.find_opt st.global_base n with
      | Some base -> regs.(d) <- Int64.of_int base
      | None -> raise (Trap (Call_to_external n, r.U.r_name)))
    | U.Unop (d, op, a) -> regs.(d) <- eval_unop op regs.(a)
    | U.Binop (d, op, a, b_) ->
      regs.(d) <- eval_binop op regs.(a) regs.(b_) r.U.r_name
    | U.Move (d, a) -> regs.(d) <- regs.(a)
    | U.Load (d, a) ->
      check_addr st r.U.r_name regs.(a);
      regs.(d) <- st.memory.(Int64.to_int regs.(a))
    | U.Store (a, v) ->
      check_addr st r.U.r_name regs.(a);
      st.memory.(Int64.to_int regs.(a)) <- regs.(v)
    | U.Call { c_dst; c_callee; c_args; c_site } ->
      let argv = List.map (fun a -> regs.(a)) c_args in
      let callee_name =
        match c_callee with
        | U.Direct n -> n
        | U.Indirect h -> (
          match Hashtbl.find_opt st.name_of_handle regs.(h) with
          | Some n -> n
          | None -> raise (Trap (Bad_function_handle regs.(h), r.U.r_name)))
      in
      if st.cfg.profile then begin
        st.prof <- Ucode.Profile.add_site st.prof c_site 1.0;
        match c_callee with
        | U.Indirect _ ->
          st.prof <- Ucode.Profile.add_target st.prof c_site callee_name 1.0
        | U.Direct _ -> ()
      end;
      let result =
        match Hashtbl.find_opt st.routines callee_name with
        | Some (callee, callee_blocks) ->
          (* Direct calls follow the dusty-deck pad/drop convention;
             an *indirect* call must match the target's arity exactly
             (the machine cannot reconstruct missing arguments through
             a function pointer, and neither do we). *)
          (match c_callee with
          | U.Indirect _
            when List.length argv <> List.length callee.U.r_params ->
            raise (Trap (Indirect_arity_mismatch callee_name, r.U.r_name))
          | _ -> ());
          run_routine st callee callee_blocks argv
        | None -> run_builtin st r.U.r_name callee_name argv
      in
      (match c_dst with Some d -> regs.(d) <- result | None -> ())
  in
  let result = exec_block (Hashtbl.find blocks (U.entry_block r).U.b_id) in
  st.depth <- st.depth - 1;
  result

(* Final (or trap-time) values of every global, in program order. *)
let snapshot_globals st : (string * int64 array) list =
  List.map
    (fun (g : U.global) ->
      let base = Hashtbl.find st.global_base g.U.g_name in
      (g.U.g_name, Array.sub st.memory base g.U.g_size))
    st.program.U.p_globals

(* [span_name] distinguishes plain runs from training runs in traces. *)
let run_spanned span_name config (p : U.program) : result =
  Telemetry.Collector.with_span span_name @@ fun () ->
  let st = make_state p config in
  let main, main_blocks = Hashtbl.find st.routines p.U.p_main in
  let exit_code = run_routine st main main_blocks [] in
  if Telemetry.Collector.enabled () then begin
    Telemetry.Collector.annotate "steps" (Telemetry.Event.Int st.steps);
    Telemetry.Collector.annotate "profiled" (Telemetry.Event.Bool config.profile);
    Telemetry.Collector.count "interp.steps" st.steps
  end;
  { exit_code; output = Buffer.contents st.output; steps = st.steps;
    profile = st.prof; globals = snapshot_globals st }

(** Run a program from its [main] routine (called with no arguments). *)
let run ?(config = default_config) (p : U.program) : result =
  run_spanned "interp.run" config p

(** The instrumented training run: execute and return the profile
    database alongside the result. *)
let train ?(config = default_config) (p : U.program) : result =
  run_spanned "interp.train" { config with profile = true } p

type outcome =
  | Finished of result
  | Trapped of { trap : trap; routine : string; partial : result }

(** Like {!run}, but a trap is returned as a value together with the
    observable state accumulated up to it (output printed so far and
    the globals at trap time) instead of discarding that state with an
    exception.  This is what the differential oracle compares: a
    transformed program must trap the same way *and* have produced the
    same observable effects before trapping. *)
let run_outcome ?(config = default_config) (p : U.program) : outcome =
  Telemetry.Collector.with_span "interp.run" @@ fun () ->
  let st = make_state p config in
  let main, main_blocks = Hashtbl.find st.routines p.U.p_main in
  match run_routine st main main_blocks [] with
  | exit_code ->
    Finished
      { exit_code; output = Buffer.contents st.output; steps = st.steps;
        profile = st.prof; globals = snapshot_globals st }
  | exception Trap (trap, routine) ->
    Trapped
      { trap; routine;
        partial =
          { exit_code = 0L; output = Buffer.contents st.output;
            steps = st.steps; profile = st.prof;
            globals = snapshot_globals st } }
