(** Definitional interpreter for ucode.

    Defines the semantics every transformation is differentially tested
    against, and doubles as the paper's *instrumented training run*:
    {!train} fills a {!Ucode.Profile} database with block execution
    counts, call-site counts and indirect-call target histograms.

    Memory is a flat array of 64-bit cells; cell 0 is reserved (null),
    globals are laid out from cell 1, [alloc] bumps past them.
    Function values are opaque positive handles.  Direct calls follow
    the dusty-deck pad/drop convention for mismatched arity; indirect
    calls must match the target's arity exactly or trap. *)

type trap =
  | Division_by_zero
  | Out_of_bounds of int64
  | Bad_function_handle of int64
  | Call_to_external of string
  | Aborted
  | Out_of_fuel
  | Out_of_memory
  | Call_depth_exceeded
  | Indirect_arity_mismatch of string

(** Carries the trap and the routine executing when it fired. *)
exception Trap of trap * string

val trap_message : trap -> string

type result = {
  exit_code : int64;   (** [main]'s return value *)
  output : string;     (** everything printed via the builtins *)
  steps : int;         (** IR instructions executed *)
  profile : Ucode.Profile.t;  (** empty unless profiling was on *)
  globals : (string * int64 array) list;
      (** final value of every global, in program order — part of the
          observable state the semantic oracle compares *)
}

type config = {
  memory_cells : int;
  fuel : int;            (** max IR instructions *)
  max_call_depth : int;
  profile : bool;
}

val default_config : config

(** Run a program from its [main] routine (no arguments). *)
val run : ?config:config -> Ucode.Types.program -> result

(** The instrumented training run: {!run} with profiling enabled. *)
val train : ?config:config -> Ucode.Types.program -> result

type outcome =
  | Finished of result
  | Trapped of { trap : trap; routine : string; partial : result }
      (** [partial] holds the observable state at trap time: output
          printed so far, globals, steps.  Its [exit_code] is 0. *)

(** {!run}, but with traps reified as values instead of exceptions, so
    differential comparisons can also check the observable effects a
    trapping program performed before the trap. *)
val run_outcome : ?config:config -> Ucode.Types.program -> outcome
