(** First-class HLO policies.

    Every tunable knob of the HLO driver — the compile-time growth
    budget, its staging schedule, the pass limit, the inliner's
    cold-site penalty and indirect-call bonus, the outliner's region
    thresholds, and the order of the clean/outline/clone/inline/prune
    stages inside each pass — reified as one value.  The 1997 paper
    hand-set all of these; {!default} records exactly those constants,
    and [bin/hlo_tune] searches the space for better ones.

    A policy is plain data: it never references the program being
    compiled, so it can be persisted (versioned, checksummed, over
    {!Store}), hashed into cache keys, diffed, and shipped between
    machines.  [Hlo.Config.of_policy] is the one place a policy meets
    the compiler. *)

(** One stage of the per-pass schedule.  The driver interprets the
    policy's [stages] list in order, once per pass:
    - [Clone]: the cloning pass (gated by [enable_cloning]);
    - [Inline]: the inlining pass (gated by [enable_inlining]);
    - [Prune]: delete unreachable routines;
    - [Clean]: re-run the scalar optimizer on routines touched since
      the pass started (gated by [optimize_between_passes]);
    - [Outline]: extract cold regions (needs profile data). *)
type stage = Clean | Outline | Clone | Inline | Prune

val stage_name : stage -> string
val stage_of_name : string -> (stage, string) result

(** How the inliner treats a callee whose whole body busts the budget:
    - [Whole]: the paper's behaviour — reject the site (the callee is
      inlined entirely or not at all);
    - [Region]: eager pre-pass — before ranking, outline the cold
      regions of every over-budget callee (blocks below
      [region_cold_fraction] of the routine's hottest block) into
      synthetic residue routines, then score and inline the hot
      residue;
    - [Demand]: the same outlining, driven lazily from the ranked
      worklist — a callee is only split at the moment its whole body
      fails the budget check. *)
type inline_mode = Whole | Region | Demand

val inline_mode_name : inline_mode -> string
val inline_mode_of_name : string -> (inline_mode, string) result

type t = {
  budget_percent : float;      (** allowed compile-cost increase *)
  staging : float list;        (** cumulative budget fraction per pass *)
  pass_limit : int;            (** maximum passes *)
  cold_site_penalty : float;   (** benefit multiplier for cold sites *)
  indirect_bonus : float;      (** benefit multiplier for devirtualizing clones *)
  outline : bool;              (** outline cold regions before pass 0 *)
  outline_cold_fraction : float;
  outline_min_instructions : int;
  outline_max_inputs : int;
  inline_mode : inline_mode;   (** whole / region / demand *)
  region_cold_fraction : float;
      (** region/demand coldness cut, relative to the hottest block *)
  stages : stage list;         (** per-pass schedule, in order *)
}

(** The paper's hand-set 1997 constants, including the fixed
    clone/inline/prune/clean/prune pass schedule the old driver
    hard-coded. *)
val default : t

(** {2 Validation} *)

(** Check a staging schedule: nonempty, every fraction in [0, 1],
    nondecreasing, ending at 1.0.  The error names the offending
    value. *)
val check_staging : float list -> (unit, string) result

(** Full structural validation: staging as {!check_staging}, all
    numeric knobs finite and inside their documented ranges, stage
    list nonempty, at most {!max_stages} long, and containing at least
    one transforming stage ([Clone] or [Inline]). *)
val validate : t -> (unit, string) result

val max_stages : int

(** {2 Canonical text codec}

    One [key value] line per knob, fixed key order, floats printed so
    they parse back to the same bits.  [of_string] is strict: every
    key at most once, nothing unknown, and the decoded policy must
    pass {!validate}.  The only optional keys are [inline_mode] and
    [region_cold_fraction] (they postdate the format; older files load
    with the defaults) — everything else must be present. *)

val to_string : t -> string
val of_string : string -> (t, string) result

(** MD5 of the canonical text — the policy's identity in cache keys
    (the daemon's artifact store) and reports. *)
val hash : t -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Persistence}

    Policies on disk live in the shared {!Store} container (magic
    ["hlo-policy"]), so loading is fail-safe: missing file, foreign
    file, version skew and corruption all come back as values. *)

(** [Ok None] when [path] does not exist.  A file that is not a store
    container is accepted when its contents are valid canonical policy
    text ([hloc --dump-policy] output, or hand-written), so both forms
    load interchangeably. *)
val load : path:string -> (t option, string) result

val save : path:string -> t -> (unit, string) result

module Pareto : sig
  (** Multi-objective bookkeeping for the policy tuner.

      Three minimized objectives per candidate: simulated run cycles,
      final code size (instructions), and compile cost spent (the Σ size²
      units the budget is denominated in). *)

  type point = {
    cycles : float;
    size : float;
    cost : float;
  }

  (** [dominates a b] — [a] is no worse on every objective and strictly
      better on at least one. *)
  val dominates : point -> point -> bool

  (** Non-dominated subset, input order preserved.  Exact duplicates of
      an earlier point are dropped, so a deterministic input list gives
      a deterministic front. *)
  val front : ('a * point) list -> ('a * point) list
end

module Space : sig
  (** The typed search space over {!t}.

      Each knob carries its sampling range here, in one place, so the
      random sampler, the local-move mutator, and the documentation
      cannot drift apart.  Both entry points draw from a caller-owned
      [Random.State.t] and draw a {e fixed} number-independent sequence
      per call, so a search seeded identically replays identically —
      the tuner's determinism contract hangs off this module. *)

  (** One knob and its range, human-readable — the rows of the search
      space table in docs/tuning.md. *)
  type param = {
    pm_name : string;
    pm_range : string;
    pm_kind : string;  (** "float", "int", "bool", "schedule" *)
  }

  val params : param list

  (** A uniform-ish random policy; always passes {!validate}. *)
  val sample : Random.State.t -> t

  (** One local move: pick one knob and perturb it (budget scaled,
      staging cut nudged, a stage swapped/inserted/dropped, ...).  The
      result always validates and always differs from the input in at
      most one knob. *)
  val mutate : Random.State.t -> t -> t
end
