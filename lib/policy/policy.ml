(** First-class HLO policies.  See the interface for the contract. *)

type stage = Clean | Outline | Clone | Inline | Prune

let stage_name = function
  | Clean -> "clean"
  | Outline -> "outline"
  | Clone -> "clone"
  | Inline -> "inline"
  | Prune -> "prune"

let stage_of_name = function
  | "clean" -> Ok Clean
  | "outline" -> Ok Outline
  | "clone" -> Ok Clone
  | "inline" -> Ok Inline
  | "prune" -> Ok Prune
  | s -> Error ("unknown stage " ^ s)

type inline_mode = Whole | Region | Demand

let inline_mode_name = function
  | Whole -> "whole"
  | Region -> "region"
  | Demand -> "demand"

let inline_mode_of_name = function
  | "whole" -> Ok Whole
  | "region" -> Ok Region
  | "demand" -> Ok Demand
  | s -> Error ("unknown inline mode " ^ s)

type t = {
  budget_percent : float;
  staging : float list;
  pass_limit : int;
  cold_site_penalty : float;
  indirect_bonus : float;
  outline : bool;
  outline_cold_fraction : float;
  outline_min_instructions : int;
  outline_max_inputs : int;
  inline_mode : inline_mode;
  region_cold_fraction : float;
  stages : stage list;
}

let default =
  { budget_percent = 100.0; staging = [ 0.25; 0.5; 0.75; 1.0 ];
    pass_limit = 4; cold_site_penalty = 0.25; indirect_bonus = 4.0;
    outline = false; outline_cold_fraction = 0.05;
    outline_min_instructions = 6; outline_max_inputs = 6;
    inline_mode = Whole; region_cold_fraction = 0.5;
    stages = [ Clone; Inline; Prune; Clean; Prune ] }

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)

let max_stages = 8

let check_staging = function
  | [] -> Error "staging must be nonempty"
  | fractions ->
    let rec go prev = function
      | [] ->
        if prev = 1.0 then Ok ()
        else Error (Printf.sprintf "staging must end at 1.0 (ends at %g)" prev)
      | f :: rest ->
        if not (Float.is_finite f) || f < 0.0 || f > 1.0 then
          Error (Printf.sprintf "staging fraction %g outside [0, 1]" f)
        else if f < prev then
          Error
            (Printf.sprintf "staging must be nondecreasing (%g after %g)" f
               prev)
        else go f rest
    in
    go 0.0 fractions

let in_range what v lo hi =
  if Float.is_finite v && v >= lo && v <= hi then Ok ()
  else Error (Printf.sprintf "%s %g outside [%g, %g]" what v lo hi)

let int_in_range what v lo hi =
  if v >= lo && v <= hi then Ok ()
  else Error (Printf.sprintf "%s %d outside [%d, %d]" what v lo hi)

let ( let* ) = Result.bind

let validate t =
  let* () = in_range "budget_percent" t.budget_percent 0.0 1e6 in
  let* () = check_staging t.staging in
  let* () = int_in_range "pass_limit" t.pass_limit 1 64 in
  let* () = in_range "cold_site_penalty" t.cold_site_penalty 0.0 100.0 in
  let* () = in_range "indirect_bonus" t.indirect_bonus 0.0 1e3 in
  let* () =
    in_range "outline_cold_fraction" t.outline_cold_fraction 0.0 1.0
  in
  let* () =
    int_in_range "outline_min_instructions" t.outline_min_instructions 1 1000
  in
  let* () = int_in_range "outline_max_inputs" t.outline_max_inputs 0 64 in
  let* () =
    in_range "region_cold_fraction" t.region_cold_fraction 0.0 1.0
  in
  if t.stages = [] then Error "stages must be nonempty"
  else if List.length t.stages > max_stages then
    Error (Printf.sprintf "more than %d stages" max_stages)
  else if
    not (List.exists (fun s -> s = Clone || s = Inline) t.stages)
  then Error "stages must include clone or inline"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Canonical text codec.                                               *)

(* Shortest decimal that parses back to the same float; fall back to
   the exact hex form for the rare value %.12g cannot carry. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%h" f

let to_string t =
  String.concat ""
    [ Printf.sprintf "budget_percent %s\n" (float_str t.budget_percent);
      Printf.sprintf "staging %s\n"
        (String.concat "," (List.map float_str t.staging));
      Printf.sprintf "pass_limit %d\n" t.pass_limit;
      Printf.sprintf "cold_site_penalty %s\n" (float_str t.cold_site_penalty);
      Printf.sprintf "indirect_bonus %s\n" (float_str t.indirect_bonus);
      Printf.sprintf "outline %b\n" t.outline;
      Printf.sprintf "outline_cold_fraction %s\n"
        (float_str t.outline_cold_fraction);
      Printf.sprintf "outline_min_instructions %d\n" t.outline_min_instructions;
      Printf.sprintf "outline_max_inputs %d\n" t.outline_max_inputs;
      Printf.sprintf "inline_mode %s\n" (inline_mode_name t.inline_mode);
      Printf.sprintf "region_cold_fraction %s\n"
        (float_str t.region_cold_fraction);
      Printf.sprintf "stages %s\n"
        (String.concat "," (List.map stage_name t.stages)) ]

let hash t = Digest.to_hex (Digest.string (to_string t))

let equal a b = to_string a = to_string b

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Strict line decoder: every key exactly once, no strangers. *)

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad %s: %S" what s)

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s: %S" what s)

let parse_bool what s =
  match String.trim s with
  | "true" -> Ok true
  | "false" -> Ok false
  | other -> Error (Printf.sprintf "bad %s: %S" what other)

let parse_list what parse_one s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      let* v = parse_one (String.trim part) in
      go (v :: acc) rest
  in
  match String.split_on_char ',' s with
  | [ "" ] -> Error ("empty " ^ what)
  | parts -> go [] parts

let of_string text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let* fields =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match String.index_opt line ' ' with
        | None -> Error (Printf.sprintf "malformed policy line %S" line)
        | Some i ->
          let key = String.sub line 0 i in
          let value =
            String.sub line (i + 1) (String.length line - i - 1)
          in
          if List.mem_assoc key acc then
            Error (Printf.sprintf "duplicate policy key %S" key)
          else go ((key, value) :: acc) rest)
    in
    go [] lines
  in
  let field key =
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing policy key %S" key)
  in
  let* () =
    let known =
      [ "budget_percent"; "staging"; "pass_limit"; "cold_site_penalty";
        "indirect_bonus"; "outline"; "outline_cold_fraction";
        "outline_min_instructions"; "outline_max_inputs"; "inline_mode";
        "region_cold_fraction"; "stages" ]
    in
    List.fold_left
      (fun acc (key, _) ->
        let* () = acc in
        if List.mem key known then Ok ()
        else Error (Printf.sprintf "unknown policy key %S" key))
      (Ok ()) fields
  in
  let* budget_percent =
    Result.bind (field "budget_percent") (parse_float "budget_percent")
  in
  let* staging =
    Result.bind (field "staging")
      (parse_list "staging" (parse_float "staging fraction"))
  in
  let* pass_limit = Result.bind (field "pass_limit") (parse_int "pass_limit") in
  let* cold_site_penalty =
    Result.bind (field "cold_site_penalty") (parse_float "cold_site_penalty")
  in
  let* indirect_bonus =
    Result.bind (field "indirect_bonus") (parse_float "indirect_bonus")
  in
  let* outline = Result.bind (field "outline") (parse_bool "outline") in
  let* outline_cold_fraction =
    Result.bind
      (field "outline_cold_fraction")
      (parse_float "outline_cold_fraction")
  in
  let* outline_min_instructions =
    Result.bind
      (field "outline_min_instructions")
      (parse_int "outline_min_instructions")
  in
  let* outline_max_inputs =
    Result.bind (field "outline_max_inputs") (parse_int "outline_max_inputs")
  in
  (* The two inline-mode keys postdate the codec; policies written
     before them (e.g. the committed [policies/*.policy]) load with the
     defaults, while [to_string] always emits both. *)
  let optional key default parse =
    match List.assoc_opt key fields with
    | None -> Ok default
    | Some v -> parse v
  in
  let* inline_mode =
    optional "inline_mode" default.inline_mode inline_mode_of_name
  in
  let* region_cold_fraction =
    optional "region_cold_fraction" default.region_cold_fraction
      (parse_float "region_cold_fraction")
  in
  let* stages =
    Result.bind (field "stages") (parse_list "stages" stage_of_name)
  in
  let t =
    { budget_percent; staging; pass_limit; cold_site_penalty; indirect_bonus;
      outline; outline_cold_fraction; outline_min_instructions;
      outline_max_inputs; inline_mode; region_cold_fraction; stages }
  in
  let* () = validate t in
  Ok t

(* ------------------------------------------------------------------ *)
(* Persistence.                                                        *)

let store_magic = "hlo-policy"
let store_version = 1

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  match Store.load ~path ~magic:store_magic ~version:store_version with
  | Ok None -> Ok None
  | Error e -> (
    (* Not a policy container.  Accept the bare canonical text too, so
       a file written by hand or saved from `hloc --dump-policy` loads
       directly; the text must fully parse and validate. *)
    match of_string (read_file path) with
    | Ok t -> Ok (Some t)
    | Error _ | (exception Sys_error _) -> Error e)
  | Ok (Some payload) -> (
    match of_string payload with
    | Ok t -> Ok (Some t)
    | Error msg -> Error (Printf.sprintf "%s: bad policy payload: %s" path msg))

let save ~path t = Store.save ~path ~magic:store_magic ~version:store_version (to_string t)

(* ------------------------------------------------------------------ *)

module Pareto = struct
  (** Pareto dominance over (cycles, size, cost).  See the interface. *)

  type point = {
    cycles : float;
    size : float;
    cost : float;
  }

  let dominates a b =
    a.cycles <= b.cycles && a.size <= b.size && a.cost <= b.cost
    && (a.cycles < b.cycles || a.size < b.size || a.cost < b.cost)

  let front candidates =
    let keep (i, (_, p)) =
      not
        (List.exists
           (fun (j, (_, q)) ->
             (* Strict dominance kills; an exact duplicate keeps only its
                first occurrence. *)
             dominates q p || (j < i && q = p))
           (List.mapi (fun j c -> (j, c)) candidates))
    in
    List.filteri (fun i c -> keep (i, c)) candidates
end

module Space = struct
  (** The typed search space.  See the interface for the contract. *)

  type param = {
    pm_name : string;
    pm_range : string;
    pm_kind : string;
  }

  let params =
    [ { pm_name = "budget_percent"; pm_range = "10 .. 1000 (log-uniform)";
        pm_kind = "float" };
      { pm_name = "staging"; pm_range = "1 .. 5 nondecreasing cuts ending at 1";
        pm_kind = "float list" };
      { pm_name = "pass_limit"; pm_range = "1 .. 8"; pm_kind = "int" };
      { pm_name = "cold_site_penalty"; pm_range = "0 .. 1"; pm_kind = "float" };
      { pm_name = "indirect_bonus"; pm_range = "0.25 .. 16"; pm_kind = "float" };
      { pm_name = "outline"; pm_range = "on / off"; pm_kind = "bool" };
      { pm_name = "outline_cold_fraction"; pm_range = "0.01 .. 0.5";
        pm_kind = "float" };
      { pm_name = "outline_min_instructions"; pm_range = "2 .. 16";
        pm_kind = "int" };
      { pm_name = "outline_max_inputs"; pm_range = "1 .. 10"; pm_kind = "int" };
      { pm_name = "inline_mode"; pm_range = "whole / region / demand";
        pm_kind = "mode" };
      { pm_name = "region_cold_fraction"; pm_range = "0.05 .. 0.95";
        pm_kind = "float" };
      { pm_name = "stages";
        pm_range =
          "1 .. 8 of clean/outline/clone/inline/prune, with clone or inline";
        pm_kind = "schedule" } ]

  (* Round to [d] decimals so policies print short and mutate onto a
     lattice (two searches landing on the same point really are the
     same point, codec-wise). *)
  let round_dp d f =
    let scale = 10.0 ** float_of_int d in
    Float.round (f *. scale) /. scale

  let clamp lo hi v = Float.min hi (Float.max lo v)
  let clampi lo hi v = min hi (max lo v)

  let uniform st lo hi = lo +. (Random.State.float st (hi -. lo))

  let log_uniform st lo hi = exp (uniform st (log lo) (log hi))

  let choose st l = List.nth l (Random.State.int st (List.length l))

  (* ------------------------------------------------------------------ *)
  (* Staging schedules.                                                  *)

  let sample_staging st =
    let n = 1 + Random.State.int st 5 in
    let cuts =
      List.init (n - 1) (fun _ -> round_dp 2 (uniform st 0.05 0.95))
    in
    List.sort_uniq compare cuts @ [ 1.0 ]

  (* Nudge, add or drop one cut; the sort + trailing 1.0 keep the
     schedule canonical. *)
  let mutate_staging st staging =
    let cuts = List.filter (fun f -> f <> 1.0) staging in
    let action =
      if cuts = [] then `Add
      else if List.length cuts >= 4 then choose st [ `Nudge; `Drop ]
      else choose st [ `Nudge; `Add; `Drop ]
    in
    let cuts =
      match action with
      | `Add -> round_dp 2 (uniform st 0.05 0.95) :: cuts
      | `Drop ->
        let victim = Random.State.int st (List.length cuts) in
        List.filteri (fun i _ -> i <> victim) cuts
      | `Nudge ->
        let victim = Random.State.int st (List.length cuts) in
        List.mapi
          (fun i f ->
            if i = victim then
              round_dp 2 (clamp 0.01 0.99 (f +. uniform st (-0.15) 0.15))
            else f)
          cuts
    in
    List.sort_uniq compare cuts @ [ 1.0 ]

  (* ------------------------------------------------------------------ *)
  (* Stage schedules.                                                    *)

  let all_stages =
    [ Clean; Outline; Clone; Inline; Prune ]

  let schedule_ok stages =
    stages <> []
    && List.length stages <= max_stages
    && List.exists (fun s -> s = Clone || s = Inline) stages

  let sample_schedule st =
    let transforms =
      choose st
        [ [ Clone; Inline ]; [ Inline; Clone ];
          [ Clone ]; [ Inline ] ]
    in
    let head = if Random.State.bool st then [ Outline ] else [] in
    let tail =
      choose st
        [ [ Prune; Clean; Prune ];
          [ Prune; Clean ]; [ Clean; Prune ];
          [ Prune ] ]
    in
    head @ transforms @ tail

  let rec mutate_schedule st stages =
    let n = List.length stages in
    let candidate =
      match choose st [ `Swap; `Insert; `Drop ] with
      | `Swap when n >= 2 ->
        let i = Random.State.int st (n - 1) in
        List.mapi
          (fun j s ->
            if j = i then List.nth stages (i + 1)
            else if j = i + 1 then List.nth stages i
            else s)
          stages
      | `Insert when n < max_stages ->
        let s = choose st all_stages in
        let at = Random.State.int st (n + 1) in
        List.concat
          [ List.filteri (fun i _ -> i < at) stages; [ s ];
            List.filteri (fun i _ -> i >= at) stages ]
      | `Drop when n >= 2 ->
        let victim = Random.State.int st n in
        List.filteri (fun i _ -> i <> victim) stages
      | _ -> sample_schedule st
    in
    if schedule_ok candidate && candidate <> stages then candidate
    else mutate_schedule st stages

  (* ------------------------------------------------------------------ *)

  let sample st : t =
    let p =
      { budget_percent = round_dp 1 (log_uniform st 10.0 1000.0);
        staging = sample_staging st;
        pass_limit = 1 + Random.State.int st 8;
        cold_site_penalty = round_dp 2 (uniform st 0.0 1.0);
        indirect_bonus = round_dp 2 (log_uniform st 0.25 16.0);
        outline = Random.State.bool st;
        outline_cold_fraction = round_dp 2 (uniform st 0.01 0.5);
        outline_min_instructions = 2 + Random.State.int st 15;
        outline_max_inputs = 1 + Random.State.int st 10;
        inline_mode = choose st [ Whole; Region; Demand ];
        region_cold_fraction = round_dp 2 (uniform st 0.05 0.95);
        stages = sample_schedule st }
    in
    match validate p with
    | Ok () -> p
    | Error msg -> invalid_arg ("Space.sample produced an invalid policy: " ^ msg)

  let mutate st (p : t) : t =
    let p' =
      match Random.State.int st 12 with
      | 0 ->
        { p with
          budget_percent =
            round_dp 1
              (clamp 10.0 1000.0
                 (p.budget_percent *. choose st [ 0.5; 0.75; 1.5; 2.0 ])) }
      | 1 -> { p with staging = mutate_staging st p.staging }
      | 2 ->
        { p with
          pass_limit =
            clampi 1 8 (p.pass_limit + choose st [ -1; 1 ]) }
      | 3 ->
        { p with
          cold_site_penalty =
            round_dp 2
              (clamp 0.0 1.0
                 (p.cold_site_penalty +. uniform st (-0.15) 0.15)) }
      | 4 ->
        { p with
          indirect_bonus =
            round_dp 2
              (clamp 0.25 16.0 (p.indirect_bonus *. choose st [ 0.5; 2.0 ])) }
      | 5 -> { p with outline = not p.outline }
      | 6 ->
        { p with
          outline_cold_fraction =
            round_dp 2
              (clamp 0.01 0.5
                 (p.outline_cold_fraction +. uniform st (-0.05) 0.05)) }
      | 7 ->
        { p with
          outline_min_instructions =
            clampi 2 16 (p.outline_min_instructions + choose st [ -2; 2 ]);
          outline_max_inputs =
            clampi 1 10 (p.outline_max_inputs + choose st [ -2; 2 ]) }
      | 8 -> { p with stages = mutate_schedule st p.stages }
      | 9 ->
        { p with
          inline_mode =
            choose st
              (List.filter (fun m -> m <> p.inline_mode)
                 [ Whole; Region; Demand ]) }
      | 10 ->
        { p with
          region_cold_fraction =
            round_dp 2
              (clamp 0.05 0.95
                 (p.region_cold_fraction +. uniform st (-0.15) 0.15)) }
      | _ ->
        (* Occasional fresh restart keeps local search from stalling on
           a plateau. *)
        sample st
    in
    match validate p' with
    | Ok () -> p'
    | Error msg -> invalid_arg ("Space.mutate produced an invalid policy: " ^ msg)
end
