(** The hlod wire protocol.  See the interface for the frame layout;
    this file is the one place that knows the JSON shape of requests
    and responses, so the server, the client library, and the tests
    cannot drift apart. *)

module J = Telemetry.Json

let magic = "hlod1"
let default_max_frame = 16 * 1024 * 1024

type frame_error =
  | Closed
  | Truncated
  | Malformed of string
  | Oversized of { announced : int; limit : int }

let frame_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Malformed msg -> "malformed frame: " ^ msg
  | Oversized { announced; limit } ->
    Printf.sprintf "oversized frame: %d bytes announced, limit %d" announced
      limit

(* The header is short; read it byte by byte so we never consume
   payload bytes while hunting for the newline, and bound the scan so
   a stream of garbage cannot grow the line forever. *)
let max_header_len = 64

let read_header ic =
  let buf = Buffer.create 24 in
  let rec go first =
    if Buffer.length buf > max_header_len then
      Error (Malformed "header line too long")
    else
      match In_channel.input_char ic with
      | None -> if first then Error Closed else Error Truncated
      | Some '\n' -> Ok (Buffer.contents buf)
      | Some c ->
        Buffer.add_char buf c;
        go false
  in
  go true

let read_frame ?(max_bytes = default_max_frame) ic =
  match read_header ic with
  | Error e -> Error e
  | Ok line -> (
    match String.split_on_char ' ' line with
    | [ m; _ ] when m <> magic ->
      Error (Malformed (Printf.sprintf "bad magic %S (expected %S)" m magic))
    | [ _; len ] -> (
      match int_of_string_opt len with
      | None -> Error (Malformed ("unparsable length " ^ len))
      | Some n when n < 0 -> Error (Malformed ("negative length " ^ len))
      | Some n when n > max_bytes ->
        Error (Oversized { announced = n; limit = max_bytes })
      | Some n -> (
        match In_channel.really_input_string ic n with
        | None -> Error Truncated
        | Some payload -> Ok payload))
    | _ -> Error (Malformed ("bad header line " ^ String.escaped line)))

let write_frame oc payload =
  output_string oc (Printf.sprintf "%s %d\n" magic (String.length payload));
  output_string oc payload;
  flush oc

(* ------------------------------------------------------------------ *)
(* Messages.                                                           *)

type compile_options = {
  co_scope : string;
  co_budget : float;
  co_passes : int;
  co_inline : bool;
  co_clone : bool;
  co_max_ops : int option;
  co_policy : string option;
  co_inline_mode : string;
  co_main : string;
  co_runner : string;
  co_stats : bool;
  co_dump_ir : bool;
  co_dump_profile : bool;
  co_dump_asm : bool;
  co_dump_journal : bool;
}

let default_options =
  { co_scope = "cp"; co_budget = 100.0; co_passes = 4; co_inline = true;
    co_clone = true; co_max_ops = None; co_policy = None;
    co_inline_mode = "whole"; co_main = "main"; co_runner = "sim";
    co_stats = false; co_dump_ir = false; co_dump_profile = false;
    co_dump_asm = false; co_dump_journal = false }

type request =
  | Compile of {
      modules : (string * string) list;
      options : compile_options;
    }
  | Stats
  | Ping
  | Shutdown

type reject = {
  rj_kind : string;
  rj_cost : float;
  rj_limit : float;
  rj_reason : string;
}

type response =
  | Compiled of {
      outputs : (string * string) list;
      cache : string;
      key : string;
      queued : bool;
      elapsed_us : float;
    }
  | Failed of {
      kind : string;
      reason : string;
      outputs : (string * string) list;
    }
  | Rejected of reject
  | Stats_reply of J.t
  | Pong
  | Shutting_down

(* ------------------------------------------------------------------ *)
(* JSON encoding.                                                      *)

let options_to_json (o : compile_options) : J.t =
  J.Assoc
    [ ("scope", J.String o.co_scope); ("budget", J.Float o.co_budget);
      ("passes", J.Int o.co_passes); ("inline", J.Bool o.co_inline);
      ("clone", J.Bool o.co_clone);
      ("max_ops", match o.co_max_ops with None -> J.Null | Some n -> J.Int n);
      ( "policy",
        match o.co_policy with None -> J.Null | Some s -> J.String s );
      ("inline_mode", J.String o.co_inline_mode);
      ("main", J.String o.co_main); ("runner", J.String o.co_runner);
      ("stats", J.Bool o.co_stats); ("dump_ir", J.Bool o.co_dump_ir);
      ("dump_profile", J.Bool o.co_dump_profile);
      ("dump_asm", J.Bool o.co_dump_asm);
      ("dump_journal", J.Bool o.co_dump_journal) ]

let request_to_json = function
  | Compile { modules; options } ->
    J.Assoc
      [ ("op", J.String "compile");
        ( "modules",
          J.List
            (List.map
               (fun (name, source) ->
                 J.Assoc
                   [ ("name", J.String name); ("source", J.String source) ])
               modules) );
        ("options", options_to_json options) ]
  | Stats -> J.Assoc [ ("op", J.String "stats") ]
  | Ping -> J.Assoc [ ("op", J.String "ping") ]
  | Shutdown -> J.Assoc [ ("op", J.String "shutdown") ]

let outputs_to_json outputs =
  J.List
    (List.map
       (fun (ch, text) ->
         J.Assoc [ ("channel", J.String ch); ("text", J.String text) ])
       outputs)

let response_to_json = function
  | Compiled { outputs; cache; key; queued; elapsed_us } ->
    J.Assoc
      [ ("ok", J.Bool true); ("result", J.String "compiled");
        ("cache", J.String cache); ("key", J.String key);
        ("queued", J.Bool queued); ("elapsed_us", J.Float elapsed_us);
        ("outputs", outputs_to_json outputs) ]
  | Failed { kind; reason; outputs } ->
    J.Assoc
      [ ("ok", J.Bool false); ("result", J.String "failed");
        ("kind", J.String kind); ("reason", J.String reason);
        ("outputs", outputs_to_json outputs) ]
  | Rejected r ->
    J.Assoc
      [ ("ok", J.Bool false); ("result", J.String "rejected");
        ("kind", J.String r.rj_kind); ("cost", J.Float r.rj_cost);
        ("limit", J.Float r.rj_limit); ("reason", J.String r.rj_reason) ]
  | Stats_reply stats ->
    J.Assoc [ ("ok", J.Bool true); ("result", J.String "stats");
              ("stats", stats) ]
  | Pong -> J.Assoc [ ("ok", J.Bool true); ("result", J.String "pong") ]
  | Shutting_down ->
    J.Assoc [ ("ok", J.Bool true); ("result", J.String "shutting_down") ]

(* ------------------------------------------------------------------ *)
(* JSON decoding — every shape error is a value, never an exception.   *)

let member_string key json =
  Option.bind (J.member key json) J.to_string_opt

let member_number key json = Option.bind (J.member key json) J.to_number

let member_bool key json =
  match J.member key json with Some (J.Bool b) -> Some b | _ -> None

let ( let* ) r f = Result.bind r f

let require what = function
  | Some v -> Ok v
  | None -> Error ("missing or ill-typed field: " ^ what)

let options_of_json json : (compile_options, string) result =
  let d = default_options in
  let str key dflt = Option.value ~default:dflt (member_string key json) in
  let num key dflt = Option.value ~default:dflt (member_number key json) in
  let flag key dflt = Option.value ~default:dflt (member_bool key json) in
  let max_ops =
    match J.member "max_ops" json with
    | Some (J.Int n) -> Some n
    | _ -> None
  in
  let o =
    { co_scope = str "scope" d.co_scope; co_budget = num "budget" d.co_budget;
      co_passes = int_of_float (num "passes" (float_of_int d.co_passes));
      co_inline = flag "inline" d.co_inline;
      co_clone = flag "clone" d.co_clone; co_max_ops = max_ops;
      co_policy = member_string "policy" json;
      co_inline_mode = str "inline_mode" d.co_inline_mode;
      co_main = str "main" d.co_main; co_runner = str "runner" d.co_runner;
      co_stats = flag "stats" d.co_stats;
      co_dump_ir = flag "dump_ir" d.co_dump_ir;
      co_dump_profile = flag "dump_profile" d.co_dump_profile;
      co_dump_asm = flag "dump_asm" d.co_dump_asm;
      co_dump_journal = flag "dump_journal" d.co_dump_journal }
  in
  if not (List.mem o.co_scope [ "base"; "c"; "p"; "cp" ]) then
    Error ("unknown scope " ^ o.co_scope)
  else if not (List.mem o.co_runner [ "none"; "interp"; "sim" ]) then
    Error ("unknown runner " ^ o.co_runner)
  else if not (List.mem o.co_inline_mode [ "whole"; "region"; "demand" ]) then
    Error ("unknown inline mode " ^ o.co_inline_mode)
  else Ok o

let module_of_json json =
  let* name = require "module name" (member_string "name" json) in
  let* source = require "module source" (member_string "source" json) in
  Ok (name, source)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let request_of_json json : (request, string) result =
  let* op = require "op" (member_string "op" json) in
  match op with
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | "compile" ->
    let* mods =
      require "modules"
        (Option.bind (J.member "modules" json) J.to_list_opt)
    in
    let* modules = map_result module_of_json mods in
    if modules = [] then Error "empty module list"
    else
      let* options =
        match J.member "options" json with
        | None -> Ok default_options
        | Some o -> options_of_json o
      in
      Ok (Compile { modules; options })
  | op -> Error ("unknown op " ^ op)

let outputs_of_json json =
  match J.to_list_opt json with
  | None -> Error "outputs is not a list"
  | Some items ->
    map_result
      (fun item ->
        let* ch = require "output channel" (member_string "channel" item) in
        let* text = require "output text" (member_string "text" item) in
        Ok (ch, text))
      items

let response_of_json json : (response, string) result =
  let* result = require "result" (member_string "result" json) in
  match result with
  | "pong" -> Ok Pong
  | "shutting_down" -> Ok Shutting_down
  | "stats" ->
    let* stats = require "stats" (J.member "stats" json) in
    Ok (Stats_reply stats)
  | "compiled" ->
    let* outputs =
      Result.bind (require "outputs" (J.member "outputs" json))
        outputs_of_json
    in
    let* cache = require "cache" (member_string "cache" json) in
    let* key = require "key" (member_string "key" json) in
    let* queued = require "queued" (member_bool "queued" json) in
    let* elapsed_us = require "elapsed_us" (member_number "elapsed_us" json) in
    Ok (Compiled { outputs; cache; key; queued; elapsed_us })
  | "failed" ->
    let* kind = require "kind" (member_string "kind" json) in
    let* reason = require "reason" (member_string "reason" json) in
    let* outputs =
      match J.member "outputs" json with
      | None -> Ok []
      | Some o -> outputs_of_json o
    in
    Ok (Failed { kind; reason; outputs })
  | "rejected" ->
    let* kind = require "kind" (member_string "kind" json) in
    let* cost = require "cost" (member_number "cost" json) in
    let* limit = require "limit" (member_number "limit" json) in
    let* reason = require "reason" (member_string "reason" json) in
    Ok (Rejected { rj_kind = kind; rj_cost = cost; rj_limit = limit;
                   rj_reason = reason })
  | r -> Error ("unknown result " ^ r)

(* ------------------------------------------------------------------ *)
(* Framed message IO.                                                  *)

let write_request oc req = write_frame oc (J.to_string (request_to_json req))
let write_response oc resp = write_frame oc (J.to_string (response_to_json resp))

let decode_with parser payload =
  match J.of_string payload with
  | Error msg -> Error (Malformed ("bad JSON: " ^ msg))
  | Ok json -> (
    match parser json with
    | Ok v -> Ok v
    | Error msg -> Error (Malformed msg))

let read_request ?max_bytes ic =
  Result.bind (read_frame ?max_bytes ic) (decode_with request_of_json)

let read_response ?max_bytes ic =
  Result.bind (read_frame ?max_bytes ic) (decode_with response_of_json)
