(** Admission control: the Σ size² budget as a serving resource.  See
    the interface for the contract.

    The implementation is a FIFO ticket queue under one mutex: each
    waiter takes a sequence number and blocks until it is at the head
    *and* its cost fits in the remaining pool.  Head-of-line blocking
    is deliberate — grants are strictly in arrival order, so a stream
    of small requests cannot starve a big one forever. *)

type t = {
  server_budget : float;
  request_budget : float;
  queue_limit : int;
  lock : Mutex.t;
  turn : Condition.t;  (** broadcast whenever capacity or the head moves *)
  mutable in_use : float;
  mutable next_seq : int;  (** next ticket number to hand out *)
  mutable serving : int;  (** lowest ticket number not yet granted *)
  mutable waiting : int;
  mutable closed : bool;
  (* lifetime statistics *)
  mutable admitted : int;
  mutable queued : int;
  mutable rejected_over_budget : int;
  mutable rejected_queue_full : int;
  mutable rejected_shutdown : int;
  mutable peak_waiting : int;
}

let create ~server_budget ~request_budget ~queue_limit =
  { server_budget; request_budget; queue_limit; lock = Mutex.create ();
    turn = Condition.create (); in_use = 0.0; next_seq = 0; serving = 0;
    waiting = 0; closed = false; admitted = 0; queued = 0;
    rejected_over_budget = 0; rejected_queue_full = 0;
    rejected_shutdown = 0; peak_waiting = 0 }

let bytes_per_instr = 16

let cost_of_modules modules =
  List.fold_left
    (fun acc (_, source) ->
      let est_instrs = max 1 (String.length source / bytes_per_instr) in
      acc +. Ucode.Size.cost_of_size est_instrs)
    0.0 modules

type ticket = { tk_cost : float; tk_queued : bool; tk_queued_us : float }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reject kind cost limit reason : Protocol.reject =
  { Protocol.rj_kind = kind; rj_cost = cost; rj_limit = limit;
    rj_reason = reason }

let admit t ~cost =
  locked t @@ fun () ->
  if t.closed then begin
    t.rejected_shutdown <- t.rejected_shutdown + 1;
    Error
      (reject "shutting_down" cost 0.0 "the server is shutting down")
  end
  else
    let limit = Float.min t.request_budget t.server_budget in
    if cost > limit then begin
      t.rejected_over_budget <- t.rejected_over_budget + 1;
      Error
        (reject "request_over_budget" cost limit
           (Printf.sprintf
              "estimated cost %.0f size^2 units exceeds the per-request \
               budget of %.0f"
              cost limit))
    end
    else
      let fits () = t.in_use +. cost <= t.server_budget in
      let head seq = seq = t.serving in
      let my = t.next_seq in
      if (not (head my && fits ())) && t.waiting >= t.queue_limit then begin
        t.rejected_queue_full <- t.rejected_queue_full + 1;
        Error
          (reject "queue_full" cost
             (float_of_int t.queue_limit)
             (Printf.sprintf
                "server busy and the admission queue already holds %d \
                 requests"
                t.waiting))
      end
      else begin
        t.next_seq <- t.next_seq + 1;
        let was_queued = not (head my && fits ()) in
        let t0 = if was_queued then Telemetry.Clock.now_us () else 0.0 in
        if was_queued then begin
          t.waiting <- t.waiting + 1;
          t.peak_waiting <- max t.peak_waiting t.waiting;
          while (not t.closed) && not (head my && fits ()) do
            Condition.wait t.turn t.lock
          done;
          t.waiting <- t.waiting - 1
        end;
        if t.closed then begin
          (* Give up the turn so waiters behind us can also fail out. *)
          t.serving <- t.serving + 1;
          Condition.broadcast t.turn;
          t.rejected_shutdown <- t.rejected_shutdown + 1;
          Error
            (reject "shutting_down" cost 0.0 "the server is shutting down")
        end
        else begin
          t.serving <- t.serving + 1;
          t.in_use <- t.in_use +. cost;
          t.admitted <- t.admitted + 1;
          if was_queued then t.queued <- t.queued + 1;
          (* The head moved: the next waiter may now be eligible. *)
          Condition.broadcast t.turn;
          Ok
            { tk_cost = cost; tk_queued = was_queued;
              tk_queued_us =
                (if was_queued then Telemetry.Clock.now_us () -. t0 else 0.0)
            }
        end
      end

let release t ticket =
  locked t @@ fun () ->
  t.in_use <- Float.max 0.0 (t.in_use -. ticket.tk_cost);
  Condition.broadcast t.turn

let close t =
  locked t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.turn

type snapshot = {
  sn_in_use : float;
  sn_server_budget : float;
  sn_request_budget : float;
  sn_queue_limit : int;
  sn_waiting : int;
  sn_admitted : int;
  sn_queued : int;
  sn_rejected_over_budget : int;
  sn_rejected_queue_full : int;
  sn_rejected_shutdown : int;
  sn_peak_waiting : int;
}

let snapshot t =
  locked t @@ fun () ->
  { sn_in_use = t.in_use; sn_server_budget = t.server_budget;
    sn_request_budget = t.request_budget; sn_queue_limit = t.queue_limit;
    sn_waiting = t.waiting; sn_admitted = t.admitted; sn_queued = t.queued;
    sn_rejected_over_budget = t.rejected_over_budget;
    sn_rejected_queue_full = t.rejected_queue_full;
    sn_rejected_shutdown = t.rejected_shutdown;
    sn_peak_waiting = t.peak_waiting }
