(** The compile service: everything `hlod` does between a decoded
    request and an encoded response, with no sockets in sight (the
    tests and the load-generator bench drive it both ways — directly
    and over a socket).

    Request lifecycle for [Compile]:

    + artifact-store lookup (memory, then disk) — a hit is served
      without admission, it consumes no compile capacity;
    + coalescing — a request identical to one currently being compiled
      waits for that compile instead of being admitted twice (request
      batching for the only batch that is always safe: identical work);
    + admission control — the Σ size² estimate is charged against the
      per-request and per-server budgets, queueing FIFO or rejecting
      with a structured reason;
    + the compile itself, serialized under one lock: the warm domain
      pool has a single-batch contract, and serialization is also what
      lets a private telemetry collector capture the per-request spans
      and decision journal.  Results are rendered with {!Render} so
      they are bit-identical to in-process `hloc`;
    + the superset of output pieces is stored content-addressed, then
      the response selects the pieces this client asked for.

    All entry points are thread-safe. *)

type config = {
  jobs : int;  (** warm pool degree for the compile pipeline *)
  server_budget : float;  (** Σ size² capacity granted concurrently *)
  request_budget : float;  (** max Σ size² estimate of one request *)
  queue_limit : int;  (** admission queue bound *)
  artifact_dir : string option;  (** persist artifacts when set *)
  artifact_cap : int option;
      (** bound both artifact tiers to this many entries (LRU);
          [None] = unbounded *)
  summary_cache : string option;  (** warm/persist the summary cache *)
  max_frame : int;  (** wire-frame payload cap, bytes *)
}

val default_config : config

type t

val create : config -> t
val config : t -> config

(** Serve one request.  Never raises. *)
val handle : t -> Protocol.request -> Protocol.response

(** Begin shutdown: new compiles are rejected ("shutting_down"),
    queued waiters are woken and rejected; in-flight compiles keep
    running. *)
val stop : t -> unit

val stopping : t -> bool

(** Block until every in-flight compile request has resolved, then
    persist the summary cache (when configured). *)
val drain : t -> unit

(** The live statistics document served for [Stats] requests. *)
val stats_json : t -> Telemetry.Json.t
