(** Rendering of compile results to the exact bytes `hloc` prints.

    Both `hloc`'s in-process path and the daemon service call these —
    one definition per output piece — so a daemon-served compile is
    bit-identical to a local one *by construction*, not by parallel
    maintenance of two format strings. *)

val train_line : Interp.result -> string
(** ["[train] %d IR steps, output %d bytes\n"] *)

val profile : Ucode.Profile.t -> string

val report_line : Hlo.Report.t -> string
(** ["[hlo] ...\n"] *)

val ir : Ucode.Types.program -> string

val asm : Ucode.Types.program -> string

(** The optimizer decision journal in its canonical text form: one
    line per decision —

      kind verdict[(reason)] subject<-context site=N score=S pass=P

    — wall-clock excluded, so the text is a deterministic function of
    the decisions taken.  This is the "journal" the daemon
    bit-identity contract covers. *)
val journal : Telemetry.Event.decision list -> string

val interp_stats_line : Interp.result -> string

val sim_stats_line : Machine.Sim.result -> string

val diag : Minic.Diag.t list -> string
(** One pretty-printed diagnostic per line, as `hloc` sends to
    stderr. *)
