module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  max_bytes : int;
}

let default_socket () =
  match Sys.getenv_opt "HLOD_SOCKET" with
  | Some path when path <> "" -> path
  | _ ->
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlod-%d.sock" (Unix.getuid ()))

let connect ?(max_bytes = P.default_max_frame) socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
    Ok
      { fd; ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd; max_bytes }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket
         (Unix.error_message e))

let close t =
  (try flush t.oc with _ -> ());
  (* Close the fd exactly once; the channels are not closed by the GC
     so there is no double-close hazard. *)
  (try Unix.close t.fd with _ -> ())

let roundtrip t req =
  match P.write_request t.oc req with
  | exception e -> Error ("send failed: " ^ Printexc.to_string e)
  | () -> (
    match P.read_response ~max_bytes:t.max_bytes t.ic with
    | Ok resp -> Ok resp
    | Error e -> Error (P.frame_error_to_string e))

let probe socket =
  match connect socket with
  | Error _ -> false
  | Ok t ->
    let alive =
      match roundtrip t P.Ping with Ok P.Pong -> true | _ -> false
    in
    close t;
    alive
