(** The one place that knows what `hloc`'s outputs look like.  Every
    format string here used to live inline in [bin/hloc.ml]; they were
    moved, not rephrased, so the bytes are unchanged — and now the
    daemon and the CLI cannot disagree. *)

let train_line (r : Interp.result) =
  Fmt.str "[train] %d IR steps, output %d bytes@." r.Interp.steps
    (String.length r.Interp.output)

let profile p = Fmt.str "%a@." Ucode.Profile.pp p

let report_line r = Fmt.str "[hlo] %a@." Hlo.Report.pp r

let ir p = Fmt.str "%a@." Ucode.Pp.pp_program p

let asm p = Fmt.str "%a@." Machine.Layout.pp (Machine.Layout.build p)

let journal (decisions : Telemetry.Event.decision list) =
  let module E = Telemetry.Event in
  let buf = Buffer.create 256 in
  List.iter
    (fun (d : E.decision) ->
      let reason =
        match d.E.d_verdict with
        | E.Accepted -> ""
        | E.Rejected r -> "(" ^ r ^ ")"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s%s %s<-%s site=%d score=%.6g pass=%d\n"
           (E.kind_name d.E.d_kind)
           (E.verdict_name d.E.d_verdict)
           reason d.E.d_subject d.E.d_context d.E.d_site d.E.d_score
           d.E.d_pass))
    decisions;
  Buffer.contents buf

let interp_stats_line (r : Interp.result) =
  Fmt.str "[interp] exit=%Ld steps=%d@." r.Interp.exit_code r.Interp.steps

let sim_stats_line (r : Machine.Sim.result) =
  Fmt.str "[sim] exit=%Ld %a@." r.Machine.Sim.exit_code Machine.Metrics.pp
    r.Machine.Sim.metrics

let diag diags =
  String.concat "" (List.map (fun d -> Fmt.str "%a@." Minic.Diag.pp d) diags)
