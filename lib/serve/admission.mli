(** Admission control for the compile daemon.

    The paper's compile-time budget — program cost [Σ size(R)²] — is
    reused here as a *serving* resource.  Every request carries an
    estimated cost in the same quadratic units; the server grants
    capacity from a fixed pool ([server_budget]), so one giant
    translation unit and a thousand small ones are commensurable.

    Verdicts are structured, never silent:
    - a request whose own cost exceeds [request_budget] (or the whole
      server pool) is rejected with ["request_over_budget"];
    - a request that fits but finds the pool busy *queues*, FIFO,
      unless the queue already holds [queue_limit] waiters — then it
      is rejected with ["queue_full"];
    - once {!close} has been called every admission attempt is
      rejected with ["shutting_down"] (in-flight work keeps its
      capacity until {!release}).

    All operations are thread-safe; {!admit} blocks. *)

type t

val create :
  server_budget:float -> request_budget:float -> queue_limit:int -> t

(** Cost estimate for a compile request: per module,
    [Ucode.Size.cost_of_size] of the instruction count a MiniC source
    of that byte length typically lowers to (~{!bytes_per_instr} bytes
    per instruction).  An estimate on purpose — admission happens
    before any parsing — but quadratic like the real cost, so the
    skew between many small modules and one huge module survives. *)
val cost_of_modules : (string * string) list -> float

val bytes_per_instr : int

type ticket = {
  tk_cost : float;
  tk_queued : bool;  (** the request waited behind others *)
  tk_queued_us : float;  (** how long *)
}

(** Blocking admission.  [Ok ticket] grants [cost] of capacity — the
    caller must {!release} it exactly once.  [Error reject] is the
    structured refusal, ready to put on the wire. *)
val admit : t -> cost:float -> (ticket, Protocol.reject) result

val release : t -> ticket -> unit

(** Reject all current waiters and future admissions. *)
val close : t -> unit

type snapshot = {
  sn_in_use : float;  (** capacity currently granted *)
  sn_server_budget : float;
  sn_request_budget : float;
  sn_queue_limit : int;
  sn_waiting : int;  (** requests queued right now *)
  sn_admitted : int;  (** lifetime grants *)
  sn_queued : int;  (** grants that had to wait first *)
  sn_rejected_over_budget : int;
  sn_rejected_queue_full : int;
  sn_rejected_shutdown : int;
  sn_peak_waiting : int;
}

val snapshot : t -> snapshot
