module P = Protocol

type t = {
  service : Service.t;
  socket_path : string;
  listen_fd : Unix.file_descr;
  lock : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;  (** live connection fds *)
  mutable threads : Thread.t list;  (** connection threads, unpruned *)
  mutable next_conn : int;
  mutable stopped : bool;  (** listener closed *)
  mutable accept_thread : Thread.t option;
}

let service t = t.service
let socket_path t = t.socket_path

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Close the listener and unblock every connection reader.  Safe to
   call from any thread, any number of times. *)
let stop_listening t =
  let fds =
    locked t @@ fun () ->
    if t.stopped then None
    else begin
      t.stopped <- true;
      Some (Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [])
    end
  in
  match fds with
  | None -> ()
  | Some conn_fds ->
    (* Shutting the listening socket down forces a blocked accept(2)
       to return; closing alone can leave it sleeping. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (try Unix.unlink t.socket_path with _ -> ());
    (* Wake connection threads parked in read_request; their writes
       still work, so an in-flight response is delivered first. *)
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conn_fds

let serve_connection t id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let max_bytes = (Service.config t.service).Service.max_frame in
  let send resp = try P.write_response oc resp; true with _ -> false in
  let rec loop () =
    match P.read_request ~max_bytes ic with
    | Error (P.Closed | P.Truncated) ->
      (* Clean EOF, or the client vanished mid-frame.  Either way the
         connection is done; the server is not. *)
      ()
    | Error ((P.Malformed _ | P.Oversized _) as e) ->
      (* Answer with structure, then drop the connection: after a
         framing error the stream position is meaningless. *)
      ignore
        (send
           (P.Failed
              { kind = "bad_request";
                reason = P.frame_error_to_string e; outputs = [] })
          : bool)
    | Ok P.Shutdown ->
      (* Drain before acknowledging: when the client sees
         [Shutting_down], every request the server accepted has been
         served and the summary cache is on disk. *)
      Service.stop t.service;
      Service.drain t.service;
      ignore (send P.Shutting_down : bool);
      stop_listening t
    | Ok req -> if send (Service.handle t.service req) then loop ()
  in
  (try loop () with _ -> ());
  locked t (fun () -> Hashtbl.remove t.conns id);
  (try flush oc with _ -> ());
  (* One close for the fd; the wrapping channels are left to the GC,
     which does not close them (stdlib contract) — no double close. *)
  (try Unix.close fd with _ -> ())

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception _ -> if not (locked t (fun () -> t.stopped)) then accept_loop t
  | fd, _ ->
    let id, accepted =
      locked t @@ fun () ->
      if t.stopped then (0, false)
      else begin
        let id = t.next_conn in
        t.next_conn <- id + 1;
        Hashtbl.replace t.conns id fd;
        (id, true)
      end
    in
    if not accepted then (try Unix.close fd with _ -> ())
    else begin
      let th = Thread.create (fun () -> serve_connection t id fd) () in
      locked t (fun () -> t.threads <- th :: t.threads)
    end;
    accept_loop t

let start ~socket config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists socket then (try Unix.unlink socket with _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    { service = Service.create config; socket_path = socket; listen_fd;
      lock = Mutex.create (); conns = Hashtbl.create 16; threads = [];
      next_conn = 1; stopped = false; accept_thread = None }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Connection threads can still be delivering final responses; join
     whatever existed when the listener closed (no new ones appear). *)
  let threads = locked t (fun () -> t.threads) in
  List.iter Thread.join threads

let stop t =
  Service.stop t.service;
  Service.drain t.service;
  stop_listening t;
  wait t

let run ~socket config =
  let t = start ~socket config in
  wait t
