(** Client side of the hlod protocol: connect, one request / one
    response round trips, and the probe `hloc --daemon auto` uses to
    decide between the daemon and the in-process pipeline.

    Errors are values ([result]), never exceptions — a missing daemon
    is an expected state, not a crash. *)

type t

(** [HLOD_SOCKET] if set and non-empty, else [/tmp/hlod-<uid>.sock] —
    per-user so two users on one machine don't fight over a path. *)
val default_socket : unit -> string

val connect : ?max_bytes:int -> string -> (t, string) result

val close : t -> unit

(** Send one request and read its response.  On error the connection
    is in an unknown state and should be {!close}d. *)
val roundtrip : t -> Protocol.request -> (Protocol.response, string) result

(** [connect] + [Ping]/[Pong] + [close]: is a live daemon answering at
    [socket]? *)
val probe : string -> bool
