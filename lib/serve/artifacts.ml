(** Content-addressed artifact store.  See the interface for the
    contract.  The disk payload is the JSON encoding of the response
    pieces inside the shared {!Store} container — human-inspectable
    with [tail -c +N], checksummed, versioned, and fail-safe to load. *)

module J = Telemetry.Json

type t = {
  dir : string option;
  lock : Mutex.t;
  table : (string, (string * string) list) Hashtbl.t;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable disk_errors : int;
}

let create ?dir () =
  { dir; lock = Mutex.create (); table = Hashtbl.create 64; mem_hits = 0;
    disk_hits = 0; misses = 0; insertions = 0; disk_errors = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let key ~modules ~options_canon =
  let buf = Buffer.create 256 in
  Buffer.add_string buf Protocol.magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf options_canon;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, source) ->
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (Minic.Compile.source_hash
           (Minic.Compile.source ~module_name:name source));
      Buffer.add_char buf '\n')
    modules;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Disk layer.                                                         *)

let disk_magic = "hlod-artifact"
let disk_version = 1

let artifact_path dir k = Filename.concat dir (k ^ ".hart")

let outputs_to_payload outputs =
  J.to_string
    (J.List
       (List.map
          (fun (ch, text) ->
            J.Assoc [ ("channel", J.String ch); ("text", J.String text) ])
          outputs))

let outputs_of_payload payload =
  match J.of_string payload with
  | Error _ -> None
  | Ok json -> (
    match J.to_list_opt json with
    | None -> None
    | Some items ->
      let rec decode acc = function
        | [] -> Some (List.rev acc)
        | item :: rest -> (
          match
            ( Option.bind (J.member "channel" item) J.to_string_opt,
              Option.bind (J.member "text" item) J.to_string_opt )
          with
          | Some ch, Some text -> decode ((ch, text) :: acc) rest
          | _ -> None)
      in
      decode [] items)

let disk_find t k =
  match t.dir with
  | None -> None
  | Some dir -> (
    match
      Store.load ~path:(artifact_path dir k) ~magic:disk_magic
        ~version:disk_version
    with
    | Ok None -> None
    | Ok (Some payload) -> outputs_of_payload payload
    | Error _ ->
      t.disk_errors <- t.disk_errors + 1;
      None)

let disk_add t k outputs =
  match t.dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then (try Unix.mkdir dir 0o755 with _ -> ());
    (match
       Store.save ~path:(artifact_path dir k) ~magic:disk_magic
         ~version:disk_version
         (outputs_to_payload outputs)
     with
    | Ok () -> ()
    | Error _ -> t.disk_errors <- t.disk_errors + 1)

(* ------------------------------------------------------------------ *)

type hit_kind = Memory | Disk

let find t k =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some outputs ->
    t.mem_hits <- t.mem_hits + 1;
    Some (outputs, Memory)
  | None -> (
    match disk_find t k with
    | Some outputs ->
      t.disk_hits <- t.disk_hits + 1;
      Hashtbl.replace t.table k outputs;
      Some (outputs, Disk)
    | None ->
      t.misses <- t.misses + 1;
      None)

let add t k outputs =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.table k) then begin
    Hashtbl.replace t.table k outputs;
    t.insertions <- t.insertions + 1;
    disk_add t k outputs
  end

type snapshot = {
  sn_entries : int;
  sn_mem_hits : int;
  sn_disk_hits : int;
  sn_misses : int;
  sn_insertions : int;
  sn_disk_errors : int;
}

let snapshot t =
  locked t @@ fun () ->
  { sn_entries = Hashtbl.length t.table; sn_mem_hits = t.mem_hits;
    sn_disk_hits = t.disk_hits; sn_misses = t.misses;
    sn_insertions = t.insertions; sn_disk_errors = t.disk_errors }
