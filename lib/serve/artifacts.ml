(** Content-addressed artifact store.  See the interface for the
    contract.  The disk payload is the JSON encoding of the response
    pieces inside the shared {!Store} container — human-inspectable
    with [tail -c +N], checksummed, versioned, and fail-safe to load.

    Both tiers are bounded when a capacity is configured.  The memory
    tier is an LRU over a logical access clock; the disk tier evicts
    the artifact with the oldest modification time, and a disk hit
    refreshes its file's timestamp, so the two tiers age together. *)

module J = Telemetry.Json

type entry = {
  mutable last_used : int;  (** logical access clock, not wall time *)
  outputs : (string * string) list;
}

type t = {
  dir : string option;
  cap : int option;
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable disk_evictions : int;
  mutable disk_errors : int;
}

let create ?dir ?cap () =
  (match cap with
  | Some n when n < 1 -> invalid_arg "Artifacts.create: cap must be positive"
  | _ -> ());
  { dir; cap; lock = Mutex.create (); table = Hashtbl.create 64; clock = 0;
    mem_hits = 0; disk_hits = 0; misses = 0; insertions = 0; evictions = 0;
    disk_evictions = 0; disk_errors = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let key ~modules ~options_canon =
  let buf = Buffer.create 256 in
  Buffer.add_string buf Protocol.magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf options_canon;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, source) ->
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (Minic.Compile.source_hash
           (Minic.Compile.source ~module_name:name source));
      Buffer.add_char buf '\n')
    modules;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Disk layer.                                                         *)

let disk_magic = "hlod-artifact"
let disk_version = 1

let artifact_path dir k = Filename.concat dir (k ^ ".hart")

let outputs_to_payload outputs =
  J.to_string
    (J.List
       (List.map
          (fun (ch, text) ->
            J.Assoc [ ("channel", J.String ch); ("text", J.String text) ])
          outputs))

let outputs_of_payload payload =
  match J.of_string payload with
  | Error _ -> None
  | Ok json -> (
    match J.to_list_opt json with
    | None -> None
    | Some items ->
      let rec decode acc = function
        | [] -> Some (List.rev acc)
        | item :: rest -> (
          match
            ( Option.bind (J.member "channel" item) J.to_string_opt,
              Option.bind (J.member "text" item) J.to_string_opt )
          with
          | Some ch, Some text -> decode ((ch, text) :: acc) rest
          | _ -> None)
      in
      decode [] items)

let disk_find t k =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = artifact_path dir k in
    match Store.load ~path ~magic:disk_magic ~version:disk_version with
    | Ok None -> None
    | Ok (Some payload) -> (
      match outputs_of_payload payload with
      | None -> None
      | Some outputs ->
        (* Refresh the mtime so LRU disk eviction sees the hit. *)
        (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
        Some outputs)
    | Error _ ->
      t.disk_errors <- t.disk_errors + 1;
      None)

(* Evict oldest-mtime artifacts until at most [cap] remain.  Runs after
   each write; the directory holds at most [cap] files plus whatever a
   concurrent daemon wrote, so the scan stays small. *)
let disk_evict t dir cap =
  let files =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | names ->
      Array.of_seq
        (Seq.filter_map
           (fun name ->
             if Filename.check_suffix name ".hart" then
               let path = Filename.concat dir name in
               match Unix.stat path with
               | st -> Some (st.Unix.st_mtime, path)
               | exception Unix.Unix_error _ -> None
             else None)
           (Array.to_seq names))
  in
  if Array.length files > cap then begin
    Array.sort compare files;
    Array.iteri
      (fun i (_, path) ->
        if i < Array.length files - cap then (
          try
            Sys.remove path;
            t.disk_evictions <- t.disk_evictions + 1
          with Sys_error _ -> t.disk_errors <- t.disk_errors + 1))
      files
  end

let disk_add t k outputs =
  match t.dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then (try Unix.mkdir dir 0o755 with _ -> ());
    (match
       Store.save ~path:(artifact_path dir k) ~magic:disk_magic
         ~version:disk_version
         (outputs_to_payload outputs)
     with
    | Ok () -> Option.iter (fun cap -> disk_evict t dir cap) t.cap
    | Error _ -> t.disk_errors <- t.disk_errors + 1)

(* ------------------------------------------------------------------ *)
(* Memory layer LRU.                                                   *)

let mem_evict t cap =
  while Hashtbl.length t.table > cap do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when best <= e.last_used -> acc
          | _ -> Some (k, e.last_used))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  done

let mem_insert t k outputs =
  Hashtbl.replace t.table k { last_used = tick t; outputs };
  Option.iter (fun cap -> mem_evict t cap) t.cap

(* ------------------------------------------------------------------ *)

type hit_kind = Memory | Disk

let find t k =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some e ->
    e.last_used <- tick t;
    t.mem_hits <- t.mem_hits + 1;
    Some (e.outputs, Memory)
  | None -> (
    match disk_find t k with
    | Some outputs ->
      t.disk_hits <- t.disk_hits + 1;
      mem_insert t k outputs;
      Some (outputs, Disk)
    | None ->
      t.misses <- t.misses + 1;
      None)

let add t k outputs =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.table k) then begin
    mem_insert t k outputs;
    t.insertions <- t.insertions + 1;
    disk_add t k outputs
  end

type snapshot = {
  sn_entries : int;
  sn_mem_hits : int;
  sn_disk_hits : int;
  sn_misses : int;
  sn_insertions : int;
  sn_evictions : int;
  sn_disk_evictions : int;
  sn_disk_errors : int;
}

let snapshot t =
  locked t @@ fun () ->
  { sn_entries = Hashtbl.length t.table; sn_mem_hits = t.mem_hits;
    sn_disk_hits = t.disk_hits; sn_misses = t.misses;
    sn_insertions = t.insertions; sn_evictions = t.evictions;
    sn_disk_evictions = t.disk_evictions; sn_disk_errors = t.disk_errors }
