(** Content-addressed artifact store for the compile daemon.

    A compile request is addressed by what it *is*: the source hashes
    of its modules (the isom layer's staleness keys) plus every option
    that can change the output.  Identical modules submitted by any
    number of clients therefore compile exactly once; later requests
    are served the stored response pieces byte-for-byte.

    Artifacts live in a mutex-guarded memory table and, when a
    directory is configured, on disk in the shared {!Store} container
    (magic ["hlod-artifact"]), so a restarted daemon keeps its cache.
    Disk loading is fail-safe: a corrupt artifact is treated as a
    miss and recompiled, never trusted. *)

type t

(** [create ~dir ()] — [dir] is created on first write if missing. *)
val create : ?dir:string -> unit -> t

(** The content address: module source hashes + the canonical option
    string.  Stable across processes and runs. *)
val key :
  modules:(string * string) list -> options_canon:string -> string

type hit_kind = Memory | Disk

(** Look up stored response pieces; a disk hit is promoted into
    memory. *)
val find : t -> string -> ((string * string) list * hit_kind) option

(** Store the pieces under [key] (memory, and disk when configured). *)
val add : t -> string -> (string * string) list -> unit

type snapshot = {
  sn_entries : int;  (** resident in memory *)
  sn_mem_hits : int;
  sn_disk_hits : int;
  sn_misses : int;
  sn_insertions : int;
  sn_disk_errors : int;  (** unreadable/unwritable artifacts, tolerated *)
}

val snapshot : t -> snapshot
