(** Content-addressed artifact store for the compile daemon.

    A compile request is addressed by what it *is*: the source hashes
    of its modules (the isom layer's staleness keys) plus every option
    that can change the output.  Identical modules submitted by any
    number of clients therefore compile exactly once; later requests
    are served the stored response pieces byte-for-byte.

    Artifacts live in a mutex-guarded memory table and, when a
    directory is configured, on disk in the shared {!Store} container
    (magic ["hlod-artifact"]), so a restarted daemon keeps its cache.
    Disk loading is fail-safe: a corrupt artifact is treated as a
    miss and recompiled, never trusted.

    With a capacity configured, both tiers are bounded at [cap]
    entries.  The memory tier evicts least-recently-used (lookups and
    insertions both count as use); the disk tier evicts the artifact
    file with the oldest modification time, and disk hits refresh the
    timestamp, so a long-lived daemon's cache directory cannot grow
    without bound. *)

type t

(** [create ~dir ~cap ()] — [dir] is created on first write if
    missing; [cap] (when given, must be positive) bounds each tier.
    No [cap] means unbounded, the pre-eviction behavior. *)
val create : ?dir:string -> ?cap:int -> unit -> t

(** The content address: module source hashes + the canonical option
    string.  Stable across processes and runs. *)
val key :
  modules:(string * string) list -> options_canon:string -> string

type hit_kind = Memory | Disk

(** Look up stored response pieces; a disk hit is promoted into
    memory. *)
val find : t -> string -> ((string * string) list * hit_kind) option

(** Store the pieces under [key] (memory, and disk when configured). *)
val add : t -> string -> (string * string) list -> unit

type snapshot = {
  sn_entries : int;  (** resident in memory *)
  sn_mem_hits : int;
  sn_disk_hits : int;
  sn_misses : int;
  sn_insertions : int;
  sn_evictions : int;  (** memory-tier LRU evictions *)
  sn_disk_evictions : int;  (** artifact files removed to honor [cap] *)
  sn_disk_errors : int;  (** unreadable/unwritable artifacts, tolerated *)
}

val snapshot : t -> snapshot
