(** The compile service.  See the interface for the request lifecycle;
    this file owns the shared stores (artifacts, admission, the
    in-flight coalescing table) and the one compile lock.

    Serializing the compile itself is a requirement, not a
    shortcut: the warm work-stealing pool supports one in-flight
    batch per process, and the ambient telemetry collector — which is
    what captures the per-request decision journal — is process-global.
    Concurrency lives where it pays: connection handling, frame
    parsing, cache lookups, coalescing and admission all overlap; the
    cores go to *one* compile at a time through the pool. *)

module J = Telemetry.Json
module P = Protocol

type config = {
  jobs : int;
  server_budget : float;
  request_budget : float;
  queue_limit : int;
  artifact_dir : string option;
  artifact_cap : int option;
  summary_cache : string option;
  max_frame : int;
}

let default_config =
  { jobs = 1; server_budget = 4.0e9; request_budget = 1.0e9;
    queue_limit = 256; artifact_dir = None; artifact_cap = None;
    summary_cache = None;
    max_frame = P.default_max_frame }

(* What a finished leader leaves for coalesced waiters: the output
   superset on success, or the verbatim failure/rejection response. *)
type outcome =
  | Superset of (string * string) list
  | Failure of P.response

type inflight = { mutable done_ : outcome option; resolved : Condition.t }

type t = {
  cfg : config;
  admission : Admission.t;
  artifacts : Artifacts.t;
  telem : Telemetry.Collector.t;  (** server-lifetime counters/spans *)
  lock : Mutex.t;  (** guards [inflight], [stopping], [active] *)
  inflight : (string, inflight) Hashtbl.t;
  compile_lock : Mutex.t;  (** one compile at a time (pool contract) *)
  drained : Condition.t;
  mutable stopping : bool;
  mutable active : int;  (** compile requests inside {!handle} *)
}

let create cfg =
  Parallel.Pool.set_jobs cfg.jobs;
  (match cfg.summary_cache with
  | None -> ()
  | Some path -> ignore (Hlo.Summary_cache.load path : (int, string) result));
  { cfg;
    artifacts = Artifacts.create ?dir:cfg.artifact_dir ?cap:cfg.artifact_cap ();
    admission =
      Admission.create ~server_budget:cfg.server_budget
        ~request_budget:cfg.request_budget ~queue_limit:cfg.queue_limit;
    telem = Telemetry.Collector.create (); lock = Mutex.create ();
    inflight = Hashtbl.create 16; compile_lock = Mutex.create ();
    drained = Condition.create (); stopping = false; active = 0 }

let config t = t.cfg

let count t name = Telemetry.Collector.count_in t.telem name 1.0
let gauge t name v = Telemetry.Collector.gauge_in t.telem name v

(* ------------------------------------------------------------------ *)
(* Option plumbing.                                                    *)

let scope_of_string = function
  | "base" -> Hlo.Config.Base
  | "c" -> Hlo.Config.C
  | "p" -> Hlo.Config.P
  | "cp" -> Hlo.Config.CP
  | s -> invalid_arg ("Service: unknown scope " ^ s)

let inline_mode_of_string s =
  match Policy.inline_mode_of_name s with
  | Ok m -> m
  | Error msg -> invalid_arg ("Service: " ^ msg)

let hlo_config_of (o : P.compile_options) =
  Hlo.Config.with_scope
    { Hlo.Config.default with
      Hlo.Config.budget_percent = o.P.co_budget;
      pass_limit = o.P.co_passes; enable_inlining = o.P.co_inline;
      enable_cloning = o.P.co_clone; max_operations = o.P.co_max_ops;
      inline_mode = inline_mode_of_string o.P.co_inline_mode }
    (scope_of_string o.P.co_scope)

(* Everything that changes the computed output *superset* — and nothing
   that only changes which pieces a client asks to see (stats,
   dump_ir, dump_journal are selection, not computation).  The policy
   enters as its canonical hash, so a tuned compile and a default one
   of the same sources can never alias in the artifact store. *)
let options_canon (o : P.compile_options) =
  let policy =
    match o.P.co_policy with
    | None -> "-"
    | Some text -> (
      match Policy.of_string text with
      | Ok p -> Policy.hash p
      | Error _ -> "bad:" ^ Digest.to_hex (Digest.string text))
  in
  Printf.sprintf
    "scope=%s;budget=%h;passes=%d;inline=%b;clone=%b;max_ops=%s;mode=%s;\
     main=%s;runner=%s;profile=%b;asm=%b;policy=%s"
    o.P.co_scope o.P.co_budget o.P.co_passes o.P.co_inline o.P.co_clone
    (match o.P.co_max_ops with None -> "-" | Some n -> string_of_int n)
    o.P.co_inline_mode o.P.co_main o.P.co_runner o.P.co_dump_profile
    o.P.co_dump_asm policy

(* The pieces of the superset a given client printout wants, in
   `hloc`'s print order.  [diag] always rides along (it goes to
   stderr). *)
let select_outputs (superset : (string * string) list)
    (o : P.compile_options) : (string * string) list =
  let piece name = List.assoc_opt name superset in
  let want =
    [ ("diag", true);
      ("train", o.P.co_stats);
      ("profile", o.P.co_dump_profile);
      ("report", o.P.co_stats);
      ("ir", o.P.co_dump_ir);
      ("asm", o.P.co_dump_asm);
      ("journal", o.P.co_dump_journal);
      ("run_output", true);
      ("run_stats", o.P.co_stats) ]
  in
  List.filter_map
    (fun (name, wanted) ->
      if wanted then Option.map (fun text -> (name, text)) (piece name)
      else None)
    want

(* ------------------------------------------------------------------ *)
(* The compile itself — `hloc`'s whole-program mode, rendered through
   {!Render} so the bytes match the CLI exactly.                       *)

exception
  Compile_failed of {
    kind : string;
    reason : string;
    outputs : (string * string) list;
  }

let run_pipeline (modules : (string * string) list) (o : P.compile_options) :
    (string * string) list =
  let produced = ref [] in
  let emit name text = produced := (name, text) :: !produced in
  let fail kind reason =
    raise (Compile_failed { kind; reason; outputs = List.rev !produced })
  in
  try
    (* A malformed policy is the client's mistake; reject it before
       spending any compile work. *)
    let policy =
      match o.P.co_policy with
      | None -> None
      | Some text -> (
        match Policy.of_string text with
        | Ok p -> Some p
        | Error msg -> fail "bad_request" ("bad policy: " ^ msg))
    in
    let sources =
      List.map
        (fun (name, text) -> Minic.Compile.source ~module_name:name text)
        modules
    in
    let program, diags =
      Telemetry.Collector.with_span "minic.compile" (fun () ->
          Minic.Compile.compile_program ~main:o.P.co_main sources)
    in
    emit "diag" (Render.diag diags);
    let config =
      let base = hlo_config_of o in
      match policy with
      | None -> base
      | Some p -> Hlo.Config.of_policy ~base p
    in
    let profile =
      if config.Hlo.Config.use_profile then begin
        let r = Interp.train program in
        emit "train" (Render.train_line r);
        r.Interp.profile
      end
      else Ucode.Profile.empty
    in
    if o.P.co_dump_profile then emit "profile" (Render.profile profile);
    let result = Hlo.Driver.run ~config ~profile program in
    let optimized = result.Hlo.Driver.program in
    emit "report" (Render.report_line result.Hlo.Driver.report);
    emit "ir" (Render.ir optimized);
    if o.P.co_dump_asm then emit "asm" (Render.asm optimized);
    (match Telemetry.Collector.active () with
    | Some c -> emit "journal" (Render.journal (Telemetry.Collector.decisions c))
    | None -> emit "journal" "");
    (match o.P.co_runner with
    | "none" -> ()
    | "interp" ->
      let r = Interp.run optimized in
      emit "run_output" r.Interp.output;
      emit "run_stats" (Render.interp_stats_line r)
    | "sim" ->
      let r = Machine.Sim.run_program optimized in
      emit "run_output" r.Machine.Sim.output;
      emit "run_stats" (Render.sim_stats_line r)
    | r -> fail "bad_request" ("unknown runner " ^ r));
    List.rev !produced
  with
  | Compile_failed _ as e -> raise e
  | Minic.Diag.Compile_error diags ->
    raise
      (Compile_failed
         { kind = "compile_error"; reason = "compilation failed";
           outputs = [ ("diag", Render.diag diags) ] })
  | Ucode.Linker.Link_error msg -> fail "compile_error" ("link error: " ^ msg)
  | Sys_error msg -> fail "compile_error" msg
  | Interp.Trap (trap, where) ->
    fail "trap"
      (Printf.sprintf "trap in %s: %s" where (Interp.trap_message trap))
  | Machine.Sim.Trap (trap, pc) ->
    fail "trap"
      (Printf.sprintf "machine trap at %d: %s" pc
         (Machine.Sim.trap_message trap))
  | Hlo.Driver.Invalid_ir { stage; errors } ->
    fail "internal" (Printf.sprintf "invalid IR after %s: %s" stage errors)

(* Run the pipeline under the compile lock with a private collector
   installed, so the decision journal belongs to exactly this
   request.  The previously ambient collector (if any — tests install
   their own) is restored afterwards. *)
let compile_serialized t modules o =
  Mutex.lock t.compile_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.compile_lock) @@ fun () ->
  Telemetry.Collector.with_span_in t.telem "serve.compile" @@ fun () ->
  let prev = Telemetry.Collector.active () in
  let c = Telemetry.Collector.create () in
  Telemetry.Collector.install c;
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some p -> Telemetry.Collector.install p
      | None -> Telemetry.Collector.uninstall ())
    (fun () -> run_pipeline modules o)

(* ------------------------------------------------------------------ *)
(* Request handling.                                                   *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stopping t = locked t (fun () -> t.stopping)

let enter t =
  locked t @@ fun () ->
  if t.stopping then false
  else begin
    t.active <- t.active + 1;
    true
  end

let leave t =
  locked t @@ fun () ->
  t.active <- t.active - 1;
  if t.active = 0 then Condition.broadcast t.drained

let shutdown_reject : P.response =
  P.Rejected
    { P.rj_kind = "shutting_down"; rj_cost = 0.0; rj_limit = 0.0;
      rj_reason = "the server is shutting down" }

(* Resolve the in-flight entry for [key] and wake its waiters. *)
let resolve t key outcome =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.inflight key with
  | None -> ()
  | Some fl ->
    fl.done_ <- Some outcome;
    Hashtbl.remove t.inflight key;
    Condition.broadcast fl.resolved

let handle_compile t modules (o : P.compile_options) : P.response =
  let t0 = Telemetry.Clock.now_us () in
  let key = Artifacts.key ~modules ~options_canon:(options_canon o) in
  let elapsed () = Telemetry.Clock.now_us () -. t0 in
  let compiled ~cache ~queued superset =
    P.Compiled
      { outputs = select_outputs superset o; cache; key; queued;
        elapsed_us = elapsed () }
  in
  match Artifacts.find t.artifacts key with
  | Some (superset, kind) ->
    count t "serve.cache.hit";
    compiled
      ~cache:(match kind with Artifacts.Memory -> "hit" | Artifacts.Disk -> "disk")
      ~queued:false superset
  | None -> (
    (* Leader or coalesced waiter? *)
    let role =
      locked t @@ fun () ->
      match Artifacts.find t.artifacts key with
      | Some (superset, _) -> `Hit superset
      | None -> (
        match Hashtbl.find_opt t.inflight key with
        | Some fl -> `Wait fl
        | None ->
          let fl = { done_ = None; resolved = Condition.create () } in
          Hashtbl.replace t.inflight key fl;
          `Lead)
    in
    match role with
    | `Hit superset ->
      count t "serve.cache.hit";
      compiled ~cache:"hit" ~queued:false superset
    | `Wait fl -> (
      count t "serve.coalesced";
      let outcome =
        locked t @@ fun () ->
        while fl.done_ = None do
          Condition.wait fl.resolved t.lock
        done;
        Option.get fl.done_
      in
      match outcome with
      | Superset superset -> compiled ~cache:"coalesced" ~queued:false superset
      | Failure resp -> resp)
    | `Lead -> (
      let cost = Admission.cost_of_modules modules in
      match Admission.admit t.admission ~cost with
      | Error rej ->
        count t ("serve.rejected." ^ rej.P.rj_kind);
        let resp = P.Rejected rej in
        resolve t key (Failure resp);
        resp
      | Ok ticket ->
        let finish outcome resp =
          Admission.release t.admission ticket;
          resolve t key outcome;
          resp
        in
        if ticket.Admission.tk_queued then begin
          count t "serve.queued";
          Telemetry.Collector.count_in t.telem "serve.queued_us"
            ticket.Admission.tk_queued_us
        end;
        gauge t "serve.queue_depth"
          (float_of_int (Admission.snapshot t.admission).Admission.sn_waiting);
        (match compile_serialized t modules o with
        | superset ->
          count t "serve.compiled";
          Artifacts.add t.artifacts key superset;
          finish (Superset superset)
            (compiled ~cache:"miss" ~queued:ticket.Admission.tk_queued
               superset)
        | exception Compile_failed { kind; reason; outputs } ->
          count t "serve.failed";
          let resp = P.Failed { kind; reason; outputs } in
          finish (Failure resp) resp
        | exception e ->
          count t "serve.failed";
          let resp =
            P.Failed
              { kind = "internal"; reason = Printexc.to_string e;
                outputs = [] }
          in
          finish (Failure resp) resp)))

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)

let stats_json t : J.t =
  let adm = Admission.snapshot t.admission in
  let art = Artifacts.snapshot t.artifacts in
  let sc = Hlo.Summary_cache.stats () in
  let cdb = Hlo.Clone_db.stats () in
  let counters =
    J.Assoc
      (List.map
         (fun (name, v) -> (name, J.Float v))
         (Telemetry.Counters.to_sorted_list
            (Telemetry.Collector.counters t.telem)))
  in
  J.Assoc
    [ ( "admission",
        J.Assoc
          [ ("in_use", J.Float adm.Admission.sn_in_use);
            ("server_budget", J.Float adm.Admission.sn_server_budget);
            ("request_budget", J.Float adm.Admission.sn_request_budget);
            ("queue_limit", J.Int adm.Admission.sn_queue_limit);
            ("waiting", J.Int adm.Admission.sn_waiting);
            ("admitted", J.Int adm.Admission.sn_admitted);
            ("queued", J.Int adm.Admission.sn_queued);
            ("rejected_over_budget",
             J.Int adm.Admission.sn_rejected_over_budget);
            ("rejected_queue_full",
             J.Int adm.Admission.sn_rejected_queue_full);
            ("rejected_shutdown", J.Int adm.Admission.sn_rejected_shutdown);
            ("peak_waiting", J.Int adm.Admission.sn_peak_waiting) ] );
      ( "artifacts",
        J.Assoc
          [ ("entries", J.Int art.Artifacts.sn_entries);
            ("memory_hits", J.Int art.Artifacts.sn_mem_hits);
            ("disk_hits", J.Int art.Artifacts.sn_disk_hits);
            ("misses", J.Int art.Artifacts.sn_misses);
            ("insertions", J.Int art.Artifacts.sn_insertions);
            ("evictions", J.Int art.Artifacts.sn_evictions);
            ("disk_evictions", J.Int art.Artifacts.sn_disk_evictions);
            ("disk_errors", J.Int art.Artifacts.sn_disk_errors) ] );
      ( "summary_cache",
        J.Assoc
          [ ("hits", J.Int sc.Hlo.Summary_cache.hits);
            ("misses", J.Int sc.Hlo.Summary_cache.misses);
            ("entries", J.Int sc.Hlo.Summary_cache.entries);
            ("loaded", J.Int sc.Hlo.Summary_cache.loaded) ] );
      ( "clone_db",
        J.Assoc
          [ ("hits", J.Int cdb.Hlo.Clone_db.hits);
            ("misses", J.Int cdb.Hlo.Clone_db.misses);
            ("entries", J.Int cdb.Hlo.Clone_db.entries) ] );
      ("pool", J.Assoc [ ("jobs", J.Int (Parallel.Pool.get_jobs ())) ]);
      ("counters", counters) ]

(* ------------------------------------------------------------------ *)

let handle t (req : P.request) : P.response =
  try
    match req with
    | P.Ping ->
      count t "serve.requests.ping";
      P.Pong
    | P.Stats ->
      count t "serve.requests.stats";
      P.Stats_reply (stats_json t)
    | P.Shutdown ->
      count t "serve.requests.shutdown";
      (* The server layer drains before replying; handled there. *)
      P.Shutting_down
    | P.Compile { modules; options } ->
      count t "serve.requests.compile";
      if not (enter t) then shutdown_reject
      else
        Fun.protect
          ~finally:(fun () -> leave t)
          (fun () -> handle_compile t modules options)
  with e ->
    P.Failed
      { kind = "internal"; reason = Printexc.to_string e; outputs = [] }

let stop t =
  locked t (fun () -> t.stopping <- true);
  Admission.close t.admission

let drain t =
  locked t (fun () ->
      while t.active > 0 do
        Condition.wait t.drained t.lock
      done);
  match t.cfg.summary_cache with
  | None -> ()
  | Some path -> ignore (Hlo.Summary_cache.save path : (unit, string) result)
