(** The hlod wire protocol: length-prefixed JSON frames over a stream.

    A frame is one ASCII header line

      hlod1 <payload-length>\n

    followed by exactly [payload-length] bytes of JSON.  The magic
    carries the protocol version (a server and client from different
    releases fail loudly instead of mis-parsing), the explicit length
    makes framing unambiguous without escaping, and the header stays
    printable so a hexdump of a socket capture reads itself.

    Reading is fail-safe in the {!Store} tradition: a malformed header,
    an oversized announced length or a truncated payload come back as
    values ([Closed] / [Malformed] / [Oversized]), never an exception,
    so a server can answer garbage with a structured error and keep
    serving. *)

val magic : string
(** ["hlod1"] — bumped when the frame or message format changes. *)

val default_max_frame : int
(** Default cap on payload bytes (16 MiB). *)

type frame_error =
  | Closed  (** clean EOF before the first header byte *)
  | Truncated  (** EOF inside the header or payload *)
  | Malformed of string  (** bad magic or unparsable length *)
  | Oversized of { announced : int; limit : int }

val frame_error_to_string : frame_error -> string

(** [read_frame ?max_bytes ic] reads one frame payload. *)
val read_frame : ?max_bytes:int -> in_channel -> (string, frame_error) result

(** [write_frame oc payload] writes header + payload and flushes. *)
val write_frame : out_channel -> string -> unit

(** {1 Messages} *)

(** Everything about a compile the daemon needs to reproduce `hloc`
    bit-for-bit: the flag set mirrors `hloc`'s whole-program mode. *)
type compile_options = {
  co_scope : string;  (** "base" | "c" | "p" | "cp" *)
  co_budget : float;
  co_passes : int;
  co_inline : bool;
  co_clone : bool;
  co_max_ops : int option;
  co_policy : string option;
      (** canonical policy text ({!Policy.to_string}); overlays the
          tuned knobs on top of the flag-derived configuration, exactly
          as `hloc --policy` does in-process *)
  co_inline_mode : string;
      (** "whole" | "region" | "demand"; absent on the wire means
          "whole", so pre-mode clients interoperate unchanged *)
  co_main : string;
  co_runner : string;  (** "none" | "interp" | "sim" *)
  co_stats : bool;
  co_dump_ir : bool;
  co_dump_profile : bool;
  co_dump_asm : bool;
  co_dump_journal : bool;
}

val default_options : compile_options

type request =
  | Compile of {
      modules : (string * string) list;  (** module name, MiniC text *)
      options : compile_options;
    }
  | Stats
  | Ping
  | Shutdown

(** Structured admission-control verdict. *)
type reject = {
  rj_kind : string;
      (** "request_over_budget" | "queue_full" | "shutting_down" *)
  rj_cost : float;  (** estimated cost of the rejected request *)
  rj_limit : float;  (** the budget or queue bound that was exceeded *)
  rj_reason : string;  (** human-readable sentence *)
}

type response =
  | Compiled of {
      outputs : (string * string) list;
          (** ordered (channel, text) pieces: ["diag"] goes to stderr,
              everything else to stdout in list order *)
      cache : string;  (** "miss" | "hit" | "disk" | "coalesced" *)
      key : string;  (** content-address of the request *)
      queued : bool;  (** admission made the request wait *)
      elapsed_us : float;
    }
  | Failed of {
      kind : string;  (** "compile_error" | "trap" | "bad_request" *)
      reason : string;  (** what `hloc` would put in its error exit *)
      outputs : (string * string) list;
          (** pieces produced before the failure, same conventions *)
    }
  | Rejected of reject
  | Stats_reply of Telemetry.Json.t
  | Pong
  | Shutting_down

val request_to_json : request -> Telemetry.Json.t
val request_of_json : Telemetry.Json.t -> (request, string) result
val response_to_json : response -> Telemetry.Json.t
val response_of_json : Telemetry.Json.t -> (response, string) result

(** Encode + frame in one step. *)
val write_request : out_channel -> request -> unit

val write_response : out_channel -> response -> unit

(** Read + decode; a decode failure is [Error (Malformed _)]. *)
val read_request :
  ?max_bytes:int -> in_channel -> (request, frame_error) result

val read_response :
  ?max_bytes:int -> in_channel -> (response, frame_error) result
