(** The socket layer of `hlod`: a Unix-domain listener, one systhread
    per connection, frames in / frames out, with the {!Service}
    underneath doing all the work.

    Failure policy per connection: a clean EOF or a mid-request
    disconnect just closes that connection; a malformed or oversized
    frame gets a structured [Failed "bad_request"] reply and then the
    connection is dropped (framing is unrecoverable once the byte
    stream is off).  None of these touch the listener — the server
    keeps serving.

    Shutdown (either a [Shutdown] request or {!stop}) drains: new
    compiles are rejected with ["shutting_down"], in-flight compiles
    complete and their responses are delivered, the summary cache is
    persisted, and only then is the [Shutting_down] reply sent and the
    listener closed. *)

type t

(** [start ~socket config] binds [socket] (removing a stale file at
    that path), starts the accept loop in a background thread and
    returns immediately.  SIGPIPE is ignored process-wide — a client
    that disconnects mid-reply must not kill the daemon.
    @raise Unix.Unix_error when the socket cannot be bound. *)
val start : socket:string -> Service.config -> t

val service : t -> Service.t
val socket_path : t -> string

(** Block until the server has shut down (via a [Shutdown] request or
    a concurrent {!stop}) and every connection thread has exited. *)
val wait : t -> unit

(** Drain the service and shut the listener down, then {!wait}.
    Idempotent. *)
val stop : t -> unit

(** [start] + [wait], for `bin/hlod`. *)
val run : socket:string -> Service.config -> unit
