(** The machine simulator — our stand-in for the PA8000 simulator the
    paper used to produce Figure 7.

    Executes a laid-out {!Layout.image} while driving an I-cache (one
    access per instruction fetch), a D-cache (one access per load or
    store) and a branch predictor (returns and indirect calls always
    mispredict, per the paper's description of the PA8000).  The cycle
    model charges one cycle per retired instruction plus fixed miss and
    mispredict penalties — crude next to real out-of-order hardware,
    but it moves for the same reasons the PA8000's numbers moved, which
    is what the relative comparisons in Figure 7 need. *)

module U = Ucode.Types
module V = Vinsn

type penalties = {
  icache_miss : int;
  dcache_miss : int;
  branch_mispredict : int;
  mul_extra : int;  (** extra cycles for a multiply (beyond the base 1) *)
  div_extra : int;  (** extra cycles for a divide/remainder *)
}

let default_penalties =
  { icache_miss = 20; dcache_miss = 20; branch_mispredict = 5; mul_extra = 2;
    div_extra = 15 }

type config = {
  memory_cells : int;
  max_instructions : int;
  icache : Cache.config;
  dcache : Cache.config;
  predictor_entries : int;
  penalties : penalties;
}

let default_config =
  { memory_cells = 1 lsl 20; max_instructions = 400_000_000;
    icache = Cache.default_icache; dcache = Cache.default_dcache;
    predictor_entries = 256; penalties = default_penalties }

type trap =
  | Division_by_zero
  | Memory_fault of int64
  | Stack_overflow
  | Bad_jump of int
  | Aborted
  | Out_of_instructions
  | Out_of_memory

exception Trap of trap * int  (* pc *)

let trap_message = function
  | Division_by_zero -> "division by zero"
  | Memory_fault a -> Printf.sprintf "memory fault at %Ld" a
  | Stack_overflow -> "stack overflow"
  | Bad_jump a -> Printf.sprintf "jump outside code (%d)" a
  | Aborted -> "abort() called"
  | Out_of_instructions -> "instruction limit exceeded"
  | Out_of_memory -> "allocator exhausted memory"

type result = {
  exit_code : int64;
  output : string;
  metrics : Metrics.t;
}

let run ?(config = default_config) (image : Layout.image) : result =
  Telemetry.Collector.with_span "machine.sim" @@ fun () ->
  let code = image.Layout.code in
  let mem = Array.make config.memory_cells 0L in
  List.iter (fun (cell, v) -> mem.(cell) <- v) image.Layout.global_init;
  let regs = Array.make 32 0L in
  let icache = Cache.create config.icache in
  let dcache = Cache.create config.dcache in
  let predictor = Branch_predictor.create ~entries:config.predictor_entries () in
  let output = Buffer.create 256 in
  let brk = ref image.Layout.data_break in
  let instructions = ref 0 in
  let cycles = ref 0 in
  let pc = ref image.Layout.main_entry in
  let sp_init = config.memory_cells - 1 in
  regs.(Regalloc.sp) <- Int64.of_int sp_init;
  mem.(sp_init) <- Int64.of_int Layout.halt_address;  (* return into halt *)
  let data_access addr_int64 pc_now =
    let a = Int64.to_int addr_int64 in
    if Int64.compare addr_int64 1L < 0 || a >= config.memory_cells then
      raise (Trap (Memory_fault addr_int64, pc_now));
    if not (Cache.access dcache a) then
      cycles := !cycles + config.penalties.dcache_miss;
    a
  in
  let check_sp () =
    if Int64.to_int regs.(Regalloc.sp) <= !brk then
      raise (Trap (Stack_overflow, !pc))
  in
  let syscall name n pc_now =
    let arg i =
      let sp = Int64.to_int regs.(Regalloc.sp) in
      mem.(sp + n - 1 - i)
    in
    match name with
    | "print_int" ->
      Buffer.add_string output (Int64.to_string (arg 0));
      Buffer.add_char output '\n';
      0L
    | "print_char" ->
      Buffer.add_char output
        (Char.chr (Int64.to_int (Int64.logand (arg 0) 255L)));
      0L
    | "alloc" ->
      let k = Int64.to_int (arg 0) in
      if k < 0 || !brk + k >= Int64.to_int regs.(Regalloc.sp) then
        raise (Trap (Out_of_memory, pc_now));
      let a = !brk in
      brk := !brk + k;
      Int64.of_int a
    | "abort" -> raise (Trap (Aborted, pc_now))
    | _ -> raise (Trap (Aborted, pc_now))
  in
  let target_addr = function
    | V.Taddr a -> a
    | _ -> invalid_arg "Sim.run: unresolved branch target (layout bug)"
  in
  let alu op a b pc_now =
    let open Int64 in
    let of_bool v = if v then 1L else 0L in
    match op with
    | U.Add -> add a b
    | U.Sub -> sub a b
    | U.Mul -> mul a b
    | U.Div ->
      if equal b 0L then raise (Trap (Division_by_zero, pc_now));
      div a b
    | U.Rem ->
      if equal b 0L then raise (Trap (Division_by_zero, pc_now));
      rem a b
    | U.And -> logand a b
    | U.Or -> logor a b
    | U.Xor -> logxor a b
    | U.Shl -> shift_left a (to_int (logand b 63L))
    | U.Shr -> shift_right a (to_int (logand b 63L))
    | U.Eq -> of_bool (equal a b)
    | U.Ne -> of_bool (not (equal a b))
    | U.Lt -> of_bool (compare a b < 0)
    | U.Le -> of_bool (compare a b <= 0)
    | U.Gt -> of_bool (compare a b > 0)
    | U.Ge -> of_bool (compare a b >= 0)
  in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= Array.length code then raise (Trap (Bad_jump !pc, !pc));
    incr instructions;
    if !instructions > config.max_instructions then
      raise (Trap (Out_of_instructions, !pc));
    incr cycles;
    if not (Cache.access icache !pc) then
      cycles := !cycles + config.penalties.icache_miss;
    let here = !pc in
    let next = ref (here + 1) in
    (match code.(here) with
    | V.Mhalt -> running := false
    | V.Mli (d, k) -> regs.(d) <- k
    | V.Mla _ -> invalid_arg "Sim.run: unresolved Mla (layout bug)"
    | V.Mmov (d, a) -> regs.(d) <- regs.(a)
    | V.Malu (op, d, a, b) ->
      (match op with
      | U.Mul -> cycles := !cycles + config.penalties.mul_extra
      | U.Div | U.Rem -> cycles := !cycles + config.penalties.div_extra
      | _ -> ());
      regs.(d) <- alu op regs.(a) regs.(b) here
    | V.Mneg (d, a) -> regs.(d) <- Int64.neg regs.(a)
    | V.Mnot (d, a) -> regs.(d) <- (if Int64.equal regs.(a) 0L then 1L else 0L)
    | V.Maddi (d, a, k) ->
      regs.(d) <- Int64.add regs.(a) (Int64.of_int k);
      if d = Regalloc.sp then check_sp ()
    | V.Mload (d, a, off) ->
      let addr = data_access (Int64.add regs.(a) (Int64.of_int off)) here in
      regs.(d) <- mem.(addr)
    | V.Mstore (a, off, b) ->
      let addr = data_access (Int64.add regs.(a) (Int64.of_int off)) here in
      mem.(addr) <- regs.(b)
    | V.Mjmp t ->
      Branch_predictor.unconditional predictor;
      next := target_addr t
    | V.Mbeqz (r, t) ->
      let taken = Int64.equal regs.(r) 0L in
      if not (Branch_predictor.conditional predictor ~pc:here ~taken) then
        cycles := !cycles + config.penalties.branch_mispredict;
      if taken then next := target_addr t
    | V.Mbnez (r, t) ->
      let taken = not (Int64.equal regs.(r) 0L) in
      if not (Branch_predictor.conditional predictor ~pc:here ~taken) then
        cycles := !cycles + config.penalties.branch_mispredict;
      if taken then next := target_addr t
    | V.Mcall t ->
      Branch_predictor.unconditional predictor;
      let sp = Int64.to_int regs.(Regalloc.sp) - 1 in
      regs.(Regalloc.sp) <- Int64.of_int sp;
      check_sp ();
      let _ = data_access (Int64.of_int sp) here in
      mem.(sp) <- Int64.of_int (here + 1);
      next := target_addr t
    | V.Mcalli r ->
      Branch_predictor.always_mispredicted predictor;
      cycles := !cycles + config.penalties.branch_mispredict;
      let sp = Int64.to_int regs.(Regalloc.sp) - 1 in
      regs.(Regalloc.sp) <- Int64.of_int sp;
      check_sp ();
      let _ = data_access (Int64.of_int sp) here in
      mem.(sp) <- Int64.of_int (here + 1);
      next := Int64.to_int regs.(r)
    | V.Mret ->
      Branch_predictor.always_mispredicted predictor;
      cycles := !cycles + config.penalties.branch_mispredict;
      let sp = Int64.to_int regs.(Regalloc.sp) in
      let _ = data_access (Int64.of_int sp) here in
      let ra = mem.(sp) in
      regs.(Regalloc.sp) <- Int64.of_int (sp + 1);
      next := Int64.to_int ra
    | V.Msys (name, n) -> regs.(Regalloc.result_reg) <- syscall name n here);
    pc := !next
  done;
  if Telemetry.Collector.enabled () then begin
    Telemetry.Collector.annotate "instructions" (Telemetry.Event.Int !instructions);
    Telemetry.Collector.annotate "cycles" (Telemetry.Event.Int !cycles);
    Telemetry.Collector.count "machine.instructions" !instructions;
    Telemetry.Collector.count "machine.cycles" !cycles;
    Telemetry.Collector.count "machine.icache_misses" icache.Cache.misses;
    Telemetry.Collector.count "machine.dcache_misses" dcache.Cache.misses;
    Telemetry.Collector.count "machine.branch_mispredicts"
      predictor.Branch_predictor.mispredicts
  end;
  { exit_code = regs.(Regalloc.result_reg);
    output = Buffer.contents output;
    metrics =
      { Metrics.instructions = !instructions; cycles = !cycles;
        icache_accesses = icache.Cache.accesses;
        icache_misses = icache.Cache.misses;
        dcache_accesses = dcache.Cache.accesses;
        dcache_misses = dcache.Cache.misses;
        branches = predictor.Branch_predictor.branches;
        branch_mispredicts = predictor.Branch_predictor.mispredicts } }

(** Compile (lower + lay out) and simulate a ucode program. *)
let run_program ?config (p : U.program) : result =
  let image =
    Telemetry.Collector.with_span "machine.layout" (fun () -> Layout.build p)
  in
  run ?config image
