(** Front-end driver: source text to linked ucode program.

    This is the "front end + linker" half of the paper's isom pipeline:
    every module of the program is parsed, checked against the others'
    exports, lowered, and linked into a single {!Ucode.Types.program}
    ready for HLO.

    The stages are also exposed piecemeal ({!parse_source}, {!ext_for},
    {!lower_checked_unit}) because the isom layer (lib/isom) compiles
    modules *separately* and must produce, module for module, exactly
    the IR the whole-program path produces.  Sharing the stage
    functions and the external-environment rule makes that
    bit-identity true by construction rather than by testing alone. *)

type source = { src_module : string; src_text : string }

let source ~module_name text = { src_module = module_name; src_text = text }

(** Content hash of the module's source text — the isom layer's
    staleness key for incremental rebuilds. *)
let source_hash s = Ucode.Hash.string_hash s.src_text

(** Parse one module (telemetry span [minic.parse]).  Raises
    {!Diag.Compile_error} on lex/parse failure. *)
let parse_source (s : source) : Ast.unit_ =
  Telemetry.Collector.with_span "minic.parse" @@ fun () ->
  if Telemetry.Collector.enabled () then
    Telemetry.Collector.annotate "module" (Telemetry.Event.Str s.src_module);
  try
    Parser.parse ~module_name:s.src_module ~file:(s.src_module ^ ".mc")
      s.src_text
  with
  | Lexer.Lex_error d | Parser.Parse_error d -> raise (Diag.Compile_error [ d ])

(** The external environment module [module_name] is compiled against:
    the exports of every *other* module, in program order.  Both the
    whole-program path below and the separate-compilation path use
    this one rule, so a module's lowering cannot depend on which path
    ran it. *)
let ext_for ~(exports : (string * Sema.ext_env) list) ~module_name :
    Sema.ext_env =
  Sema.combine_exts
    (List.filter_map
       (fun (name, e) -> if name = module_name then None else Some e)
       exports)

(** Lower one sema-checked module (telemetry span [minic.lower]). *)
let lower_checked_unit ~ext (u : Ast.unit_) : Ucode.Linker.module_ir =
  Telemetry.Collector.with_span "minic.lower" @@ fun () ->
  if Telemetry.Collector.enabled () then
    Telemetry.Collector.annotate "module" (Telemetry.Event.Str u.Ast.u_name);
  Lower.lower_unit ~ext u

(** Compile and link a multi-module program.  Raises
    {!Diag.Compile_error} on the first batch of errors (warnings are
    returned alongside the program).

    Per-module lexing/parsing and lowering are independent, so both
    stages are sharded across the ambient domain pool.  The maps are
    order-preserving and raise the first failure *by module position*,
    so diagnostics, module order and the linked program are identical
    to a sequential compile at any [--jobs]. *)
let compile_program ?(main = "main") (sources : source list) :
    Ucode.Types.program * Diag.t list =
  let units = Parallel.Pool.map_list parse_source sources in
  let diags = Sema.check_program units in
  Diag.fail_on_errors diags;
  let exports =
    List.map (fun (u : Ast.unit_) -> (u.Ast.u_name, Sema.exports_of_unit u)) units
  in
  let modules =
    Parallel.Pool.map_list
      (fun (u : Ast.unit_) ->
        lower_checked_unit ~ext:(ext_for ~exports ~module_name:u.Ast.u_name) u)
      units
  in
  (Ucode.Linker.link ~main modules, diags)

(** Convenience for tests and examples: compile a single-module
    program given as one source string. *)
let compile_string ?(module_name = "main") ?(main = "main") text =
  fst (compile_program ~main [ source ~module_name text ])
