(** Front-end driver: source text to linked ucode program.

    This is the "front end + linker" half of the paper's isom pipeline:
    every module of the program is parsed, checked against the others'
    exports, lowered, and linked into a single {!Ucode.Types.program}
    ready for HLO. *)

type source = { src_module : string; src_text : string }

let source ~module_name text = { src_module = module_name; src_text = text }

(** Compile and link a multi-module program.  Raises
    {!Diag.Compile_error} on the first batch of errors (warnings are
    returned alongside the program).

    Per-module lexing/parsing and lowering are independent, so both
    stages are sharded across the ambient domain pool.  The maps are
    order-preserving and raise the first failure *by module position*,
    so diagnostics, module order and the linked program are identical
    to a sequential compile at any [--jobs]. *)
let compile_program ?(main = "main") (sources : source list) :
    Ucode.Types.program * Diag.t list =
  let units =
    Parallel.Pool.map_list
      (fun s ->
        Telemetry.Collector.with_span "minic.parse" @@ fun () ->
        if Telemetry.Collector.enabled () then
          Telemetry.Collector.annotate "module"
            (Telemetry.Event.Str s.src_module);
        try
          Parser.parse ~module_name:s.src_module ~file:(s.src_module ^ ".mc")
            s.src_text
        with
        | Lexer.Lex_error d | Parser.Parse_error d ->
          raise (Diag.Compile_error [ d ]))
      sources
  in
  let diags = Sema.check_program units in
  Diag.fail_on_errors diags;
  let all_exports = List.map Sema.exports_of_unit units in
  let modules =
    Parallel.Pool.map_list
      (fun (u : Ast.unit_) ->
        Telemetry.Collector.with_span "minic.lower" @@ fun () ->
        if Telemetry.Collector.enabled () then
          Telemetry.Collector.annotate "module"
            (Telemetry.Event.Str u.Ast.u_name);
        let ext =
          Sema.combine_exts
            (List.filteri
               (fun i _ -> (List.nth units i).Ast.u_name <> u.Ast.u_name)
               all_exports)
        in
        Lower.lower_unit ~ext u)
      units
  in
  (Ucode.Linker.link ~main modules, diags)

(** Convenience for tests and examples: compile a single-module
    program given as one source string. *)
let compile_string ?(module_name = "main") ?(main = "main") text =
  fst (compile_program ~main [ source ~module_name text ])
