(** Front-end driver: MiniC source text to a linked ucode program
    (the "front ends + linker" half of the paper's isom pipeline). *)

type source = { src_module : string; src_text : string }

val source : module_name:string -> string -> source

(** Content hash of the module's source text — the isom layer's
    staleness key for incremental rebuilds. *)
val source_hash : source -> Ucode.Hash.t

(** Parse one module.  Raises {!Diag.Compile_error} on lex/parse
    failure. *)
val parse_source : source -> Ast.unit_

(** The external environment a module is compiled against: the exports
    of every *other* module, in program order.  Shared between the
    whole-program path and the isom separate-compilation path so both
    lower a module identically. *)
val ext_for :
  exports:(string * Sema.ext_env) list -> module_name:string -> Sema.ext_env

(** Lower one sema-checked module to linkable IR. *)
val lower_checked_unit :
  ext:Sema.ext_env -> Ast.unit_ -> Ucode.Linker.module_ir

(** Parse, check (each module against the others' exports), lower and
    link a multi-module program.  Returns the program and all
    diagnostics (warnings included).  Raises {!Diag.Compile_error} on
    errors and {!Ucode.Linker.Link_error} on link failures. *)
val compile_program :
  ?main:string -> source list -> Ucode.Types.program * Diag.t list

(** Compile a single-module program given as one string. *)
val compile_string :
  ?module_name:string -> ?main:string -> string -> Ucode.Types.program
