type case = {
  c_label : string;
  c_sources : Minic.Compile.source list;
  c_check : Sem.check;
}

type failure_kind =
  | Mismatch of { cls : string; detail : string }
  | Crash of { exn_class : string; detail : string }

type failure = {
  f_case : case;
  f_kind : failure_kind;
  f_bucket : string;
}

type run_outcome = Passed | Skipped of string | Failed of failure

(* Bucketing must group manifestations of one bug across different
   programs and configs, so it hashes only the failure *class*: the
   oracle's mismatch class, or the crash's exception constructor — with
   pass numbers stripped so "clone pass 0" and "clone pass 3" land in
   one bucket. *)
let strip_digits s =
  String.concat ""
    (List.filter
       (fun part -> part <> "")
       (String.split_on_char ' '
          (String.map (fun c -> if c >= '0' && c <= '9' then ' ' else c) s)))

(* Region and demand mode run genuinely different transformation code,
   so a failure under them is a different bug until proven otherwise —
   the mode participates in the hash.  Whole mode hashes exactly as
   before this parameter existed, keeping historical bucket directories
   valid. *)
let bucket_of_kind ?(mode = Policy.Whole) kind =
  let tag =
    match mode with
    | Policy.Whole -> ""
    | m -> "mode=" ^ Policy.inline_mode_name m ^ "|"
  in
  match kind with
  | Mismatch { cls; _ } ->
    String.sub (Digest.to_hex (Digest.string (tag ^ "mismatch|" ^ cls))) 0 10
  | Crash { exn_class; _ } ->
    String.sub
      (Digest.to_hex (Digest.string (tag ^ "crash|" ^ strip_digits exn_class)))
      0 10

let kind_summary = function
  | Mismatch { cls; _ } -> "mismatch:" ^ cls
  | Crash { exn_class; _ } -> "crash:" ^ strip_digits exn_class

let kind_detail = function
  | Mismatch { detail; _ } | Crash { detail; _ } -> detail

let fail case kind =
  let mode = case.c_check.Sem.ck_config.Hlo.Config.inline_mode in
  Failed { f_case = case; f_kind = kind; f_bucket = bucket_of_kind ~mode kind }

let run_case ?(interp_config = Interp.default_config) (case : case) :
    run_outcome =
  match Minic.Compile.compile_program case.c_sources with
  | exception Minic.Diag.Compile_error ds ->
    Skipped (String.concat "; " (List.map Minic.Diag.to_string ds))
  | exception Ucode.Linker.Link_error msg -> Skipped ("link: " ^ msg)
  | program, _warnings -> (
    match Sem.check_transform ~interp_config case.c_check program with
    | { Sem.tr_verdict = None; _ } -> Passed
    | { Sem.tr_verdict = Some (cls, detail); tr_pre; tr_post; _ } ->
      fail case
        (Mismatch
           { cls;
             detail =
               Printf.sprintf "%s\n  pre:  %s\n  post: %s" detail
                 (Sem.outcome_to_string tr_pre)
                 (Sem.outcome_to_string tr_post) })
    | exception Hlo.Driver.Invalid_ir { stage; errors } ->
      fail case (Crash { exn_class = "invalid_ir:" ^ stage; detail = errors })
    | exception e ->
      fail case
        (Crash
           { exn_class = Printexc.exn_slot_name e;
             detail = Printexc.to_string e }))

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                           *)

type stats = {
  st_runs : int;
  st_skipped : int;
  st_failures : int;
  st_buckets : (string * failure * int) list;
}

let campaign ?(interp_config = Interp.default_config) ?(max_runs = max_int)
    ?time_budget ?(on_failure = fun _ -> ()) ~(gen : int -> case) () : stats =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) time_budget
  in
  let buckets : (string, failure * int ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let runs = ref 0 and skipped = ref 0 and failures = ref 0 in
  let past_deadline () =
    match deadline with
    | Some t -> Unix.gettimeofday () >= t
    | None -> false
  in
  let i = ref 0 in
  while !runs < max_runs && not (past_deadline ()) do
    let case = gen !i in
    incr i;
    incr runs;
    (match run_case ~interp_config case with
    | Passed -> ()
    | Skipped _ -> incr skipped
    | Failed f ->
      incr failures;
      (match Hashtbl.find_opt buckets f.f_bucket with
      | Some (_, n) -> incr n
      | None ->
        Hashtbl.replace buckets f.f_bucket (f, ref 1);
        order := f.f_bucket :: !order);
      on_failure f)
  done;
  { st_runs = !runs; st_skipped = !skipped; st_failures = !failures;
    st_buckets =
      List.rev_map
        (fun h ->
          let f, n = Hashtbl.find buckets h in
          (h, f, !n))
        !order }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "cases=%d skipped=%d failing=%d buckets=%d" s.st_runs
    s.st_skipped s.st_failures (List.length s.st_buckets);
  List.iter
    (fun (hash, f, n) ->
      Format.fprintf ppf "@\n  bucket %s  x%-4d %s  (first: %s)" hash n
        (kind_summary f.f_kind) f.f_case.c_label)
    s.st_buckets

(* ------------------------------------------------------------------ *)
(* Repro artifacts.                                                     *)

let module_marker = "// module "

let print_combined (sources : Minic.Compile.source list) =
  String.concat "\n"
    (List.map
       (fun (s : Minic.Compile.source) ->
         Printf.sprintf "%s%s\n%s" module_marker s.Minic.Compile.src_module
           (String.trim s.Minic.Compile.src_text))
       sources)
  ^ "\n"

let parse_combined (text : string) : Minic.Compile.source list =
  let lines = String.split_on_char '\n' text in
  let flush acc name rev_body =
    match name with
    | None -> acc  (* preamble before the first marker: must be blank *)
    | Some n ->
      Minic.Compile.source ~module_name:n
        (String.concat "\n" (List.rev rev_body))
      :: acc
  in
  let rec go acc name rev_body = function
    | [] -> List.rev (flush acc name rev_body)
    | line :: rest ->
      if
        String.length line >= String.length module_marker
        && String.sub line 0 (String.length module_marker) = module_marker
      then
        let next =
          String.trim
            (String.sub line
               (String.length module_marker)
               (String.length line - String.length module_marker))
        in
        go (flush acc name rev_body) (Some next) [] rest
      else go acc name (line :: rev_body) rest
  in
  go [] None [] lines

let mkdir_p dir =
  let rec up d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      up (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  up dir

let write_text path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc contents

let replay_command (case : case) =
  let ck = case.c_check in
  String.concat " "
    ([ "hlo_fuzz"; "--replay"; "repro.mc" ]
    @ Hlo.Config.to_flags ck.Sem.ck_config
    @ (match ck.Sem.ck_mutation with
      | Sem.Keep -> []
      | m -> [ "--mutation"; Sem.mutation_to_string m ])
    @ (if ck.Sem.ck_jobs <> 1 then [ "--jobs"; string_of_int ck.Sem.ck_jobs ]
       else [])
    @ (match Hlo.Chaos.armed () with
      | Some b -> [ "--chaos"; Hlo.Chaos.name b ]
      | None -> []))

let write_repro ~dir (f : failure) =
  mkdir_p dir;
  write_text (Filename.concat dir "repro.mc") (print_combined f.f_case.c_sources);
  write_text (Filename.concat dir "repro.cmd") (replay_command f.f_case ^ "\n");
  write_text
    (Filename.concat dir "detail.txt")
    (Printf.sprintf "case: %s\nbucket: %s\nkind: %s\n\n%s\n" f.f_case.c_label
       f.f_bucket (kind_summary f.f_kind) (kind_detail f.f_kind))
