(* The public face of the differential-correctness subsystem: the
   semantic oracle itself (Sem) flattened into this namespace, with the
   fuzz engine and the delta-debugging reducer as submodules. *)

include Sem
module Fuzz = Fuzz
module Reduce = Reduce
