(** The differential fuzz engine.

    A {!case} is one (program, HLO config, profile mutation, jobs)
    quadruple.  {!run_case} compiles it and asks the semantic oracle
    ({!Sem.check_transform}) whether HLO preserved observable behavior;
    mismatches and compiler crashes become {!failure}s with a *stable
    bucket hash* so a campaign can group many manifestations of one bug.

    The engine is deliberately ignorant of where cases come from: the
    [hlo_fuzz] driver feeds it corpus programs and random programs from
    the shared generator, the test suite feeds it seeded-bug (chaos)
    runs. *)

type case = {
  c_label : string;  (** provenance, e.g. ["gen:seed=7/i=42"] or ["corpus:indirect"] *)
  c_sources : Minic.Compile.source list;
  c_check : Sem.check;
}

type failure_kind =
  | Mismatch of { cls : string; detail : string }
      (** the oracle's verdict class + explanation *)
  | Crash of { exn_class : string; detail : string }
      (** the transformation pipeline raised: [Invalid_ir] from
          per-stage validation, or any other exception *)

type failure = {
  f_case : case;
  f_kind : failure_kind;
  f_bucket : string;  (** stable hash of the failure class *)
}

type run_outcome =
  | Passed
  | Skipped of string  (** the case does not compile — not a finding *)
  | Failed of failure

(** The stable bucket hash of a failure class.  [mode] tags region- and
    demand-mode failures into buckets of their own (the modes run
    different transformation code, so one failure class can be two
    bugs); [Whole] — the default — hashes identically to the pre-mode
    engine, so historical bucket directories stay valid. *)
val bucket_of_kind : ?mode:Policy.inline_mode -> failure_kind -> string

val run_case : ?interp_config:Interp.config -> case -> run_outcome

(** {2 Campaigns} *)

type stats = {
  st_runs : int;
  st_skipped : int;
  st_failures : int;  (** total failing cases (not distinct buckets) *)
  st_buckets : (string * failure * int) list;
      (** bucket hash, first failure seen, occurrence count — in
          first-seen order *)
}

(** Run [gen i] for [i = 0, 1, ...] until [max_runs] cases have run or
    [time_budget] seconds have elapsed (checked between cases).
    [on_failure] fires on every failing case, first manifestation or
    not. *)
val campaign :
  ?interp_config:Interp.config ->
  ?max_runs:int ->
  ?time_budget:float ->
  ?on_failure:(failure -> unit) ->
  gen:(int -> case) ->
  unit ->
  stats

val pp_stats : Format.formatter -> stats -> unit

(** {2 Repro artifacts} *)

(** Multi-module sources as one text, each module introduced by a
    ["// module NAME"] line — the format of corpus files and of the
    [repro.mc] the reducer emits. *)
val print_combined : Minic.Compile.source list -> string

val parse_combined : string -> Minic.Compile.source list

(** Write [repro.mc] (the combined sources), [repro.cmd] (a replay
    command line pinning config, mutation, jobs and any armed chaos
    bug) and [detail.txt] under [dir], creating it if needed. *)
val write_repro : dir:string -> failure -> unit
