(** The semantic oracle.

    One question, asked everywhere: does a transformed program have the
    same *observable behavior* as the original?  Observable behavior is
    the interpreter's view — exit value, printed output, final global
    values — plus trap behavior: a program that traps must keep
    trapping the same way, having performed the same observable effects
    up to the trap.

    Function handles are opaque per-run values (and routine names are
    renamed by cloning), so trap payloads that depend on them are
    normalized away; resource exhaustion (fuel, call depth) legitimately
    moves under transformation and is compared only coarsely.  The
    oracle assumes the interpreter's fuel is far above the program's
    expected step count — near the limit, a transformation may push a
    finishing program over it and be misreported.

    Division-by-zero and out-of-bounds traps are *erasable*: the scalar
    optimizer deliberately deletes dead divisions and loads (see
    lib/opt/ipa.ml), so a baseline run that dies of one only pins the
    transformed run's output prefix, nothing more.  Traps raised by
    calls ([abort], externals, allocation, indirect-call failures) are
    never erased and stay strictly compared.

    This module generalizes the one-off differential diffing previously
    buried in the test suites into the reusable API the qcheck
    properties, the fuzzer ([hlo_fuzz]) and future backend-vs-interp
    differential tests plug into. *)

module U := Ucode.Types

(** Observable state of one execution. *)
type observation = {
  ob_exit : int64;
  ob_output : string;
  ob_globals : (string * int64 array) list;
}

type outcome =
  | Finished of observation
  | Trapped of { kind : string; partial : observation }
      (** semantic trap, normalized kind (payloads that depend on
          per-run handles or renamable routine names are dropped) *)
  | Diverged of string
      (** resource exhaustion: ["fuel"] or ["call_depth"] *)

val outcome_to_string : outcome -> string

(** Execute under {!Interp} and classify. *)
val observe : ?config:Interp.config -> U.program -> outcome

(** [None] when the outcomes agree; otherwise [Some (cls, detail)]
    where [cls] is a stable mismatch class (used for fuzz bucketing:
    ["exit"], ["output"], ["globals:NAME"], ["trap_kind"],
    ["trap_output"], ["trap_globals:NAME"], ["erasable_trap_output"],
    ["introduced_divergence"]) and [detail] is a human-readable
    explanation.  A pre-transformation divergence agrees with anything;
    an introduced divergence does not.  A pre-transformation erasable
    trap (division by zero, out of bounds) agrees with any post outcome
    that extends its output. *)
val compare_outcomes : pre:outcome -> post:outcome -> (string * string) option

val agree : pre:outcome -> post:outcome -> bool

(** {2 Metamorphic profile perturbations}

    Profile data guides heuristics only, so any perturbation of it must
    be semantics-neutral: HLO under a mutated profile may transform
    differently, but the result must still behave like the original. *)

type profile_mutation =
  | Keep
  | Scale of float  (** uniform count scaling *)
  | Zero            (** the empty profile *)
  | Stale of int
      (** seeded pseudo-random per-routine/per-site rescaling with
          dropped indirect-target histograms — a profile from "another
          training run" that no longer matches reality *)

val mutation_to_string : profile_mutation -> string
val mutation_of_string : string -> (profile_mutation, string) result
val mutate_profile : profile_mutation -> Ucode.Profile.t -> Ucode.Profile.t

(** {2 The transformation check} *)

(** Everything that parameterizes one HLO run under test. *)
type check = {
  ck_config : Hlo.Config.t;
  ck_mutation : profile_mutation;
  ck_jobs : int;  (** ambient parallelism during the HLO run *)
}

val default_check : check

type transform_result = {
  tr_driver : Hlo.Driver.result;
  tr_pre : outcome;
  tr_post : outcome;
  tr_verdict : (string * string) option;  (** as {!compare_outcomes} *)
}

(** Train (when the config wants profile data), mutate the profile, run
    {!Hlo.Driver.run} at the requested parallelism, and compare
    observable behavior before and after.  Driver crashes — including
    {!Hlo.Driver.Invalid_ir} from per-stage validation — propagate as
    exceptions for the caller to bucket. *)
val check_transform :
  ?interp_config:Interp.config -> check -> U.program -> transform_result
