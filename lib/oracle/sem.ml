module U = Ucode.Types

type observation = {
  ob_exit : int64;
  ob_output : string;
  ob_globals : (string * int64 array) list;
}

type outcome =
  | Finished of observation
  | Trapped of { kind : string; partial : observation }
  | Diverged of string

(* Trap normalization.  Handle payloads are per-run values and routine
   names are renamed by cloning, so neither may influence comparison;
   an external routine's own name is stable and kept.  Fuel and call
   depth are resources whose exhaustion point legitimately moves under
   transformation. *)
let classify_trap = function
  | Interp.Division_by_zero -> `Semantic "division_by_zero"
  | Interp.Out_of_bounds _ -> `Semantic "out_of_bounds"
  | Interp.Bad_function_handle _ -> `Semantic "bad_function_handle"
  | Interp.Call_to_external n -> `Semantic ("call_to_external:" ^ n)
  | Interp.Aborted -> `Semantic "abort"
  | Interp.Out_of_memory -> `Semantic "out_of_memory"
  | Interp.Indirect_arity_mismatch _ -> `Semantic "indirect_arity_mismatch"
  | Interp.Out_of_fuel -> `Resource "fuel"
  | Interp.Call_depth_exceeded -> `Resource "call_depth"

let observation_of (r : Interp.result) =
  { ob_exit = r.Interp.exit_code; ob_output = r.Interp.output;
    ob_globals = r.Interp.globals }

let observe ?(config = Interp.default_config) (p : U.program) : outcome =
  match Interp.run_outcome ~config p with
  | Interp.Finished r -> Finished (observation_of r)
  | Interp.Trapped { trap; partial; _ } -> (
    match classify_trap trap with
    | `Semantic kind -> Trapped { kind; partial = observation_of partial }
    | `Resource what -> Diverged what)

let pp_globals ppf globals =
  List.iter
    (fun (name, cells) ->
      Format.fprintf ppf "%s=[%s] " name
        (String.concat ";"
           (List.map Int64.to_string (Array.to_list cells))))
    globals

let outcome_to_string = function
  | Finished ob ->
    Format.asprintf "exit=%Ld output=%S %a" ob.ob_exit ob.ob_output pp_globals
      ob.ob_globals
  | Trapped { kind; partial } ->
    Format.asprintf "trap=%s output=%S %a" kind partial.ob_output pp_globals
      partial.ob_globals
  | Diverged what -> Printf.sprintf "diverged(%s)" what

(* ------------------------------------------------------------------ *)
(* Comparison.                                                          *)

let first_global_diff a b =
  (* Transformations never add or remove globals; a layout difference
     is itself a finding. *)
  if List.map fst a <> List.map fst b then Some ("<layout>", "", "")
  else
    List.find_map
      (fun ((name, ca), (_, cb)) ->
        if ca <> cb then
          Some
            ( name,
              String.concat ";" (List.map Int64.to_string (Array.to_list ca)),
              String.concat ";" (List.map Int64.to_string (Array.to_list cb)) )
        else None)
      (List.combine a b)

let first_output_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | [], [] -> Printf.sprintf "outputs differ (line %d)" i
    | x :: _, [] -> Printf.sprintf "line %d: %S vs <end of output>" i x
    | [], y :: _ -> Printf.sprintf "line %d: <end of output> vs %S" i y
    | x :: xs, y :: ys ->
      if String.equal x y then go (i + 1) (xs, ys)
      else Printf.sprintf "line %d: %S vs %S" i x y
  in
  go 1 (la, lb)

let compare_observations ~(what : string) (a : observation) (b : observation) :
    (string * string) option =
  if not (String.equal a.ob_output b.ob_output) then
    Some (what ^ "output", first_output_diff a.ob_output b.ob_output)
  else if not (Int64.equal a.ob_exit b.ob_exit) then
    Some
      ( what ^ "exit",
        Printf.sprintf "exit %Ld vs %Ld" a.ob_exit b.ob_exit )
  else
    match first_global_diff a.ob_globals b.ob_globals with
    | Some (name, va, vb) ->
      Some
        ( Printf.sprintf "%sglobals:%s" what name,
          Printf.sprintf "global %s: [%s] vs [%s]" name va vb )
    | None -> None

(* Traps the optimizer is licensed to erase: DCE deletes dead [Div]/
   [Rem] and dead [Load]s (and IPA lets whole calls containing them
   vanish) — see lib/opt/ipa.ml, "Division traps are the one effect we
   knowingly give up".  When the baseline run dies of one of these, the
   transformed program may legally run further (the trapping op was
   dead), trap somewhere else, or not trap at all; the only sound check
   left is that it reproduces the baseline's output before trapping.
   Abort, external, allocation and indirect-call traps sit in [Call]s,
   which are never erased or reordered, so they stay strict. *)
let erasable_trap kind =
  String.equal kind "division_by_zero" || String.equal kind "out_of_bounds"

let is_prefix a b =
  String.length a <= String.length b
  && String.equal a (String.sub b 0 (String.length a))

let compare_outcomes ~pre ~post : (string * string) option =
  match (pre, post) with
  | Trapped { kind; partial }, _ when erasable_trap kind -> (
    match post with
    | Diverged _ ->
      (* The erased trap may have been the only exit of a loop. *)
      None
    | Finished ob | Trapped { partial = ob; _ } ->
      if is_prefix partial.ob_output ob.ob_output then None
      else
        Some
          ( "erasable_trap_output",
            Printf.sprintf
              "original trapped %s after %S, but that is not a prefix of \
               the transformed output %S"
              kind partial.ob_output ob.ob_output ))
  | Finished a, Finished b -> compare_observations ~what:"" a b
  | Trapped a, Trapped b ->
    if not (String.equal a.kind b.kind) then
      Some ("trap_kind", Printf.sprintf "trap %s vs %s" a.kind b.kind)
    else compare_observations ~what:"trap_" a.partial b.partial
  | Diverged _, _ ->
    (* The baseline already exhausted a resource; any post behavior is
       compatible (e.g. inlining lowered the call depth). *)
    None
  | _, Diverged what ->
    Some
      ( "introduced_divergence",
        Printf.sprintf "transformed program exhausted %s; original %s" what
          (match pre with
          | Finished ob -> Printf.sprintf "finished (exit=%Ld)" ob.ob_exit
          | Trapped { kind; _ } -> "trapped (" ^ kind ^ ")"
          | Diverged _ -> assert false) )
  | Finished _, Trapped { kind; _ } ->
    Some ("trap_kind", "transformed program trapped (" ^ kind ^ "); original finished")
  | Trapped { kind; _ }, Finished _ ->
    Some ("trap_kind", "transformed program finished; original trapped (" ^ kind ^ ")")

let agree ~pre ~post = compare_outcomes ~pre ~post = None

(* ------------------------------------------------------------------ *)
(* Metamorphic profile perturbations.                                   *)

type profile_mutation = Keep | Scale of float | Zero | Stale of int

let mutation_to_string = function
  | Keep -> "keep"
  | Scale f -> Printf.sprintf "scale:%g" f
  | Zero -> "zero"
  | Stale seed -> Printf.sprintf "stale:%d" seed

let mutation_of_string s =
  match String.split_on_char ':' s with
  | [ "keep" ] -> Ok Keep
  | [ "zero" ] -> Ok Zero
  | [ "scale"; f ] -> (
    match float_of_string_opt f with
    | Some f -> Ok (Scale f)
    | None -> Error ("bad scale factor: " ^ s))
  | [ "stale"; n ] -> (
    match int_of_string_opt n with
    | Some n -> Ok (Stale n)
    | None -> Error ("bad stale seed: " ^ s))
  | _ -> Error ("unknown profile mutation: " ^ s)

let map_counts f (p : Ucode.Profile.t) : Ucode.Profile.t =
  { Ucode.Profile.blocks =
      U.String_map.map (U.Int_map.map f) p.Ucode.Profile.blocks;
    sites = U.Int_map.map f p.Ucode.Profile.sites;
    targets =
      U.Int_map.map
        (List.map (fun (n, c) -> (n, f c)))
        p.Ucode.Profile.targets }

(* A cheap, deterministic mixing hash for the stale perturbation. *)
let mix seed key = Hashtbl.hash (seed, key)

(* Factor in [0.25, 2.25): big enough swings to reorder heuristics. *)
let stale_factor seed key =
  0.25 +. (float_of_int (mix seed key mod 1000) /. 500.0)

let mutate_profile m (p : Ucode.Profile.t) : Ucode.Profile.t =
  match m with
  | Keep -> p
  | Zero -> Ucode.Profile.empty
  | Scale f -> map_counts (fun c -> c *. f) p
  | Stale seed ->
    { Ucode.Profile.blocks =
        U.String_map.mapi
          (fun routine per_block ->
            let f = stale_factor seed routine in
            U.Int_map.map (fun c -> c *. f) per_block)
          p.Ucode.Profile.blocks;
      sites =
        U.Int_map.mapi
          (fun site c -> c *. stale_factor seed site)
          p.Ucode.Profile.sites;
      (* Half the indirect histograms vanish, as if those sites were
         never exercised in the stale run. *)
      targets =
        U.Int_map.filter
          (fun site _ -> mix seed (site + 1) mod 2 = 0)
          p.Ucode.Profile.targets }

(* ------------------------------------------------------------------ *)
(* The transformation check.                                            *)

type check = {
  ck_config : Hlo.Config.t;
  ck_mutation : profile_mutation;
  ck_jobs : int;
}

let default_check =
  { ck_config = { Hlo.Config.default with Hlo.Config.validate = true };
    ck_mutation = Keep; ck_jobs = 1 }

type transform_result = {
  tr_driver : Hlo.Driver.result;
  tr_pre : outcome;
  tr_post : outcome;
  tr_verdict : (string * string) option;
}

let check_transform ?(interp_config = Interp.default_config) (ck : check)
    (program : U.program) : transform_result =
  let tr_pre = observe ~config:interp_config program in
  let profile =
    if ck.ck_config.Hlo.Config.use_profile then
      match
        Interp.run ~config:{ interp_config with Interp.profile = true } program
      with
      | r -> r.Interp.profile
      | exception Interp.Trap _ -> Ucode.Profile.empty
    else Ucode.Profile.empty
  in
  let profile = mutate_profile ck.ck_mutation profile in
  let saved_jobs = Parallel.Pool.get_jobs () in
  let tr_driver =
    Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs saved_jobs)
    @@ fun () ->
    Parallel.Pool.set_jobs ck.ck_jobs;
    Hlo.Driver.run ~config:ck.ck_config ~profile program
  in
  let tr_post = observe ~config:interp_config tr_driver.Hlo.Driver.program in
  { tr_driver; tr_pre; tr_post;
    tr_verdict = compare_outcomes ~pre:tr_pre ~post:tr_post }
