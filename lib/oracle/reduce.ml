(* ------------------------------------------------------------------ *)
(* Classic ddmin (Zeller & Hildebrandt), over an abstract list.          *)

let partition items n =
  let arr = Array.of_list items in
  let l = Array.length arr in
  let chunks = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    let stop = (i + 1) * l / n in
    if stop > !start then
      chunks := Array.to_list (Array.sub arr !start (stop - !start)) :: !chunks;
    start := stop
  done;
  List.rev !chunks

let ddmin ~test items =
  if items = [] || not (test items) then items
  else
    let rec go items n =
      let len = List.length items in
      if len <= 1 then items
      else
        let chunks = partition items n in
        let complement i =
          List.concat
            (List.filteri (fun j _ -> j <> i) chunks)
        in
        let rec try_candidates mk next i =
          if i >= List.length chunks then None
          else
            let cand = mk i in
            if List.length cand < len && test cand then Some (cand, next)
            else try_candidates mk next (i + 1)
        in
        match try_candidates (fun i -> List.nth chunks i) 2 0 with
        | Some (cand, n') -> go cand n'
        | None -> (
          (* At n = 2 each complement is the other chunk — already tried. *)
          match
            if n > 2 then try_candidates complement (max (n - 1) 2) 0
            else None
          with
          | Some (cand, n') -> go cand n'
          | None -> if n < len then go items (min len (2 * n)) else items)
    in
    go items 2

(* ------------------------------------------------------------------ *)
(* Statement granularity.                                               *)

let strip_comments text =
  String.concat "\n"
    (List.map
       (fun line ->
         let rec find i =
           if i + 1 >= String.length line then line
           else if line.[i] = '/' && line.[i + 1] = '/' then String.sub line 0 i
           else find (i + 1)
         in
         find 0)
       (String.split_on_char '\n' text))

let split_statements text =
  let out = ref [] in
  let buf = Buffer.create 64 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ';' when !depth = 0 ->
        Buffer.add_char buf c;
        flush ()
      | '{' | '}' ->
        Buffer.add_char buf c;
        flush ()
      | '\n' -> Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    (strip_comments text);
  flush ();
  List.rev !out

let source_lines (sources : Minic.Compile.source list) =
  List.fold_left
    (fun acc (s : Minic.Compile.source) ->
      acc + List.length (split_statements s.Minic.Compile.src_text))
    0 sources

(* ------------------------------------------------------------------ *)
(* The reducer.                                                         *)

type t = {
  r_case : Fuzz.case;
  r_failure : Fuzz.failure;
  r_lines : int;
  r_tests : int;
}

let replace i x l = List.mapi (fun j y -> if j = i then x else y) l

let sources_of mods =
  List.map
    (fun (name, stmts) ->
      Minic.Compile.source ~module_name:name (String.concat "\n" stmts))
    mods

let reduce ?(interp_config = Interp.default_config) ?(same_bucket = true)
    (orig : Fuzz.failure) : t =
  let tests = ref 0 in
  (* [best] always describes the most recently *accepted* candidate:
     every adoption below goes through a successful [still_fails]. *)
  let best = ref orig in
  let case_of sources check =
    { Fuzz.c_label = orig.Fuzz.f_case.Fuzz.c_label ^ ":reduced";
      c_sources = sources; c_check = check }
  in
  let still_fails sources check =
    incr tests;
    match Fuzz.run_case ~interp_config (case_of sources check) with
    | Fuzz.Failed f
      when (not same_bucket)
           || String.equal f.Fuzz.f_bucket orig.Fuzz.f_bucket ->
      best := f;
      true
    | _ -> false
  in
  let check = ref orig.Fuzz.f_case.Fuzz.c_check in
  let mods =
    ref
      (List.map
         (fun (s : Minic.Compile.source) ->
           (s.Minic.Compile.src_module,
            split_statements s.Minic.Compile.src_text))
         orig.Fuzz.f_case.Fuzz.c_sources)
  in
  (* Comment stripping / re-joining could in principle perturb the
     repro; if it does, fall back to reducing only the check. *)
  let splittable = still_fails (sources_of !mods) !check in
  let reduce_statements () =
    (* Whole modules first (cheap, large bites)... *)
    mods := ddmin ~test:(fun ms -> still_fails (sources_of ms) !check) !mods;
    (* ...then statements inside each module, to a bounded fixpoint:
       removing a caller can unlock removing its callee next round. *)
    let changed = ref true in
    let round = ref 0 in
    while !changed && !round < 3 do
      changed := false;
      incr round;
      for i = 0 to List.length !mods - 1 do
        let name, stmts = List.nth !mods i in
        let stmts' =
          ddmin
            ~test:(fun cand ->
              still_fails (sources_of (replace i (name, cand) !mods)) !check)
            stmts
        in
        if List.length stmts' < List.length stmts then begin
          changed := true;
          mods := replace i (name, stmts') !mods
        end
      done;
      let nonempty = List.filter (fun (_, stmts) -> stmts <> []) !mods in
      if
        List.length nonempty < List.length !mods
        && still_fails (sources_of nonempty) !check
      then mods := nonempty
    done
  in
  let current_sources () =
    if splittable then sources_of !mods else orig.Fuzz.f_case.Fuzz.c_sources
  in
  if splittable then reduce_statements ();
  (* Check simplification: push every knob toward the default / the
     least machinery that still reproduces the bucket, greedily. *)
  let try_check ck' =
    if ck' <> !check && still_fails (current_sources ()) ck' then check := ck'
  in
  let cfg () = !check.Sem.ck_config in
  try_check { !check with Sem.ck_mutation = Sem.Keep };
  try_check { !check with Sem.ck_jobs = 1 };
  try_check
    { !check with
      Sem.ck_config = { (cfg ()) with Hlo.Config.enable_outlining = false } };
  try_check
    { !check with
      Sem.ck_config = { (cfg ()) with Hlo.Config.enable_cloning = false } };
  try_check
    { !check with
      Sem.ck_config = { (cfg ()) with Hlo.Config.enable_inlining = false } };
  try_check
    { !check with
      Sem.ck_config =
        { (cfg ()) with Hlo.Config.pass_limit = 1; staging = [ 1.0 ] } };
  try_check
    { !check with
      Sem.ck_config = { (cfg ()) with Hlo.Config.max_operations = None } };
  try_check
    { !check with
      Sem.ck_config = { (cfg ()) with Hlo.Config.budget_percent = 100.0 } };
  try_check
    { !check with
      Sem.ck_config =
        { (cfg ()) with Hlo.Config.optimize_between_passes = true } };
  (* A simpler check often unlocks further statement removal. *)
  if splittable then reduce_statements ();
  let final_sources = current_sources () in
  { r_case = case_of final_sources !check;
    r_failure = !best;
    r_lines = source_lines final_sources;
    r_tests = !tests }
