(** Delta-debugging reducer for failing fuzz cases.

    Shrinks a failing (program, config, profile-mutation) triple to a
    minimal repro: statement-level ddmin over each module's source,
    dropping of emptied modules, then config / mutation / jobs
    simplification — all while re-checking that the candidate still
    fails (by default, into the *same bucket*, so reduction cannot
    wander off to a different bug). *)

(** Zeller–Hildebrandt ddmin over a list: returns a subset that still
    satisfies [test], 1-minimal with respect to chunk removal.  If the
    full list does not satisfy [test], it is returned unchanged. *)
val ddmin : test:('a list -> bool) -> 'a list -> 'a list

(** One statement (or brace) per line, comments stripped — the
    granularity ddmin removes at.  Splits after [;], [{] and [}], but
    never inside parentheses, so a [for] header stays atomic. *)
val split_statements : string -> string list

(** Total line count of the sources, as {!split_statements} counts
    them — the measure the "< 30 lines" acceptance bar is checked
    against. *)
val source_lines : Minic.Compile.source list -> int

type t = {
  r_case : Fuzz.case;        (** the reduced, still-failing case *)
  r_failure : Fuzz.failure;  (** its failure (same bucket by default) *)
  r_lines : int;             (** {!source_lines} of the reduced case *)
  r_tests : int;             (** oracle evaluations spent reducing *)
}

(** [reduce failure] shrinks [failure.f_case].  [same_bucket] (default
    true) restricts candidates to ones reproducing the original
    bucket. *)
val reduce :
  ?interp_config:Interp.config -> ?same_bucket:bool -> Fuzz.failure -> t
