(** The multi-pass HLO driver (Figure 2): clean the input with the
    scalar optimizer, optionally outline cold regions, then alternate
    cloning and inlining under the staged budget until it is exhausted,
    the pass limit is hit, or a fully-funded pass does nothing;
    unreachable module-local routines and clones are deleted and
    touched routines re-optimized between passes. *)

type result = {
  program : Ucode.Types.program;
  profile : Ucode.Profile.t;  (** kept coherent with the transforms *)
  report : Report.t;
}

(** Raised (when {!Config.t.validate} is set) if
    {!Ucode.Validate.check_program} finds problems after any stage —
    clean, outline, clone, inline, the between-pass optimizer, or
    prune — naming the stage that produced the malformed IR. *)
exception Invalid_ir of { stage : string; errors : string }

(** [run ~config ~profile p] transforms [p].  [profile] should come
    from {!Interp.train} on the same (pre-HLO) program; pass
    {!Ucode.Profile.empty} for a heuristics-only compile. *)
val run :
  ?config:Config.t -> ?profile:Ucode.Profile.t -> Ucode.Types.program -> result
