(** HLO configuration.

    The knobs correspond to the paper's user controls: the compile-time
    growth budget (a percentage over the no-inlining compile cost,
    default 100 as in §3.4), the pass limit for the alternating
    clone/inline loop, scope switches (cross-module, profile use) and
    the Figure 8 instrumentation that artificially stops the optimizer
    after a fixed number of operations. *)

type t = {
  budget_percent : float;
      (** allowed compile-cost increase; 100.0 = the paper's default *)
  pass_limit : int;  (** maximum clone+inline pass pairs (default 4) *)
  staging : float list;
      (** cumulative fraction of the budget available at each pass;
          must be nondecreasing and end at 1.0 *)
  enable_inlining : bool;
  enable_cloning : bool;
  cross_module : bool;
      (** allow transformations across module boundaries (the paper's
          "c" scope) *)
  use_profile : bool;
      (** feed profile data to the heuristics (the paper's "p" scope) *)
  max_operations : int option;
      (** stop after this many inline/clone-replacement operations
          (used to draw Figure 8); [None] = unlimited *)
  optimize_between_passes : bool;
      (** run the scalar optimizer on transformed routines after each
          pass ("optimize clones and recalibrate") *)
  cold_site_penalty : float;
      (** benefit multiplier for call sites colder than their caller's
          entry block (default 0.25) *)
  indirect_bonus : float;
      (** benefit multiplier when cloning feeds a constant routine
          handle into an indirect call's function position *)
  enable_outlining : bool;
      (** extract cold single-entry regions into routines of their own
          before inlining starts — the paper's §5 "aggressive
          outlining" future work; requires profile data *)
  outline_cold_fraction : float;
      (** a block colder than this fraction of its routine's entry
          count is outlinable *)
  outline_min_instructions : int;  (** smallest region worth a call *)
  outline_max_inputs : int;  (** most live-in registers per region *)
  stage_order : Policy.stage list;
      (** the schedule interpreted once per pass; the default is the
          fixed clone/inline/prune/clean/prune order of the paper *)
  inline_mode : Policy.inline_mode;
      (** what to do with a callee whose whole body busts the budget:
          reject it ([Whole], the paper), outline its cold regions
          eagerly before ranking ([Region]) or lazily at the failing
          budget check ([Demand]) and inline the hot residue *)
  region_cold_fraction : float;
      (** region/demand coldness cut: a block below this fraction of
          its routine's hottest block count is outlinable residue *)
  validate : bool;  (** check IR invariants after each pass (testing) *)
}

let default =
  { budget_percent = 100.0; pass_limit = 4;
    staging = [ 0.25; 0.5; 0.75; 1.0 ]; enable_inlining = true;
    enable_cloning = true; cross_module = true; use_profile = true;
    max_operations = None; optimize_between_passes = true;
    cold_site_penalty = 0.25; indirect_bonus = 4.0;
    enable_outlining = false; outline_cold_fraction = 0.05;
    outline_min_instructions = 6; outline_max_inputs = 6;
    stage_order = Policy.default.Policy.stages;
    inline_mode = Policy.Whole; region_cold_fraction = 0.5;
    validate = false }

(** Overlay a policy's knobs on [base] (default: {!default}).  Scope
    switches, validation and Figure 8 instrumentation are not policy
    material and keep [base]'s values. *)
let of_policy ?(base = default) (p : Policy.t) =
  { base with
    budget_percent = p.Policy.budget_percent; staging = p.Policy.staging;
    pass_limit = p.Policy.pass_limit;
    cold_site_penalty = p.Policy.cold_site_penalty;
    indirect_bonus = p.Policy.indirect_bonus;
    enable_outlining = p.Policy.outline;
    outline_cold_fraction = p.Policy.outline_cold_fraction;
    outline_min_instructions = p.Policy.outline_min_instructions;
    outline_max_inputs = p.Policy.outline_max_inputs;
    stage_order = p.Policy.stages; inline_mode = p.Policy.inline_mode;
    region_cold_fraction = p.Policy.region_cold_fraction }

(** The policy this configuration embodies — the exact inverse of
    {!of_policy} on the policy-owned fields. *)
let to_policy t =
  { Policy.budget_percent = t.budget_percent; staging = t.staging;
    pass_limit = t.pass_limit; cold_site_penalty = t.cold_site_penalty;
    indirect_bonus = t.indirect_bonus; outline = t.enable_outlining;
    outline_cold_fraction = t.outline_cold_fraction;
    outline_min_instructions = t.outline_min_instructions;
    outline_max_inputs = t.outline_max_inputs;
    inline_mode = t.inline_mode;
    region_cold_fraction = t.region_cold_fraction; stages = t.stage_order }

(** The four measurement scopes of Table 1: base (per-module, no
    profile), [c] = cross-module, [p] = profile, [cp] = both. *)
type scope = Base | C | P | CP

let scope_name = function Base -> "base" | C -> "c" | P -> "p" | CP -> "cp"

let with_scope t = function
  | Base -> { t with cross_module = false; use_profile = false }
  | C -> { t with cross_module = true; use_profile = false }
  | P -> { t with cross_module = false; use_profile = true }
  | CP -> { t with cross_module = true; use_profile = true }

(** Figure 6 configurations: inline only / clone only / both /
    neither. *)
let with_transforms t ~inline ~clone =
  { t with enable_inlining = inline; enable_cloning = clone }

(** The scope the [cross_module]/[use_profile] pair encodes. *)
let scope_of t =
  match (t.cross_module, t.use_profile) with
  | false, false -> Base
  | true, false -> C
  | false, true -> P
  | true, true -> CP

let staging_to_string staging =
  String.concat "," (List.map (Printf.sprintf "%g") staging)

(** Parse a comma-separated staging list ("0.25,0.5,1").  The inverse
    of {!staging_to_string}.  Rejects schedules {!Policy.check_staging}
    rejects, so a bad [--staging] fails at the flag, not inside HLO. *)
let staging_of_string s =
  match
    List.map
      (fun part -> float_of_string (String.trim part))
      (String.split_on_char ',' s)
  with
  | fractions when fractions <> [] -> (
    match Policy.check_staging fractions with
    | Ok () -> Ok fractions
    | Error msg -> Error (Printf.sprintf "bad staging list %S: %s" s msg))
  | _ | (exception Failure _) -> Error ("bad staging list: " ^ s)

(** Command-line flags (in [hloc]/[hlo_fuzz] syntax) reproducing [t]'s
    deviation from {!default} — the fuzzer writes these into each
    bucket's replay command so a repro pins the exact configuration. *)
let to_flags t =
  let d = default in
  List.concat
    [ (if scope_of t <> scope_of d then [ "--scope"; scope_name (scope_of t) ]
       else []);
      (if t.budget_percent <> d.budget_percent then
         [ "--budget"; Printf.sprintf "%g" t.budget_percent ]
       else []);
      (if t.pass_limit <> d.pass_limit then
         [ "--passes"; string_of_int t.pass_limit ]
       else []);
      (if t.staging <> d.staging then
         [ "--staging"; staging_to_string t.staging ]
       else []);
      (if not t.enable_inlining then [ "--no-inline" ] else []);
      (if not t.enable_cloning then [ "--no-clone" ] else []);
      (if t.enable_outlining then [ "--outline" ] else []);
      (if t.inline_mode <> d.inline_mode then
         [ "--inline-mode"; Policy.inline_mode_name t.inline_mode ]
       else []);
      (if t.region_cold_fraction <> d.region_cold_fraction then
         [ "--region-cold-fraction";
           Printf.sprintf "%g" t.region_cold_fraction ]
       else []);
      (match t.max_operations with
      | Some n -> [ "--max-operations"; string_of_int n ]
      | None -> []);
      (if not t.optimize_between_passes then [ "--no-reopt" ] else []);
      (if t.validate then [ "--validate" ] else []) ]
