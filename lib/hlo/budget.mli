(** The compile-time growth budget of Figure 2: the optimizer may grow
    the quadratic cost estimate [C = sum size(R)^2] by a configured
    percentage, released in stages across passes. *)

type t = {
  base_cost : float;      (** C at the start of HLO *)
  allowance : float;      (** total extra cost permitted *)
  staging : float array;  (** cumulative fraction available per pass *)
  mutable spent : float;  (** extra cost consumed so far *)
}

val create : Config.t -> initial_cost:float -> t

(** Extra cost available during pass [pass] (0-based); passes beyond
    the staging list get the full allowance. *)
val stage_allowance : t -> pass:int -> float

val remaining : t -> pass:int -> float
val can_afford : t -> pass:int -> float -> bool
val charge : t -> float -> unit

(** Hand cost back (mid-pass shrinkage, e.g. region/demand outlining
    of a callee); [spent] is clamped at zero. *)
val credit : t -> float -> unit

(** No room left even at the final stage. *)
val exhausted : t -> bool

val current_cost : t -> float

(** Re-anchor [spent] from a freshly measured cost — shrinkage from the
    between-pass optimizer earns budget back ("recalibrate"). *)
val recalibrate : t -> measured_cost:float -> unit
