(** Content-hashed memo store for per-routine analyses (the paper's
    *isom* summary files, upgraded to an in-memory + on-disk memo).

    Facts that depend only on a routine's body — static size, the set
    of blocks on CFG cycles — are keyed by
    [Ucode.Hash.routine_body_hash] and reused across passes, across
    clones, and across `hloc` runs.  Cached values are identical to
    what recomputation would produce, so caching never perturbs
    optimizer decisions.  All operations are domain-safe. *)

type entry = {
  e_size : int;                          (** [Ucode.Size.routine_size] *)
  e_cycles : Ucode.Types.Int_set.t;      (** blocks on a CFG cycle *)
}

(** Look up (computing and inserting on miss) the entry for [r]. *)
val find : Ucode.Types.routine -> entry

val size : Ucode.Types.routine -> int
val cycles : Ucode.Types.routine -> Ucode.Types.Int_set.t

type stats = {
  hits : int;
  misses : int;
  entries : int;   (** resident entries, including loaded ones *)
  loaded : int;    (** entries brought in by [load] *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** Drop all entries and zero the statistics. *)
val clear : unit -> unit

(** Merge a cache file into the store.  Returns the number of entries
    added; a missing file is [Ok 0].  Entries already resident win.
    The file uses the shared versioned/checksummed {!Store} container;
    any header or checksum problem is an [Error], never an
    exception. *)
val load : string -> (int, string) result

(** Write the store to [path] (sorted by hash — the file contents are
    a deterministic function of the store). *)
val save : string -> (unit, string) result
