(** Deliberate miscompilation injection (testing only).

    Each {!bug} is a known-bad mutation of one HLO transformation,
    kept behind a flag that nothing in the production pipeline ever
    sets.  The differential fuzzer ([hlo_fuzz --chaos BUG]) and the
    oracle test suite arm one bug at a time to validate that the
    semantic oracle actually catches real miscompilations and that the
    delta-debugging reducer shrinks them to small repros.

    The flag is process-global and not domain-safe by design: chaos
    runs are single-threaded test harness runs. *)

type bug =
  | Inline_swap_args
      (** {!Inliner.perform_inline} binds actuals to formals in
          reverse order. *)
  | Inline_lost_retval
      (** inlined returns write 0 into the call's destination instead
          of the returned value *)
  | Clone_const_drift
      (** {!Clone_spec.make_clone} specializes constant bindings to
          [k+1] instead of [k] *)
  | Prune_address_taken
      (** {!Driver}'s unreachable-routine deletion ignores [Faddr]
          references, deleting routines that are only reached through
          function handles *)
  | Region_lost_cold_path
      (** {!Outliner.extract} drops the instructions of one outlined
          block, so the residue routine keeps the cold path's control
          flow but loses its effects *)

val all : bug list

val name : bug -> string

val of_name : string -> bug option

(** Currently armed bug, if any.  Default: none. *)
val armed : unit -> bug option

val arm : bug option -> unit

(** [enabled b] — is bug [b] armed right now?  One comparison; free
    enough to sit on transformation hot paths. *)
val enabled : bug -> bool

(** Run [f] with [b] armed, restoring the previous state after. *)
val with_bug : bug -> (unit -> 'a) -> 'a
