(** Aggressive outlining — the paper's §5 future work, implemented.

    "We are also contemplating using aggressive outlining as a
    complement to aggressive inlining, to help further focus the global
    optimizer on the truly important stretches of code."

    Outlining extracts *cold* regions of a routine into fresh routines
    of their own.  Under the quadratic compile-cost model this is
    directly profitable — [(n-k)² + k² < n²] — so every stretch of cold
    code moved out both shrinks the hot routine the back end must chew
    on and frees budget the inliner can spend on hot paths.  It also
    removes rarely-executed instructions from the hot routine's
    I-cache footprint.

    A region is outlined when it satisfies all of:
    - every block is cold: executed less than [cold_fraction] times per
      routine entry (profile data required);
    - single entry: exactly one block receives edges from outside;
    - single continuation: all edges leaving the region target one
      external label, and no block in the region returns;
    - at most [max_inputs] live-in registers and at most one register
      defined inside that is live after the region (it becomes the
      outlined routine's return value);
    - at least [min_instructions] instructions (tiny regions are not
      worth a call). *)

module U = Ucode.Types

type config = {
  cold_fraction : float;   (** block colder than this x entry = cold *)
  min_instructions : int;
  max_inputs : int;
}

let default_config =
  { cold_fraction = 0.05; min_instructions = 6; max_inputs = 6 }

type region = {
  rg_blocks : U.Int_set.t;
  rg_entry : U.label;
  rg_exit : U.label;          (** the single external continuation *)
  rg_inputs : U.reg list;     (** live-in registers defined outside *)
  rg_output : U.reg option;   (** single region-defined register live after *)
  rg_size : int;              (** instructions *)
}

(* ------------------------------------------------------------------ *)
(* Region discovery.                                                   *)

let blocks_of (r : U.routine) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (b : U.block) -> Hashtbl.replace tbl b.U.b_id b) r.U.r_blocks;
  tbl

(** Grow the set of cold blocks reachable from [h] through cold
    blocks. *)
let grow_region blocks is_cold h =
  let rec visit seen l =
    if U.Int_set.mem l seen || not (is_cold l) then seen
    else
      let seen = U.Int_set.add l seen in
      match Hashtbl.find_opt blocks l with
      | None -> seen
      | Some (b : U.block) ->
        List.fold_left visit seen (U.term_targets b.U.b_term)
  in
  visit U.Int_set.empty h

(** Validate a grown block set as an outlinable region rooted at [h]. *)
let validate_region (cfg : config) (r : U.routine) (live : Opt.Liveness.t)
    blocks set h : region option =
  let entry_id = (U.entry_block r).U.b_id in
  if U.Int_set.mem entry_id set then None
  else begin
    (* Single entry: external edges may only target h. *)
    let external_entries_ok =
      List.for_all
        (fun (b : U.block) ->
          U.Int_set.mem b.U.b_id set
          || List.for_all
               (fun t -> (not (U.Int_set.mem t set)) || t = h)
               (U.term_targets b.U.b_term))
        r.U.r_blocks
    in
    (* Collect external continuations and returns inside the region. *)
    let exits = ref U.Int_set.empty in
    let has_return = ref false in
    U.Int_set.iter
      (fun l ->
        match Hashtbl.find_opt blocks l with
        | None -> ()
        | Some (b : U.block) -> (
          (match b.U.b_term with U.Return _ -> has_return := true | _ -> ());
          List.iter
            (fun t -> if not (U.Int_set.mem t set) then exits := U.Int_set.add t !exits)
            (U.term_targets b.U.b_term)))
      set;
    let size =
      U.Int_set.fold
        (fun l acc ->
          match Hashtbl.find_opt blocks l with
          | Some (b : U.block) -> acc + List.length b.U.b_instrs + 1
          | None -> acc)
        set 0
    in
    match (external_entries_ok, !has_return, U.Int_set.elements !exits) with
    | true, false, [ exit_label ] when size >= cfg.min_instructions ->
      (* Data flow across the boundary. *)
      let defined_inside =
        U.Int_set.fold
          (fun l acc ->
            match Hashtbl.find_opt blocks l with
            | Some (b : U.block) ->
              List.fold_left
                (fun acc i ->
                  match U.instr_def i with
                  | Some d -> U.Int_set.add d acc
                  | None -> acc)
                acc b.U.b_instrs
            | None -> acc)
          set U.Int_set.empty
      in
      (* Everything live into the region head must arrive as a
         parameter — including registers the region later redefines
         (their initial value flows in from outside on some path). *)
      let inputs = Opt.Liveness.live_in live h in
      let outputs =
        U.Int_set.inter defined_inside (Opt.Liveness.live_in live exit_label)
      in
      if U.Int_set.cardinal inputs > cfg.max_inputs then None
      else begin
        match U.Int_set.elements outputs with
        | [] ->
          Some { rg_blocks = set; rg_entry = h; rg_exit = exit_label;
                 rg_inputs = U.Int_set.elements inputs; rg_output = None;
                 rg_size = size }
        | [ out ] ->
          Some { rg_blocks = set; rg_entry = h; rg_exit = exit_label;
                 rg_inputs = U.Int_set.elements inputs; rg_output = Some out;
                 rg_size = size }
        | _ -> None
      end
    | _ -> None
  end

(** All outlinable regions of a routine, best (largest) first,
    non-overlapping.  [basis] picks the reference count the
    [cold_fraction] cut is relative to: the routine's entry count (the
    §5 outliner) or its hottest block (region/demand inlining, where
    the point is to split a routine with one dominant path). *)
let find_regions ?(config = default_config) ?(basis = `Entry)
    ~(profile : Ucode.Profile.t) (r : U.routine) : region list =
  if Ucode.Profile.is_empty profile then []
  else begin
    let reference =
      match basis with
      | `Entry -> Ucode.Profile.entry_count profile r
      | `Hottest ->
        List.fold_left
          (fun acc (b : U.block) ->
            Float.max acc
              (Ucode.Profile.block_count profile ~routine:r.U.r_name
                 ~block:b.U.b_id))
          0.0 r.U.r_blocks
    in
    if reference <= 0.0 then []
    else begin
      let is_cold l =
        Ucode.Profile.block_count profile ~routine:r.U.r_name ~block:l
        < config.cold_fraction *. reference
      in
      let blocks = blocks_of r in
      let live = Opt.Liveness.compute r in
      let candidates =
        List.filter_map
          (fun (b : U.block) ->
            if is_cold b.U.b_id then
              let set = grow_region blocks is_cold b.U.b_id in
              validate_region config r live blocks set b.U.b_id
            else None)
          r.U.r_blocks
      in
      let ranked =
        List.stable_sort (fun a b -> compare b.rg_size a.rg_size) candidates
      in
      (* Keep non-overlapping regions greedily. *)
      let taken = ref U.Int_set.empty in
      List.filter
        (fun rg ->
          if U.Int_set.is_empty (U.Int_set.inter rg.rg_blocks !taken) then begin
            taken := U.Int_set.union rg.rg_blocks !taken;
            true
          end
          else false)
        ranked
    end
  end

(* ------------------------------------------------------------------ *)
(* Extraction.                                                         *)

(** Outline one region out of [r].  Returns the shrunk routine and the
    new (module-local) routine holding the region. *)
let extract (st : State.t) (r : U.routine) (rg : region) :
    U.routine * U.routine =
  let out_name = Printf.sprintf "%s__cold%d" r.U.r_name rg.rg_entry in
  (* The outlined routine: the region's blocks, with fresh sites for
     copied calls, region inputs as parameters, and every exit edge
     rewritten into a return of the output (or nothing). *)
  let region_blocks =
    List.filter (fun (b : U.block) -> U.Int_set.mem b.U.b_id rg.rg_blocks)
      r.U.r_blocks
  in
  let region_blocks =
    if Chaos.enabled Chaos.Region_lost_cold_path then
      (* Keep the region's control flow but lose the entry block's
         effects.  Registers stay in range, so the residue still
         validates — only the oracle can tell. *)
      List.map
        (fun (b : U.block) ->
          if b.U.b_id = rg.rg_entry then { b with U.b_instrs = [] } else b)
        region_blocks
    else region_blocks
  in
  let renew_sites (b : U.block) =
    { b with
      U.b_instrs =
        List.map
          (function
            | U.Call c -> U.Call { c with U.c_site = State.fresh_site st }
            | i -> i)
          b.U.b_instrs }
  in
  let rewrite_exit (b : U.block) =
    let ret = U.Return rg.rg_output in
    match b.U.b_term with
    | U.Jump t when t = rg.rg_exit -> { b with U.b_term = ret }
    | U.Branch (_c, t1, t2) when t1 = rg.rg_exit && t2 = rg.rg_exit ->
      (* Both arms leave (necessarily to the single continuation). *)
      { b with U.b_term = ret }
    | _ -> b
  in
  (* Mixed branches (one arm in, one arm out) get routed through a stub
     block that returns. *)
  let stub_label = r.U.r_next_label in
  let needs_stub = ref false in
  let route_mixed (b : U.block) =
    match b.U.b_term with
    | U.Branch (c, t1, t2) when t1 = rg.rg_exit || t2 = rg.rg_exit ->
      needs_stub := true;
      let fix t = if t = rg.rg_exit then stub_label else t in
      { b with U.b_term = U.Branch (c, fix t1, fix t2) }
    | _ -> b
  in
  let out_blocks =
    List.map (fun b -> route_mixed (rewrite_exit (renew_sites b))) region_blocks
  in
  let out_blocks =
    if !needs_stub then
      out_blocks
      @ [ { U.b_id = stub_label; U.b_instrs = [];
            U.b_term = U.Return rg.rg_output } ]
    else out_blocks
  in
  (* The outlined routine's entry must be its first block. *)
  let out_blocks =
    let entry, rest =
      List.partition (fun (b : U.block) -> b.U.b_id = rg.rg_entry) out_blocks
    in
    entry @ rest
  in
  let outlined =
    { U.r_name = out_name; r_module = r.U.r_module; r_params = rg.rg_inputs;
      r_blocks = out_blocks; r_next_reg = r.U.r_next_reg;
      r_next_label = stub_label + 1;
      r_attrs = { U.default_attrs with U.a_no_inline = true };
      r_linkage = U.Module_local; r_origin = U.From_source }
  in
  (* The caller: region blocks replaced by one call block. *)
  let call_block =
    { U.b_id = rg.rg_entry;
      U.b_instrs =
        [ U.Call
            { U.c_dst = rg.rg_output; c_callee = U.Direct out_name;
              c_args = rg.rg_inputs; c_site = State.fresh_site st } ];
      U.b_term = U.Jump rg.rg_exit }
  in
  let kept =
    List.filter_map
      (fun (b : U.block) ->
        if b.U.b_id = rg.rg_entry then Some call_block
        else if U.Int_set.mem b.U.b_id rg.rg_blocks then None
        else Some b)
      r.U.r_blocks
  in
  ({ r with U.r_blocks = kept }, outlined)

(** Apply [regions] (stated in terms of [name]'s labels) one at a
    time, re-fetching the evolving routine.  Returns the number
    extracted. *)
let apply_regions (st : State.t) name regions : int =
  let extracted = ref 0 in
  List.iter
    (fun rg ->
      match U.find_routine st.State.program name with
      | None -> ()
      | Some current ->
        (* The region is stated in terms of the original routine's
           labels; skip if a previous extraction touched them. *)
        let labels_present =
          U.Int_set.for_all
            (fun l -> U.find_block current l <> None)
            rg.rg_blocks
        in
        if labels_present then begin
          let shrunk, outlined = extract st current rg in
          st.State.program <- U.update_routine st.State.program shrunk;
          st.State.program <- U.add_routine st.State.program outlined;
          if Telemetry.Collector.enabled () then begin
            Telemetry.Collector.count "hlo.outline.regions" 1;
            Telemetry.Collector.count "hlo.outline.instructions" rg.rg_size;
            Telemetry.Collector.decision ~kind:Telemetry.Event.Outline
              ~verdict:Telemetry.Event.Accepted ~context:name
              ~score:(float_of_int rg.rg_size) outlined.U.r_name
          end;
          (* The moved blocks keep their counts, under the new
             routine's name. *)
          U.Int_set.iter
            (fun l ->
              st.State.profile <-
                Ucode.Profile.add_block st.State.profile
                  ~routine:outlined.U.r_name ~block:l
                  (Ucode.Profile.block_count st.State.profile ~routine:name
                     ~block:l))
            rg.rg_blocks;
          incr extracted
        end)
    regions;
  !extracted

(** Outline every profitable cold region in the program.  Returns the
    number of regions extracted. *)
let run_pass ?(config = default_config) (st : State.t) : int =
  List.fold_left
    (fun acc (r : U.routine) ->
      let regions = find_regions ~config ~profile:st.State.profile r in
      acc + apply_regions st r.U.r_name regions)
    0 st.State.program.U.p_routines

(** Outline the cold regions of one routine, coldness measured against
    its hottest block — the region/demand inliner's entry point for
    splitting an over-budget callee.  Returns the number extracted. *)
let outline_routine ?(config = default_config) (st : State.t) name : int =
  match U.find_routine st.State.program name with
  | None -> 0
  | Some r ->
    let regions =
      find_regions ~config ~basis:`Hottest ~profile:st.State.profile r
    in
    apply_regions st name regions
