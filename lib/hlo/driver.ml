(** The multi-pass HLO driver (Figure 2 of the paper).

    HLO alternates cloning and inlining passes until the budget is
    exhausted, the pass limit is reached, or a pass performs no work.
    Between passes, routines touched by the transformations are re-run
    through the scalar optimizer — this is what makes the passes
    *staged*: constants cloned in during pass [k] propagate to call
    sites that only become interesting (inlinable, clonable, or
    devirtualizable) in pass [k+1].  The budget is recalibrated from
    measured sizes after each optimization round, so shrinkage earns
    budget back. *)

module U = Ucode.Types
module T = Telemetry.Collector

type result = {
  program : U.program;
  profile : Ucode.Profile.t;
  report : Report.t;
}

exception Invalid_ir of { stage : string; errors : string }

let () =
  Printexc.register_printer (function
    | Invalid_ir { stage; errors } ->
      Some (Printf.sprintf "HLO produced malformed IR (%s):\n%s" stage errors)
    | _ -> None)

(** Delete routines that can no longer execute: module-local routines
    and clones unreachable (via direct calls or taken addresses) from
    [main] and the exported user routines.  The count feeds Table 1's
    "Deletions" column. *)
let delete_unreachable ?(pass = -1) (st : State.t) : unit =
  let p = st.State.program in
  let is_root (r : U.routine) =
    r.U.r_name = p.U.p_main
    || (r.U.r_linkage = U.Exported
       && match r.U.r_origin with U.From_source -> true | U.Clone_of _ -> false)
  in
  let refs_of (r : U.routine) =
    List.concat_map
      (fun (b : U.block) ->
        List.filter_map
          (function
            | U.Call { c_callee = U.Direct n; _ } -> Some n
            | U.Faddr (_, n) ->
              if Chaos.enabled Chaos.Prune_address_taken then None else Some n
            | _ -> None)
          b.U.b_instrs)
      r.U.r_blocks
  in
  let marked = Hashtbl.create 64 in
  let rec mark name =
    if not (Hashtbl.mem marked name) then begin
      Hashtbl.replace marked name ();
      match U.find_routine p name with
      | Some r -> List.iter mark (refs_of r)
      | None -> ()  (* builtin *)
    end
  in
  List.iter (fun r -> if is_root r then mark r.U.r_name) p.U.p_routines;
  let dead =
    List.filter_map
      (fun (r : U.routine) ->
        if Hashtbl.mem marked r.U.r_name then None else Some r.U.r_name)
      p.U.p_routines
  in
  if dead <> [] then begin
    st.State.program <- U.remove_routines p dead;
    st.State.report.Report.deletions <-
      st.State.report.Report.deletions + List.length dead;
    T.count "hlo.deletions" (List.length dead);
    List.iter
      (fun name ->
        T.decision ~kind:Telemetry.Event.Delete ~verdict:Telemetry.Event.Accepted
          ~pass name)
      dead
  end

let reoptimize (st : State.t) (touched : string list) : unit =
  if st.State.config.Config.optimize_between_passes && touched <> [] then
    st.State.program <- Opt.Pipeline.optimize_selected st.State.program touched

let validate_if_needed (st : State.t) ~where =
  if st.State.config.Config.validate then
    match Ucode.Validate.check_program st.State.program with
    | [] -> ()
    | errors ->
      raise
        (Invalid_ir
           { stage = where; errors = Ucode.Validate.errors_to_string errors })

(** Run HLO.  [profile] should come from {!Interp.train} on the same
    (pre-HLO) program; pass {!Ucode.Profile.empty} for a heuristics-only
    compile.  The input program is first cleaned by the scalar
    optimizer (the paper's "classic optimizations performed at input
    time, mainly to reduce IR size") and the budget is anchored on the
    cleaned size. *)
let run ?(config = Config.default) ?(profile = Ucode.Profile.empty)
    (program : U.program) : result =
  T.with_span "hlo.run" @@ fun () ->
  let program =
    if config.Config.optimize_between_passes then
      T.with_span "hlo.clean" (fun () -> Opt.Pipeline.optimize_program program)
    else program
  in
  let st = State.create config ~program ~profile in
  validate_if_needed st ~where:"clean";
  st.State.report.Report.cost_before <- Ucode.Size.program_cost program;
  Budget.recalibrate st.State.budget
    ~measured_cost:(Ucode.Size.program_cost program);
  T.gauge "hlo.budget.allowance" st.State.budget.Budget.allowance;
  (* The IPA dead-call cleanup above may already strand routines. *)
  T.with_span "hlo.prune" (fun () -> delete_unreachable st);
  validate_if_needed st ~where:"initial prune";
  let outliner_config =
    { Outliner.cold_fraction = config.Config.outline_cold_fraction;
      min_instructions = config.Config.outline_min_instructions;
      max_inputs = config.Config.outline_max_inputs }
  in
  (* Outlining first (when enabled): shrinking hot routines by their
     cold regions both lowers the quadratic cost the budget is anchored
     on and keeps the inliner's attention on code that runs. *)
  if config.Config.enable_outlining then begin
    T.with_span "hlo.outline" @@ fun () ->
    let n = Outliner.run_pass ~config:outliner_config st in
    st.State.report.Report.outlined <- n;
    T.annotate "regions" (Telemetry.Event.Int n);
    validate_if_needed st ~where:"outlining";
    if n > 0 then begin
      reoptimize st
        (List.map (fun (r : U.routine) -> r.U.r_name)
           st.State.program.U.p_routines);
      Budget.recalibrate st.State.budget
        ~measured_cost:(Ucode.Size.program_cost st.State.program)
    end
  end;
  let pass = ref 0 in
  let continue_ = ref true in
  while
    !continue_ && !pass < config.Config.pass_limit
    && (not (Budget.exhausted st.State.budget))
    && State.running st
  do
    (T.with_span "hlo.pass" ~attrs:[ ("pass", Telemetry.Event.Int !pass) ]
    @@ fun () ->
    let ops_before = Report.total_operations st.State.report in
    (* The policy's stage list, interpreted in order.  [touched]
       accumulates routines the transforming stages changed; [Clean]
       re-optimizes them and starts afresh.  With the default
       clone/inline/prune/clean/prune order this is instruction-for-
       instruction the loop body the pre-policy driver hard-coded. *)
    let touched = ref [] in
    let prunes = ref 0 in
    List.iter
      (fun stage ->
        match (stage : Policy.stage) with
        | Policy.Clone ->
          let t =
            T.with_span "hlo.clone" (fun () -> Cloner.run_pass st ~pass:!pass)
          in
          validate_if_needed st ~where:(Printf.sprintf "clone pass %d" !pass);
          touched := !touched @ t
        | Policy.Inline ->
          let t =
            T.with_span "hlo.inline" (fun () -> Inliner.run_pass st ~pass:!pass)
          in
          validate_if_needed st ~where:(Printf.sprintf "inline pass %d" !pass);
          touched := !touched @ t
        | Policy.Prune ->
          incr prunes;
          T.with_span "hlo.prune" (fun () -> delete_unreachable ~pass:!pass st);
          validate_if_needed st
            ~where:
              (Printf.sprintf
                 (if !prunes = 1 then "prune pass %d" else "final prune pass %d")
                 !pass)
        | Policy.Clean ->
          reoptimize st !touched;
          validate_if_needed st
            ~where:(Printf.sprintf "optimize after pass %d" !pass);
          touched := []
        | Policy.Outline ->
          (T.with_span "hlo.outline" @@ fun () ->
           let n = Outliner.run_pass ~config:outliner_config st in
           st.State.report.Report.outlined <-
             st.State.report.Report.outlined + n;
           T.annotate "regions" (Telemetry.Event.Int n);
           if n > 0 then
             touched :=
               !touched
               @ List.map
                   (fun (r : U.routine) -> r.U.r_name)
                   st.State.program.U.p_routines);
          validate_if_needed st ~where:(Printf.sprintf "outline pass %d" !pass))
      config.Config.stage_order;
    Budget.recalibrate st.State.budget
      ~measured_cost:(Ucode.Size.program_cost st.State.program);
    T.gauge "hlo.budget.spent" st.State.budget.Budget.spent;
    st.State.report.Report.passes_run <- st.State.report.Report.passes_run + 1;
    (* An idle pass means convergence — unless a later stage will
       release more budget, in which case the pass was idle merely
       because its allotment was too small. *)
    let stage_now = Budget.stage_allowance st.State.budget ~pass:!pass in
    if
      Report.total_operations st.State.report = ops_before
      && stage_now >= st.State.budget.Budget.allowance
    then continue_ := false);
    incr pass
  done;
  st.State.report.Report.cost_after <- Ucode.Size.program_cost st.State.program;
  T.gauge "hlo.budget.spent" st.State.budget.Budget.spent;
  let cs = Summary_cache.stats () in
  T.gauge "hlo.summary_cache.hits" (float_of_int cs.Summary_cache.hits);
  T.gauge "hlo.summary_cache.misses" (float_of_int cs.Summary_cache.misses);
  T.gauge "hlo.summary_cache.entries" (float_of_int cs.Summary_cache.entries);
  { program = st.State.program; profile = st.State.profile;
    report = st.State.report }
