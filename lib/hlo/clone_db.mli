(** Cross-request clone-template cache.

    Materializing a clone ({!Clone_spec.make_clone}) is a full body
    copy.  Its output is a deterministic function of the callee's body,
    the spec, the clone's name and the sequence of fresh site ids — so
    the body copy can be cached in *normalized* form (name blanked,
    sites renumbered 0..k-1 in draw order) and re-instantiated under
    any name and any fresh-site sequence with a single renaming walk.

    The store is process-global and mutex-guarded, so a long-lived
    server ([hlod]) shares materialization work across concurrent
    compile requests exactly like {!Summary_cache} shares body
    analyses.  Instantiation is bit-identical to direct
    materialization (a qcheck property in [test_hlo] pins this down),
    so caching never perturbs results. *)

(** Drop-in replacement for {!Clone_spec.make_clone}: consult the
    template cache keyed by the callee's identity-complete body key and
    the spec, materializing (and caching) on miss.  Falls back to the
    uncached path while a chaos bug is armed — the armed mutation must
    reach every materialization, not just cache misses. *)
val make_clone :
  callee:Ucode.Types.routine ->
  clone_name:string ->
  fresh_site:(unit -> Ucode.Types.site) ->
  Clone_spec.t ->
  Ucode.Types.routine * (Ucode.Types.site * Ucode.Types.site) list

type stats = {
  hits : int;     (** instantiations served from a cached template *)
  misses : int;   (** materializations that built a new template *)
  entries : int;  (** resident templates *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** Drop all templates and zero the statistics. *)
val clear : unit -> unit
