(** Aggressive outlining — the paper's §5 future work: cold
    single-entry single-continuation regions are extracted into
    module-local routines of their own, shrinking hot routines (and the
    quadratic budget base) and keeping the optimizer focused on code
    that runs.  Requires profile data; enabled with
    [Config.enable_outlining]. *)

type config = {
  cold_fraction : float;
      (** a block is cold when it runs less than this fraction of the
          routine's entry count *)
  min_instructions : int;  (** smaller regions are not worth a call *)
  max_inputs : int;        (** live-in registers become parameters *)
}

val default_config : config

type region = {
  rg_blocks : Ucode.Types.Int_set.t;
  rg_entry : Ucode.Types.label;
  rg_exit : Ucode.Types.label;
  rg_inputs : Ucode.Types.reg list;
  rg_output : Ucode.Types.reg option;
  rg_size : int;
}

(** Outlinable regions of a routine, largest first, non-overlapping.
    [basis] (default [`Entry]) picks what the [cold_fraction] cut is
    relative to: the routine's entry count, or its hottest block
    ([`Hottest] — used by region/demand inlining, where the point is
    splitting a routine with one dominant path). *)
val find_regions :
  ?config:config ->
  ?basis:[ `Entry | `Hottest ] ->
  profile:Ucode.Profile.t ->
  Ucode.Types.routine ->
  region list

(** Extract every profitable region program-wide; returns how many. *)
val run_pass : ?config:config -> State.t -> int

(** Outline one routine's cold regions, coldness measured against its
    hottest block — how the region/demand inliner splits an
    over-budget callee.  Returns how many regions were extracted. *)
val outline_routine : ?config:config -> State.t -> string -> int
