(** Transformation statistics, reported per run.

    The fields mirror the columns of the paper's Table 1: inlines
    performed, clones created, clone replacements (call sites
    retargeted to a clone), and routine deletions, plus the
    compile-cost bookkeeping behind the "Compile Time" column. *)

type operation =
  | Op_inline of { caller : string; callee : string; site : Ucode.Types.site }
  | Op_clone_replace of { caller : string; clone : string; site : Ucode.Types.site }

type t = {
  mutable inlines : int;
  mutable clones_created : int;
  mutable clone_replacements : int;
  mutable deletions : int;
  mutable outlined : int;  (** cold regions extracted (§5 extension) *)
  mutable residue_outlined : int;
      (** regions split off over-budget callees by region/demand mode *)
  mutable passes_run : int;
  mutable cost_before : float;
  mutable cost_after : float;
  mutable operations : operation list;  (** newest first *)
}

let create () =
  { inlines = 0; clones_created = 0; clone_replacements = 0; deletions = 0;
    outlined = 0; residue_outlined = 0; passes_run = 0; cost_before = 0.0;
    cost_after = 0.0; operations = [] }

let operations_in_order t = List.rev t.operations

let total_operations t = t.inlines + t.clone_replacements

let pp ppf t =
  Fmt.pf ppf
    "inlines=%d clones=%d clone-repls=%d deletions=%d%s passes=%d cost %.0f -> %.0f (%s)"
    t.inlines t.clones_created t.clone_replacements t.deletions
    (String.concat ""
       [ (if t.outlined > 0 then Printf.sprintf " outlined=%d" t.outlined
          else "");
         (if t.residue_outlined > 0 then
            Printf.sprintf " residues=%d" t.residue_outlined
          else "") ])
    t.passes_run
    t.cost_before t.cost_after
    (* A zero pre-HLO cost makes the percent delta meaningless; keep
       the suffix parseable by printing an explicit n/a. *)
    (if t.cost_before > 0.0 then
       Printf.sprintf "%+.0f%%"
         ((t.cost_after -. t.cost_before) /. t.cost_before *. 100.0)
     else "n/a")
