(** Cross-request clone-template cache.

    See the interface for the contract.  A template is the clone a
    canonical materialization would produce — clone name [""], fresh
    sites drawn from a counter starting at 0 — so instantiating it
    under real identifiers is one walk: set the name, replace relative
    site [i] with the i-th id drawn from the caller's [fresh_site].

    The key must cover everything [Clone_spec.make_clone] reads from
    the callee.  [Ucode.Hash.routine_body_hash] covers params,
    attributes, blocks, instructions and terminators but deliberately
    excludes identity, so the key re-adds the fields the clone copies
    verbatim: name (the baked [r_origin] points at it), module, origin,
    and the register/label high-water marks. *)

module U = Ucode.Types

type template = {
  t_clone : U.routine;  (** r_name = "", call sites renumbered 0..k-1 *)
  t_site_map : (U.site * U.site) list;  (** original -> relative *)
  t_n_sites : int;
}

type stats = { hits : int; misses : int; entries : int }

let lock = Mutex.create ()
let table : (string, template) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let key_of ~(callee : U.routine) (spec : Clone_spec.t) =
  let origin =
    match callee.U.r_origin with
    | U.From_source -> "src"
    | U.Clone_of o -> "clone:" ^ o
  in
  Printf.sprintf "%s|%s|%s|%s|%d|%d|%s"
    (Ucode.Hash.routine_body_hash callee)
    callee.U.r_name callee.U.r_module origin callee.U.r_next_reg
    callee.U.r_next_label (Clone_spec.key spec)

(* ------------------------------------------------------------------ *)
(* Normalization and instantiation.                                    *)

let build_template ~callee spec : template =
  let next = ref 0 in
  let fresh_site () =
    let s = !next in
    incr next;
    s
  in
  let clone, site_map =
    Clone_spec.make_clone ~callee ~clone_name:"" ~fresh_site spec
  in
  { t_clone = clone; t_site_map = site_map; t_n_sites = !next }

let instantiate (t : template) ~clone_name ~fresh_site :
    U.routine * (U.site * U.site) list =
  (* Draw in relative-id order: the canonical counter handed out
     0, 1, … in draw order, so actual.(i) is what the i-th draw of
     [fresh_site] would have produced on the direct path. *)
  let actual = Array.init t.t_n_sites (fun _ -> fresh_site ()) in
  let instr = function
    | U.Call c -> U.Call { c with U.c_site = actual.(c.U.c_site) }
    | i -> i
  in
  let blocks =
    List.map
      (fun (b : U.block) ->
        { b with U.b_instrs = List.map instr b.U.b_instrs })
      t.t_clone.U.r_blocks
  in
  ( { t.t_clone with U.r_name = clone_name; U.r_blocks = blocks },
    List.map (fun (o, rel) -> (o, actual.(rel))) t.t_site_map )

(* ------------------------------------------------------------------ *)
(* The memoized entry point.                                           *)

let make_clone ~callee ~clone_name ~fresh_site spec =
  if Chaos.armed () <> None then
    (* A chaos bug mutates materialization itself; serving a template
       built before (or after) arming would hide or leak the bug. *)
    Clone_spec.make_clone ~callee ~clone_name ~fresh_site spec
  else begin
    let key = key_of ~callee spec in
    let tpl =
      match
        locked (fun () ->
            match Hashtbl.find_opt table key with
            | Some t -> incr hits; Some t
            | None -> incr misses; None)
      with
      | Some t -> t
      | None ->
        (* Build outside the lock; a racing request may build the same
           template, both are identical and either insert wins. *)
        let t = build_template ~callee spec in
        locked (fun () -> Hashtbl.replace table key t);
        t
    in
    instantiate tpl ~clone_name ~fresh_site
  end

let stats () =
  locked (fun () ->
      { hits = !hits; misses = !misses; entries = Hashtbl.length table })

let reset_stats () = locked (fun () -> hits := 0; misses := 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      hits := 0;
      misses := 0)
