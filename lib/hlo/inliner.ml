(** The inlining pass (Figure 4 of the paper).

    Every call edge is screened for legal, technical, pragmatic and
    user-imposed restrictions; viable sites get a run-time figure of
    merit (profile frequency when available, a loop heuristic
    otherwise, with a penalty for sites colder than their caller's
    entry — inlining into a non-critical path risks pushing spills onto
    hot paths).  Sites are then accepted greedily under the pass's
    budget allotment, with *cascaded costs*: accepted inlines are kept
    in a schedule ordered bottom-up over the call graph, so the cost of
    inlining B into A reflects whatever has already been scheduled into
    B — and when the schedule is executed, B's body really does contain
    those earlier inlines. *)

module U = Ucode.Types
module CG = Ucode.Callgraph
module T = Telemetry.Collector
module TE = Telemetry.Event

type candidate = {
  i_caller : string;
  i_callee : string;
  i_site : U.site;
  i_block : U.label;
  i_benefit : float;
  i_callee_size : int;
}

(* ------------------------------------------------------------------ *)
(* Legality screening.                                                 *)

type rejection =
  | Not_a_routine        (** external/builtin callee *)
  | Indirect_site
  | Arity_mismatch
  | Callee_varargs
  | Callee_alloca
  | Fp_model_mismatch
  | User_no_inline
  | Crosses_module

let rejection_name = function
  | Not_a_routine -> "not_a_routine"
  | Indirect_site -> "indirect_site"
  | Arity_mismatch -> "arity_mismatch"
  | Callee_varargs -> "callee_varargs"
  | Callee_alloca -> "callee_alloca"
  | Fp_model_mismatch -> "fp_model_mismatch"
  | User_no_inline -> "user_no_inline"
  | Crosses_module -> "crosses_module"

let screen (st : State.t) (e : CG.edge) : (U.routine * U.routine, rejection) result =
  let p = st.State.program in
  match e.CG.e_callee with
  | U.Indirect _ -> Error Indirect_site
  | U.Direct name -> (
    match U.find_routine p name with
    | None -> Error Not_a_routine
    | Some callee ->
      let caller = U.find_routine_exn p e.CG.e_caller in
      if callee.U.r_attrs.U.a_no_inline then Error User_no_inline
      else if callee.U.r_attrs.U.a_varargs then Error Callee_varargs
      else if callee.U.r_attrs.U.a_alloca then Error Callee_alloca
      else if callee.U.r_attrs.U.a_fp_model <> caller.U.r_attrs.U.a_fp_model
      then Error Fp_model_mismatch
      else if List.length e.CG.e_args <> List.length callee.U.r_params then
        Error Arity_mismatch
      else if
        (not st.State.config.Config.cross_module)
        && caller.U.r_module <> callee.U.r_module
      then Error Crosses_module
      else Ok (caller, callee))

(* ------------------------------------------------------------------ *)
(* Benefit.                                                            *)

let benefit_of (st : State.t) (caller : U.routine) (callee : U.routine)
    ~(site : U.site) ~(block : U.label) : float =
  let config = st.State.config in
  let profile = st.State.profile in
  let freq =
    Summaries.site_frequency ~config ~profile caller ~site ~label:block
  in
  let cold_penalty =
    if
      config.Config.use_profile
      && (not (Ucode.Profile.is_empty profile))
      && Ucode.Profile.block_count profile ~routine:caller.U.r_name
           ~block
         < Ucode.Profile.entry_count profile caller
    then config.Config.cold_site_penalty
    else 1.0
  in
  (* Small callees amortize their cost faster; bias slightly toward
     them so ties break sensibly. *)
  let size_bias = 1.0 +. (8.0 /. float_of_int (8 + Summary_cache.size callee)) in
  freq *. cold_penalty *. size_bias

(* ------------------------------------------------------------------ *)
(* Performing one inline.                                              *)

exception Site_vanished

(** Inline the body of the callee of call-site [site] into [caller_name].
    The caller's block containing the site is split in two; the copied
    body is wired between the halves, parameter-binding moves feed the
    renamed formals, and every [return] is rewritten into a move to the
    call's destination plus a jump to the join block.  A routine that
    falls off a [return] with no value yields 0, matching the
    interpreter's convention. *)
let perform_inline (st : State.t) ~(caller_name : string) ~(site : U.site) : unit =
  let p = st.State.program in
  let caller = U.find_routine_exn p caller_name in
  (* Locate the call instruction. *)
  let found =
    List.find_map
      (fun (b : U.block) ->
        let rec split pre = function
          | [] -> None
          | U.Call c :: post when c.U.c_site = site ->
            Some (b, List.rev pre, c, post)
          | i :: rest -> split (i :: pre) rest
        in
        split [] b.U.b_instrs)
      caller.U.r_blocks
  in
  let b, pre, c, post =
    match found with Some x -> x | None -> raise Site_vanished
  in
  let callee_name =
    match c.U.c_callee with
    | U.Direct n -> n
    | U.Indirect _ -> raise Site_vanished
  in
  let callee = U.find_routine_exn p callee_name in
  let copy =
    Ucode.Rename.copy_body callee ~reg_base:caller.U.r_next_reg
      ~label_base:caller.U.r_next_label
      ~fresh_site:(fun () -> State.fresh_site st)
  in
  let join_label = copy.Ucode.Rename.cp_next_label in
  let binds =
    let args =
      if Chaos.enabled Chaos.Inline_swap_args then List.rev c.U.c_args
      else c.U.c_args
    in
    List.map2 (fun formal arg -> U.Move (formal, arg))
      copy.Ucode.Rename.cp_params args
  in
  let pre_block =
    { b with U.b_instrs = pre @ binds;
             U.b_term = U.Jump copy.Ucode.Rename.cp_entry }
  in
  let join_block =
    { U.b_id = join_label; U.b_instrs = post; U.b_term = b.U.b_term }
  in
  let rewire_return (blk : U.block) =
    match blk.U.b_term with
    | U.Return v ->
      let extra =
        match (c.U.c_dst, v) with
        | Some d, Some _ when Chaos.enabled Chaos.Inline_lost_retval ->
          [ U.Const (d, 0L) ]
        | Some d, Some value -> [ U.Move (d, value) ]
        | Some d, None -> [ U.Const (d, 0L) ]
        | None, _ -> []
      in
      { blk with U.b_instrs = blk.U.b_instrs @ extra; U.b_term = U.Jump join_label }
    | _ -> blk
  in
  let copied = List.map rewire_return copy.Ucode.Rename.cp_blocks in
  let blocks =
    List.map (fun (blk : U.block) -> if blk.U.b_id = b.U.b_id then pre_block else blk)
      caller.U.r_blocks
    @ copied @ [ join_block ]
  in
  let caller' =
    { caller with U.r_blocks = blocks;
      U.r_next_reg = copy.Ucode.Rename.cp_next_reg;
      U.r_next_label = join_label + 1 }
  in
  st.State.program <- U.update_routine st.State.program caller';
  (* Profile transfer: the copied blocks inherit the fraction of the
     callee's counts attributable to this site; the join block runs as
     often as the call fired. *)
  let profile = st.State.profile in
  if not (Ucode.Profile.is_empty profile) then begin
    let site_count = Ucode.Profile.site_count profile site in
    let entry = Ucode.Profile.entry_count profile callee in
    let factor = if entry <= 0.0 then 0.0 else Float.min 1.0 (site_count /. entry) in
    let profile =
      Ucode.Profile.transfer_copy profile ~from_routine:callee_name
        ~into_routine:caller_name ~block_map:copy.Ucode.Rename.cp_block_map
        ~site_map:copy.Ucode.Rename.cp_site_map ~factor
    in
    let profile =
      Ucode.Profile.add_block profile ~routine:caller_name ~block:join_label
        site_count
    in
    let profile =
      (* The callee now runs correspondingly less often — unless we
         just unrolled it into itself. *)
      if callee_name = caller_name || factor <= 0.0 then profile
      else Ucode.Profile.scale_routine profile callee (1.0 -. factor)
    in
    st.State.profile <- profile
  end

(* ------------------------------------------------------------------ *)
(* Pass driver.                                                        *)

(** Run one inlining pass under the stage-[pass] budget allotment.
    Returns the names of modified routines. *)
let run_pass (st : State.t) ~(pass : int) : string list =
  if (not st.State.config.Config.enable_inlining) || not (State.running st)
  then []
  else begin
    let p = st.State.program in
    let cg = CG.build p in
    (* Screen and rank. *)
    (* Journal one entry per screened edge; telemetry-off costs one
       branch per edge. *)
    let journal_screen_reject (e : CG.edge) r =
      let callee =
        match e.CG.e_callee with U.Direct n -> n | U.Indirect _ -> "<indirect>"
      in
      let reason = rejection_name r in
      T.count "hlo.inline.screened" 1;
      T.count ("hlo.inline.reject." ^ reason) 1;
      T.decision ~kind:TE.Inline ~verdict:(TE.Rejected reason)
        ~context:e.CG.e_caller ~site:e.CG.e_site ~pass callee
    in
    let candidates =
      List.filter_map
        (fun (e : CG.edge) ->
          match screen st e with
          | Error r ->
            if T.enabled () then journal_screen_reject e r;
            None
          | Ok (caller, callee) ->
            T.count "hlo.inline.screened" 1;
            Some
              { i_caller = caller.U.r_name; i_callee = callee.U.r_name;
                i_site = e.CG.e_site; i_block = e.CG.e_block;
                i_benefit =
                  benefit_of st caller callee ~site:e.CG.e_site
                    ~block:e.CG.e_block;
                i_callee_size = Summary_cache.size callee })
        cg.CG.cg_edges
    in
    let rank cands =
      List.stable_sort
        (fun a b ->
          match compare b.i_benefit a.i_benefit with
          | 0 -> compare a.i_callee_size b.i_callee_size
          | n -> n)
        cands
    in
    let ranked = rank candidates in
    (* Greedy acceptance with cascaded size estimates. *)
    let est_size = Hashtbl.create 64 in
    List.iter
      (fun (r : U.routine) ->
        Hashtbl.replace est_size r.U.r_name (Summary_cache.size r))
      p.U.p_routines;
    let whole_body_delta cand =
      let sz_caller = Hashtbl.find est_size cand.i_caller in
      let sz_callee = Hashtbl.find est_size cand.i_callee in
      Ucode.Size.cost_of_size (sz_caller + sz_callee)
      -. Ucode.Size.cost_of_size sz_caller
    in
    (* Region/demand machinery: split an over-budget callee by
       outlining its cold regions (coldness against its hottest block),
       leaving a hot residue the greedy loop can re-price.  Memoized
       per callee — once split (or found unsplittable), never again
       this pass. *)
    let mode = st.State.config.Config.inline_mode in
    let outliner_config =
      { Outliner.cold_fraction = st.State.config.Config.region_cold_fraction;
        min_instructions = st.State.config.Config.outline_min_instructions;
        max_inputs = st.State.config.Config.outline_max_inputs }
    in
    let split_state : (string, bool) Hashtbl.t = Hashtbl.create 8 in
    let was_split name = Hashtbl.find_opt split_state name = Some true in
    let try_split (trigger : candidate) : bool =
      let name = trigger.i_callee in
      match Hashtbl.find_opt split_state name with
      | Some ok -> ok
      | None ->
        let before_names =
          List.fold_left
            (fun acc (r : U.routine) -> U.String_set.add r.U.r_name acc)
            U.String_set.empty st.State.program.U.p_routines
        in
        let cost_before =
          match U.find_routine st.State.program name with
          | Some r -> Ucode.Size.cost_of_size (Summary_cache.size r)
          | None -> 0.0
        in
        let n = Outliner.outline_routine ~config:outliner_config st name in
        let ok = n > 0 in
        if ok then begin
          st.State.report.Report.residue_outlined <-
            st.State.report.Report.residue_outlined + n;
          (* The split shrinks Σ size² — hand the saving back so the
             residue can be afforded where the whole body could not. *)
          let cost_after =
            List.fold_left
              (fun acc (r : U.routine) ->
                if
                  r.U.r_name = name
                  || not (U.String_set.mem r.U.r_name before_names)
                then acc +. Ucode.Size.cost_of_size (Summary_cache.size r)
                else acc)
              0.0 st.State.program.U.p_routines
          in
          Budget.credit st.State.budget (cost_before -. cost_after);
          (match U.find_routine st.State.program name with
          | Some r -> Hashtbl.replace est_size name (Summary_cache.size r)
          | None -> ());
          if T.enabled () then begin
            T.count "hlo.inline.outlined_then_inlined" 1;
            (* The whole-body inline is off the table; the journal
               records why before the residue is (re-)priced. *)
            T.decision ~kind:TE.Inline
              ~verdict:(TE.Rejected "outlined_then_inlined")
              ~context:trigger.i_caller ~site:trigger.i_site
              ~score:trigger.i_benefit ~pass name
          end
        end;
        Hashtbl.replace split_state name ok;
        ok
    in
    let rescore cand =
      let p = st.State.program in
      match
        (U.find_routine p cand.i_caller, U.find_routine p cand.i_callee)
      with
      | Some caller, Some callee ->
        { cand with
          i_benefit =
            benefit_of st caller callee ~site:cand.i_site ~block:cand.i_block;
          i_callee_size = Summary_cache.size callee }
      | _ -> cand
    in
    (* Region mode: an eager pre-pass — split every callee whose whole
       body fails this stage's budget check, then re-score and re-rank
       the surviving candidates against the residues. *)
    let ranked =
      if mode = Policy.Region then begin
        let any_split =
          List.fold_left
            (fun acc cand ->
              if Budget.can_afford st.State.budget ~pass (whole_body_delta cand)
              then acc
              else
                let ok = try_split cand in
                ok || acc)
            false ranked
        in
        if any_split then rank (List.map rescore ranked) else ranked
      end
      else ranked
    in
    let reject_reason cand =
      if mode <> Policy.Whole && was_split cand.i_callee then
        "residue_over_budget"
      else "budget"
    in
    let accept cand delta =
      let sz_caller = Hashtbl.find est_size cand.i_caller in
      let sz_callee = Hashtbl.find est_size cand.i_callee in
      Budget.charge st.State.budget delta;
      Hashtbl.replace est_size cand.i_caller (sz_caller + sz_callee);
      T.count "hlo.inline.scheduled" 1
    in
    let accepted =
      List.filter
        (fun cand ->
          let delta = whole_body_delta cand in
          if Budget.can_afford st.State.budget ~pass delta then begin
            accept cand delta;
            true
          end
          else begin
            (* Demand mode: split lazily, at the moment the whole body
               fails, then re-price this very candidate. *)
            let retried =
              mode = Policy.Demand && try_split cand
              &&
              let delta = whole_body_delta cand in
              Budget.can_afford st.State.budget ~pass delta
              && begin
                   accept cand delta;
                   true
                 end
            in
            if retried then true
            else begin
              if T.enabled () then begin
                let reason = reject_reason cand in
                T.count ("hlo.inline.reject." ^ reason) 1;
                T.decision ~kind:TE.Inline ~verdict:(TE.Rejected reason)
                  ~context:cand.i_caller ~site:cand.i_site
                  ~score:cand.i_benefit ~pass cand.i_callee
              end;
              false
            end
          end)
        ranked
    in
    (* Execute the schedule bottom-up: all inlines *into* a routine
       happen before that routine is inlined anywhere else, so callers
       receive the cascaded bodies the cost model assumed. *)
    let order = CG.bottom_up_order cg in
    let position =
      List.mapi (fun i name -> (name, i)) order |> List.to_seq |> Hashtbl.of_seq
    in
    let pos name = Option.value ~default:max_int (Hashtbl.find_opt position name) in
    let schedule =
      List.stable_sort (fun a b -> compare (pos a.i_caller) (pos b.i_caller))
        accepted
    in
    let touched = ref U.String_set.empty in
    let journal cand verdict =
      T.decision ~kind:TE.Inline ~verdict ~context:cand.i_caller
        ~site:cand.i_site ~score:cand.i_benefit ~pass cand.i_callee
    in
    List.iter
      (fun cand ->
        if State.running st then begin
          match
            perform_inline st ~caller_name:cand.i_caller ~site:cand.i_site
          with
          | () ->
            State.note_operation st
              (Report.Op_inline
                 { caller = cand.i_caller; callee = cand.i_callee;
                   site = cand.i_site });
            if T.enabled () then begin
              T.count "hlo.inline.performed" 1;
              journal cand TE.Accepted
            end;
            touched := U.String_set.add cand.i_caller !touched
          | exception Site_vanished ->
            if T.enabled () then begin
              T.count "hlo.inline.reject.site_vanished" 1;
              journal cand (TE.Rejected "site_vanished")
            end
        end
        else if T.enabled () then begin
          T.count "hlo.inline.reject.operation_cap" 1;
          journal cand (TE.Rejected "operation_cap")
        end)
      schedule;
    U.String_set.elements !touched
  end
