(** Transformation statistics: the columns of the paper's Table 1
    (inlines, clones, clone replacements, deletions) plus compile-cost
    bookkeeping, the outlining extension's counter, and the ordered
    operation log behind Figure 8. *)

type operation =
  | Op_inline of {
      caller : string;
      callee : string;
      site : Ucode.Types.site;
    }
  | Op_clone_replace of {
      caller : string;
      clone : string;
      site : Ucode.Types.site;
    }

type t = {
  mutable inlines : int;
  mutable clones_created : int;
  mutable clone_replacements : int;
  mutable deletions : int;
  mutable outlined : int;
  mutable residue_outlined : int;
      (** cold regions split off over-budget callees (region/demand) *)
  mutable passes_run : int;
  mutable cost_before : float;
  mutable cost_after : float;
  mutable operations : operation list;  (** newest first *)
}

val create : unit -> t

(** Operations oldest-first (the Figure 8 x-axis). *)
val operations_in_order : t -> operation list

(** Inlines + clone replacements — what Figure 8 counts. *)
val total_operations : t -> int

val pp : Format.formatter -> t -> unit
