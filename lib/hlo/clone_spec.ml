(** Clone specifications.

    A clone spec records which formals of a callee are fixed to which
    caller-supplied constants.  Intersecting a calling-context
    descriptor S(E) with a parameter-usage descriptor P(R) yields the
    spec of the clone that call site would like to exist; other sites
    whose context *matches* the spec can share the clone (forming the
    paper's clone group). *)

module U = Ucode.Types

type binding = Bconst of int64 | Bfun of string

(** Bindings ordered by ascending formal index. *)
type t = { cs_callee : string; cs_bindings : (int * binding) list }

let is_empty t = t.cs_bindings = []

let binding_to_string = function
  | Bconst k -> Int64.to_string k
  | Bfun f -> "&" ^ f

let to_string t =
  Printf.sprintf "%s(%s)" t.cs_callee
    (String.concat ","
       (List.map
          (fun (i, b) -> Printf.sprintf "#%d=%s" i (binding_to_string b))
          t.cs_bindings))

(** A stable key for the clone database. *)
let key t = to_string t

(** Intersect what the caller knows (S(E)) with what the callee can use
    (P(R)): keep bindings for formals the caller pins to a constant and
    the callee actually profits from knowing. *)
let intersect ~(callee : U.routine) ~(context : Summaries.context_value list)
    ~(usage : Summaries.param_usage) : t option =
  let nparams = List.length callee.U.r_params in
  if List.length context <> nparams then None
  else begin
    let bindings =
      List.filteri (fun i _ -> i < nparams) context
      |> List.mapi (fun i v -> (i, v))
      |> List.filter_map (fun (i, v) ->
             if usage.Summaries.pu_weights.(i) <= 0.0 then None
             else
               match v with
               | Summaries.Cconst k -> Some (i, Bconst k)
               | Summaries.Cfun f -> Some (i, Bfun f)
               | Summaries.Cunknown -> None)
    in
    if bindings = [] then None
    else Some { cs_callee = callee.U.r_name; cs_bindings = bindings }
  end

(** Does a site's context supply every binding of the spec?  (It may
    know *more*; the spec only uses what it lists.) *)
let matches (context : Summaries.context_value list) (t : t) : bool =
  List.for_all
    (fun (i, b) ->
      match (List.nth_opt context i, b) with
      | Some (Summaries.Cconst k), Bconst k' -> Int64.equal k k'
      | Some (Summaries.Cfun f), Bfun f' -> String.equal f f'
      | _ -> false)
    t.cs_bindings

(** Value of the spec to the callee: sum of the interest weights of the
    bound formals, with the configured bonus when a bound routine
    handle feeds an indirect call. *)
let value ~(config : Config.t) ~(usage : Summaries.param_usage) (t : t) : float =
  List.fold_left
    (fun acc (i, b) ->
      let w = usage.Summaries.pu_weights.(i) in
      let w =
        match b with
        | Bfun _ when usage.Summaries.pu_indirect.(i) ->
          w *. config.Config.indirect_bonus
        | _ -> w
      in
      acc +. w)
    0.0 t.cs_bindings

(** Materialize the clone: copy the body under [clone_name], drop the
    bound formals from the signature, and prepend their initializers
    to the entry block.  Returns the clone and the site renaming of the
    copied body (for profile transfer). *)
let make_clone ~(callee : U.routine) ~(clone_name : string)
    ~(fresh_site : unit -> U.site) (t : t) : U.routine * (U.site * U.site) list =
  let clone, site_map =
    Ucode.Rename.copy_routine callee ~new_name:clone_name ~fresh_site
  in
  let bound = List.map fst t.cs_bindings in
  let params =
    List.filteri (fun i _ -> not (List.mem i bound)) clone.U.r_params
  in
  let param_array = Array.of_list clone.U.r_params in
  let inits =
    List.map
      (fun (i, b) ->
        let reg = param_array.(i) in
        match b with
        | Bconst k ->
          let k =
            if Chaos.enabled Chaos.Clone_const_drift then Int64.add k 1L
            else k
          in
          U.Const (reg, k)
        | Bfun f -> U.Faddr (reg, f))
      t.cs_bindings
  in
  let blocks =
    match clone.U.r_blocks with
    | entry :: rest ->
      { entry with U.b_instrs = inits @ entry.U.b_instrs } :: rest
    | [] -> invalid_arg "Clone_spec.make_clone: no blocks"
  in
  ( { clone with U.r_params = params; U.r_blocks = blocks;
      U.r_linkage = U.Module_local },
    site_map )

(** Rewrite one call site to target the clone, dropping the actuals the
    clone has absorbed. *)
let retarget_call (t : t) ~(clone_name : string) (c : U.call) : U.call =
  let bound = List.map fst t.cs_bindings in
  let args =
    List.filteri (fun i _ -> not (List.mem i bound)) c.U.c_args
  in
  { c with U.c_callee = U.Direct clone_name; U.c_args = args }
