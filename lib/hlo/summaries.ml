(** Per-routine and per-edge summaries feeding the heuristics.

    - The *parameter-usage descriptor* P(R) says, for each formal of R,
      how much R would benefit from knowing that formal's value: each
      interesting use is weighed by the importance of the block it sits
      in (profile count relative to the routine entry when PBO data is
      present, a loop heuristic otherwise).  Formals reaching the
      function position of an indirect call get special emphasis, as in
      the paper.
    - The *calling-context descriptor* S(E) says what the caller knows
      about the actuals at edge E; our implementation, like the
      paper's, considers caller-supplied constants (including constant
      routine handles).
    - Frequency estimates for call sites and blocks, shared by the
      cloner's and inliner's benefit calculations.

    Body-only facts (the cycle sets behind the loop heuristic) come
    from [Summary_cache], keyed by routine-body hash, so they are
    computed once per distinct body rather than once per query. *)

module U = Ucode.Types
module CP = Opt.Constprop

(* ------------------------------------------------------------------ *)
(* Loop heuristic: blocks that sit on a CFG cycle.                     *)

(** Labels of blocks that are part of some cycle of [r]'s CFG
    (including self-loops).  Used as a stand-in for execution frequency
    when no profile is available.  Memoized by body hash. *)
let blocks_in_cycles (r : U.routine) : U.Int_set.t = Summary_cache.cycles r

(* ------------------------------------------------------------------ *)
(* Frequencies.                                                        *)

(** Weight used for in-loop blocks when no profile is available. *)
let loop_weight = 8.0

(** Execution weight of a block *relative to its routine's entry*.
    1.0 means "as often as the routine is entered". *)
let block_relative_weight ~(config : Config.t) ~(profile : Ucode.Profile.t)
    (r : U.routine) (label : U.label) : float =
  if config.Config.use_profile && not (Ucode.Profile.is_empty profile) then begin
    let entry = Ucode.Profile.entry_count profile r in
    if entry <= 0.0 then 0.0
    else Ucode.Profile.block_count profile ~routine:r.U.r_name ~block:label /. entry
  end
  else if U.Int_set.mem label (blocks_in_cycles r) then loop_weight
  else 1.0

(** Absolute frequency estimate of a call site sitting in block
    [label] of [r].  With profile data this is the measured site count;
    without, the loop heuristic. *)
let site_frequency ~(config : Config.t) ~(profile : Ucode.Profile.t)
    (r : U.routine) ~(site : U.site) ~(label : U.label) : float =
  if config.Config.use_profile && not (Ucode.Profile.is_empty profile) then
    Ucode.Profile.site_count profile site
  else if U.Int_set.mem label (blocks_in_cycles r) then loop_weight
  else 1.0

(* ------------------------------------------------------------------ *)
(* Calling-context descriptors S(E).                                   *)

type context_value = Cconst of int64 | Cfun of string | Cunknown

let context_value_of_lattice = function
  | CP.Const k -> Cconst k
  | CP.Fun f -> Cfun f
  | CP.Undef | CP.Nac -> Cunknown

(** Abstract argument values at every call site of [r]. *)
let edge_contexts (r : U.routine) : context_value list U.Int_map.t =
  U.Int_map.map (List.map context_value_of_lattice) (CP.values_at_calls r)

(* ------------------------------------------------------------------ *)
(* Parameter-usage descriptors P(R).                                   *)

type param_usage = {
  pu_weights : float array;  (** per formal: accumulated interest *)
  pu_indirect : bool array;
      (** per formal: reaches the function position of an indirect call *)
}

(** Interest weights per use kind.  Branch conditions rate high (a
    known value folds the branch and kills a whole region); indirect
    callees rate highest (they enable devirtualization, then inlining —
    the staged optimization of §3.1). *)
let weight_branch_use = 8.0
let weight_indirect_callee = 64.0
let weight_arith_use = 2.0
let weight_memory_use = 1.0
let weight_passthrough = 1.0

let param_usage ~(config : Config.t) ~(profile : Ucode.Profile.t)
    (r : U.routine) : param_usage =
  let n = List.length r.U.r_params in
  let weights = Array.make n 0.0 in
  let indirect = Array.make n false in
  let index_of_reg =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i p -> Hashtbl.replace tbl p i) r.U.r_params;
    fun reg -> Hashtbl.find_opt tbl reg
  in
  let bump reg w =
    match index_of_reg reg with
    | Some i -> weights.(i) <- weights.(i) +. w
    | None -> ()
  in
  (* One weight source per routine, resolved up front: either the
     profile or a single cycle-set lookup — not a per-block query. *)
  let relative_weight : U.label -> float =
    if config.Config.use_profile && not (Ucode.Profile.is_empty profile) then begin
      let entry = Ucode.Profile.entry_count profile r in
      fun label ->
        if entry <= 0.0 then 0.0
        else
          Ucode.Profile.block_count profile ~routine:r.U.r_name ~block:label
          /. entry
    end
    else begin
      let cycles = blocks_in_cycles r in
      fun label -> if U.Int_set.mem label cycles then loop_weight else 1.0
    end
  in
  List.iter
    (fun (b : U.block) ->
      let rel = relative_weight b.U.b_id in
      List.iter
        (fun i ->
          match i with
          | U.Call { c_callee = U.Indirect h; c_args; _ } ->
            (match index_of_reg h with
            | Some idx ->
              indirect.(idx) <- true;
              weights.(idx) <- weights.(idx) +. (weight_indirect_callee *. rel)
            | None -> ());
            List.iter (fun a -> bump a (weight_passthrough *. rel)) c_args
          | U.Call { c_args; _ } ->
            List.iter (fun a -> bump a (weight_passthrough *. rel)) c_args
          | U.Binop (_, _, a, b_) ->
            bump a (weight_arith_use *. rel);
            bump b_ (weight_arith_use *. rel)
          | U.Unop (_, _, a) -> bump a (weight_arith_use *. rel)
          | U.Load (_, a) -> bump a (weight_memory_use *. rel)
          | U.Store (a, v) ->
            bump a (weight_memory_use *. rel);
            bump v (weight_memory_use *. rel)
          | U.Move (_, a) -> bump a (weight_passthrough *. rel)
          | U.Const _ | U.Faddr _ | U.Gaddr _ -> ())
        b.U.b_instrs;
      List.iter
        (fun u -> bump u (weight_branch_use *. rel))
        (U.term_uses b.U.b_term))
    r.U.r_blocks;
  { pu_weights = weights; pu_indirect = indirect }
