(** The cloning pass (Figure 3 of the paper).

    Setup computes a parameter-usage descriptor P(R) per routine and a
    calling-context descriptor S(E) per call edge.  For every edge
    whose intersection is nonempty, the cloner greedily sweeps the
    callee's other incoming edges into a *clone group* — the set of
    sites that can safely share one clone.  Groups are ranked by
    estimated run-time benefit and materialized until the pass's budget
    allotment runs out; a group that provably leaves its clonee
    unreachable is costed at zero ("anticipated deletion").  Created
    clones are remembered in the clone database so a later pass that
    rediscovers the same specification reuses the clone instead of
    paying for it again. *)

module U = Ucode.Types
module CG = Ucode.Callgraph
module T = Telemetry.Collector
module TE = Telemetry.Event

type group = {
  g_callee : string;
  g_spec : Clone_spec.t;
  g_sites : CG.edge list;   (** all call sites folded into the group *)
  g_benefit : float;
  g_frequency : float;      (** estimated dynamic calls captured *)
  g_covers_all : bool;      (** group contains every incoming edge *)
}

(* ------------------------------------------------------------------ *)
(* Legality.                                                           *)

let clonable_routine (st : State.t) (r : U.routine) =
  (not r.U.r_attrs.U.a_no_clone)
  && (not r.U.r_attrs.U.a_varargs)
  && r.U.r_name <> st.State.program.U.p_main

let clonable_edge (st : State.t) (caller : U.routine) (callee : U.routine)
    (e : CG.edge) =
  List.length e.CG.e_args = List.length callee.U.r_params
  && (st.State.config.Config.cross_module
     || caller.U.r_module = callee.U.r_module)

(** Is the routine's handle ever taken?  If so it can be reached by
    indirect calls and must never be deleted (nor counted as dying). *)
let address_taken (p : U.program) name =
  List.exists
    (fun (r : U.routine) ->
      List.exists
        (fun (b : U.block) ->
          List.exists
            (function U.Faddr (_, n) -> n = name | _ -> false)
            b.U.b_instrs)
        r.U.r_blocks)
    p.U.p_routines

(* ------------------------------------------------------------------ *)
(* Group construction.                                                 *)

let build_groups (st : State.t) : group list =
  let p = st.State.program in
  let config = st.State.config in
  let profile = st.State.profile in
  let cg = CG.build p in
  (* Lazy per-routine summaries. *)
  let usage_cache = Hashtbl.create 32 in
  let usage_of (r : U.routine) =
    match Hashtbl.find_opt usage_cache r.U.r_name with
    | Some u -> u
    | None ->
      let u = Summaries.param_usage ~config ~profile r in
      Hashtbl.replace usage_cache r.U.r_name u;
      u
  in
  let context_cache = Hashtbl.create 32 in
  let contexts_of (r : U.routine) =
    match Hashtbl.find_opt context_cache r.U.r_name with
    | Some c -> c
    | None ->
      let c = Summaries.edge_contexts r in
      Hashtbl.replace context_cache r.U.r_name c;
      c
  in
  let context_of (e : CG.edge) =
    let caller = U.find_routine_exn p e.CG.e_caller in
    U.Int_map.find_opt e.CG.e_site (contexts_of caller)
  in
  let consumed = Hashtbl.create 64 in (* site ids already grouped this pass *)
  let groups = ref [] in
  List.iter
    (fun (e : CG.edge) ->
      if not (Hashtbl.mem consumed e.CG.e_site) then
        match e.CG.e_callee with
        | U.Indirect _ -> ()
        | U.Direct callee_name -> (
          match U.find_routine p callee_name with
          | None -> ()  (* builtin/external *)
          | Some callee ->
            let caller = U.find_routine_exn p e.CG.e_caller in
            if clonable_routine st callee && clonable_edge st caller callee e
            then
              match context_of e with
              | None -> ()
              | Some context -> (
                let usage = usage_of callee in
                match Clone_spec.intersect ~callee ~context ~usage with
                | None -> ()
                | Some spec ->
                  (* Greedily absorb every compatible incoming edge. *)
                  let incoming = CG.incoming cg callee_name in
                  let members =
                    List.filter
                      (fun (e' : CG.edge) ->
                        (not (Hashtbl.mem consumed e'.CG.e_site))
                        && (e'.CG.e_site = e.CG.e_site
                           ||
                           let caller' = U.find_routine_exn p e'.CG.e_caller in
                           clonable_edge st caller' callee e'
                           &&
                           match context_of e' with
                           | Some ctx' -> Clone_spec.matches ctx' spec
                           | None -> false))
                      incoming
                  in
                  List.iter
                    (fun (e' : CG.edge) ->
                      Hashtbl.replace consumed e'.CG.e_site ())
                    members;
                  let freq =
                    List.fold_left
                      (fun acc (e' : CG.edge) ->
                        let caller' = U.find_routine_exn p e'.CG.e_caller in
                        acc
                        +. Summaries.site_frequency ~config ~profile caller'
                             ~site:e'.CG.e_site ~label:e'.CG.e_block)
                      0.0 members
                  in
                  let benefit =
                    freq *. Clone_spec.value ~config ~usage spec
                  in
                  let covers_all =
                    List.length members = List.length incoming
                    && not (address_taken p callee_name)
                  in
                  if T.enabled () then begin
                    T.count "hlo.clone.groups" 1;
                    T.count "hlo.clone.group_sites" (List.length members)
                  end;
                  groups :=
                    { g_callee = callee_name; g_spec = spec; g_sites = members;
                      g_benefit = benefit; g_frequency = freq;
                      g_covers_all = covers_all }
                    :: !groups)))
    cg.CG.cg_edges;
  List.rev !groups

(* ------------------------------------------------------------------ *)
(* Materialization.                                                    *)

(** Rewrite every call instruction listed in [sites] (by site id) to
    invoke the clone. *)
let retarget_sites (st : State.t) ~(spec : Clone_spec.t) ~(clone_name : string)
    (sites : CG.edge list) : unit =
  let by_caller = Hashtbl.create 8 in
  List.iter
    (fun (e : CG.edge) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_caller e.CG.e_caller)
      in
      Hashtbl.replace by_caller e.CG.e_caller (e.CG.e_site :: existing))
    sites;
  Hashtbl.iter
    (fun caller_name site_ids ->
      let caller = U.find_routine_exn st.State.program caller_name in
      let rewrite_instr = function
        | U.Call c when List.mem c.U.c_site site_ids ->
          U.Call (Clone_spec.retarget_call spec ~clone_name c)
        | i -> i
      in
      let blocks =
        List.map
          (fun (b : U.block) ->
            { b with U.b_instrs = List.map rewrite_instr b.U.b_instrs })
          caller.U.r_blocks
      in
      st.State.program <-
        U.update_routine st.State.program { caller with U.r_blocks = blocks })
    by_caller

let apply_group (st : State.t) ~(pass : int) (g : group) : unit =
  let p = st.State.program in
  let callee = U.find_routine_exn p g.g_callee in
  let key = Clone_spec.key g.g_spec in
  (* Fraction of the clonee's executions this group captures, for
     profile bookkeeping. *)
  let factor =
    let entry = Ucode.Profile.entry_count st.State.profile callee in
    if entry <= 0.0 then 0.0 else Float.min 1.0 (g.g_frequency /. entry)
  in
  let entry =
    match Hashtbl.find_opt st.State.clone_db key with
    | Some entry ->
      T.count "hlo.clone.db_hits" 1;
      entry
    | None ->
      let clone_name = State.fresh_clone_name st g.g_callee in
      (* Materialize through the cross-request template cache: a
         long-lived server re-cloning the same callee under the same
         spec pays one body copy, then a renaming walk per request. *)
      let clone, site_map =
        Clone_db.make_clone ~callee ~clone_name
          ~fresh_site:(fun () -> State.fresh_site st)
          g.g_spec
      in
      st.State.program <- U.add_routine st.State.program clone;
      st.State.report.Report.clones_created <-
        st.State.report.Report.clones_created + 1;
      if T.enabled () then begin
        T.count "hlo.clone.created" 1;
        T.decision ~kind:TE.Clone_create ~verdict:TE.Accepted
          ~context:g.g_callee ~score:g.g_benefit ~pass clone_name
      end;
      let entry = { State.ce_name = clone_name; ce_site_map = site_map } in
      Hashtbl.replace st.State.clone_db key entry;
      entry
  in
  if factor > 0.0 then
    st.State.profile <-
      Ucode.Profile.split_for_clone st.State.profile ~original:g.g_callee
        ~clone_name:entry.State.ce_name ~site_map:entry.State.ce_site_map
        ~factor callee;
  (* Retarget sites one by one, respecting the operation cap. *)
  let rec take_sites = function
    | [] -> []
    | (e : CG.edge) :: rest when State.running st ->
      State.note_operation st
        (Report.Op_clone_replace
           { caller = e.CG.e_caller; clone = entry.State.ce_name;
             site = e.CG.e_site });
      if T.enabled () then
        T.decision ~kind:TE.Clone_replace ~verdict:TE.Accepted
          ~context:e.CG.e_caller ~site:e.CG.e_site ~score:g.g_benefit ~pass
          entry.State.ce_name;
      e :: take_sites rest
    | _ :: _ -> []
  in
  let sites = take_sites g.g_sites in
  retarget_sites st ~spec:g.g_spec ~clone_name:entry.State.ce_name sites

(** Run one cloning pass under the stage-[pass] budget allotment.
    Returns the names of routines created or modified (for selective
    re-optimization). *)
let run_pass (st : State.t) ~(pass : int) : string list =
  if (not st.State.config.Config.enable_cloning) || not (State.running st) then
    []
  else begin
    let groups = build_groups st in
    let ranked =
      List.stable_sort (fun a b -> compare b.g_benefit a.g_benefit) groups
    in
    let touched = ref U.String_set.empty in
    List.iter
      (fun g ->
        if State.running st then begin
          let cost =
            if Hashtbl.mem st.State.clone_db (Clone_spec.key g.g_spec) then 0.0
            else if
              (* Anticipated deletion: the clonee will become
                 unreachable, so the program does not actually grow. *)
              g.g_covers_all
              && (match U.find_routine st.State.program g.g_callee with
                 | Some r -> (
                   r.U.r_linkage = U.Module_local
                   || match r.U.r_origin with
                      | U.Clone_of _ -> true
                      | U.From_source -> false)
                 | None -> false)
            then 0.0
            else
              Ucode.Size.cost_of_size
                (Summary_cache.size
                   (U.find_routine_exn st.State.program g.g_callee))
          in
          if Budget.can_afford st.State.budget ~pass cost then begin
            Budget.charge st.State.budget cost;
            apply_group st ~pass g;
            touched := U.String_set.add g.g_callee !touched;
            (match Hashtbl.find_opt st.State.clone_db (Clone_spec.key g.g_spec) with
            | Some entry ->
              touched := U.String_set.add entry.State.ce_name !touched
            | None -> ());
            List.iter
              (fun (e : CG.edge) ->
                touched := U.String_set.add e.CG.e_caller !touched)
              g.g_sites
          end
          else if T.enabled () then begin
            T.count "hlo.clone.reject.budget" 1;
            T.decision ~kind:TE.Clone_create
              ~verdict:(TE.Rejected "budget") ~score:g.g_benefit ~pass
              g.g_callee
          end
        end)
      ranked;
    U.String_set.elements !touched
  end
