(** The compile-time growth budget (Figure 2 of the paper).

    The current compile cost of the program is estimated as
    [C = Σ size(R)²].  The budget allows the optimizer to grow that
    estimate by [budget_percent] percent; the allowance is *staged*
    over the passes so the first pass cannot consume everything —
    later passes get to react to what earlier inlining and cloning
    exposed. *)

type t = {
  base_cost : float;          (** C at the start of HLO *)
  allowance : float;          (** total extra cost permitted *)
  staging : float array;      (** cumulative fraction available per pass *)
  mutable spent : float;      (** extra cost consumed so far *)
}

let create (config : Config.t) ~initial_cost =
  (match Policy.check_staging config.Config.staging with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Budget.create: " ^ msg));
  { base_cost = initial_cost;
    allowance = initial_cost *. config.Config.budget_percent /. 100.0;
    staging = Array.of_list config.Config.staging; spent = 0.0 }

(** Extra cost available during [pass] (0-based).  Passes beyond the
    staging list get the full allowance. *)
let stage_allowance t ~pass =
  let i = min pass (Array.length t.staging - 1) in
  t.allowance *. t.staging.(i)

let remaining t ~pass = stage_allowance t ~pass -. t.spent

let can_afford t ~pass delta = t.spent +. delta <= stage_allowance t ~pass

let charge t delta = t.spent <- t.spent +. delta

(** Hand back [delta] cost units — outlining a callee mid-pass shrinks
    the program, and the saving belongs to the budget just like
    recalibration shrinkage does.  Never drives [spent] below zero. *)
let credit t delta = t.spent <- Float.max 0.0 (t.spent -. delta)

(** True when even the final stage has no room left. *)
let exhausted t = t.spent >= t.allowance

let current_cost t = t.base_cost +. t.spent

(** Re-anchor [spent] from a freshly measured program cost.  Called
    after the between-pass optimizer runs: shrinking a routine gives
    budget back ("recalibrate"). *)
let recalibrate t ~measured_cost =
  t.spent <- Float.max 0.0 (measured_cost -. t.base_cost)
