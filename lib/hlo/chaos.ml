type bug =
  | Inline_swap_args
  | Inline_lost_retval
  | Clone_const_drift
  | Prune_address_taken
  | Region_lost_cold_path

let all =
  [ Inline_swap_args; Inline_lost_retval; Clone_const_drift;
    Prune_address_taken; Region_lost_cold_path ]

let name = function
  | Inline_swap_args -> "inline_swap_args"
  | Inline_lost_retval -> "inline_lost_retval"
  | Clone_const_drift -> "clone_const_drift"
  | Prune_address_taken -> "prune_address_taken"
  | Region_lost_cold_path -> "region_lost_cold_path"

let of_name s = List.find_opt (fun b -> name b = s) all

let active : bug option ref = ref None

let armed () = !active
let arm b = active := b
let enabled b = !active = Some b

let with_bug b f =
  let saved = !active in
  active := Some b;
  Fun.protect ~finally:(fun () -> active := saved) f
