(** Content-hashed memo store for per-routine analyses.

    The paper's HLO writes per-module *isom* files so cross-module
    summaries need not be recomputed on every compile.  This module is
    that idea upgraded to a memo store: per-routine facts that depend
    only on the routine's *body* — its static size and the set of
    blocks on CFG cycles — are keyed by [Ucode.Hash.routine_body_hash]
    and reused across passes, across clones (a clone's body hashes like
    its original until specialization rewrites it), and, via
    [load]/[save], across `hloc` runs.

    Determinism is by construction: a cached value is byte-identical to
    what recomputation would produce, because the key covers everything
    the computation reads.  The store is domain-safe (one mutex) so
    parallel pipeline shards may consult it, and process-global so the
    heuristics can reach it without threading a handle through every
    signature. *)

module U = Ucode.Types

type entry = {
  e_size : int;                (** [Ucode.Size.routine_size] *)
  e_cycles : U.Int_set.t;      (** labels of blocks on a CFG cycle *)
}

type stats = {
  hits : int;
  misses : int;
  entries : int;    (** resident entries, including loaded ones *)
  loaded : int;     (** entries brought in by [load] *)
}

let lock = Mutex.create ()
let table : (Ucode.Hash.t, entry) Hashtbl.t = Hashtbl.create 256
let hits = ref 0
let misses = ref 0
let loaded = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* The memo store.                                                     *)

(* One flat build serves everything: the digest (the key), the
   instruction count, and the cycle analysis — a single walk over the
   block list instead of one per question. *)

let entry_of_flat fl : entry =
  { e_size = Ucode.Flat.n_instrs fl; e_cycles = Ucode.Flat.cycles fl }

let find (r : U.routine) : entry =
  let fl = Ucode.Flat.of_routine r in
  let key = Ucode.Flat.body_hash fl in
  match locked (fun () ->
      match Hashtbl.find_opt table key with
      | Some e -> incr hits; Some e
      | None -> incr misses; None)
  with
  | Some e -> e
  | None ->
    (* Compute outside the lock: Tarjan on a big routine must not
       serialize other domains' lookups.  A racing domain may compute
       the same entry; both results are identical, either insert wins. *)
    let e = entry_of_flat fl in
    locked (fun () -> Hashtbl.replace table key e);
    e

let size r = (find r).e_size
let cycles r = (find r).e_cycles

let stats () =
  locked (fun () ->
      { hits = !hits; misses = !misses; entries = Hashtbl.length table;
        loaded = !loaded })

let reset_stats () =
  locked (fun () -> hits := 0; misses := 0; loaded := 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset table; hits := 0; misses := 0; loaded := 0)

(* ------------------------------------------------------------------ *)
(* On-disk store.                                                      *)

(* The container (magic, version, checksum, fail-safe load) is the
   shared [Store] discipline; the payload is one line per entry:
     <hash> <size> <ncycles> <label> ... <label>
   Entries are written sorted by hash so the file is a deterministic
   function of the store's contents. *)

let disk_magic = "hloc-summary-cache"
let disk_version = 2

let load path =
  match Store.load ~path ~magic:disk_magic ~version:disk_version with
  | Error msg -> Error msg
  | Ok None -> Ok 0
  | Ok (Some payload) ->
    let n = ref 0 in
    let bad = ref None in
    List.iter
      (fun line ->
        if !bad = None && line <> "" then
          match String.split_on_char ' ' line with
          | hash :: size :: ncycles :: labels when String.length hash = 32 ->
            (match
               ( int_of_string_opt size,
                 int_of_string_opt ncycles,
                 List.filter_map int_of_string_opt labels )
             with
            | Some size, Some nc, labels when List.length labels = nc ->
              let e_cycles =
                List.fold_left
                  (fun s l -> U.Int_set.add l s)
                  U.Int_set.empty labels
              in
              locked (fun () ->
                  if not (Hashtbl.mem table hash) then begin
                    Hashtbl.replace table hash { e_size = size; e_cycles };
                    incr loaded;
                    incr n
                  end)
            | _ -> bad := Some line)
          | _ -> bad := Some line)
      (String.split_on_char '\n' payload);
    (match !bad with
    | Some line -> Error (path ^ ": malformed entry: " ^ line)
    | None -> Ok !n)

let save path =
  let rows =
    locked (fun () -> Hashtbl.fold (fun h e acc -> (h, e) :: acc) table [])
  in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (h, e) ->
      let labels = U.Int_set.elements e.e_cycles in
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d%s\n" h e.e_size (List.length labels)
           (String.concat ""
              (List.map (fun l -> " " ^ string_of_int l) labels))))
    rows;
  Store.save ~path ~magic:disk_magic ~version:disk_version
    (Buffer.contents buf)
