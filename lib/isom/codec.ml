(** Binary encoding primitives for the isom object format.  See the
    interface for the discipline; the container-level checksum lives in
    {!Store}, so [Corrupt] here mostly means an encoder/decoder version
    skew that the format version failed to catch. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let at_end r = r.pos = String.length r.data

let need r n =
  if r.pos + n > String.length r.data then
    corrupt "unexpected end of data at byte %d (need %d)" r.pos n

let put_int64 buf n = Buffer.add_int64_le buf n

let get_int64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let put_int buf n = put_int64 buf (Int64.of_int n)

let get_int r =
  let v = get_int64 r in
  if Int64.of_int (Int64.to_int v) <> v then corrupt "int out of range";
  Int64.to_int v

let get_count r ~max =
  let n = get_int r in
  if n < 0 || n > max then corrupt "count %d out of range [0, %d]" n max;
  n

let put_float buf f = put_int64 buf (Int64.bits_of_float f)
let get_float r = Int64.float_of_bits (get_int64 r)

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let get_bool r =
  need r 1;
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "bad bool byte %d" (Char.code c)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let get_string r =
  let n = get_count r ~max:(String.length r.data - r.pos) in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let put_list buf put xs =
  put_int buf (List.length xs);
  List.iter (put buf) xs

let get_list r get =
  (* Every element takes at least one byte, so the remaining bytes
     bound the element count. *)
  let n = get_count r ~max:(String.length r.data - r.pos) in
  List.init n (fun _ -> get r)

let put_option buf put = function
  | None -> put_bool buf false
  | Some x ->
    put_bool buf true;
    put buf x

let get_option r get = if get_bool r then Some (get r) else None

let put_tag buf t =
  if t < 0 || t > 255 then invalid_arg "Codec.put_tag";
  Buffer.add_char buf (Char.chr t)

let get_tag r =
  need r 1;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c
