(** Binary encoding primitives for the isom object format.

    Everything is length-prefixed little-endian — no delimiters to
    escape, no ambiguity by concatenation.  Decoding never reads out of
    bounds and never throws anything but {!Corrupt}, which the isom
    reader converts into a fail-safe [Error]. *)

exception Corrupt of string

type reader

val reader : string -> reader

(** All bytes consumed? The isom reader checks this so trailing
    garbage is corruption, not silently ignored. *)
val at_end : reader -> bool

val put_int : Buffer.t -> int -> unit
val get_int : reader -> int

(** [get_count] is [get_int] restricted to [0 .. max]; list and string
    lengths go through it so a corrupt length cannot allocate
    unboundedly. *)
val get_count : reader -> max:int -> int

val put_int64 : Buffer.t -> int64 -> unit
val get_int64 : reader -> int64

(** Floats round-trip bitwise (via [Int64.bits_of_float]), so profile
    counts survive exactly. *)
val put_float : Buffer.t -> float -> unit
val get_float : reader -> float

val put_bool : Buffer.t -> bool -> unit
val get_bool : reader -> bool

val put_string : Buffer.t -> string -> unit
val get_string : reader -> string

val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val get_list : reader -> (reader -> 'a) -> 'a list

val put_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
val get_option : reader -> (reader -> 'a) -> 'a option

(** [put_tag]/[get_tag]: one byte for constructor tags. *)
val put_tag : Buffer.t -> int -> unit
val get_tag : reader -> int
