(** Per-module profile fragments: slicing a whole-program profile down
    to one module and rebuilding a whole-program profile from slices.
    See the interface for the keying discipline (final routine names,
    module-local site ids). *)

module U = Ucode.Types

type t = {
  f_blocks : (string * (U.label * float) list) list;
  f_sites : (U.site * float) list;
  f_targets : (U.site * (string * float) list) list;
}

let empty = { f_blocks = []; f_sites = []; f_targets = [] }

let is_empty f = f.f_blocks = [] && f.f_sites = [] && f.f_targets = []

let of_profile (p : Ucode.Profile.t) ~(maps : Ucode.Linker.maps) ~module_name =
  let routines =
    Option.value ~default:[]
      (U.String_map.find_opt module_name maps.Ucode.Linker.lm_routines)
  in
  let sites =
    Option.value ~default:[]
      (U.String_map.find_opt module_name maps.Ucode.Linker.lm_sites)
  in
  let f_blocks =
    List.filter_map
      (fun (_local, final) ->
        match Ucode.Profile.blocks_of_routine p final with
        | [] -> None
        | bs -> (
          match List.filter (fun (_, c) -> c <> 0.0) bs with
          | [] -> None
          | bs -> Some (final, bs)))
      routines
  in
  let f_sites =
    List.filter_map
      (fun (local, final) ->
        let c = Ucode.Profile.site_count p final in
        if c = 0.0 then None else Some (local, c))
      sites
  in
  let f_targets =
    List.filter_map
      (fun (local, final) ->
        match Ucode.Profile.site_targets p final with
        | [] -> None
        | hist -> Some (local, hist))
      sites
  in
  { f_blocks; f_sites; f_targets }

let merge (fragments : (string * t) list) ~(maps : Ucode.Linker.maps) :
    Ucode.Profile.t =
  List.fold_left
    (fun acc (module_name, f) ->
      let site_map =
        Option.value ~default:[]
          (U.String_map.find_opt module_name maps.Ucode.Linker.lm_sites)
      in
      let final_of local = List.assoc_opt local site_map in
      let acc =
        List.fold_left
          (fun acc (routine, blocks) ->
            List.fold_left
              (fun acc (block, c) ->
                Ucode.Profile.add_block acc ~routine ~block c)
              acc blocks)
          acc f.f_blocks
      in
      let acc =
        List.fold_left
          (fun acc (local, c) ->
            match final_of local with
            | Some final -> Ucode.Profile.add_site acc final c
            | None -> acc)
          acc f.f_sites
      in
      List.fold_left
        (fun acc (local, hist) ->
          match final_of local with
          | Some final ->
            (* [add_target] prepends first-seen callees, so replay the
               histogram in reverse to reproduce its order exactly —
               the cloner's dominant-target choice must not depend on
               whether the profile came from training or a merge. *)
            List.fold_left
              (fun acc (callee, c) ->
                Ucode.Profile.add_target acc final callee c)
              acc (List.rev hist)
          | None -> acc)
        acc f.f_targets)
    Ucode.Profile.empty fragments

(* ------------------------------------------------------------------ *)
(* Codec.                                                              *)

let put_counted put_key buf (k, c) =
  put_key buf k;
  Codec.put_float buf c

let get_counted get_key r =
  let k = get_key r in
  let c = Codec.get_float r in
  (k, c)

let put buf f =
  Codec.put_list buf
    (fun buf (name, blocks) ->
      Codec.put_string buf name;
      Codec.put_list buf (put_counted Codec.put_int) blocks)
    f.f_blocks;
  Codec.put_list buf (put_counted Codec.put_int) f.f_sites;
  Codec.put_list buf
    (fun buf (site, hist) ->
      Codec.put_int buf site;
      Codec.put_list buf (put_counted Codec.put_string) hist)
    f.f_targets

let get r =
  let f_blocks =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let blocks = Codec.get_list r (get_counted Codec.get_int) in
        (name, blocks))
  in
  let f_sites = Codec.get_list r (get_counted Codec.get_int) in
  let f_targets =
    Codec.get_list r (fun r ->
        let site = Codec.get_int r in
        let hist = Codec.get_list r (get_counted Codec.get_string) in
        (site, hist))
  in
  { f_blocks; f_sites; f_targets }
