(** Separate-compilation build driver.  See the interface for the
    model; the invariants that matter here:

    - sources and isoms are processed in caller order everywhere, so
      the linked program, diagnostics and site numbering are identical
      to a whole-program compile at any parallelism degree;
    - the incremental planner is single-pass: exports depend only on a
      module's own source, so demoting a reuse candidate to dirty
      (reason [ext-changed]) cannot change what anything else sees. *)

type input =
  | Src of Minic.Compile.source
  | Parsed of Minic.Compile.source * Minic.Ast.unit_
  | Obj of File.t

let input_name = function
  | Src s | Parsed (s, _) -> s.Minic.Compile.src_module
  | Obj i -> File.name i

(* ------------------------------------------------------------------ *)
(* Batch compilation.                                                  *)

let compile_inputs (inputs : input list) :
    File.t list * Minic.Diag.t list =
  let parsed =
    Parallel.Pool.map_list
      (function
        | Src s -> `Unit (s, Minic.Compile.parse_source s)
        | Parsed (s, u) -> `Unit (s, u)
        | Obj i -> `Obj i)
      inputs
  in
  let exports =
    List.map
      (function
        | `Unit (_, u) ->
          (u.Minic.Ast.u_name, Minic.Sema.exports_of_unit u)
        | `Obj i -> (File.name i, i.File.i_exports))
      parsed
  in
  let diags =
    List.concat_map
      (function
        | `Obj _ -> []
        | `Unit (_, (u : Minic.Ast.unit_)) ->
          Minic.Sema.check
            ~ext:(Minic.Compile.ext_for ~exports ~module_name:u.u_name)
            u)
      parsed
  in
  Minic.Diag.fail_on_errors diags;
  let isoms =
    Parallel.Pool.map_list
      (function
        | `Obj i -> i
        | `Unit (s, (u : Minic.Ast.unit_)) ->
          Telemetry.Collector.with_span "isom.compile" @@ fun () ->
          let ext =
            Minic.Compile.ext_for ~exports ~module_name:u.u_name
          in
          let m = Minic.Compile.lower_checked_unit ~ext u in
          File.make
            ~source_hash:(Minic.Compile.source_hash s)
            ~ext_hash:(File.module_ext_hash m ext)
            ~exports:(Minic.Sema.exports_of_unit u)
            m)
      parsed
  in
  (isoms, diags)

(* ------------------------------------------------------------------ *)
(* Incremental planning.                                               *)

type stats = {
  s_reused : string list;
  s_recompiled : (string * string) list;
}

type verdict =
  | Reuse of File.t
  | Recompile of string

(** Decide, per source, whether its isom under [dir] is still valid.
    Returns inputs aligned with [sources] plus the recompile reason
    (None = reused). *)
let plan ~dir ~(manifest : Manifest.t) (sources : Minic.Compile.source list)
    : (input * string option) list =
  Telemetry.Collector.with_span "isom.plan" @@ fun () ->
  let verdicts =
    List.map
      (fun (s : Minic.Compile.source) ->
        let src_hash = Minic.Compile.source_hash s in
        match Manifest.find manifest s.src_module with
        | None -> (s, Recompile "new")
        | Some e ->
          if e.Manifest.e_source_hash <> src_hash then
            (s, Recompile "source-changed")
          else (
            match File.read ~path:(Filename.concat dir e.e_isom) with
            | Error _ -> (s, Recompile "unreadable")
            | Ok i ->
              (* Guard against manifest/isom skew: trust the isom's own
                 recorded source hash, not just the manifest's. *)
              if i.File.i_source_hash <> src_hash then
                (s, Recompile "source-changed")
              else (s, Reuse i)))
      sources
  in
  (* Dirty modules must be parsed to learn their exports; reuse
     candidates got theirs from the isom.  Then any candidate whose
     *referenced* slice of the export environment no longer hashes to
     what it was compiled against is demoted to dirty — interface
     changes in modules it never mentions do not invalidate it.  One
     pass suffices: recompiling a module from unchanged source
     reproduces its exports, so demotion never changes the environment
     anyone else sees. *)
  let parsed_dirty =
    Parallel.Pool.map_list
      (fun ((s : Minic.Compile.source), v) ->
        match v with
        | Recompile _ -> Some (Minic.Compile.parse_source s)
        | Reuse _ -> None)
      verdicts
  in
  let exports =
    List.map2
      (fun ((s : Minic.Compile.source), v) u ->
        match (v, u) with
        | Reuse i, _ -> (s.src_module, i.File.i_exports)
        | Recompile _, Some (u : Minic.Ast.unit_) ->
          (u.u_name, Minic.Sema.exports_of_unit u)
        | Recompile _, None -> assert false)
      verdicts parsed_dirty
  in
  List.map2
    (fun ((s : Minic.Compile.source), v) u ->
      match (v, u) with
      | Recompile reason, Some u -> (Parsed (s, u), Some reason)
      | Recompile _, None -> assert false
      | Reuse i, _ ->
        let ext =
          Minic.Compile.ext_for ~exports ~module_name:s.src_module
        in
        if File.module_ext_hash i.File.i_module ext <> i.File.i_ext_hash then
          (Src s, Some "ext-changed")
        else (Obj i, None))
    verdicts parsed_dirty

let ensure_dir dir =
  if not (Sys.file_exists dir) then (
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      invalid_arg ("isom directory has no parent: " ^ dir);
    Sys.mkdir dir 0o755)

let compile_incremental ~dir (sources : Minic.Compile.source list) :
    File.t list * Minic.Diag.t list * stats =
  ensure_dir dir;
  let manifest_path = Filename.concat dir Manifest.file_name in
  let manifest =
    match Manifest.load ~path:manifest_path with
    | Ok m -> m
    | Error _ ->
      Telemetry.Collector.count "isom.manifest.corrupt" 1;
      []
  in
  let planned = plan ~dir ~manifest sources in
  List.iter
    (fun (input, reason) ->
      match reason with
      | None -> Telemetry.Collector.count "isom.manifest.hit" 1
      | Some r ->
        Telemetry.Collector.count "isom.manifest.miss" 1;
        Telemetry.Collector.count ("isom.recompile." ^ r) 1;
        ignore (input_name input))
    planned;
  let stats =
    {
      s_reused =
        List.filter_map
          (fun (i, reason) ->
            if reason = None then Some (input_name i) else None)
          planned;
      s_recompiled =
        List.filter_map
          (fun (i, reason) ->
            Option.map (fun r -> (input_name i, r)) reason)
          planned;
    }
  in
  let isoms, diags = compile_inputs (List.map fst planned) in
  List.iter2
    (fun isom (_, reason) ->
      if reason <> None then (
        Telemetry.Collector.with_span "isom.write" @@ fun () ->
        let path = Filename.concat dir (File.file_name (File.name isom)) in
        match File.write ~path isom with
        | Ok () -> ()
        | Error msg -> raise (Sys_error msg)))
    isoms planned;
  let entries =
    List.map
      (fun isom ->
        {
          Manifest.e_module = File.name isom;
          e_source_hash = isom.File.i_source_hash;
          e_ext_hash = isom.File.i_ext_hash;
          e_isom = File.file_name (File.name isom);
        })
      isoms
  in
  (match Manifest.save ~path:manifest_path entries with
  | Ok () -> ()
  | Error msg -> raise (Sys_error msg));
  (isoms, diags, stats)

(* ------------------------------------------------------------------ *)
(* Linking.                                                            *)

let link ?main (isoms : File.t list) =
  Telemetry.Collector.with_span "isom.link" @@ fun () ->
  let exports = List.map (fun i -> (File.name i, i.File.i_exports)) isoms in
  List.iter
    (fun i ->
      let ext =
        Minic.Compile.ext_for ~exports ~module_name:(File.name i)
      in
      if File.module_ext_hash i.File.i_module ext <> i.File.i_ext_hash then
        raise
          (Ucode.Linker.Link_error
             (Printf.sprintf
                "module %s was compiled against a different set of exports \
                 than the modules being linked; recompile it"
                (File.name i))))
    isoms;
  let program, maps =
    Ucode.Linker.link_with_maps ?main
      (List.map (fun i -> i.File.i_module) isoms)
  in
  let profile =
    if isoms <> []
       && List.for_all (fun i -> not (Fragment.is_empty i.File.i_profile)) isoms
    then (
      Telemetry.Collector.count "isom.profile.fragments_used"
        (List.length isoms);
      Some
        (Fragment.merge
           (List.map (fun i -> (File.name i, i.File.i_profile)) isoms)
           ~maps))
    else None
  in
  (program, maps, profile)

let write_fragments paired ~maps ~profile =
  List.fold_left
    (fun acc (path, isom) ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
        let fragment =
          Fragment.of_profile profile ~maps ~module_name:(File.name isom)
        in
        File.write ~path { isom with File.i_profile = fragment })
    (Ok ()) paired
