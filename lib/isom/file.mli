(** The isom object file: one module's compiled form, on disk.

    This is the paper's central artifact — front ends serialize each
    module's unoptimized ucode to an *isom* file, and HLO reads the
    whole collection back at link time to optimize across module
    boundaries.  Ours additionally carries everything an incremental
    driver needs to decide whether the file is still valid, and a
    profile fragment so training data can ride along with the code:

    - the lowered module IR (routines, globals, module-local site ids);
    - the module's exports (name/arity/array-ness), so *other* modules
      can be compiled against this one without reading its source;
    - the source content hash and the hash of the slice of the export
      environment the module actually references (the two invalidation
      keys — see {!module_ext_hash});
    - per-routine {!Ucode.Hash.routine_body_hash} values (verified on
      load; the substrate for stale-profile matching);
    - a per-module profile-database fragment (possibly empty).

    The container (magic, version, payload checksum) is the shared
    {!Store} discipline; {!read} is fail-safe — bad magic, foreign
    version, checksum mismatch or a malformed payload come back as
    [Error], never an exception, so callers can fall back to
    recompiling from source. *)

type t = {
  i_module : Ucode.Linker.module_ir;
  i_exports : Minic.Sema.ext_env;
  i_source_hash : Ucode.Hash.t;   (** of the module's source text *)
  i_ext_hash : Ucode.Hash.t;
      (** of the slice of the export environment the module references
          ({!module_ext_hash}) *)
  i_body_hashes : (string * Ucode.Hash.t) list;
      (** routine name -> body hash, in routine order *)
  i_profile : Fragment.t;
}

val magic : string
val version : int

(** The module's name. *)
val name : t -> string

(** The conventional file name for a module's isom. *)
val file_name : string -> string

(** Build an isom for a freshly lowered module ([i_body_hashes] are
    computed here; the profile fragment defaults to empty). *)
val make :
  ?profile:Fragment.t ->
  source_hash:Ucode.Hash.t ->
  ext_hash:Ucode.Hash.t ->
  exports:Minic.Sema.ext_env ->
  Ucode.Linker.module_ir ->
  t

(** Canonical hash of an export environment (entries in the order
    given). *)
val ext_env_hash : Minic.Sema.ext_env -> Ucode.Hash.t

(** The [i_ext_hash] invalidation key: the hash of the environment
    restricted to the names the module's IR references but does not
    define, sorted by name.  Every external name the lowering consulted
    appears in the IR (as a direct callee, [Faddr] or [Gaddr]), so two
    environments with the same hash produce the same code for this
    module — and interface changes in modules it never mentions do not
    invalidate it, nor does the order modules are listed in. *)
val module_ext_hash : Ucode.Linker.module_ir -> Minic.Sema.ext_env -> Ucode.Hash.t

(** Serialize/deserialize the payload (exposed for tests; [write] and
    [read] add the {!Store} container). *)
val encode : t -> string
val decode : string -> (t, string) result

(** Write atomically via {!Store.save}. *)
val write : path:string -> t -> (unit, string) result

(** Read and verify.  [Error] on a missing or unreadable file, bad
    magic, foreign version, checksum mismatch, malformed payload, or
    stored body hashes that do not match the decoded routines. *)
val read : path:string -> (t, string) result
