(** The isom object file.  See the interface for the model; this file
    is the binary codec for {!Ucode.Linker.module_ir} plus the
    invalidation keys and the profile fragment, wrapped in the shared
    {!Store} container. *)

module U = Ucode.Types

let magic = "hloc-isom"
let version = 1

type t = {
  i_module : Ucode.Linker.module_ir;
  i_exports : Minic.Sema.ext_env;
  i_source_hash : Ucode.Hash.t;
  i_ext_hash : Ucode.Hash.t;
  i_body_hashes : (string * Ucode.Hash.t) list;
  i_profile : Fragment.t;
}

let name t = t.i_module.Ucode.Linker.m_name
let file_name module_name = module_name ^ ".isom"

let body_hashes (m : Ucode.Linker.module_ir) =
  List.map
    (fun r -> (r.U.r_name, Ucode.Hash.routine_body_hash r))
    m.Ucode.Linker.m_routines

let make ?(profile = Fragment.empty) ~source_hash ~ext_hash ~exports m =
  {
    i_module = m;
    i_exports = exports;
    i_source_hash = source_hash;
    i_ext_hash = ext_hash;
    i_body_hashes = body_hashes m;
    i_profile = profile;
  }

(* ------------------------------------------------------------------ *)
(* Codec for the ucode IR.                                             *)

let binop_tag : U.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9
  | Eq -> 10 | Ne -> 11 | Lt -> 12 | Le -> 13 | Gt -> 14 | Ge -> 15

let binop_of_tag : int -> U.binop = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Rem
  | 5 -> And | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr
  | 10 -> Eq | 11 -> Ne | 12 -> Lt | 13 -> Le | 14 -> Gt | 15 -> Ge
  | t -> Codec.(raise (Corrupt (Printf.sprintf "bad binop tag %d" t)))

let put_unop buf (op : U.unop) =
  Codec.put_tag buf (match op with Neg -> 0 | Not -> 1)

let get_unop r : U.unop =
  match Codec.get_tag r with
  | 0 -> Neg
  | 1 -> Not
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad unop tag %d" t))

let put_callee buf = function
  | U.Direct name ->
    Codec.put_tag buf 0;
    Codec.put_string buf name
  | U.Indirect reg ->
    Codec.put_tag buf 1;
    Codec.put_int buf reg

let get_callee r =
  match Codec.get_tag r with
  | 0 -> U.Direct (Codec.get_string r)
  | 1 -> U.Indirect (Codec.get_int r)
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad callee tag %d" t))

let put_instr buf (i : U.instr) =
  match i with
  | Const (d, k) ->
    Codec.put_tag buf 0;
    Codec.put_int buf d;
    Codec.put_int64 buf k
  | Faddr (d, n) ->
    Codec.put_tag buf 1;
    Codec.put_int buf d;
    Codec.put_string buf n
  | Gaddr (d, n) ->
    Codec.put_tag buf 2;
    Codec.put_int buf d;
    Codec.put_string buf n
  | Unop (d, op, a) ->
    Codec.put_tag buf 3;
    Codec.put_int buf d;
    put_unop buf op;
    Codec.put_int buf a
  | Binop (d, op, a, b) ->
    Codec.put_tag buf 4;
    Codec.put_int buf d;
    Codec.put_tag buf (binop_tag op);
    Codec.put_int buf a;
    Codec.put_int buf b
  | Move (d, a) ->
    Codec.put_tag buf 5;
    Codec.put_int buf d;
    Codec.put_int buf a
  | Load (d, a) ->
    Codec.put_tag buf 6;
    Codec.put_int buf d;
    Codec.put_int buf a
  | Store (a, v) ->
    Codec.put_tag buf 7;
    Codec.put_int buf a;
    Codec.put_int buf v
  | Call c ->
    Codec.put_tag buf 8;
    Codec.put_option buf Codec.put_int c.U.c_dst;
    put_callee buf c.U.c_callee;
    Codec.put_list buf Codec.put_int c.U.c_args;
    Codec.put_int buf c.U.c_site

let get_instr r : U.instr =
  match Codec.get_tag r with
  | 0 ->
    let d = Codec.get_int r in
    Const (d, Codec.get_int64 r)
  | 1 ->
    let d = Codec.get_int r in
    Faddr (d, Codec.get_string r)
  | 2 ->
    let d = Codec.get_int r in
    Gaddr (d, Codec.get_string r)
  | 3 ->
    let d = Codec.get_int r in
    let op = get_unop r in
    Unop (d, op, Codec.get_int r)
  | 4 ->
    let d = Codec.get_int r in
    let op = binop_of_tag (Codec.get_tag r) in
    let a = Codec.get_int r in
    Binop (d, op, a, Codec.get_int r)
  | 5 ->
    let d = Codec.get_int r in
    Move (d, Codec.get_int r)
  | 6 ->
    let d = Codec.get_int r in
    Load (d, Codec.get_int r)
  | 7 ->
    let a = Codec.get_int r in
    Store (a, Codec.get_int r)
  | 8 ->
    let c_dst = Codec.get_option r Codec.get_int in
    let c_callee = get_callee r in
    let c_args = Codec.get_list r Codec.get_int in
    let c_site = Codec.get_int r in
    Call { c_dst; c_callee; c_args; c_site }
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad instr tag %d" t))

let put_term buf (t : U.terminator) =
  match t with
  | Jump l ->
    Codec.put_tag buf 0;
    Codec.put_int buf l
  | Branch (c, l1, l2) ->
    Codec.put_tag buf 1;
    Codec.put_int buf c;
    Codec.put_int buf l1;
    Codec.put_int buf l2
  | Return r ->
    Codec.put_tag buf 2;
    Codec.put_option buf Codec.put_int r

let get_term r : U.terminator =
  match Codec.get_tag r with
  | 0 -> Jump (Codec.get_int r)
  | 1 ->
    let c = Codec.get_int r in
    let l1 = Codec.get_int r in
    Branch (c, l1, Codec.get_int r)
  | 2 -> Return (Codec.get_option r Codec.get_int)
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad terminator tag %d" t))

let put_block buf (b : U.block) =
  Codec.put_int buf b.U.b_id;
  Codec.put_list buf put_instr b.U.b_instrs;
  put_term buf b.U.b_term

let get_block r : U.block =
  let b_id = Codec.get_int r in
  let b_instrs = Codec.get_list r get_instr in
  let b_term = get_term r in
  { b_id; b_instrs; b_term }

let put_linkage buf (l : U.linkage) =
  Codec.put_tag buf (match l with Exported -> 0 | Module_local -> 1)

let get_linkage r : U.linkage =
  match Codec.get_tag r with
  | 0 -> Exported
  | 1 -> Module_local
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad linkage tag %d" t))

let put_attrs buf (a : U.attrs) =
  Codec.put_bool buf a.U.a_varargs;
  Codec.put_bool buf a.U.a_alloca;
  Codec.put_tag buf (match a.U.a_fp_model with Strict -> 0 | Relaxed -> 1);
  Codec.put_bool buf a.U.a_no_inline;
  Codec.put_bool buf a.U.a_no_clone

let get_attrs r : U.attrs =
  let a_varargs = Codec.get_bool r in
  let a_alloca = Codec.get_bool r in
  let a_fp_model : U.fp_model =
    match Codec.get_tag r with
    | 0 -> Strict
    | 1 -> Relaxed
    | t -> raise (Codec.Corrupt (Printf.sprintf "bad fp_model tag %d" t))
  in
  let a_no_inline = Codec.get_bool r in
  let a_no_clone = Codec.get_bool r in
  { a_varargs; a_alloca; a_fp_model; a_no_inline; a_no_clone }

let put_origin buf (o : U.origin) =
  match o with
  | From_source -> Codec.put_tag buf 0
  | Clone_of n ->
    Codec.put_tag buf 1;
    Codec.put_string buf n

let get_origin r : U.origin =
  match Codec.get_tag r with
  | 0 -> From_source
  | 1 -> Clone_of (Codec.get_string r)
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad origin tag %d" t))

let put_routine buf (rt : U.routine) =
  Codec.put_string buf rt.U.r_name;
  Codec.put_string buf rt.U.r_module;
  Codec.put_list buf Codec.put_int rt.U.r_params;
  Codec.put_list buf put_block rt.U.r_blocks;
  Codec.put_int buf rt.U.r_next_reg;
  Codec.put_int buf rt.U.r_next_label;
  put_attrs buf rt.U.r_attrs;
  put_linkage buf rt.U.r_linkage;
  put_origin buf rt.U.r_origin

let get_routine r : U.routine =
  let r_name = Codec.get_string r in
  let r_module = Codec.get_string r in
  let r_params = Codec.get_list r Codec.get_int in
  let r_blocks = Codec.get_list r get_block in
  let r_next_reg = Codec.get_int r in
  let r_next_label = Codec.get_int r in
  let r_attrs = get_attrs r in
  let r_linkage = get_linkage r in
  let r_origin = get_origin r in
  { r_name; r_module; r_params; r_blocks; r_next_reg; r_next_label;
    r_attrs; r_linkage; r_origin }

let put_global buf (g : U.global) =
  Codec.put_string buf g.U.g_name;
  Codec.put_string buf g.U.g_module;
  Codec.put_int buf g.U.g_size;
  Codec.put_list buf Codec.put_int64 g.U.g_init;
  put_linkage buf g.U.g_linkage

let get_global r : U.global =
  let g_name = Codec.get_string r in
  let g_module = Codec.get_string r in
  let g_size = Codec.get_int r in
  let g_init = Codec.get_list r Codec.get_int64 in
  let g_linkage = get_linkage r in
  { g_name; g_module; g_size; g_init; g_linkage }

let put_module buf (m : Ucode.Linker.module_ir) =
  Codec.put_string buf m.Ucode.Linker.m_name;
  Codec.put_list buf put_routine m.Ucode.Linker.m_routines;
  Codec.put_list buf put_global m.Ucode.Linker.m_globals

let get_module r : Ucode.Linker.module_ir =
  let m_name = Codec.get_string r in
  let m_routines = Codec.get_list r get_routine in
  let m_globals = Codec.get_list r get_global in
  { m_name; m_routines; m_globals }

let put_ext_env buf (e : Minic.Sema.ext_env) =
  Codec.put_list buf
    (fun buf (name, arity) ->
      Codec.put_string buf name;
      Codec.put_int buf arity)
    e.Minic.Sema.ext_funcs;
  Codec.put_list buf
    (fun buf (name, size, is_array) ->
      Codec.put_string buf name;
      Codec.put_int buf size;
      Codec.put_bool buf is_array)
    e.Minic.Sema.ext_globals

let get_ext_env r : Minic.Sema.ext_env =
  let ext_funcs =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        (name, Codec.get_int r))
  in
  let ext_globals =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let size = Codec.get_int r in
        (name, size, Codec.get_bool r))
  in
  { ext_funcs; ext_globals }

let ext_env_hash e =
  let buf = Buffer.create 256 in
  put_ext_env buf e;
  Ucode.Hash.string_hash (Buffer.contents buf)

(* Names a module's IR references but does not itself define — its
   imports.  Every external name the lowering consulted shows up in
   the IR as a [Direct] callee, [Faddr] or [Gaddr] (unknown names are
   sema errors), so the slice of the export environment over these
   names is exactly what the module's code depends on. *)
let free_names (m : Ucode.Linker.module_ir) =
  let defined =
    U.String_set.union
      (U.String_set.of_list
         (List.map (fun r -> r.U.r_name) m.Ucode.Linker.m_routines))
      (U.String_set.of_list
         (List.map (fun g -> g.U.g_name) m.Ucode.Linker.m_globals))
  in
  let refs = ref U.String_set.empty in
  let add n =
    if not (U.String_set.mem n defined) then refs := U.String_set.add n !refs
  in
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          List.iter
            (function
              | U.Faddr (_, n) -> add n
              | U.Gaddr (_, n) -> add n
              | U.Call { U.c_callee = U.Direct n; _ } -> add n
              | _ -> ())
            b.U.b_instrs)
        r.U.r_blocks)
    m.Ucode.Linker.m_routines;
  !refs

(* Sorted by name so the hash does not depend on the order modules are
   listed in — only on what the referenced names mean. *)
let relevant_ext (e : Minic.Sema.ext_env) ~free : Minic.Sema.ext_env =
  {
    Minic.Sema.ext_funcs =
      List.sort compare
        (List.filter
           (fun (n, _) -> U.String_set.mem n free)
           e.Minic.Sema.ext_funcs);
    ext_globals =
      List.sort compare
        (List.filter
           (fun (n, _, _) -> U.String_set.mem n free)
           e.Minic.Sema.ext_globals);
  }

let module_ext_hash m e = ext_env_hash (relevant_ext e ~free:(free_names m))

(* ------------------------------------------------------------------ *)
(* Whole-payload encode/decode.                                        *)

let encode t =
  let buf = Buffer.create 4096 in
  put_module buf t.i_module;
  put_ext_env buf t.i_exports;
  Codec.put_string buf t.i_source_hash;
  Codec.put_string buf t.i_ext_hash;
  Codec.put_list buf
    (fun buf (name, h) ->
      Codec.put_string buf name;
      Codec.put_string buf h)
    t.i_body_hashes;
  Fragment.put buf t.i_profile;
  Buffer.contents buf

let decode payload =
  match
    let r = Codec.reader payload in
    let i_module = get_module r in
    let i_exports = get_ext_env r in
    let i_source_hash = Codec.get_string r in
    let i_ext_hash = Codec.get_string r in
    let i_body_hashes =
      Codec.get_list r (fun r ->
          let name = Codec.get_string r in
          (name, Codec.get_string r))
    in
    let i_profile = Fragment.get r in
    if not (Codec.at_end r) then
      raise (Codec.Corrupt "trailing bytes after payload");
    { i_module; i_exports; i_source_hash; i_ext_hash; i_body_hashes;
      i_profile }
  with
  | t ->
    (* The stored body hashes double as an end-to-end integrity check:
       they must match hashes recomputed from the decoded routines. *)
    if t.i_body_hashes <> body_hashes t.i_module then
      Error "body hashes do not match decoded routines"
    else Ok t
  | exception Codec.Corrupt msg -> Error ("malformed payload: " ^ msg)

let write ~path t =
  Store.save ~path ~magic ~version (encode t)

let read ~path =
  match Store.load ~path ~magic ~version with
  | Error msg -> Error msg
  | Ok None -> Error (path ^ ": no such file")
  | Ok (Some payload) -> (
    match decode payload with
    | Ok _ as ok -> ok
    | Error msg -> Error (path ^ ": " ^ msg))
