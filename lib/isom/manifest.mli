(** The incremental build manifest: what the last build compiled, and
    from what.

    One entry per module, recording the source hash and export-
    environment hash the module's isom was built from plus the isom's
    path.  The driver consults it to decide which modules can skip
    recompilation.  Stored in the shared {!Store} container; a missing
    or corrupt manifest degrades to "everything is dirty", never an
    error. *)

type entry = {
  e_module : string;
  e_source_hash : Ucode.Hash.t;
  e_ext_hash : Ucode.Hash.t;
  e_isom : string;  (** path of the module's isom file *)
}

type t = entry list

(** Conventional file name inside the isom directory. *)
val file_name : string

val find : t -> string -> entry option

(** [Ok []] when the file does not exist; [Error] on a corrupt file
    (callers typically treat that as an empty manifest too, but may
    want to count it). *)
val load : path:string -> (t, string) result

val save : path:string -> t -> (unit, string) result
