(** Per-module profile-database fragments.

    The paper's PBO data is gathered on the *linked* program, but the
    isom model wants it stored per module, next to the module's code,
    so a later link can reuse training data without re-running the
    instrumented interpreter (the demand-driven link of PAPERS.md's
    region-based optimizer, and the substrate for stale-profile
    matching).

    A fragment is the slice of a whole-program profile attributable to
    one module, rebased to survive relinking:
    - block counts are keyed by *final* (post-link) routine names —
      stable across relinks because mangling is deterministic;
    - call-site counts and indirect-target histograms are keyed by
      *module-local* site ids — the only ids that are stable when
      other modules change — and are rebased through
      {!Ucode.Linker.maps} at merge time.

    A module whose source changes gets its fragment dropped (the
    rebuild writes an empty one); {!merge} therefore only ever sees
    fragments whose code is exactly the code being linked. *)

type t = {
  f_blocks : (string * (Ucode.Types.label * float) list) list;
      (** final routine name -> (block label, count), labels sorted *)
  f_sites : (Ucode.Types.site * float) list;
      (** module-local site id -> count *)
  f_targets : (Ucode.Types.site * (string * float) list) list;
      (** module-local indirect site -> (final callee, count) *)
}

val empty : t
val is_empty : t -> bool

(** [of_profile profile ~maps ~module_name] slices the whole-program
    [profile] down to [module_name]'s routines and sites, rebasing
    site ids to module-local ones through [maps].  Zero counts are
    dropped. *)
val of_profile :
  Ucode.Profile.t -> maps:Ucode.Linker.maps -> module_name:string -> t

(** [merge fragments ~maps] rebuilds a whole-program profile from
    per-module fragments under a (possibly new) link described by
    [maps].  Sites whose module-local id is absent from [maps] (a
    module shrank since the fragment was written) are skipped rather
    than misattributed. *)
val merge :
  (string * t) list -> maps:Ucode.Linker.maps -> Ucode.Profile.t

val put : Buffer.t -> t -> unit
val get : Codec.reader -> t
