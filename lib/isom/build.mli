(** The separate-compilation build driver.

    Three entry points, layered:

    - {!compile_inputs} — compile a mixed batch of sources and
      already-built isoms into a full set of isoms.  Every source is
      checked and lowered against the exports of *everything else* in
      the batch (the same {!Minic.Compile.ext_for} rule the
      whole-program path uses), so compiling the same modules
      separately or together yields bit-identical IR by construction.
    - {!compile_incremental} — same, but consulting a build manifest
      in [dir]: modules whose source hash and export-environment hash
      are unchanged are loaded from their isom instead of recompiled.
      Invalidation is fail-safe (missing/corrupt isom or manifest just
      means "dirty") and single-pass: a module's exports depend only
      on its own source, so recompiling a dirty module never
      invalidates anyone else's reuse decision.
    - {!link} — merge a set of isoms into one program, with the
      renaming maps and (when every isom carries one) a merged profile
      seed.

    Telemetry: span [isom.plan] around invalidation, counters
    [isom.manifest.hit]/[isom.manifest.miss], [isom.recompile.<reason>]
    with reasons [new], [source-changed], [unreadable], [ext-changed],
    [isom.manifest.corrupt], and [isom.profile.fragments_used]. *)

type input =
  | Src of Minic.Compile.source        (** compile from source *)
  | Parsed of Minic.Compile.source * Minic.Ast.unit_
      (** already parsed (the incremental planner parses dirty modules
          to learn their exports; no point parsing twice) *)
  | Obj of File.t                      (** already compiled *)

val input_name : input -> string

(** Compile every [Src]/[Parsed] input against the exports of the whole
    batch; [Obj] inputs pass through untouched.  Returns one isom per
    input, in order, plus all diagnostics.  Raises
    {!Minic.Diag.Compile_error} on errors. *)
val compile_inputs : input list -> File.t list * Minic.Diag.t list

type stats = {
  s_reused : string list;                 (** module names, in order *)
  s_recompiled : (string * string) list;  (** module name, reason *)
}

(** Incremental build of [sources] under [dir] (created if missing):
    plan against [dir]'s manifest, recompile only dirty modules, write
    their isoms and the updated manifest, and return the full isom set
    in source order.  Raises {!Minic.Diag.Compile_error} on compile
    errors and [Sys_error] if an isom or the manifest cannot be
    written. *)
val compile_incremental :
  dir:string ->
  Minic.Compile.source list ->
  File.t list * Minic.Diag.t list * stats

(** Link isoms into a program.  Verifies first that every isom was
    compiled against the exports the batch actually provides (raising
    {!Ucode.Linker.Link_error} naming the stale module otherwise),
    then links, then merges profile fragments — but only when *every*
    isom carries a non-empty fragment, so a partially trained build
    falls back to [None] (caller retrains) rather than optimizing from
    a partial profile. *)
val link :
  ?main:string ->
  File.t list ->
  Ucode.Types.program * Ucode.Linker.maps * Ucode.Profile.t option

(** [write_fragments paired ~maps ~profile] slices [profile] per
    module and rewrites each isom at its path with its fragment (code
    and invalidation keys unchanged).  First write error wins. *)
val write_fragments :
  (string * File.t) list ->
  maps:Ucode.Linker.maps ->
  profile:Ucode.Profile.t ->
  (unit, string) result
