(** Build manifest.  Payload is one line per module —
    [<module> <source-hash> <ext-hash> <isom-path>] — inside the
    shared {!Store} container. *)

let magic = "hloc-build-manifest"
let version = 1
let file_name = "build.manifest"

type entry = {
  e_module : string;
  e_source_hash : Ucode.Hash.t;
  e_ext_hash : Ucode.Hash.t;
  e_isom : string;
}

type t = entry list

let find t module_name =
  List.find_opt (fun e -> e.e_module = module_name) t

let parse_line path line =
  match String.split_on_char ' ' line with
  | [ e_module; e_source_hash; e_ext_hash; e_isom ]
    when e_module <> "" && String.length e_source_hash = 32
         && String.length e_ext_hash = 32 && e_isom <> "" ->
    Ok { e_module; e_source_hash; e_ext_hash; e_isom }
  | _ -> Error (path ^ ": malformed manifest entry: " ^ line)

let load ~path =
  match Store.load ~path ~magic ~version with
  | Error _ as e -> e
  | Ok None -> Ok []
  | Ok (Some payload) ->
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' payload)
    in
    List.fold_left
      (fun acc line ->
        match (acc, parse_line path line) with
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e
        | Ok entries, Ok entry -> Ok (entry :: entries))
      (Ok []) lines
    |> Result.map List.rev

let save ~path t =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s\n" e.e_module e.e_source_hash
           e.e_ext_hash e.e_isom))
    t;
  Store.save ~path ~magic ~version (Buffer.contents buf)
