(* Tests for the ucode IR library: instruction structure, the builder,
   renaming, the cost model, validation, call graphs and the profile
   database. *)

module U = Ucode.Types
module B = Ucode.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Helpers to build small programs without the front end.              *)

(* A routine [name(p0)] with a single block: r1 = p0 + p0; return r1 *)
let simple_routine ?(module_name = "m") ?(linkage = U.Exported)
    ?(attrs = U.default_attrs) ~fresh_site name =
  let b, params =
    B.create ~name ~module_name ~linkage ~attrs ~nparams:1 ~fresh_site ()
  in
  let p0 = List.nth params 0 in
  let l = B.fresh_label b in
  B.start_block b l;
  let sum = B.binop b U.Add p0 p0 in
  B.seal b (U.Return (Some sum));
  ignore sum;
  B.finish b

let program_of routines =
  let p =
    { U.p_routines = routines; p_globals = []; p_main = "main";
      p_next_site =
        List.fold_left
          (fun acc r ->
            List.fold_left
              (fun acc (_, c) -> max acc (c.U.c_site + 1))
              acc (U.calls_of_routine r))
          0 routines }
  in
  p

(* main calls callee(42) in a loop-free body. *)
let caller_callee_program () =
  let fresh_site, _ = B.site_counter () in
  let callee = simple_routine ~fresh_site "callee" in
  let b, _ = B.create ~name:"main" ~module_name:"m" ~nparams:0 ~fresh_site () in
  let l = B.fresh_label b in
  B.start_block b l;
  let k = B.const b 42L in
  let dst = B.fresh_reg b in
  B.call b ~dst:(Some dst) (U.Direct "callee") [ k ];
  B.seal b (U.Return (Some dst));
  let main = B.finish b in
  program_of [ callee; main ]

(* ------------------------------------------------------------------ *)
(* Types: uses/defs.                                                   *)

let test_instr_uses_def () =
  let cases =
    [ (U.Const (3, 7L), [], Some 3);
      (U.Faddr (2, "f"), [], Some 2);
      (U.Gaddr (2, "g"), [], Some 2);
      (U.Unop (1, U.Neg, 2), [ 2 ], Some 1);
      (U.Binop (1, U.Add, 2, 3), [ 2; 3 ], Some 1);
      (U.Move (4, 5), [ 5 ], Some 4);
      (U.Load (1, 2), [ 2 ], Some 1);
      (U.Store (1, 2), [ 1; 2 ], None);
      ( U.Call { c_dst = Some 9; c_callee = U.Indirect 7; c_args = [ 5; 6 ];
                 c_site = 0 },
        [ 7; 5; 6 ], Some 9 ) ]
  in
  List.iter
    (fun (i, uses, def) ->
      Alcotest.(check (list int)) "uses" uses (U.instr_uses i);
      Alcotest.(check (option int)) "def" def (U.instr_def i))
    cases

let test_map_instr_uses_preserves_def () =
  let i = U.Binop (1, U.Add, 1, 2) in
  (match U.map_instr_uses (fun r -> r + 10) i with
  | U.Binop (1, U.Add, 11, 12) -> ()
  | _ -> Alcotest.fail "map_instr_uses must not touch the def");
  match U.map_instr_regs (fun r -> r + 10) i with
  | U.Binop (11, U.Add, 11, 12) -> ()
  | _ -> Alcotest.fail "map_instr_regs must rename the def too"

let test_term_structure () =
  Alcotest.(check (list int)) "jump targets" [ 4 ] (U.term_targets (U.Jump 4));
  Alcotest.(check (list int)) "branch targets" [ 1; 2 ]
    (U.term_targets (U.Branch (0, 1, 2)));
  Alcotest.(check (list int)) "return targets" [] (U.term_targets (U.Return None));
  Alcotest.(check (list int)) "branch uses" [ 9 ]
    (U.term_uses (U.Branch (9, 1, 2)))

(* ------------------------------------------------------------------ *)
(* Builder.                                                            *)

let test_builder_basic () =
  let fresh_site, total_sites = B.site_counter () in
  let r = simple_routine ~fresh_site "f" in
  check_int "one block" 1 (List.length r.U.r_blocks);
  check_int "entry id" 0 (U.entry_block r).U.b_id;
  check_int "params" 1 (List.length r.U.r_params);
  check_bool "regs allocated" true (r.U.r_next_reg >= 2);
  check_int "no call sites" 0 (total_sites ())

let test_builder_errors () =
  let fresh_site, _ = B.site_counter () in
  let b, _ = B.create ~name:"f" ~module_name:"m" ~nparams:0 ~fresh_site () in
  (* finish with no blocks *)
  Alcotest.check_raises "no blocks"
    (Invalid_argument "Builder.finish: routine has no blocks") (fun () ->
      ignore (B.finish b));
  let l = B.fresh_label b in
  B.start_block b l;
  (* finish with open block *)
  Alcotest.check_raises "open block"
    (Invalid_argument "Builder.finish: block 0 still open") (fun () ->
      ignore (B.finish b));
  (* emitting into a sealed builder *)
  B.seal b (U.Return None);
  Alcotest.check_raises "emit without block"
    (Invalid_argument "Builder.emit: no open block") (fun () ->
      B.emit b (U.Const (0, 0L)))

let test_builder_entry_must_be_zero () =
  let fresh_site, _ = B.site_counter () in
  let b, _ = B.create ~name:"f" ~module_name:"m" ~nparams:0 ~fresh_site () in
  let _skip = B.fresh_label b in
  let l1 = B.fresh_label b in
  B.start_block b l1;
  B.seal b (U.Return None);
  Alcotest.check_raises "entry 0 missing"
    (Invalid_argument "Builder.finish: entry block 0 missing") (fun () ->
      ignore (B.finish b))

(* ------------------------------------------------------------------ *)
(* Rename.                                                             *)

let test_copy_body_offsets () =
  let fresh_site, _ = B.site_counter () in
  let b, params = B.create ~name:"f" ~module_name:"m" ~nparams:1 ~fresh_site () in
  let p0 = List.hd params in
  let l0 = B.fresh_label b in
  let l1 = B.fresh_label b in
  B.start_block b l0;
  let dst = B.fresh_reg b in
  B.call b ~dst:(Some dst) (U.Direct "g") [ p0 ];
  B.seal b (U.Jump l1);
  B.start_block b l1;
  B.seal b (U.Return (Some dst));
  let r = B.finish b in
  let next = ref 100 in
  let fresh () = let s = !next in incr next; s in
  let copy = Ucode.Rename.copy_body r ~reg_base:50 ~label_base:10 ~fresh_site:fresh in
  check_int "entry shifted" 10 copy.Ucode.Rename.cp_entry;
  Alcotest.(check (list int)) "params shifted" [ 50 ] copy.Ucode.Rename.cp_params;
  check_int "next reg" (r.U.r_next_reg + 50) copy.Ucode.Rename.cp_next_reg;
  (* The copied call got a fresh site and the map records it. *)
  (match copy.Ucode.Rename.cp_site_map with
  | [ (old_site, 100) ] -> check_int "old site" 0 old_site
  | _ -> Alcotest.fail "expected exactly one site mapping");
  (* Register renaming applied inside the copied call. *)
  match copy.Ucode.Rename.cp_blocks with
  | { U.b_instrs = [ U.Call { c_args = [ a ]; c_site = 100; _ } ]; _ } :: _ ->
    check_int "arg renamed" 50 a
  | _ -> Alcotest.fail "unexpected copied entry block"

let test_copy_routine_origin () =
  let fresh_site, _ = B.site_counter () in
  let r = simple_routine ~fresh_site "orig" in
  let clone, _ = Ucode.Rename.copy_routine r ~new_name:"c1" ~fresh_site in
  check_bool "clone origin" true (clone.U.r_origin = U.Clone_of "orig");
  (* Cloning a clone keeps pointing at the original. *)
  let clone2, _ = Ucode.Rename.copy_routine clone ~new_name:"c2" ~fresh_site in
  check_bool "clone-of-clone origin" true (clone2.U.r_origin = U.Clone_of "orig")

(* ------------------------------------------------------------------ *)
(* Size / cost model.                                                  *)

let test_cost_model () =
  let fresh_site, _ = B.site_counter () in
  let r = simple_routine ~fresh_site "f" in
  (* one instr + one terminator *)
  check_int "size" 2 (Ucode.Size.routine_size r);
  Alcotest.(check (float 0.001)) "quadratic" 4.0 (Ucode.Size.routine_cost r);
  let p = program_of [ r; simple_routine ~fresh_site "main" ] in
  Alcotest.(check (float 0.001)) "program cost" 8.0 (Ucode.Size.program_cost p);
  Alcotest.(check (float 0.001)) "cost_of_size" 25.0 (Ucode.Size.cost_of_size 5)

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)

let test_validate_good () =
  let p = caller_callee_program () in
  Alcotest.(check (list string)) "no errors" []
    (List.map (fun e -> Fmt.str "%a" Ucode.Validate.pp_error e)
       (Ucode.Validate.check_program p))

let test_validate_detects () =
  let p = caller_callee_program () in
  let main = U.find_routine_exn p "main" in
  (* Branch to a missing block. *)
  let bad_blocks =
    List.map (fun (b : U.block) -> { b with U.b_term = U.Jump 99 }) main.U.r_blocks
  in
  let bad = U.update_routine p { main with U.r_blocks = bad_blocks } in
  check_bool "missing target caught" true (Ucode.Validate.check_program bad <> []);
  (* Unknown callee. *)
  let rename_call (b : U.block) =
    { b with
      U.b_instrs =
        List.map
          (function
            | U.Call c -> U.Call { c with U.c_callee = U.Direct "nosuch" }
            | i -> i)
          b.U.b_instrs }
  in
  let bad2 =
    U.update_routine p
      { main with U.r_blocks = List.map rename_call main.U.r_blocks }
  in
  check_bool "unknown callee caught" true (Ucode.Validate.check_program bad2 <> []);
  (* Missing main. *)
  let bad3 = { p with U.p_main = "absent" } in
  check_bool "missing main caught" true (Ucode.Validate.check_program bad3 <> [])

let test_validate_duplicate_sites () =
  let p = caller_callee_program () in
  let main = U.find_routine_exn p "main" in
  let dup (b : U.block) =
    { b with
      U.b_instrs =
        List.concat_map
          (function U.Call c -> [ U.Call c; U.Call c ] | i -> [ i ])
          b.U.b_instrs }
  in
  let bad =
    U.update_routine p { main with U.r_blocks = List.map dup main.U.r_blocks }
  in
  check_bool "duplicate site caught" true (Ucode.Validate.check_program bad <> [])

(* Each malformation must be reported with a message naming it — not
   just "some error somewhere".  These are the failure modes a buggy
   transformation (or a buggy parallel merge) would actually produce. *)
let expect_error what mutate =
  let p = caller_callee_program () in
  let bad = mutate p in
  let errors = Ucode.Validate.check_program bad in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool
    (Printf.sprintf "expected %S in:\n%s" what
       (Ucode.Validate.errors_to_string errors))
    true
    (List.exists
       (fun (e : Ucode.Validate.error) -> contains e.Ucode.Validate.what what)
       errors)

let map_main_blocks p f =
  let main = U.find_routine_exn p "main" in
  U.update_routine p { main with U.r_blocks = List.map f main.U.r_blocks }

let test_validate_error_paths () =
  (* Duplicate parameter registers. *)
  expect_error "duplicate parameter" (fun p ->
      let callee = U.find_routine_exn p "callee" in
      U.update_routine p
        { callee with
          U.r_params = [ 0; 0 ];
          r_next_reg = max 2 callee.U.r_next_reg });
  (* Parameter register out of range. *)
  expect_error "parameter register" (fun p ->
      let callee = U.find_routine_exn p "callee" in
      U.update_routine p { callee with U.r_params = [ callee.U.r_next_reg ] });
  (* Branch to a missing block, with the target named. *)
  expect_error "branch to missing block 99" (fun p ->
      map_main_blocks p (fun b -> { b with U.b_term = U.Jump 99 }));
  (* A routine with no blocks at all. *)
  expect_error "no blocks" (fun p ->
      let callee = U.find_routine_exn p "callee" in
      U.update_routine p { callee with U.r_blocks = [] });
  (* Duplicate block ids. *)
  expect_error "duplicate block id" (fun p ->
      let main = U.find_routine_exn p "main" in
      U.update_routine p
        { main with U.r_blocks = main.U.r_blocks @ main.U.r_blocks });
  (* Block id outside [0, r_next_label). *)
  expect_error "out of range" (fun p ->
      let main = U.find_routine_exn p "main" in
      U.update_routine p { main with U.r_next_label = 0 });
  (* A register beyond r_next_reg. *)
  expect_error "register" (fun p ->
      map_main_blocks p (fun b ->
          { b with
            U.b_instrs = U.Const (1_000_000, 0L) :: b.U.b_instrs }));
  (* Site id out of the program's [0, p_next_site) range. *)
  expect_error "site id" (fun p ->
      map_main_blocks p (fun b ->
          { b with
            U.b_instrs =
              List.map
                (function
                  | U.Call c -> U.Call { c with U.c_site = p.U.p_next_site + 7 }
                  | i -> i)
                b.U.b_instrs }));
  (* Negative site id. *)
  expect_error "site id" (fun p ->
      map_main_blocks p (fun b ->
          { b with
            U.b_instrs =
              List.map
                (function
                  | U.Call c -> U.Call { c with U.c_site = -1 }
                  | i -> i)
                b.U.b_instrs }));
  (* Duplicate routine names. *)
  expect_error "duplicate routine name" (fun p ->
      { p with U.p_routines = p.U.p_routines @ [ List.hd p.U.p_routines ] });
  (* Faddr of an undefined routine. *)
  expect_error "faddr of undefined routine" (fun p ->
      map_main_blocks p (fun b ->
          { b with U.b_instrs = U.Faddr (0, "ghost") :: b.U.b_instrs }))

(* ------------------------------------------------------------------ *)
(* Call graph.                                                         *)

let test_callgraph_edges () =
  let p = caller_callee_program () in
  let cg = Ucode.Callgraph.build p in
  check_int "one edge" 1 (Ucode.Callgraph.total_sites cg);
  check_int "incoming callee" 1 (List.length (Ucode.Callgraph.incoming cg "callee"));
  check_int "outgoing main" 1 (List.length (Ucode.Callgraph.outgoing cg "main"));
  check_int "incoming main" 0 (List.length (Ucode.Callgraph.incoming cg "main"))

let test_callgraph_bottom_up () =
  let p = caller_callee_program () in
  let cg = Ucode.Callgraph.build p in
  let order = Ucode.Callgraph.bottom_up_order cg in
  let pos n =
    let rec find i = function
      | [] -> -1
      | x :: _ when x = n -> i
      | _ :: tl -> find (i + 1) tl
    in
    find 0 order
  in
  check_bool "callee before caller" true (pos "callee" < pos "main")

let test_classification () =
  (* Build via the front end: it is the easiest way to get all five
     classes in one program. *)
  let m1 = {|
    static func helper(x) { return x + 1; }
    func rec(n) { if (n <= 0) { return 0; } return rec(n - 1); }
    func exported(x) { return helper(x); }
  |} in
  let m2 = {|
    func main() {
      var f = &exported;
      print_int(f(exported(1)) + rec(3));
      return 0;
    }
  |} in
  let p, _ =
    Minic.Compile.compile_program
      [ Minic.Compile.source ~module_name:"m1" m1;
        Minic.Compile.source ~module_name:"m2" m2 ]
  in
  let cg = Ucode.Callgraph.build p in
  let counts = Ucode.Callgraph.classify cg in
  let get c = List.assoc c counts in
  check_int "external (print_int)" 1 (get Ucode.Callgraph.External);
  check_int "indirect" 1 (get Ucode.Callgraph.Indirect_call);
  check_int "cross-module" 2 (get Ucode.Callgraph.Cross_module);
  check_int "within-module" 1 (get Ucode.Callgraph.Within_module);
  check_int "recursive" 1 (get Ucode.Callgraph.Recursive)

let test_mutual_recursion_is_recursive () =
  let src = {|
    func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
    func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
    func main() { print_int(even(4)); return 0; }
  |} in
  let p = Minic.Compile.compile_string src in
  let cg = Ucode.Callgraph.build p in
  let counts = Ucode.Callgraph.classify cg in
  check_int "mutual recursion classified recursive" 2
    (List.assoc Ucode.Callgraph.Recursive counts)

(* ------------------------------------------------------------------ *)
(* Profile database.                                                   *)

let test_profile_basic () =
  let t = Ucode.Profile.empty in
  check_bool "empty" true (Ucode.Profile.is_empty t);
  let t = Ucode.Profile.add_block t ~routine:"f" ~block:0 5.0 in
  let t = Ucode.Profile.add_block t ~routine:"f" ~block:0 3.0 in
  let t = Ucode.Profile.add_site t 7 10.0 in
  Alcotest.(check (float 0.001)) "block accumulates" 8.0
    (Ucode.Profile.block_count t ~routine:"f" ~block:0);
  Alcotest.(check (float 0.001)) "site" 10.0 (Ucode.Profile.site_count t 7);
  Alcotest.(check (float 0.001)) "missing site" 0.0 (Ucode.Profile.site_count t 99)

let test_profile_transfer_conserves () =
  let t = Ucode.Profile.empty in
  let t = Ucode.Profile.add_block t ~routine:"callee" ~block:0 100.0 in
  let t = Ucode.Profile.add_block t ~routine:"callee" ~block:1 60.0 in
  let t = Ucode.Profile.add_site t 3 40.0 in
  let t' =
    Ucode.Profile.transfer_copy t ~from_routine:"callee" ~into_routine:"caller"
      ~block_map:[ (0, 10); (1, 11) ] ~site_map:[ (3, 8) ] ~factor:0.25
  in
  Alcotest.(check (float 0.001)) "copied block scaled" 25.0
    (Ucode.Profile.block_count t' ~routine:"caller" ~block:10);
  Alcotest.(check (float 0.001)) "copied site scaled" 10.0
    (Ucode.Profile.site_count t' 8);
  Alcotest.(check (float 0.001)) "original untouched by transfer" 100.0
    (Ucode.Profile.block_count t' ~routine:"callee" ~block:0)

let test_profile_targets () =
  let t = Ucode.Profile.empty in
  let t = Ucode.Profile.add_target t 4 "f" 3.0 in
  let t = Ucode.Profile.add_target t 4 "g" 1.0 in
  let t = Ucode.Profile.add_target t 4 "f" 2.0 in
  let hist = Ucode.Profile.site_targets t 4 in
  Alcotest.(check (float 0.001)) "f count" 5.0 (List.assoc "f" hist);
  Alcotest.(check (float 0.001)) "g count" 1.0 (List.assoc "g" hist)

(* ------------------------------------------------------------------ *)
(* Linker.                                                             *)

let test_linker_mangles_statics () =
  let m1 = {| static func f(x) { return x; } func main() { return f(1); } |} in
  let m2 = {| static func f(x) { return x * 2; } func use2() { return f(2); } |} in
  let p, _ =
    Minic.Compile.compile_program
      [ Minic.Compile.source ~module_name:"a" m1;
        Minic.Compile.source ~module_name:"b" m2 ]
  in
  check_bool "a$f exists" true (U.find_routine p "a$f" <> None);
  check_bool "b$f exists" true (U.find_routine p "b$f" <> None);
  (* Each module's main/use2 calls its own static. *)
  let callee_of name =
    match U.calls_of_routine (U.find_routine_exn p name) with
    | [ (_, { U.c_callee = U.Direct n; _ }) ] -> n
    | _ -> Alcotest.fail "expected one direct call"
  in
  Alcotest.(check string) "main resolves locally" "a$f" (callee_of "main");
  Alcotest.(check string) "use2 resolves locally" "b$f" (callee_of "use2")

let test_linker_duplicate_export () =
  let m = {| func f() { return 1; } func main() { return 0; } |} in
  let m2 = {| func f() { return 2; } |} in
  Alcotest.check_raises "duplicate export"
    (Ucode.Linker.Link_error
       "routine f exported by both module a and module b") (fun () ->
      ignore
        (Minic.Compile.compile_program
           [ Minic.Compile.source ~module_name:"a" m;
             Minic.Compile.source ~module_name:"b" m2 ]))

(* Error paths that only hand-built module IR can reach (the front end
   rejects these shapes before the linker sees them).  Every message
   must name the offending module and symbol. *)

let tiny_routine ?(linkage = U.Exported) ?(body = []) name =
  { U.r_name = name; r_module = "ir"; r_params = [];
    r_blocks =
      [ { U.b_id = 0;
          b_instrs = U.Const (0, 0L) :: body;
          b_term = U.Return (Some 0) } ];
    r_next_reg = 1; r_next_label = 1; r_attrs = U.default_attrs;
    r_linkage = linkage; r_origin = U.From_source }

let test_linker_duplicate_in_module_definition () =
  let f = tiny_routine "f" in
  let m = { Ucode.Linker.m_name = "m";
            m_routines = [ f; f; tiny_routine "main" ]; m_globals = [] } in
  Alcotest.check_raises "duplicate routine"
    (Ucode.Linker.Link_error "routine f defined twice in module m")
    (fun () -> ignore (Ucode.Linker.link [ m ]));
  let g = { U.g_name = "g"; g_module = "m"; g_size = 1; g_init = [];
            g_linkage = U.Exported } in
  let m = { Ucode.Linker.m_name = "m";
            m_routines = [ tiny_routine "main" ]; m_globals = [ g; g ] } in
  Alcotest.check_raises "duplicate global"
    (Ucode.Linker.Link_error "global g defined twice in module m")
    (fun () -> ignore (Ucode.Linker.link [ m ]))

let test_linker_unresolved_reference () =
  let call =
    U.Call { U.c_dst = None; c_callee = U.Direct "nosuch"; c_args = [];
             c_site = 0 }
  in
  let m = { Ucode.Linker.m_name = "m";
            m_routines = [ tiny_routine ~body:[ call ] "main" ];
            m_globals = [] } in
  Alcotest.check_raises "undefined routine"
    (Ucode.Linker.Link_error "module m: reference to undefined routine nosuch")
    (fun () -> ignore (Ucode.Linker.link [ m ]));
  let m = { Ucode.Linker.m_name = "m";
            m_routines =
              [ tiny_routine ~body:[ U.Gaddr (0, "noglobal") ] "main" ];
            m_globals = [] } in
  Alcotest.check_raises "undefined global"
    (Ucode.Linker.Link_error "module m: reference to undefined global noglobal")
    (fun () -> ignore (Ucode.Linker.link [ m ]))

let test_linker_missing_main () =
  let m = { Ucode.Linker.m_name = "m"; m_routines = [ tiny_routine "f" ];
            m_globals = [] } in
  Alcotest.check_raises "no entry point"
    (Ucode.Linker.Link_error "no exported routine named main")
    (fun () -> ignore (Ucode.Linker.link [ m ]));
  (* A module-local routine with the right name is not an entry point. *)
  let m = { Ucode.Linker.m_name = "m";
            m_routines = [ tiny_routine ~linkage:U.Module_local "main" ];
            m_globals = [] } in
  Alcotest.check_raises "static main is not exported"
    (Ucode.Linker.Link_error "no exported routine named main")
    (fun () -> ignore (Ucode.Linker.link [ m ]))

let test_linker_renumbers_sites () =
  let m1 = {| func f() { return g(); } func main() { return f(); } |} in
  let m2 = {| func g() { print_int(1); return 0; } |} in
  let p, _ =
    Minic.Compile.compile_program
      [ Minic.Compile.source ~module_name:"a" m1;
        Minic.Compile.source ~module_name:"b" m2 ]
  in
  let sites =
    List.concat_map
      (fun r -> List.map (fun (_, c) -> c.U.c_site) (U.calls_of_routine r))
      p.U.p_routines
  in
  let sorted = List.sort_uniq compare sites in
  check_int "all sites distinct" (List.length sites) (List.length sorted);
  check_bool "next_site above all" true
    (List.for_all (fun s -> s < p.U.p_next_site) sites)

(* ------------------------------------------------------------------ *)
(* Pretty printer.                                                     *)

let test_pp_instrs () =
  let cases =
    [ (U.Const (1, 42L), "r1 = const 42");
      (U.Faddr (2, "f"), "r2 = faddr f");
      (U.Gaddr (3, "g"), "r3 = gaddr g");
      (U.Binop (4, U.Add, 1, 2), "r4 = add r1, r2");
      (U.Unop (5, U.Not, 1), "r5 = not r1");
      (U.Move (6, 5), "r6 = r5");
      (U.Load (7, 6), "r7 = load [r6]");
      (U.Store (6, 7), "store [r6] = r7");
      ( U.Call { c_dst = Some 8; c_callee = U.Direct "f"; c_args = [ 1; 2 ];
                 c_site = 9 },
        "r8 = call f(r1, r2) @site9" );
      ( U.Call { c_dst = None; c_callee = U.Indirect 3; c_args = [];
                 c_site = 0 },
        "call *r3() @site0" ) ]
  in
  List.iter
    (fun (i, expected) ->
      Alcotest.(check string) expected expected (Fmt.str "%a" Ucode.Pp.pp_instr i))
    cases;
  Alcotest.(check string) "jump" "jump L3"
    (Fmt.str "%a" Ucode.Pp.pp_term (U.Jump 3));
  Alcotest.(check string) "branch" "branch r1 ? L2 : L3"
    (Fmt.str "%a" Ucode.Pp.pp_term (U.Branch (1, 2, 3)));
  Alcotest.(check string) "return" "return r4"
    (Fmt.str "%a" Ucode.Pp.pp_term (U.Return (Some 4)))

let test_pp_program_mentions_everything () =
  let p = caller_callee_program () in
  let text = Ucode.Pp.program_to_string p in
  List.iter
    (fun needle ->
      check_bool ("mentions " ^ needle) true
        (let rec contains i =
           i + String.length needle <= String.length text
           && (String.sub text i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0))
    [ "callee"; "main"; "call callee" ]

(* ------------------------------------------------------------------ *)
(* Builtin shadowing: a user routine named like a builtin wins.        *)

let test_user_routine_shadows_builtin () =
  let src = {|
    func alloc(n) { return n * 100; }
    func main() { print_int(alloc(3)); return 0; }
  |} in
  let p = Minic.Compile.compile_string src in
  let ir = Interp.run p in
  Alcotest.(check string) "user alloc wins (interp)" "300\n" ir.Interp.output;
  let sim = Machine.Sim.run_program p in
  Alcotest.(check string) "user alloc wins (sim)" "300\n" sim.Machine.Sim.output

let () =
  Alcotest.run "ucode"
    [ ( "types",
        [ Alcotest.test_case "instr uses/def" `Quick test_instr_uses_def;
          Alcotest.test_case "map uses only" `Quick test_map_instr_uses_preserves_def;
          Alcotest.test_case "terminators" `Quick test_term_structure ] );
      ( "builder",
        [ Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "entry zero" `Quick test_builder_entry_must_be_zero ] );
      ( "rename",
        [ Alcotest.test_case "copy offsets" `Quick test_copy_body_offsets;
          Alcotest.test_case "clone origin" `Quick test_copy_routine_origin ] );
      ( "size",
        [ Alcotest.test_case "cost model" `Quick test_cost_model ] );
      ( "validate",
        [ Alcotest.test_case "accepts good" `Quick test_validate_good;
          Alcotest.test_case "detects bad" `Quick test_validate_detects;
          Alcotest.test_case "duplicate sites" `Quick test_validate_duplicate_sites;
          Alcotest.test_case "error paths" `Quick test_validate_error_paths ] );
      ( "callgraph",
        [ Alcotest.test_case "edges" `Quick test_callgraph_edges;
          Alcotest.test_case "bottom-up order" `Quick test_callgraph_bottom_up;
          Alcotest.test_case "figure-5 classes" `Quick test_classification;
          Alcotest.test_case "mutual recursion" `Quick
            test_mutual_recursion_is_recursive ] );
      ( "profile",
        [ Alcotest.test_case "basic" `Quick test_profile_basic;
          Alcotest.test_case "transfer" `Quick test_profile_transfer_conserves;
          Alcotest.test_case "targets" `Quick test_profile_targets ] );
      ( "pp",
        [ Alcotest.test_case "instructions" `Quick test_pp_instrs;
          Alcotest.test_case "program dump" `Quick
            test_pp_program_mentions_everything;
          Alcotest.test_case "builtin shadowing" `Quick
            test_user_routine_shadows_builtin ] );
      ( "linker",
        [ Alcotest.test_case "static mangling" `Quick test_linker_mangles_statics;
          Alcotest.test_case "duplicate export" `Quick test_linker_duplicate_export;
          Alcotest.test_case "duplicate in-module definition" `Quick
            test_linker_duplicate_in_module_definition;
          Alcotest.test_case "unresolved reference" `Quick
            test_linker_unresolved_reference;
          Alcotest.test_case "missing main" `Quick test_linker_missing_main;
          Alcotest.test_case "site renumbering" `Quick test_linker_renumbers_sites ] ) ]
